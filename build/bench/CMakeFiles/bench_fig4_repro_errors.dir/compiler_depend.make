# Empty compiler generated dependencies file for bench_fig4_repro_errors.
# This may be replaced when dependencies are built.
