file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_repro_errors.dir/bench_fig4_repro_errors.cpp.o"
  "CMakeFiles/bench_fig4_repro_errors.dir/bench_fig4_repro_errors.cpp.o.d"
  "bench_fig4_repro_errors"
  "bench_fig4_repro_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_repro_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
