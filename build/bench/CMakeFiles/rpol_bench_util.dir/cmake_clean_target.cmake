file(REMOVE_RECURSE
  "librpol_bench_util.a"
)
