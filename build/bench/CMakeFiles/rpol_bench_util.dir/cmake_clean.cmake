file(REMOVE_RECURSE
  "CMakeFiles/rpol_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/rpol_bench_util.dir/bench_util.cpp.o.d"
  "librpol_bench_util.a"
  "librpol_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
