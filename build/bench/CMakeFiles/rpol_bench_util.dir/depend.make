# Empty dependencies file for rpol_bench_util.
# This may be replaced when dependencies are built.
