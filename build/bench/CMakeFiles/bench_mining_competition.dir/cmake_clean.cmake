file(REMOVE_RECURSE
  "CMakeFiles/bench_mining_competition.dir/bench_mining_competition.cpp.o"
  "CMakeFiles/bench_mining_competition.dir/bench_mining_competition.cpp.o.d"
  "bench_mining_competition"
  "bench_mining_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mining_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
