# Empty dependencies file for bench_mining_competition.
# This may be replaced when dependencies are built.
