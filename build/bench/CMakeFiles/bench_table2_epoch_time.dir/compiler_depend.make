# Empty compiler generated dependencies file for bench_table2_epoch_time.
# This may be replaced when dependencies are built.
