file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_epoch_time.dir/bench_table2_epoch_time.cpp.o"
  "CMakeFiles/bench_table2_epoch_time.dir/bench_table2_epoch_time.cpp.o.d"
  "bench_table2_epoch_time"
  "bench_table2_epoch_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_epoch_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
