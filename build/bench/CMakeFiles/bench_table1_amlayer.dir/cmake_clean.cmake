file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_amlayer.dir/bench_table1_amlayer.cpp.o"
  "CMakeFiles/bench_table1_amlayer.dir/bench_table1_amlayer.cpp.o.d"
  "bench_table1_amlayer"
  "bench_table1_amlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_amlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
