# Empty dependencies file for bench_table3_overhead.
# This may be replaced when dependencies are built.
