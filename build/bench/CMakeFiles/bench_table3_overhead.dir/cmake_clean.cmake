file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_overhead.dir/bench_table3_overhead.cpp.o"
  "CMakeFiles/bench_table3_overhead.dir/bench_table3_overhead.cpp.o.d"
  "bench_table3_overhead"
  "bench_table3_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
