file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_sampling.dir/bench_theory_sampling.cpp.o"
  "CMakeFiles/bench_theory_sampling.dir/bench_theory_sampling.cpp.o.d"
  "bench_theory_sampling"
  "bench_theory_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
