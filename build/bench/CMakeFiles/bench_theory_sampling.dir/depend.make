# Empty dependencies file for bench_theory_sampling.
# This may be replaced when dependencies are built.
