file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_amlayer_curves.dir/bench_fig3_amlayer_curves.cpp.o"
  "CMakeFiles/bench_fig3_amlayer_curves.dir/bench_fig3_amlayer_curves.cpp.o.d"
  "bench_fig3_amlayer_curves"
  "bench_fig3_amlayer_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_amlayer_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
