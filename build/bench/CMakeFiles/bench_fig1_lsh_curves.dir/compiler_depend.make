# Empty compiler generated dependencies file for bench_fig1_lsh_curves.
# This may be replaced when dependencies are built.
