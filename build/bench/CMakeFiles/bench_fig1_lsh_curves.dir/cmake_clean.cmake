file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_lsh_curves.dir/bench_fig1_lsh_curves.cpp.o"
  "CMakeFiles/bench_fig1_lsh_curves.dir/bench_fig1_lsh_curves.cpp.o.d"
  "bench_fig1_lsh_curves"
  "bench_fig1_lsh_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_lsh_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
