# Empty dependencies file for bench_fig5_adaptive_lsh.
# This may be replaced when dependencies are built.
