file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_adaptive_lsh.dir/bench_fig5_adaptive_lsh.cpp.o"
  "CMakeFiles/bench_fig5_adaptive_lsh.dir/bench_fig5_adaptive_lsh.cpp.o.d"
  "bench_fig5_adaptive_lsh"
  "bench_fig5_adaptive_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_adaptive_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
