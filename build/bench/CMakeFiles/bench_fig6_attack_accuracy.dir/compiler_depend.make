# Empty compiler generated dependencies file for bench_fig6_attack_accuracy.
# This may be replaced when dependencies are built.
