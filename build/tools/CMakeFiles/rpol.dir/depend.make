# Empty dependencies file for rpol.
# This may be replaced when dependencies are built.
