# Empty compiler generated dependencies file for rpol.
# This may be replaced when dependencies are built.
