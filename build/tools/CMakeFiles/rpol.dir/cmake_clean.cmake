file(REMOVE_RECURSE
  "CMakeFiles/rpol.dir/rpol_cli.cpp.o"
  "CMakeFiles/rpol.dir/rpol_cli.cpp.o.d"
  "rpol"
  "rpol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
