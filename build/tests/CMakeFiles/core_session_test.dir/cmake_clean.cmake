file(REMOVE_RECURSE
  "CMakeFiles/core_session_test.dir/core_session_test.cpp.o"
  "CMakeFiles/core_session_test.dir/core_session_test.cpp.o.d"
  "core_session_test"
  "core_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
