# Empty compiler generated dependencies file for core_session_test.
# This may be replaced when dependencies are built.
