# Empty dependencies file for core_amlayer_test.
# This may be replaced when dependencies are built.
