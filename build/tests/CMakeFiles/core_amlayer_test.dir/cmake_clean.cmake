file(REMOVE_RECURSE
  "CMakeFiles/core_amlayer_test.dir/core_amlayer_test.cpp.o"
  "CMakeFiles/core_amlayer_test.dir/core_amlayer_test.cpp.o.d"
  "core_amlayer_test"
  "core_amlayer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_amlayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
