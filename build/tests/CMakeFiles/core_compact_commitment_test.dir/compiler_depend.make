# Empty compiler generated dependencies file for core_compact_commitment_test.
# This may be replaced when dependencies are built.
