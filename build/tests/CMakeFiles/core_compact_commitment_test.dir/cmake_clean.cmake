file(REMOVE_RECURSE
  "CMakeFiles/core_compact_commitment_test.dir/core_compact_commitment_test.cpp.o"
  "CMakeFiles/core_compact_commitment_test.dir/core_compact_commitment_test.cpp.o.d"
  "core_compact_commitment_test"
  "core_compact_commitment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_compact_commitment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
