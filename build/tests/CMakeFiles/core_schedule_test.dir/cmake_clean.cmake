file(REMOVE_RECURSE
  "CMakeFiles/core_schedule_test.dir/core_schedule_test.cpp.o"
  "CMakeFiles/core_schedule_test.dir/core_schedule_test.cpp.o.d"
  "core_schedule_test"
  "core_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
