# Empty dependencies file for core_schedule_test.
# This may be replaced when dependencies are built.
