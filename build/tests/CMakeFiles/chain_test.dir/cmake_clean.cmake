file(REMOVE_RECURSE
  "CMakeFiles/chain_test.dir/chain_test.cpp.o"
  "CMakeFiles/chain_test.dir/chain_test.cpp.o.d"
  "chain_test"
  "chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
