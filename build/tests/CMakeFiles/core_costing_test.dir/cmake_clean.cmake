file(REMOVE_RECURSE
  "CMakeFiles/core_costing_test.dir/core_costing_test.cpp.o"
  "CMakeFiles/core_costing_test.dir/core_costing_test.cpp.o.d"
  "core_costing_test"
  "core_costing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_costing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
