# Empty dependencies file for core_costing_test.
# This may be replaced when dependencies are built.
