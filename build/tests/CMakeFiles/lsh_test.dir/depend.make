# Empty dependencies file for lsh_test.
# This may be replaced when dependencies are built.
