file(REMOVE_RECURSE
  "CMakeFiles/lsh_test.dir/lsh_test.cpp.o"
  "CMakeFiles/lsh_test.dir/lsh_test.cpp.o.d"
  "lsh_test"
  "lsh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
