# Empty dependencies file for core_policy_test.
# This may be replaced when dependencies are built.
