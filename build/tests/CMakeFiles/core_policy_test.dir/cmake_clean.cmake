file(REMOVE_RECURSE
  "CMakeFiles/core_policy_test.dir/core_policy_test.cpp.o"
  "CMakeFiles/core_policy_test.dir/core_policy_test.cpp.o.d"
  "core_policy_test"
  "core_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
