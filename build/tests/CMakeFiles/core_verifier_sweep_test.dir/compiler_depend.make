# Empty compiler generated dependencies file for core_verifier_sweep_test.
# This may be replaced when dependencies are built.
