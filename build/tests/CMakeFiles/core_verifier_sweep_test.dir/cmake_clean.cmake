file(REMOVE_RECURSE
  "CMakeFiles/core_verifier_sweep_test.dir/core_verifier_sweep_test.cpp.o"
  "CMakeFiles/core_verifier_sweep_test.dir/core_verifier_sweep_test.cpp.o.d"
  "core_verifier_sweep_test"
  "core_verifier_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_verifier_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
