# Empty dependencies file for core_pool_test.
# This may be replaced when dependencies are built.
