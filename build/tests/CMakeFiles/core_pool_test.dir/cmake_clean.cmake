file(REMOVE_RECURSE
  "CMakeFiles/core_pool_test.dir/core_pool_test.cpp.o"
  "CMakeFiles/core_pool_test.dir/core_pool_test.cpp.o.d"
  "core_pool_test"
  "core_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
