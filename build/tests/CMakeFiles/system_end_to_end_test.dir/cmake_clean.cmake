file(REMOVE_RECURSE
  "CMakeFiles/system_end_to_end_test.dir/system_end_to_end_test.cpp.o"
  "CMakeFiles/system_end_to_end_test.dir/system_end_to_end_test.cpp.o.d"
  "system_end_to_end_test"
  "system_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
