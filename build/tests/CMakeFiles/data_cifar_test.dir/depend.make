# Empty dependencies file for data_cifar_test.
# This may be replaced when dependencies are built.
