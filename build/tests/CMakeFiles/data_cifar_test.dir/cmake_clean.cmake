file(REMOVE_RECURSE
  "CMakeFiles/data_cifar_test.dir/data_cifar_test.cpp.o"
  "CMakeFiles/data_cifar_test.dir/data_cifar_test.cpp.o.d"
  "data_cifar_test"
  "data_cifar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_cifar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
