file(REMOVE_RECURSE
  "CMakeFiles/core_economics_test.dir/core_economics_test.cpp.o"
  "CMakeFiles/core_economics_test.dir/core_economics_test.cpp.o.d"
  "core_economics_test"
  "core_economics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_economics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
