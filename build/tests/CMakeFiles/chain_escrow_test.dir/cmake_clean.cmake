file(REMOVE_RECURSE
  "CMakeFiles/chain_escrow_test.dir/chain_escrow_test.cpp.o"
  "CMakeFiles/chain_escrow_test.dir/chain_escrow_test.cpp.o.d"
  "chain_escrow_test"
  "chain_escrow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_escrow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
