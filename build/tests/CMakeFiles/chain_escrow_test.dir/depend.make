# Empty dependencies file for chain_escrow_test.
# This may be replaced when dependencies are built.
