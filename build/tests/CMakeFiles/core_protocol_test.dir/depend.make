# Empty dependencies file for core_protocol_test.
# This may be replaced when dependencies are built.
