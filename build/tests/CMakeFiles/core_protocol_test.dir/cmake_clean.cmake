file(REMOVE_RECURSE
  "CMakeFiles/core_protocol_test.dir/core_protocol_test.cpp.o"
  "CMakeFiles/core_protocol_test.dir/core_protocol_test.cpp.o.d"
  "core_protocol_test"
  "core_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
