# Empty dependencies file for core_calibration_test.
# This may be replaced when dependencies are built.
