
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_calibration_test.cpp" "tests/CMakeFiles/core_calibration_test.dir/core_calibration_test.cpp.o" "gcc" "tests/CMakeFiles/core_calibration_test.dir/core_calibration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rpol_data.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/rpol_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rpol_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpol_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rpol_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rpol_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
