file(REMOVE_RECURSE
  "CMakeFiles/core_calibration_test.dir/core_calibration_test.cpp.o"
  "CMakeFiles/core_calibration_test.dir/core_calibration_test.cpp.o.d"
  "core_calibration_test"
  "core_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
