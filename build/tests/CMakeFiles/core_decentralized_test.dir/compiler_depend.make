# Empty compiler generated dependencies file for core_decentralized_test.
# This may be replaced when dependencies are built.
