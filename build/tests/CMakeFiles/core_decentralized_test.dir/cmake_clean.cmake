file(REMOVE_RECURSE
  "CMakeFiles/core_decentralized_test.dir/core_decentralized_test.cpp.o"
  "CMakeFiles/core_decentralized_test.dir/core_decentralized_test.cpp.o.d"
  "core_decentralized_test"
  "core_decentralized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_decentralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
