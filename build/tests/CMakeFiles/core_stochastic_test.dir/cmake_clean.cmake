file(REMOVE_RECURSE
  "CMakeFiles/core_stochastic_test.dir/core_stochastic_test.cpp.o"
  "CMakeFiles/core_stochastic_test.dir/core_stochastic_test.cpp.o.d"
  "core_stochastic_test"
  "core_stochastic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stochastic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
