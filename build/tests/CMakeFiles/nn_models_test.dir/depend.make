# Empty dependencies file for nn_models_test.
# This may be replaced when dependencies are built.
