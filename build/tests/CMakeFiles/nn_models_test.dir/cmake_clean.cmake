file(REMOVE_RECURSE
  "CMakeFiles/nn_models_test.dir/nn_models_test.cpp.o"
  "CMakeFiles/nn_models_test.dir/nn_models_test.cpp.o.d"
  "nn_models_test"
  "nn_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
