# Empty compiler generated dependencies file for core_async_pool_test.
# This may be replaced when dependencies are built.
