file(REMOVE_RECURSE
  "CMakeFiles/misc_coverage_test.dir/misc_coverage_test.cpp.o"
  "CMakeFiles/misc_coverage_test.dir/misc_coverage_test.cpp.o.d"
  "misc_coverage_test"
  "misc_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
