file(REMOVE_RECURSE
  "CMakeFiles/core_wire_fuzz_test.dir/core_wire_fuzz_test.cpp.o"
  "CMakeFiles/core_wire_fuzz_test.dir/core_wire_fuzz_test.cpp.o.d"
  "core_wire_fuzz_test"
  "core_wire_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_wire_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
