file(REMOVE_RECURSE
  "CMakeFiles/core_rewards_test.dir/core_rewards_test.cpp.o"
  "CMakeFiles/core_rewards_test.dir/core_rewards_test.cpp.o.d"
  "core_rewards_test"
  "core_rewards_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rewards_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
