# Empty compiler generated dependencies file for core_rewards_test.
# This may be replaced when dependencies are built.
