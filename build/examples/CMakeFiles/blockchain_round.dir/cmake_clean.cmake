file(REMOVE_RECURSE
  "CMakeFiles/blockchain_round.dir/blockchain_round.cpp.o"
  "CMakeFiles/blockchain_round.dir/blockchain_round.cpp.o.d"
  "blockchain_round"
  "blockchain_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
