# Empty compiler generated dependencies file for blockchain_round.
# This may be replaced when dependencies are built.
