file(REMOVE_RECURSE
  "CMakeFiles/async_learning.dir/async_learning.cpp.o"
  "CMakeFiles/async_learning.dir/async_learning.cpp.o.d"
  "async_learning"
  "async_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
