# Empty compiler generated dependencies file for async_learning.
# This may be replaced when dependencies are built.
