# Empty compiler generated dependencies file for pool_mining.
# This may be replaced when dependencies are built.
