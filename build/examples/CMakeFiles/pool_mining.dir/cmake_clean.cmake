file(REMOVE_RECURSE
  "CMakeFiles/pool_mining.dir/pool_mining.cpp.o"
  "CMakeFiles/pool_mining.dir/pool_mining.cpp.o.d"
  "pool_mining"
  "pool_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
