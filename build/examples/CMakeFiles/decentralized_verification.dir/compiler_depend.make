# Empty compiler generated dependencies file for decentralized_verification.
# This may be replaced when dependencies are built.
