file(REMOVE_RECURSE
  "CMakeFiles/decentralized_verification.dir/decentralized_verification.cpp.o"
  "CMakeFiles/decentralized_verification.dir/decentralized_verification.cpp.o.d"
  "decentralized_verification"
  "decentralized_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
