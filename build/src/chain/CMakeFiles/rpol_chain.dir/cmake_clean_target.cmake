file(REMOVE_RECURSE
  "librpol_chain.a"
)
