# Empty dependencies file for rpol_chain.
# This may be replaced when dependencies are built.
