file(REMOVE_RECURSE
  "CMakeFiles/rpol_chain.dir/blockchain.cpp.o"
  "CMakeFiles/rpol_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/rpol_chain.dir/escrow.cpp.o"
  "CMakeFiles/rpol_chain.dir/escrow.cpp.o.d"
  "librpol_chain.a"
  "librpol_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
