# Empty compiler generated dependencies file for rpol_tensor.
# This may be replaced when dependencies are built.
