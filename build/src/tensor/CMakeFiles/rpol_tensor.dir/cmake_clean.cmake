file(REMOVE_RECURSE
  "CMakeFiles/rpol_tensor.dir/ops.cpp.o"
  "CMakeFiles/rpol_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/rpol_tensor.dir/rng.cpp.o"
  "CMakeFiles/rpol_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/rpol_tensor.dir/serialize.cpp.o"
  "CMakeFiles/rpol_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/rpol_tensor.dir/tensor.cpp.o"
  "CMakeFiles/rpol_tensor.dir/tensor.cpp.o.d"
  "librpol_tensor.a"
  "librpol_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
