file(REMOVE_RECURSE
  "librpol_tensor.a"
)
