file(REMOVE_RECURSE
  "CMakeFiles/rpol_crypto.dir/address.cpp.o"
  "CMakeFiles/rpol_crypto.dir/address.cpp.o.d"
  "CMakeFiles/rpol_crypto.dir/hmac.cpp.o"
  "CMakeFiles/rpol_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/rpol_crypto.dir/merkle.cpp.o"
  "CMakeFiles/rpol_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/rpol_crypto.dir/prf.cpp.o"
  "CMakeFiles/rpol_crypto.dir/prf.cpp.o.d"
  "CMakeFiles/rpol_crypto.dir/sha256.cpp.o"
  "CMakeFiles/rpol_crypto.dir/sha256.cpp.o.d"
  "librpol_crypto.a"
  "librpol_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
