file(REMOVE_RECURSE
  "librpol_crypto.a"
)
