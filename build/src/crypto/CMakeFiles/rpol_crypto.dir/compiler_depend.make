# Empty compiler generated dependencies file for rpol_crypto.
# This may be replaced when dependencies are built.
