file(REMOVE_RECURSE
  "CMakeFiles/rpol_sim.dir/device.cpp.o"
  "CMakeFiles/rpol_sim.dir/device.cpp.o.d"
  "CMakeFiles/rpol_sim.dir/model_specs.cpp.o"
  "CMakeFiles/rpol_sim.dir/model_specs.cpp.o.d"
  "CMakeFiles/rpol_sim.dir/network.cpp.o"
  "CMakeFiles/rpol_sim.dir/network.cpp.o.d"
  "CMakeFiles/rpol_sim.dir/stats.cpp.o"
  "CMakeFiles/rpol_sim.dir/stats.cpp.o.d"
  "librpol_sim.a"
  "librpol_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
