# Empty dependencies file for rpol_sim.
# This may be replaced when dependencies are built.
