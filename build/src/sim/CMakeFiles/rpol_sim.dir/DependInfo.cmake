
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/rpol_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/rpol_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/model_specs.cpp" "src/sim/CMakeFiles/rpol_sim.dir/model_specs.cpp.o" "gcc" "src/sim/CMakeFiles/rpol_sim.dir/model_specs.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/rpol_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/rpol_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/rpol_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/rpol_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rpol_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rpol_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
