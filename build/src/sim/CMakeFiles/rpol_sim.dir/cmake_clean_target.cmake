file(REMOVE_RECURSE
  "librpol_sim.a"
)
