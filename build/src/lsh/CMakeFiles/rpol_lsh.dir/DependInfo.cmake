
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsh/probability.cpp" "src/lsh/CMakeFiles/rpol_lsh.dir/probability.cpp.o" "gcc" "src/lsh/CMakeFiles/rpol_lsh.dir/probability.cpp.o.d"
  "/root/repo/src/lsh/pstable.cpp" "src/lsh/CMakeFiles/rpol_lsh.dir/pstable.cpp.o" "gcc" "src/lsh/CMakeFiles/rpol_lsh.dir/pstable.cpp.o.d"
  "/root/repo/src/lsh/tuning.cpp" "src/lsh/CMakeFiles/rpol_lsh.dir/tuning.cpp.o" "gcc" "src/lsh/CMakeFiles/rpol_lsh.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rpol_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rpol_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
