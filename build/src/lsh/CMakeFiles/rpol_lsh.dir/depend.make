# Empty dependencies file for rpol_lsh.
# This may be replaced when dependencies are built.
