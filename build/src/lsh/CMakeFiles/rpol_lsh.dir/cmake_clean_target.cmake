file(REMOVE_RECURSE
  "librpol_lsh.a"
)
