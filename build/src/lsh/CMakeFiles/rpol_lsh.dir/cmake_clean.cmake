file(REMOVE_RECURSE
  "CMakeFiles/rpol_lsh.dir/probability.cpp.o"
  "CMakeFiles/rpol_lsh.dir/probability.cpp.o.d"
  "CMakeFiles/rpol_lsh.dir/pstable.cpp.o"
  "CMakeFiles/rpol_lsh.dir/pstable.cpp.o.d"
  "CMakeFiles/rpol_lsh.dir/tuning.cpp.o"
  "CMakeFiles/rpol_lsh.dir/tuning.cpp.o.d"
  "librpol_lsh.a"
  "librpol_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
