
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/blocks.cpp" "src/nn/CMakeFiles/rpol_nn.dir/blocks.cpp.o" "gcc" "src/nn/CMakeFiles/rpol_nn.dir/blocks.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/rpol_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/rpol_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/rpol_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/rpol_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/rpol_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/rpol_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/rpol_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/rpol_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/rpol_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/rpol_nn.dir/optim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rpol_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
