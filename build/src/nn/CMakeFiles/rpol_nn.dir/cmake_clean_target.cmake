file(REMOVE_RECURSE
  "librpol_nn.a"
)
