# Empty dependencies file for rpol_nn.
# This may be replaced when dependencies are built.
