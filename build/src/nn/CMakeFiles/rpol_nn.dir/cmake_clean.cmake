file(REMOVE_RECURSE
  "CMakeFiles/rpol_nn.dir/blocks.cpp.o"
  "CMakeFiles/rpol_nn.dir/blocks.cpp.o.d"
  "CMakeFiles/rpol_nn.dir/layers.cpp.o"
  "CMakeFiles/rpol_nn.dir/layers.cpp.o.d"
  "CMakeFiles/rpol_nn.dir/loss.cpp.o"
  "CMakeFiles/rpol_nn.dir/loss.cpp.o.d"
  "CMakeFiles/rpol_nn.dir/model.cpp.o"
  "CMakeFiles/rpol_nn.dir/model.cpp.o.d"
  "CMakeFiles/rpol_nn.dir/models.cpp.o"
  "CMakeFiles/rpol_nn.dir/models.cpp.o.d"
  "CMakeFiles/rpol_nn.dir/optim.cpp.o"
  "CMakeFiles/rpol_nn.dir/optim.cpp.o.d"
  "librpol_nn.a"
  "librpol_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
