file(REMOVE_RECURSE
  "librpol_data.a"
)
