file(REMOVE_RECURSE
  "CMakeFiles/rpol_data.dir/cifar.cpp.o"
  "CMakeFiles/rpol_data.dir/cifar.cpp.o.d"
  "CMakeFiles/rpol_data.dir/dataset.cpp.o"
  "CMakeFiles/rpol_data.dir/dataset.cpp.o.d"
  "CMakeFiles/rpol_data.dir/partition.cpp.o"
  "CMakeFiles/rpol_data.dir/partition.cpp.o.d"
  "CMakeFiles/rpol_data.dir/synthetic.cpp.o"
  "CMakeFiles/rpol_data.dir/synthetic.cpp.o.d"
  "librpol_data.a"
  "librpol_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
