# Empty dependencies file for rpol_data.
# This may be replaced when dependencies are built.
