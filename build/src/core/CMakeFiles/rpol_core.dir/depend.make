# Empty dependencies file for rpol_core.
# This may be replaced when dependencies are built.
