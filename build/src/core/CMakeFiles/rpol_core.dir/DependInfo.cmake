
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amlayer.cpp" "src/core/CMakeFiles/rpol_core.dir/amlayer.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/amlayer.cpp.o.d"
  "/root/repo/src/core/async_pool.cpp" "src/core/CMakeFiles/rpol_core.dir/async_pool.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/async_pool.cpp.o.d"
  "/root/repo/src/core/calibrate.cpp" "src/core/CMakeFiles/rpol_core.dir/calibrate.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/calibrate.cpp.o.d"
  "/root/repo/src/core/commitment.cpp" "src/core/CMakeFiles/rpol_core.dir/commitment.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/commitment.cpp.o.d"
  "/root/repo/src/core/costing.cpp" "src/core/CMakeFiles/rpol_core.dir/costing.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/costing.cpp.o.d"
  "/root/repo/src/core/decentralized.cpp" "src/core/CMakeFiles/rpol_core.dir/decentralized.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/decentralized.cpp.o.d"
  "/root/repo/src/core/detsel.cpp" "src/core/CMakeFiles/rpol_core.dir/detsel.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/detsel.cpp.o.d"
  "/root/repo/src/core/economics.cpp" "src/core/CMakeFiles/rpol_core.dir/economics.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/economics.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/core/CMakeFiles/rpol_core.dir/executor.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/executor.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/rpol_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/pool.cpp" "src/core/CMakeFiles/rpol_core.dir/pool.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/pool.cpp.o.d"
  "/root/repo/src/core/rewards.cpp" "src/core/CMakeFiles/rpol_core.dir/rewards.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/rewards.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/rpol_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/session.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/core/CMakeFiles/rpol_core.dir/verifier.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/verifier.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/rpol_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/rpol_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rpol_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rpol_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rpol_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rpol_data.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/rpol_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpol_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
