file(REMOVE_RECURSE
  "librpol_core.a"
)
