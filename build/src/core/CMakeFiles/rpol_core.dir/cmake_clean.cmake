file(REMOVE_RECURSE
  "CMakeFiles/rpol_core.dir/amlayer.cpp.o"
  "CMakeFiles/rpol_core.dir/amlayer.cpp.o.d"
  "CMakeFiles/rpol_core.dir/async_pool.cpp.o"
  "CMakeFiles/rpol_core.dir/async_pool.cpp.o.d"
  "CMakeFiles/rpol_core.dir/calibrate.cpp.o"
  "CMakeFiles/rpol_core.dir/calibrate.cpp.o.d"
  "CMakeFiles/rpol_core.dir/commitment.cpp.o"
  "CMakeFiles/rpol_core.dir/commitment.cpp.o.d"
  "CMakeFiles/rpol_core.dir/costing.cpp.o"
  "CMakeFiles/rpol_core.dir/costing.cpp.o.d"
  "CMakeFiles/rpol_core.dir/decentralized.cpp.o"
  "CMakeFiles/rpol_core.dir/decentralized.cpp.o.d"
  "CMakeFiles/rpol_core.dir/detsel.cpp.o"
  "CMakeFiles/rpol_core.dir/detsel.cpp.o.d"
  "CMakeFiles/rpol_core.dir/economics.cpp.o"
  "CMakeFiles/rpol_core.dir/economics.cpp.o.d"
  "CMakeFiles/rpol_core.dir/executor.cpp.o"
  "CMakeFiles/rpol_core.dir/executor.cpp.o.d"
  "CMakeFiles/rpol_core.dir/policy.cpp.o"
  "CMakeFiles/rpol_core.dir/policy.cpp.o.d"
  "CMakeFiles/rpol_core.dir/pool.cpp.o"
  "CMakeFiles/rpol_core.dir/pool.cpp.o.d"
  "CMakeFiles/rpol_core.dir/rewards.cpp.o"
  "CMakeFiles/rpol_core.dir/rewards.cpp.o.d"
  "CMakeFiles/rpol_core.dir/session.cpp.o"
  "CMakeFiles/rpol_core.dir/session.cpp.o.d"
  "CMakeFiles/rpol_core.dir/verifier.cpp.o"
  "CMakeFiles/rpol_core.dir/verifier.cpp.o.d"
  "CMakeFiles/rpol_core.dir/wire.cpp.o"
  "CMakeFiles/rpol_core.dir/wire.cpp.o.d"
  "librpol_core.a"
  "librpol_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpol_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
