// Table III: performance overhead of one ResNet50/ImageNet epoch with 100
// workers — computation (manager/worker), communication, per-worker
// storage, and capital cost at the paper's Alibaba-cloud prices.
//
// Shape to reproduce (paper Table III):
//   comp  M: 0 / 180s / 240s          W: 30s everywhere
//   comm  M&W: 8.8GB / 62GB / 35.6GB  (worker->manager volume)
//   storage W: 0.09GB / 4.5GB / 5.9GB
//   capital: $2.13 / $8.49 / $5.46    (v2 ~35% cheaper than v1)

#include <chrono>

#include "bench_util.h"
#include "core/costing.h"
#include "fault/fault.h"
#include "obs/live.h"
#include "obs/obs.h"

namespace {
using namespace rpol;

core::CostScenario make_scenario(core::Scheme scheme) {
  core::CostScenario s;
  s.scheme = scheme;
  s.model = sim::real_resnet50();
  s.dataset = sim::real_imagenet();
  s.num_workers = 100;
  return s;
}

// Runs one scheme's estimate inside a span and mirrors the headline costs
// into the metrics registry, so the bench leaves the same kind of JSONL
// artifact as a traced protocol run.
core::EpochCostReport traced_estimate(core::Scheme scheme) {
  obs::Span span("cost_estimate");
  span.attr("scheme", core::scheme_name(scheme));
  const auto r = core::estimate_epoch_cost(make_scenario(scheme));
  const std::string prefix = "table3." + core::scheme_name(scheme);
  obs::gauge(prefix + ".manager_compute_s").set(r.manager_compute_s());
  obs::gauge(prefix + ".worker_compute_s").set(r.worker_train_s + r.worker_lsh_s);
  obs::gauge(prefix + ".upload_bytes").set(static_cast<double>(r.upload_bytes_total));
  obs::gauge(prefix + ".storage_bytes")
      .set(static_cast<double>(r.storage_bytes_per_worker));
  obs::gauge(prefix + ".capital_usd").set(r.capital.total());
  span.attr("capital_usd", r.capital.total());
  return r;
}

// Variant rows: communication overhead under a lossy transport. With a
// uniform drop probability p and the session retry budget, every message is
// transmitted E[T] = sum_{i<A} p^i times in expectation (fault/fault.h), so
// upload volume scales by that factor. Mirrored into the same table3.*
// gauge namespace so BENCH_table3_obs.jsonl carries the lossy rows too.
double lossy_upload_gb(const core::EpochCostReport& r, double drop_p,
                       int max_attempts, const std::string& scheme) {
  const double factor = fault::expected_transmissions(drop_p, max_attempts);
  const double bytes = static_cast<double>(r.upload_bytes_total) * factor;
  obs::gauge("table3." + scheme + ".upload_bytes_drop5").set(bytes);
  obs::gauge("table3." + scheme + ".retransmission_factor").set(factor);
  return bytes / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace

int main() {
  bench::print_header(
      "Table III — overhead of ResNet50/ImageNet, one epoch, 100 workers",
      "Sec. VII-E Table III (paper: see header of each row)");

  obs::set_enabled(true);  // this bench always leaves a trace artifact
  const auto base = traced_estimate(core::Scheme::kBaseline);
  const auto v1 = traced_estimate(core::Scheme::kRPoLv1);
  const auto v2 = traced_estimate(core::Scheme::kRPoLv2);

  auto gb = [](std::uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
  };

  std::printf("\n%-26s %-20s %-14s %-14s\n", "Overhead", "Baseline (insecure)",
              "RPoLv1", "RPoLv2");
  std::printf("%-26s %-20.0f %-14.0f %-14.0f\n", "Comp. manager (s)", 0.0,
              v1.manager_compute_s(), v2.manager_compute_s());
  std::printf("%-26s %-20.0f %-14.0f %-14.0f\n", "Comp. worker (s)",
              base.worker_train_s, v1.worker_train_s + v1.worker_lsh_s,
              v2.worker_train_s + v2.worker_lsh_s);
  std::printf("%-26s %-20.1f %-14.1f %-14.1f\n", "Comm. M&W (GB, uploads)",
              gb(base.upload_bytes_total), gb(v1.upload_bytes_total),
              gb(v2.upload_bytes_total));
  {
    // Lossy-transport variant: 5% uniform drop, default retry budget.
    const fault::RetryPolicy retry;
    const double drop = 0.05;
    const double f = fault::expected_transmissions(drop, retry.max_attempts);
    std::printf("%-26s %-20.1f %-14.1f %-14.1f\n",
                "  ... under 5% drop (GB)",
                lossy_upload_gb(base, drop, retry.max_attempts, "baseline"),
                lossy_upload_gb(v1, drop, retry.max_attempts, "rpol_v1"),
                lossy_upload_gb(v2, drop, retry.max_attempts, "rpol_v2"));
    std::printf("%-26s %.2f%% expected retransmission overhead (retry "
                "budget %d)\n",
                "", 100.0 * (f - 1.0), retry.max_attempts);
  }
  std::printf("%-26s %-20.2f %-14.2f %-14.2f\n", "Storage per worker (GB)",
              gb(base.storage_bytes_per_worker), gb(v1.storage_bytes_per_worker),
              gb(v2.storage_bytes_per_worker));
  std::printf("%-26s $%-19.2f $%-13.2f $%-13.2f\n", "Capital cost (epoch)",
              base.capital.total(), v1.capital.total(), v2.capital.total());
  std::printf("%-26s %-20s %-14.2f %-14.2f\n", "  of which compute ($)", "-",
              v1.capital.compute_usd, v2.capital.compute_usd);
  std::printf("%-26s %-20.2f %-14.2f %-14.2f\n", "  of which comm ($)",
              base.capital.comm_usd, v1.capital.comm_usd, v2.capital.comm_usd);

  std::printf("\nkey ratios (paper): v2 comm %.0f%% below v1 (paper ~42%%); "
              "v2 storage %.0f%% above v1 (paper ~30%%);\n"
              "v2 capital %.0f%% below v1 (paper ~35%%)\n",
              100.0 * (1.0 - static_cast<double>(v2.upload_bytes_total) /
                                 static_cast<double>(v1.upload_bytes_total)),
              100.0 * (static_cast<double>(v2.storage_bytes_per_worker) /
                           static_cast<double>(v1.storage_bytes_per_worker) -
                       1.0),
              100.0 * (1.0 - v2.capital.total() / v1.capital.total()));

  const char* trace_path = "BENCH_table3_obs.jsonl";
  if (obs::Registry::instance().export_jsonl_file(trace_path)) {
    std::printf("\nmetrics registry exported to %s (see `rpol trace`)\n",
                trace_path);
  }

  // rpol.bench.v1 records: the cost model is deterministic, so these values
  // only move when the protocol's cost structure changes — exactly what the
  // bench-diff gate should flag.
  bench::BenchRecorder recorder("bench_table3");
  struct SchemeRow {
    const char* name;
    const core::EpochCostReport* r;
  };
  for (const SchemeRow row : {SchemeRow{"baseline", &base},
                              SchemeRow{"v1", &v1}, SchemeRow{"v2", &v2}}) {
    const std::string p = std::string("resnet50.") + row.name;
    recorder.add(p + ".manager_compute_s", "s", row.r->manager_compute_s());
    recorder.add(p + ".upload_gb", "GB", gb(row.r->upload_bytes_total));
    recorder.add(p + ".storage_gb", "GB", gb(row.r->storage_bytes_per_worker));
    recorder.add(p + ".capital_usd", "USD", row.r->capital.total());
  }

  // Live-telemetry overhead: the same counter/histogram workload with the
  // background flusher off vs on (1 ms cadence — far hotter than the 1 s
  // default, an upper bound on the sampling tax). The hot path is identical
  // in both arms (relaxed atomics); the flusher only adds contention on the
  // registry mutex while it samples. Wall-clock, so advisory in bench-diff.
  {
    using clock = std::chrono::steady_clock;
    constexpr int kOps = 200'000;
    const auto workload = [] {
      for (int i = 0; i < kOps; ++i) {
        obs::count("bench.live.counter", 1);
        obs::observe("bench.live.hist_ns", static_cast<std::uint64_t>(i));
      }
    };
    workload();  // warm the metric handles
    const auto t0 = clock::now();
    workload();
    const double off_s = std::chrono::duration<double>(clock::now() - t0).count();

    obs::set_live_enabled(true);
    obs::LiveFlusher::Options options;
    options.path = "BENCH_table3_live.jsonl";
    options.interval = std::chrono::milliseconds(1);
    double on_s = 0.0;
    {
      obs::LiveFlusher flusher(options);
      const auto t1 = clock::now();
      workload();
      on_s = std::chrono::duration<double>(clock::now() - t1).count();
    }
    obs::set_live_enabled(false);
    std::remove(options.path.c_str());

    const double factor = off_s > 0.0 ? on_s / off_s : 1.0;
    std::printf("\nlive-telemetry overhead: %.2fx on a %d-op counter+histogram "
                "workload (flusher at 1 ms)\n",
                factor, kOps);
    recorder.add("obs.live.overhead", "x", factor);
  }

  recorder.write();
  return 0;
}
