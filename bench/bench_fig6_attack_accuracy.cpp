// Figure 6: global-model test accuracy with and without RPoL verification
// under different attack settings.
//
// Pools of 10 workers containing a fraction (10%..90%) of adversaries:
//   * Adv1 — replays the previous global model without training;
//   * Adv2 — trains 10% of the steps and fakes the rest via Eq. (12).
// Schemes: BL (insecure baseline, everything aggregated), RPoLv1, RPoLv2
// (detected submissions excluded from aggregation).
//
// Findings to reproduce: verified pools always beat the baseline; the gap
// grows with the adversary fraction; RPoLv1 and RPoLv2 coincide.
//
// Substitution note (DESIGN.md §1): this protocol-heavy sweep (31 pool
// runs) uses the MLP-on-blobs task; the attack/aggregation dynamics are
// architecture-independent and the conv tasks exercise the same protocol in
// the Fig. 3/5 benches.

#include "bench_util.h"

namespace {
using namespace rpol;

constexpr std::size_t kWorkers = 10;
constexpr std::int64_t kEpochs = 10;

std::vector<core::WorkerSpec> build_workers(std::size_t num_adv, bool replay) {
  const auto devices = sim::all_devices();
  std::vector<core::WorkerSpec> specs;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    core::WorkerSpec spec;
    if (w < num_adv) {
      if (replay) {
        spec.policy = std::make_unique<core::ReplayPolicy>();
      } else {
        // Adv2: 10% of the training steps, rest spoofed (Sec. VII-E).
        spec.policy = std::make_unique<core::SpoofPolicy>(0.1, 0.5);
      }
    } else {
      spec.policy = std::make_unique<core::HonestPolicy>();
    }
    spec.device = devices[w % devices.size()];
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct RunResult {
  double final_accuracy = 0.0;
  std::vector<double> curve;
  std::int64_t total_rejections = 0;
};

RunResult run_pool(const bench::BenchTask& task, core::Scheme scheme,
                   std::size_t num_adv, bool replay) {
  core::PoolConfig cfg;
  cfg.scheme = scheme;
  cfg.hp = task.hp;
  cfg.epochs = kEpochs;
  cfg.samples_q = 3;
  cfg.seed = 2024;
  core::MiningPool pool(cfg, task.factory, task.dataset, task.split.test,
                        build_workers(num_adv, replay));
  const core::PoolRunReport report = pool.run();
  RunResult result;
  result.final_accuracy = report.final_accuracy;
  for (const auto& e : report.epochs) {
    result.curve.push_back(e.test_accuracy);
    result.total_rejections += e.rejected_count;
  }
  return result;
}

void run_attack_sweep(const bench::BenchTask& task, bool replay,
                      const char* label) {
  std::printf("\n[%s] final accuracy after %lld epochs (10 workers)\n", label,
              static_cast<long long>(kEpochs));
  std::printf("%-10s %-14s %-14s %-14s %-12s\n", "adv frac", "BL (insecure)",
              "RPoLv1", "RPoLv2", "rejections/epoch");
  for (const std::size_t num_adv : {1u, 3u, 5u, 7u, 9u}) {
    const RunResult bl = run_pool(task, core::Scheme::kBaseline, num_adv, replay);
    const RunResult v1 = run_pool(task, core::Scheme::kRPoLv1, num_adv, replay);
    const RunResult v2 = run_pool(task, core::Scheme::kRPoLv2, num_adv, replay);
    std::printf("%-10.0f %-14.4f %-14.4f %-14.4f %.1f\n",
                100.0 * static_cast<double>(num_adv) / kWorkers,
                bl.final_accuracy, v1.final_accuracy, v2.final_accuracy,
                static_cast<double>(v2.total_rejections) / kEpochs);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 6 — global model accuracy under Adv1/Adv2, BL vs RPoLv1 vs RPoLv2",
      "Sec. VII-E Fig. 6: verified pools preserve accuracy; gap grows with "
      "the adversary fraction; v1 == v2");

  const double bench_t0 = bench::now_seconds();
  const auto task = bench::make_mlp_task(6006, /*steps=*/8, /*interval=*/2);

  // Honest reference (no adversaries).
  const RunResult honest = run_pool(*task, core::Scheme::kBaseline, 0, false);
  std::printf("\nhonest pool reference accuracy: %.4f\n", honest.final_accuracy);
  std::printf("epoch curve:");
  for (const double a : honest.curve) std::printf(" %.3f", a);
  std::printf("\n");

  run_attack_sweep(*task, /*replay=*/true, "Adv1: replay previous global model");
  run_attack_sweep(*task, /*replay=*/false, "Adv2: 10% training + Eq.(12) spoof");

  // One detailed curve (50% Adv2) to show the per-epoch divergence.
  std::printf("\n[detail] accuracy per epoch at 50%% Adv2\n");
  const RunResult bl = run_pool(*task, core::Scheme::kBaseline, 5, false);
  const RunResult v2 = run_pool(*task, core::Scheme::kRPoLv2, 5, false);
  std::printf("%-8s %-12s %-12s\n", "epoch", "BL_Adv2", "RPoLv2");
  for (std::size_t e = 0; e < bl.curve.size(); ++e) {
    std::printf("%-8zu %-12.4f %-12.4f\n", e + 1, bl.curve[e], v2.curve[e]);
  }

  bench::BenchRecorder recorder("bench_fig6");
  recorder.add("honest_pool.final_acc", "acc", honest.final_accuracy,
               /*higher_is_better=*/true);
  recorder.add("adv2_50pct.v2.final_acc", "acc", v2.final_accuracy,
               /*higher_is_better=*/true);
  recorder.add("wall_s", "s", bench::now_seconds() - bench_t0);
  recorder.write();
  return 0;
}
