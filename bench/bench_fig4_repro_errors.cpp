// Figure 4 (+ Sec. VII-C sweeps): factors affecting DNN training
// reproduction errors.
//
// Reproduced findings:
//   1. errors exist even for the same task on the same GPU (different runs)
//      and grow slightly with GPU performance;
//   2. cross-GPU pairs show larger errors, largest for the top-2 pair
//      (G3090, GA10);
//   3. errors across i.i.d. sub-datasets are near and pass a KS normality
//      test;
//   4. errors differ across optimizers (SGDM / RMSprop / Adam) and epochs
//      but the structure holds within an (epoch, optimizer) cell;
//   5. errors grow ~linearly with the checkpoint interval.

#include "bench_util.h"
#include "core/calibrate.h"
#include "sim/stats.h"

namespace {
using namespace rpol;

struct Setup {
  bench::BenchTaskPtr task;
  std::vector<data::DatasetView> parts;  // 5 i.i.d. sub-datasets
  core::TrainState initial;
};

Setup make_setup(nn::OptimizerKind opt = nn::OptimizerKind::kSgdMomentum,
                 std::int64_t interval = 3, float lr = 1e-4F) {
  Setup s;
  // Robust (non-phase-coded) classes, 3200 examples => 5 i.i.d. parts of
  // 640, so a 15-step epoch at batch 32 stays within one pass per part.
  s.task = bench::make_conv_task("resnet18_c10", 808, 15, interval, 3200,
                                 /*phase_coded=*/false);
  // Reproduction-error experiments need the stable-propagation regime
  // (batch 32, small lr, single-pass data, well-separated classes): with
  // tiny batches, aggressive steps, or razor-thin margins, BatchNorm
  // statistics and sharp minima amplify per-step noise chaotically —
  // individual runs then vary by orders of magnitude, where the paper's
  // GPU training accumulates noise near-linearly. lr = 1e-4 keeps the
  // per-step Jacobian close to identity, the regime the paper measures.
  s.task->hp.optimizer = opt;
  s.task->hp.batch_size = 32;
  s.task->hp.learning_rate = lr;
  s.parts = data::shuffle_and_partition(s.task->dataset, 5, 909);
  core::StepExecutor executor(s.task->factory, s.task->hp);
  s.initial = executor.save_state();
  return s;
}

// Mean per-transition reproduction error for sub-dataset `part` between the
// two given device profiles (averaged over `runs` run-seed pairs).
double mean_error(const Setup& s, std::size_t part, const sim::DeviceProfile& a,
                  const sim::DeviceProfile& b, int runs,
                  std::vector<double>* collect = nullptr) {
  double total = 0.0;
  int count = 0;
  for (int r = 0; r < runs; ++r) {
    core::EpochContext ctx;
    ctx.nonce = derive_seed(4040, part * 100 + static_cast<std::uint64_t>(r));
    ctx.initial = s.initial;
    ctx.dataset = &s.parts[part];
    const auto errs = core::measure_reproduction_errors(
        s.task->factory, s.task->hp, ctx, a,
        derive_seed(1, part * 1000 + static_cast<std::uint64_t>(r)), b,
        derive_seed(2, part * 1000 + static_cast<std::uint64_t>(r)));
    for (const double e : errs) {
      total += e;
      ++count;
      if (collect != nullptr) collect->push_back(e);
    }
  }
  return total / count;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 4 — reproduction errors: GPU models, i.i.d. data, optimizers, "
      "checkpoint interval",
      "Sec. VII-C Fig. 4 + text: error trends across hardware and settings");

  const double bench_t0 = bench::now_seconds();
  bench::BenchRecorder recorder("bench_fig4");
  const auto devices = sim::all_devices();  // G3090, GA10, GP100, GT4

  // (1)+(2): device-pair matrix, averaged over the 5 i.i.d. parts.
  {
    Setup s = make_setup();
    std::printf("\n[Fig. 4] mean reproduction error (x1e-3) per device pair "
                "(MiniResNet18, 5 i.i.d. parts)\n");
    std::printf("%-10s", "");
    for (const auto& d : devices) std::printf("%12s", d.name.c_str());
    std::printf("\n");
    double top2 = 0.0, max_other = 0.0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      std::printf("%-10s", devices[i].name.c_str());
      for (std::size_t j = 0; j < devices.size(); ++j) {
        if (j < i) {
          std::printf("%12s", "-");
          continue;
        }
        double total = 0.0;
        for (std::size_t part = 0; part < s.parts.size(); ++part) {
          total += mean_error(s, part, devices[i], devices[j], 2);
        }
        const double avg = total / static_cast<double>(s.parts.size());
        std::printf("%12.4f", 1e3 * avg);
        if ((devices[i].name == "G3090" && devices[j].name == "GA10")) {
          top2 = avg;
        } else if (i != j) {
          max_other = std::max(max_other, avg);
        }
      }
      std::printf("\n");
    }
    std::printf("finding 2: top-2 pair (G3090,GA10) error %.4fe-3 vs max other "
                "cross-pair %.4fe-3 -> %s\n",
                1e3 * top2, 1e3 * max_other,
                top2 >= max_other ? "largest (matches paper)" : "NOT largest");
    recorder.add("repro_error.g3090_ga10.mean", "l2", top2);
  }

  // (3): errors across i.i.d. sub-datasets + KS normality.
  {
    Setup s = make_setup();
    std::printf("\n[Fig. 4] per-sub-dataset mean error (x1e-3), G3090 vs GA10\n");
    std::vector<double> per_task_means;
    for (std::size_t part = 0; part < s.parts.size(); ++part) {
      const double m =
          mean_error(s, part, sim::device_g3090(), sim::device_ga10(), 2);
      per_task_means.push_back(m);
      std::printf("  D_%zu: %.4f\n", part + 1, 1e3 * m);
    }
    std::printf("  spread hi/lo = %.2f (near => i.i.d. parts comparable)\n",
                sim::max_value(per_task_means) / sim::min_value(per_task_means));
    // Normality of per-checkpoint errors pooled across the i.i.d.
    // sub-datasets — the statistic the paper KS-tests. A longer epoch
    // (30 steps => 10 transitions x 5 parts = 50 samples) gives the test
    // resolution.
    auto long_task = bench::make_conv_task("resnet18_c10", 808, 30, 3, 6400,
                                           /*phase_coded=*/false);
    long_task->hp.batch_size = 32;
    long_task->hp.learning_rate = 1e-4F;
    const auto long_parts =
        data::shuffle_and_partition(long_task->dataset, 5, 909);
    core::StepExecutor long_exec(long_task->factory, long_task->hp);
    std::vector<double> pooled;
    for (std::size_t part = 0; part < long_parts.size(); ++part) {
      core::EpochContext ctx;
      ctx.nonce = derive_seed(5050, part);
      ctx.initial = long_exec.save_state();
      ctx.dataset = &long_parts[part];
      const auto errs = core::measure_reproduction_errors(
          long_task->factory, long_task->hp, ctx, sim::device_g3090(),
          derive_seed(7, part), sim::device_ga10(), derive_seed(8, part));
      pooled.insert(pooled.end(), errs.begin(), errs.end());
    }
    const auto ks = sim::ks_normality_test(pooled);
    std::printf("  KS normality over %zu pooled checkpoint errors: stat=%.3f "
                "p=%.3f -> %s\n",
                pooled.size(), ks.statistic, ks.p_value,
                ks.normal_at_5pct ? "normal at 5% (matches paper)"
                                  : "NOT normal");
  }

  // (4): optimizer sweep.
  {
    std::printf("\n[Sec. VII-C] mean error (x1e-3) by optimizer (G3090 vs GA10)\n");
    struct OptCase {
      nn::OptimizerKind kind;
      float lr;  // per-optimizer standard learning rates
    };
    for (const OptCase oc : {OptCase{nn::OptimizerKind::kSgdMomentum, 1e-4F},
                             OptCase{nn::OptimizerKind::kRmsProp, 1e-4F},
                             OptCase{nn::OptimizerKind::kAdam, 1e-4F}}) {
      Setup s = make_setup(oc.kind, 3, oc.lr);
      const double m =
          mean_error(s, 0, sim::device_g3090(), sim::device_ga10(), 2);
      std::printf("  %-10s %.4f\n", nn::optimizer_kind_name(oc.kind).c_str(),
                  1e3 * m);
    }
  }

  // (5): checkpoint-interval sweep (expect ~linear growth).
  {
    std::printf("\n[Sec. VII-C] mean error (x1e-3) vs checkpoint interval\n");
    double first = 0.0;
    for (const std::int64_t interval : {1, 2, 3, 5}) {
      Setup s = make_setup(nn::OptimizerKind::kSgdMomentum, interval);
      const double m =
          mean_error(s, 0, sim::device_g3090(), sim::device_ga10(), 2);
      if (interval == 1) first = m;
      std::printf("  interval %lld: %.4f (x%.2f of interval-1)\n",
                  static_cast<long long>(interval), 1e3 * m, m / first);
    }
    std::printf("  (paper: errors increase linearly as the interval grows)\n");
  }
  recorder.add("wall_s", "s", bench::now_seconds() - bench_t0);
  recorder.write();
  return 0;
}
