// Table I: AMLayer performance — one-epoch training time, final accuracy,
// and accuracy under the address-replacing attack (10 random addresses,
// mean +/- sd).
//
// Shape to reproduce: training-time inflation of a few percent, accuracy
// delta under 1 pp, and a dramatic accuracy collapse when a thief swaps in
// an AMLayer encoding a different address.

#include <cmath>

#include "bench_util.h"
#include "chain/blockchain.h"
#include "core/amlayer.h"

namespace {
using namespace rpol;

struct TaskResult {
  double origin_epoch_s = 0.0;
  double amlayer_epoch_s = 0.0;
  double origin_acc = 0.0;
  double amlayer_acc = 0.0;
  double attack_acc_mean = 0.0;
  double attack_acc_sd = 0.0;
};

TaskResult run_task(const std::string& which, std::int64_t epochs) {
  const auto task = bench::make_conv_task(which, /*seed=*/505, 12, 3);
  const Address owner = Address::from_seed(77);
  const core::AmLayerConfig am_cfg;
  const nn::ModelFactory base = task->factory;
  const nn::ModelFactory with_am = [base, am_cfg, owner]() {
    nn::Model m = base();
    m.prepend(std::make_unique<core::AmLayer>(owner, am_cfg));
    return m;
  };

  TaskResult result;
  const core::DeterministicSelector selector(derive_seed(505, 0x7AB1E));

  // Origin (no AMLayer).
  {
    core::StepExecutor executor(base, task->hp);
    const double t0 = bench::now_seconds();
    for (std::int64_t e = 0; e < epochs; ++e) {
      executor.run_steps(e * task->hp.steps_per_epoch, task->hp.steps_per_epoch,
                         task->split.train, selector, nullptr);
    }
    result.origin_epoch_s = (bench::now_seconds() - t0) / epochs;
    result.origin_acc = executor.evaluate(task->split.test);
  }

  // With AMLayer + the address-replacing attack on the trained model.
  {
    core::StepExecutor executor(with_am, task->hp);
    const double t0 = bench::now_seconds();
    for (std::int64_t e = 0; e < epochs; ++e) {
      executor.run_steps(e * task->hp.steps_per_epoch, task->hp.steps_per_epoch,
                         task->split.train, selector, nullptr);
    }
    result.amlayer_epoch_s = (bench::now_seconds() - t0) / epochs;
    result.amlayer_acc = executor.evaluate(task->split.test);

    // Attack: replace the owner's AMLayer with ones encoding 10 random
    // addresses; the thief's model is evaluated with each (Sec. VII-B).
    chain::BlockProposal proposal;
    proposal.proposer = owner;
    proposal.base_factory = base;
    proposal.amlayer_config = am_cfg;
    proposal.model_state = executor.model().state_vector();

    std::vector<double> attack_accs;
    for (std::uint64_t a = 0; a < 10; ++a) {
      const Address thief = Address::from_seed(1000 + a);
      attack_accs.push_back(chain::evaluate_proposal_accuracy(
          proposal, thief, task->split.test, task->hp));
    }
    double sum = 0.0;
    for (const double v : attack_accs) sum += v;
    result.attack_acc_mean = sum / attack_accs.size();
    double sq = 0.0;
    for (const double v : attack_accs) {
      sq += (v - result.attack_acc_mean) * (v - result.attack_acc_mean);
    }
    result.attack_acc_sd = std::sqrt(sq / (attack_accs.size() - 1));
  }
  return result;
}

void print_row(const char* label, const TaskResult& r) {
  std::printf("%-28s %-10s %-14.3f %-12.2f %s\n", label, "Origin",
              r.origin_epoch_s, 100.0 * r.origin_acc, "-");
  char attack[64];
  std::snprintf(attack, sizeof attack, "%.2f%% +/- %.2f%%",
                100.0 * r.attack_acc_mean, 100.0 * r.attack_acc_sd);
  std::printf("%-28s %-10s %-14.3f %-12.2f %s\n", "", "AMLayer",
              r.amlayer_epoch_s, 100.0 * r.amlayer_acc, attack);
  std::printf("%-28s   epoch-time inflation %.1f%%, accuracy delta %+.2f pp, "
              "attack drop %.1f pp\n",
              "", 100.0 * (r.amlayer_epoch_s / r.origin_epoch_s - 1.0),
              100.0 * (r.amlayer_acc - r.origin_acc),
              100.0 * (r.amlayer_acc - r.attack_acc_mean));
}

}  // namespace

int main() {
  bench::print_header(
      "Table I — AMLayer: one-epoch time, accuracy, address-replacing attack",
      "Sec. VII-B Table I (paper: +3.5%/+1.2% time, -0.34/-0.22 pp accuracy, "
      "attack accuracy 24.54%/6.23%)");

  std::printf("\n%-28s %-10s %-14s %-12s %s\n", "Task", "Variant",
              "epoch time(s)", "accuracy(%)", "accuracy w/ attack");
  const TaskResult a = run_task("resnet18_c10", 20);
  const TaskResult b = run_task("resnet50_c100", 20);
  print_row("A: MiniResNet18/synthC10", a);
  print_row("B: MiniResNet50/synthC100", b);

  bench::BenchRecorder recorder("bench_table1");
  recorder.add("taskA.epoch_time_inflation_pct", "pct",
               100.0 * (a.amlayer_epoch_s / a.origin_epoch_s - 1.0));
  recorder.add("taskA.attack_drop_pp", "pp",
               100.0 * (a.amlayer_acc - a.attack_acc_mean),
               /*higher_is_better=*/true);
  recorder.add("taskB.epoch_time_inflation_pct", "pct",
               100.0 * (b.amlayer_epoch_s / b.origin_epoch_s - 1.0));
  recorder.add("taskB.attack_drop_pp", "pp",
               100.0 * (b.amlayer_acc - b.attack_acc_mean),
               /*higher_is_better=*/true);
  recorder.write();
  std::printf(
      "\nNote: epoch times are measured CPU wall-clock of the Mini models; the\n"
      "paper's absolute GPU seconds live in Table II/III's real-scale model.\n");
  return 0;
}
