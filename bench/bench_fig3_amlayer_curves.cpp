// Figure 3: testing-accuracy curves of the DNN tasks with and without the
// address-encoded AMLayer.
//
// Tasks at Mini scale (DESIGN.md §1): Task A = MiniResNet18 on a synthetic
// CIFAR-10-like set, Task B = MiniResNet50 on a synthetic CIFAR-100-like
// set. The paper's finding to reproduce: the two curves nearly coincide —
// the frozen invertible layer costs almost no accuracy at any epoch.

#include "bench_util.h"
#include "core/amlayer.h"

namespace {
using namespace rpol;

std::vector<double> accuracy_curve(const bench::BenchTask& task,
                                   bool with_amlayer, std::int64_t epochs,
                                   std::uint64_t seed) {
  nn::ModelFactory factory = task.factory;
  if (with_amlayer) {
    const Address address = Address::from_seed(seed);
    const nn::ModelFactory base = factory;
    factory = [base, address]() {
      nn::Model m = base();
      m.prepend(std::make_unique<core::AmLayer>(address, core::AmLayerConfig{}));
      return m;
    };
  }
  core::StepExecutor executor(factory, task.hp);
  const core::DeterministicSelector selector(derive_seed(seed, 0xF16));
  std::vector<double> curve;
  for (std::int64_t e = 0; e < epochs; ++e) {
    executor.run_steps(e * task.hp.steps_per_epoch, task.hp.steps_per_epoch,
                       task.split.train, selector, nullptr);
    curve.push_back(executor.evaluate(task.split.test));
  }
  return curve;
}

// Returns the converged accuracy delta (AMLayer minus origin, in fractional
// accuracy) for the bench registry.
double run_task(const std::string& which, const char* label,
                std::int64_t epochs) {
  const auto task = bench::make_conv_task(which, /*seed=*/404, 12, 3);
  std::printf("\nTask %s: %s (%lld epochs x %lld steps)\n", label,
              task->name.c_str(), static_cast<long long>(epochs),
              static_cast<long long>(task->hp.steps_per_epoch));
  const double t0 = bench::now_seconds();
  const auto origin = accuracy_curve(*task, false, epochs, 11);
  const auto amlayer = accuracy_curve(*task, true, epochs, 11);
  std::printf("%-8s %-12s %-12s %-10s\n", "epoch", "Origin", "AMLayer", "delta");
  for (std::size_t e = 0; e < origin.size(); ++e) {
    if (e % 2 == 1 && e + 1 != origin.size()) continue;  // print every 2nd
    std::printf("%-8zu %-12.4f %-12.4f %+.4f\n", e + 1, origin[e], amlayer[e],
                amlayer[e] - origin[e]);
  }
  // Average the last third of the curve: at Mini scale (128-example test
  // set) single-epoch readings carry several pp of noise; the paper's
  // claim is about the converged level.
  auto tail_mean = [](const std::vector<double>& curve) {
    const std::size_t from = curve.size() - curve.size() / 3;
    double sum = 0.0;
    for (std::size_t i = from; i < curve.size(); ++i) sum += curve[i];
    return sum / static_cast<double>(curve.size() - from);
  };
  std::printf("converged accuracy (mean of last third): origin %.2f%%, AMLayer "
              "%.2f%% (delta %+.2f pp; paper: -0.34 pp / -0.22 pp)  [%.1fs]\n",
              100.0 * tail_mean(origin), 100.0 * tail_mean(amlayer),
              100.0 * (tail_mean(amlayer) - tail_mean(origin)),
              bench::now_seconds() - t0);
  return tail_mean(amlayer) - tail_mean(origin);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3 — testing accuracy with vs without AMLayer",
      "Sec. VII-B Fig. 3: accuracy curves nearly coincide for both tasks");
  const double t0 = bench::now_seconds();
  const double delta_a = run_task("resnet18_c10", "A (ResNet18-family / 10-class)", 24);
  const double delta_b = run_task("resnet50_c100", "B (ResNet50-family / 20-class)", 24);
  bench::BenchRecorder recorder("bench_fig3");
  recorder.add("taskA.amlayer_acc_delta_pp", "pp", 100.0 * delta_a,
               /*higher_is_better=*/true);
  recorder.add("taskB.amlayer_acc_delta_pp", "pp", 100.0 * delta_b,
               /*higher_is_better=*/true);
  recorder.add("wall_s", "s", bench::now_seconds() - t0);
  recorder.write();
  return 0;
}
