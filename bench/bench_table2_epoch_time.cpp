// Table II: one-epoch training time of Baseline / RPoLv1 / RPoLv2 for
// ResNet50 and VGG16 on ImageNet with 10 and 100 workers.
//
// Times come from the analytic real-scale cost model (core/costing.h):
// real model sizes and FLOPs, the paper's WAN setting (manager 10 Gbps,
// workers 100 Mbps), device throughput calibrated to the paper's measured
// per-image cost, and the protocol's exact message structure. The
// double-check rate is 0 (measured in Fig. 5 / Table III experiments).
//
// Shape to reproduce (paper Table II):
//   * epoch time drops as the pool grows 10 -> 100;
//   * RPoLv1 > RPoLv2 > Baseline;
//   * for compute-bound ResNet50 the LSH optimization helps mildly, for
//     communication-bound VGG16 RPoLv2 is ~36% faster than RPoLv1.

#include "bench_util.h"
#include "core/costing.h"

namespace {
using namespace rpol;

core::CostScenario make_scenario(const sim::RealModelSpec& model,
                                 std::size_t workers, core::Scheme scheme) {
  core::CostScenario s;
  s.scheme = scheme;
  s.model = model;
  s.dataset = sim::real_imagenet();
  s.num_workers = workers;
  return s;
}

void run_model(const sim::RealModelSpec& model, bench::BenchRecorder& recorder) {
  std::printf("\n%s (%s, %.1f MB weights)\n", model.name.c_str(), "ImageNet",
              static_cast<double>(model.weight_bytes) / (1024.0 * 1024.0));
  std::printf("%-12s %-22s %-12s %-12s %-18s\n", "# workers",
              "Baseline (insecure)", "RPoLv1", "RPoLv2", "v2 vs v1 speedup");
  for (const std::size_t workers : {10u, 100u}) {
    const auto base = core::estimate_epoch_cost(
        make_scenario(model, workers, core::Scheme::kBaseline));
    const auto v1 = core::estimate_epoch_cost(
        make_scenario(model, workers, core::Scheme::kRPoLv1));
    const auto v2 = core::estimate_epoch_cost(
        make_scenario(model, workers, core::Scheme::kRPoLv2));
    std::printf("%-12zu %-22.0f %-12.0f %-12.0f %.0f%%\n", workers,
                base.epoch_wall_s, v1.epoch_wall_s, v2.epoch_wall_s,
                100.0 * (v1.epoch_wall_s - v2.epoch_wall_s) / v1.epoch_wall_s);
    const std::string key = model.name + "." + std::to_string(workers) + "w";
    recorder.add(key + ".baseline.epoch_s", "s", base.epoch_wall_s);
    recorder.add(key + ".v1.epoch_s", "s", v1.epoch_wall_s);
    recorder.add(key + ".v2.epoch_s", "s", v2.epoch_wall_s);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Table II — one-epoch training time (s) of different schemes",
      "Sec. VII-E Table II (paper: ResNet50 307/369/348 @10, 37/99/78 @100; "
      "VGG16 282/548/429 @10, 66/332/212 @100)");
  bench::BenchRecorder recorder("bench_table2");
  run_model(sim::real_resnet50(), recorder);
  run_model(sim::real_vgg16(), recorder);
  recorder.write();
  std::printf(
      "\nModel: worker wall time = download + train + (v2: LSH hashing) +\n"
      "upload(update+commitment+proofs) + manager verification re-execution.\n"
      "Calibration (v2) overlaps the previous epoch and is charged to Table III\n"
      "compute, matching the paper's accounting.\n");
  return 0;
}
