// Theorems 2-3: sampling-count tables and attacker economics.
//
// Regenerates the paper's quoted numbers: q = 3 / 47 samples for honesty
// ratios 10% / 90% at 1% soundness error with Pr_lsh(beta) = 5% (Theorem 2),
// q = 2 / 3 under the economic criterion with C_train = 0.88 (Theorem 3),
// and the q = 3 soundness error of ~74.12%. A Monte-Carlo column validates
// the closed-form soundness bound against the real sampling mechanism.

#include <cmath>

#include "bench_util.h"
#include "core/economics.h"
#include "core/verifier.h"

namespace {
using namespace rpol;
using namespace rpol::core;

double simulate_evasion(double honesty, std::int64_t transitions, std::int64_t q,
                        int trials) {
  const std::int64_t honest_count =
      static_cast<std::int64_t>(std::round(honesty * transitions));
  int evasions = 0;
  for (int t = 0; t < trials; ++t) {
    Bytes b;
    append_u64(b, static_cast<std::uint64_t>(t));
    bool caught = false;
    for (const auto s : sample_transitions(7, sha256(b), transitions, q)) {
      if (s >= honest_count) caught = true;
    }
    if (!caught) ++evasions;
  }
  return static_cast<double>(evasions) / trials;
}

}  // namespace

int main() {
  bench::print_header("Theorems 2-3 — sampling counts and attacker economics",
                      "Sec. VI: Eq. (8) soundness sampling, Eq. (9)-(11) "
                      "economic sampling, quoted q values");

  const double pr_beta = 0.05;
  std::printf("\n[Theorem 2] samples q for target soundness error (Pr_lsh(beta)=5%%)\n");
  std::printf("%-12s %-14s %-14s %-14s\n", "honesty h_A", "Pr_err=5%", "Pr_err=1%",
              "Pr_err=0.1%");
  for (const double h : {0.10, 0.30, 0.50, 0.70, 0.90}) {
    std::printf("%-12.2f %-14lld %-14lld %-14lld\n", h,
                static_cast<long long>(required_samples(0.05, h, pr_beta)),
                static_cast<long long>(required_samples(0.01, h, pr_beta)),
                static_cast<long long>(required_samples(0.001, h, pr_beta)));
  }
  std::printf("Paper quote: q=3 at h=10%%, q=47 at h=90%% for Pr_err=1%% -> got %lld / %lld\n",
              static_cast<long long>(required_samples(0.01, 0.10, pr_beta)),
              static_cast<long long>(required_samples(0.01, 0.90, pr_beta)));

  std::printf("\n[Theorem 2] soundness error vs q (h=90%%), closed form vs Monte-Carlo*\n");
  std::printf("  *MC uses 20 transitions and Pr_lsh(beta)=0, so its bound is h^q\n");
  std::printf("%-6s %-18s %-18s\n", "q", "(h+(1-h)p_b)^q", "simulated h^q");
  for (const std::int64_t q : {1, 2, 3, 5, 10, 20, 47}) {
    std::printf("%-6lld %-18.4f %-18.4f\n", static_cast<long long>(q),
                soundness_error(0.90, pr_beta, q),
                simulate_evasion(0.90, 20, q, 20000));
  }
  std::printf("Paper quote: soundness error ~74.12%% at q=3 -> got %.2f%%\n",
              100.0 * soundness_error(0.90, pr_beta, 3));

  std::printf("\n[Theorem 3] economic sampling (reward=1, C_train=0.88, C_spoof=0)\n");
  std::printf("%-12s %-10s %-22s %-22s\n", "honesty h_A", "q_econ",
              "net gain @ q_econ", "net gain @ q_econ-1");
  EconomicParams params;
  for (const double h : {0.10, 0.30, 0.50, 0.70, 0.90}) {
    const std::int64_t q = economic_samples(h, params);
    const double gain = expected_net_gain(h, q, params);
    const double gain_less =
        q > 1 ? expected_net_gain(h, q - 1, params) : std::nan("");
    std::printf("%-12.2f %-10lld %-22.4f %-22.4f\n", h, static_cast<long long>(q),
                gain, gain_less);
  }
  std::printf("Paper quote: q=2 at h=10%%, q=3 at h=90%% -> got %lld / %lld\n",
              static_cast<long long>(economic_samples(0.10, params)),
              static_cast<long long>(economic_samples(0.90, params)));

  std::printf("\n[Theorem 3] honest worker net gain (h=1, q=3): %.4f  (positive => "
              "honesty pays)\n",
              expected_net_gain(1.0, 3, params));

  bench::BenchRecorder recorder("bench_theory");
  recorder.add("thm2.q.h10.err1pct", "samples",
               static_cast<double>(required_samples(0.01, 0.10, pr_beta)));
  recorder.add("thm2.q.h90.err1pct", "samples",
               static_cast<double>(required_samples(0.01, 0.90, pr_beta)));
  recorder.add("thm2.soundness_err.q3.h90", "prob",
               soundness_error(0.90, pr_beta, 3));
  recorder.add("thm3.q_econ.h90", "samples",
               static_cast<double>(economic_samples(0.90, params)));
  recorder.write();
  return 0;
}
