#include "bench_util.h"

#include <cstdlib>
#include <stdexcept>

#include "obs/mem.h"
#include "runtime/thread_pool.h"

namespace rpol::bench {

namespace {

// `threads` == 0 falls back to the ambient pool size; records measured under
// a temporarily overridden thread count must pass that count explicitly or
// the registry stamps the restored ambient value (the ".4t says threads:1"
// bug this parameter exists to prevent).
obs::BenchEnv bench_env(int threads) {
  obs::BenchEnv env;
  env.threads = threads > 0 ? threads : runtime::threads();
#ifdef NDEBUG
  env.build = std::string("release");
#else
  env.build = std::string("debug");
#endif
#ifdef __VERSION__
  env.compiler = std::string(__VERSION__);
#else
  env.compiler = std::string("unknown");
#endif
  // Memory column: the process peak at record time (0 off Linux), so every
  // rpol.bench.v1 record carries its RSS cost next to its time cost.
  env.peak_rss_bytes = obs::read_proc_rss().vm_hwm_bytes;
  return env;
}

}  // namespace

void BenchRecorder::add(const std::string& name, const std::string& unit,
                        double value, bool higher_is_better, int threads) {
  obs::BenchRecord r;
  r.bench = bench_;
  r.name = name;
  r.unit = unit;
  r.value = value;
  r.higher_is_better = higher_is_better;
  r.env = bench_env(threads);
  report_.records.push_back(std::move(r));
}

void BenchRecorder::add_latency(const std::string& name,
                                const LatencySummary& summary, int threads) {
  obs::BenchRecord r;
  r.bench = bench_;
  r.name = name;
  r.unit = std::string("s");
  r.value = summary.p50;
  r.higher_is_better = false;
  r.has_stats = true;
  r.stats = {summary.best, summary.p50, summary.p95, summary.worst};
  r.env = bench_env(threads);
  report_.records.push_back(std::move(r));
}

std::string BenchRecorder::write() const {
  const char* override_path = std::getenv("RPOL_BENCH_FILE");
  const std::string path = (override_path != nullptr && *override_path != '\0')
                               ? override_path
                               : "BENCH_" + bench_ + ".json";
  obs::BenchReport merged;
  try {
    merged = obs::load_bench_file(path);
  } catch (const std::exception&) {
    // No prior registry at this path (or unreadable) — start fresh.
  }
  merged = obs::merge_bench_reports(merged, report_);
  if (!obs::write_bench_json_file(merged, path)) return "";
  std::printf("bench registry: %zu record(s) -> %s\n", report_.records.size(),
              path.c_str());
  return path;
}

BenchTaskPtr make_conv_task(const std::string& which, std::uint64_t seed,
                            std::int64_t steps_per_epoch,
                            std::int64_t checkpoint_interval,
                            std::int64_t num_examples, bool phase_coded) {
  // Phase-coded classes on a shared carrier: small margins relative to the
  // input norm, so trained models are fragile to input remappings — the
  // CIFAR-like regime where the AMLayer address-replacing attack collapses
  // accuracy (Table I). See data/synthetic.h.
  data::SyntheticImageConfig data_cfg;
  data_cfg.channels = 3;
  data_cfg.image_size = 8;
  data_cfg.num_examples = num_examples;
  data_cfg.phase_coded = phase_coded;
  if (phase_coded) {
    data_cfg.noise_stddev = 0.2F;
    data_cfg.min_frequency = 2.0F;
    data_cfg.max_frequency = 2.0F;
  } else {
    data_cfg.noise_stddev = 0.8F;
    data_cfg.min_frequency = 0.5F;
    data_cfg.max_frequency = 3.0F;
  }
  data_cfg.seed = derive_seed(seed, 0xDA);

  nn::ModelConfig model_cfg;
  model_cfg.image_size = 8;
  model_cfg.width = 4;
  model_cfg.seed = derive_seed(seed, 0x30);

  nn::ModelFactory factory;
  std::string name;
  if (which == "resnet18_c10") {
    data_cfg.num_classes = 10;
    model_cfg.num_classes = 10;
    factory = nn::mini_resnet18_factory(model_cfg, 1);
    name = "MiniResNet18 / synth-CIFAR10";
  } else if (which == "resnet18_c100") {
    data_cfg.num_classes = 20;
    data_cfg.image_size = 12;
    model_cfg.num_classes = 20;
    model_cfg.image_size = 12;
    factory = nn::mini_resnet18_factory(model_cfg, 1);
    name = "MiniResNet18 / synth-CIFAR100";
  } else if (which == "resnet50_c10") {
    data_cfg.num_classes = 10;
    model_cfg.num_classes = 10;
    factory = nn::mini_resnet50_factory(model_cfg, {1, 1, 1, 1});
    name = "MiniResNet50 / synth-CIFAR10";
  } else if (which == "resnet50_c100") {
    data_cfg.num_classes = 20;
    data_cfg.image_size = 12;
    model_cfg.num_classes = 20;
    model_cfg.image_size = 12;
    factory = nn::mini_resnet50_factory(model_cfg, {1, 1, 1, 1});
    name = "MiniResNet50 / synth-CIFAR100";
  } else if (which == "vgg16_c10") {
    data_cfg.num_classes = 10;
    model_cfg.num_classes = 10;
    factory = nn::mini_vgg16_factory(model_cfg);
    name = "MiniVGG16 / synth-CIFAR10";
  } else {
    throw std::invalid_argument("unknown conv task: " + which);
  }

  core::Hyperparams hp;
  hp.learning_rate = 0.05F;
  hp.batch_size = 16;
  hp.steps_per_epoch = steps_per_epoch;
  hp.checkpoint_interval = checkpoint_interval;

  // The split's views point into the task's own dataset, so the dataset must
  // reach its final address before the split is built.
  auto task = std::make_unique<BenchTask>();
  task->name = name;
  task->dataset = data::make_synthetic_images(data_cfg);
  task->split =
      data::train_test_split(task->dataset, 0.2, derive_seed(seed, 0x51));
  task->factory = std::move(factory);
  task->hp = hp;
  return task;
}

BenchTaskPtr make_mlp_task(std::uint64_t seed, std::int64_t steps_per_epoch,
                           std::int64_t checkpoint_interval) {
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.num_examples = 4096;
  data_cfg.features = 32;
  data_cfg.class_separation = 1.1F;
  data_cfg.noise_stddev = 1.1F;
  data_cfg.seed = derive_seed(seed, 0xDB);

  core::Hyperparams hp;
  hp.learning_rate = 0.015F;
  hp.batch_size = 32;
  hp.steps_per_epoch = steps_per_epoch;
  hp.checkpoint_interval = checkpoint_interval;

  auto task = std::make_unique<BenchTask>();
  task->name = "MLP / synth-blobs";
  task->dataset = data::make_synthetic_blobs(data_cfg);
  task->split =
      data::train_test_split(task->dataset, 0.2, derive_seed(seed, 0x52));
  task->factory = nn::mlp_factory(32, {32, 16}, 10, derive_seed(seed, 0x31));
  task->hp = hp;
  return task;
}

}  // namespace rpol::bench
