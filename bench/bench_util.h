// Shared helpers for the experiment-reproduction benches: task builders
// matching the paper's setups (at Mini scale) and table formatting.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (Sec. VII); see DESIGN.md's per-experiment index. Binaries
// print self-describing text tables so `for b in build/bench/*; do $b; done`
// yields a full experiment log.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "obs/benchreg.h"
#include "sim/stats.h"

namespace rpol::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Quantile summary over repeated timing samples. Quantiles come from
// sim::percentile so every number called "p50"/"p95" in this repo — bench
// tables and the trace analyzer alike — uses the same R-7 definition.
struct LatencySummary {
  double best = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double worst = 0.0;
};

// Empty input returns all zeros instead of throwing: soak benches in
// network-bound regimes can legitimately end a window with zero completed
// samples, and a summary row of zeros reads better than an aborted bench.
// Sorts ONCE and reads every quantile off the sorted sample
// (sim::percentile_sorted), instead of re-sorting per quantile.
inline LatencySummary summarize_latencies(const std::vector<double>& samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.best = sorted.front();
  s.p50 = sim::percentile_sorted(sorted, 50.0);
  s.p95 = sim::percentile_sorted(sorted, 95.0);
  s.worst = sorted.back();
  return s;
}

// A complete training task: dataset + splits + deterministic model factory.
// Heap-allocated (unique_ptr) so the split's views into the dataset stay
// valid for the task's lifetime.
struct BenchTask {
  std::string name;
  data::Dataset dataset;
  data::TrainTestSplit split;
  nn::ModelFactory factory;
  core::Hyperparams hp;
};

using BenchTaskPtr = std::unique_ptr<BenchTask>;

// "Task A": MiniResNet18 on a synthetic CIFAR-10-like set (10 classes).
// "Task B": MiniResNet50 on a synthetic CIFAR-100-like set (20 classes at
// Mini scale — 100 classes need more capacity than the Mini widths carry).
// The conv tasks run the real residual architectures; the MLP task drives
// protocol-heavy sweeps where architecture is irrelevant (DESIGN.md §1).
// Valid `which`: resnet18_c10, resnet18_c100, resnet50_c10, resnet50_c100,
// vgg16_c10.
// `phase_coded` selects fragile phase-coded classes (needed by the AMLayer
// address-replacing experiments); pass false for the robust random-carrier
// classes used in the reproduction-error experiments, where training must
// stay in the stable noise-propagation regime.
BenchTaskPtr make_conv_task(const std::string& which, std::uint64_t seed,
                            std::int64_t steps_per_epoch = 12,
                            std::int64_t checkpoint_interval = 3,
                            std::int64_t num_examples = 640,
                            bool phase_coded = true);

BenchTaskPtr make_mlp_task(std::uint64_t seed, std::int64_t steps_per_epoch = 20,
                           std::int64_t checkpoint_interval = 5);

// Collects this binary's headline numbers as rpol.bench.v1 records
// (src/obs/benchreg.h) and writes them into the benchmark registry, so the
// human-readable tables gain a machine-checkable counterpart that
// `rpol bench-diff` can gate on. Every record carries the environment
// fingerprint (thread count, build flavor, compiler).
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string bench) : bench_(std::move(bench)) {}

  // Headline scalar; `higher_is_better` steers the bench-diff direction
  // (false for latencies/bytes, true for throughput/accuracy). `threads` is
  // the thread count the measurement RAN WITH; 0 means "the ambient count at
  // add() time", which is only right when the record is added while that
  // configuration is still active. Harnesses that restore the thread count
  // before recording must pass the measurement-time value explicitly.
  void add(const std::string& name, const std::string& unit, double value,
           bool higher_is_better = false, int threads = 0);

  // Latency record: value = p50, full spread kept in stats.
  void add_latency(const std::string& name, const LatencySummary& summary,
                   int threads = 0);

  // Writes to RPOL_BENCH_FILE (or "BENCH_<bench>.json"), overlay-merging
  // over any existing file at that path so several binaries can feed one
  // registry. Returns the path written, "" on failure.
  std::string write() const;

  const obs::BenchReport& report() const { return report_; }

 private:
  std::string bench_;
  obs::BenchReport report_;
};

}  // namespace rpol::bench
