// Mining competition: the paper's headline claim — "RPoL ... helps the
// pool win the mining competition among consensus nodes" (abstract,
// Sec. VII-E).
//
// Three consensus nodes compete over repeated PoUW rounds on the same task
// budget:
//   * a VERIFIED pool (RPoLv2) with 30% freeloading workers,
//   * an UNVERIFIED pool with the same 30% freeloaders,
//   * an individual miner with one worker's worth of compute.
// Each round, every node trains for the same number of epochs, proposes an
// address-encoded model, and the chain pays the proposal with the best
// test accuracy. Expected shape: the verified pool wins the (vast)
// majority of rounds; the individual miner essentially never wins — the
// economic reason pools exist.

#include "bench_util.h"
#include "chain/blockchain.h"
#include "core/amlayer.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace {
using namespace rpol;

constexpr std::size_t kPoolWorkers = 10;
constexpr std::size_t kFreeloaders = 3;
constexpr std::int64_t kEpochsPerRound = 4;

std::vector<core::WorkerSpec> pool_workers(std::uint64_t round) {
  std::vector<core::WorkerSpec> specs;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < kPoolWorkers; ++w) {
    core::WorkerSpec spec;
    if (w < kFreeloaders) {
      spec.policy = std::make_unique<core::ReplayPolicy>();
    } else {
      spec.policy = std::make_unique<core::HonestPolicy>();
    }
    spec.device = devices[(w + round) % devices.size()];
    specs.push_back(std::move(spec));
  }
  return specs;
}

// Trains a pool for the round and returns its final global model accuracy
// probe (the proposal accuracy is re-evaluated by the chain).
std::vector<float> run_pool_round(const bench::BenchTask& task,
                                  core::Scheme scheme, std::uint64_t round) {
  core::PoolConfig cfg;
  cfg.scheme = scheme;
  cfg.hp = task.hp;
  cfg.epochs = kEpochsPerRound;
  cfg.samples_q = 3;
  cfg.seed = 900 + round;
  core::MiningPool pool(cfg, task.factory, task.dataset, task.split.test,
                        pool_workers(round));
  pool.run();
  return pool.global_model();
}

// The individual miner: one honest worker's compute (same per-epoch step
// count as one pool worker, over the whole epoch budget).
std::vector<float> run_individual_round(const bench::BenchTask& task,
                                        std::uint64_t round) {
  core::StepExecutor executor(task.factory, task.hp);
  const core::DeterministicSelector selector(derive_seed(7000, round));
  sim::DeviceExecution device(sim::device_g3090(), derive_seed(7100, round));
  executor.run_steps(0, task.hp.steps_per_epoch * kEpochsPerRound,
                     task.split.train, selector, &device);
  return executor.model().state_vector();
}

}  // namespace

int main() {
  bench::print_header(
      "Mining competition — verified pool vs unverified pool vs individual",
      "Abstract / Sec. VII-E: RPoL 'helps the pool win the mining "
      "competition among consensus nodes'");

  constexpr int kRounds = 8;
  const Address verified_addr = Address::from_seed(1);
  const Address unverified_addr = Address::from_seed(2);
  const Address individual_addr = Address::from_seed(3);

  chain::Blockchain chain;
  int wins_verified = 0, wins_unverified = 0, wins_individual = 0;

  std::printf("\n%-7s %-22s %-14s %-14s %-14s\n", "round", "winner",
              "RPoLv2 pool", "insecure pool", "individual");
  for (int round = 0; round < kRounds; ++round) {
    // Fresh task per round (tasks differ per block in PoUW). High gradient
    // noise + an aggressive learning rate put the task in the regime where
    // the pool's 10x effective batch genuinely helps — the setting in which
    // joining a pool is economically rational at all.
    auto task = std::make_unique<bench::BenchTask>();
    {
      data::SyntheticBlobConfig dc;
      dc.num_classes = 10;
      dc.num_examples = 4096;
      dc.features = 32;
      dc.class_separation = 1.1F;
      dc.noise_stddev = 2.0F;
      dc.seed = derive_seed(5000, static_cast<std::uint64_t>(round));
      task->name = "MLP / noisy blobs";
      task->dataset = data::make_synthetic_blobs(dc);
      task->split = data::train_test_split(task->dataset, 0.2,
                                           derive_seed(5001,
                                                       static_cast<std::uint64_t>(round)));
      task->factory = nn::mlp_factory(32, {32, 16}, 10,
                                      derive_seed(5002,
                                                  static_cast<std::uint64_t>(round)));
      task->hp.learning_rate = 0.05F;
      task->hp.batch_size = 32;
      task->hp.steps_per_epoch = 8;
      task->hp.checkpoint_interval = 2;
    }
    const auto task_id = chain.publish_task(
        "round " + std::to_string(round), 0.8, /*reward=*/100);

    struct Entry {
      Address address;
      std::vector<float> model;
    };
    const std::vector<Entry> entries = {
        {verified_addr, run_pool_round(*task, core::Scheme::kRPoLv2,
                                       static_cast<std::uint64_t>(round))},
        {unverified_addr, run_pool_round(*task, core::Scheme::kBaseline,
                                         static_cast<std::uint64_t>(round))},
        {individual_addr,
         run_individual_round(*task, static_cast<std::uint64_t>(round))},
    };

    // MLP tasks carry no AMLayer (rank-2 inputs); consensus here ranks by
    // accuracy alone, with ownership handled by the proposal address. The
    // conv-task AMLayer flow is exercised in bench_table1/chain tests.
    std::vector<double> accuracies;
    for (const auto& entry : entries) {
      core::StepExecutor evaluator(task->factory, task->hp);
      nn::Model& model = evaluator.model();
      model.load_state_vector(entry.model);
      accuracies.push_back(evaluator.evaluate(task->split.test));
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < accuracies.size(); ++i) {
      if (accuracies[i] > accuracies[best]) best = i;
    }
    const char* names[] = {"VERIFIED POOL", "unverified pool", "individual"};
    if (best == 0) ++wins_verified;
    if (best == 1) ++wins_unverified;
    if (best == 2) ++wins_individual;
    std::printf("%-7d %-22s %-14.4f %-14.4f %-14.4f\n", round, names[best],
                accuracies[0], accuracies[1], accuracies[2]);
    (void)task_id;
  }

  std::printf("\nwins over %d rounds: verified pool %d, unverified pool %d, "
              "individual miner %d\n",
              kRounds, wins_verified, wins_unverified, wins_individual);
  std::printf("(paper's claim: the RPoL pool produces the better model in the "
              "same time budget, hence wins the block race)\n");

  bench::BenchRecorder recorder("bench_mining");
  recorder.add("verified_pool.wins", "rounds",
               static_cast<double>(wins_verified), /*higher_is_better=*/true);
  recorder.write();
  return 0;
}
