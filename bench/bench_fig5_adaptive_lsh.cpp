// Figure 5: adaptive LSH calibration across epochs and tasks.
//
// For each of the paper's four tasks and every epoch, prints
//   * the measured maximum reproduction error (honest worker GA10 vs
//     manager re-execution on G3090),
//   * the minimum spoof distance of the Adv strategy (Eq. 12, last 2/3 of
//     the checkpoints spoofed),
//   * the manager's adaptive alpha (mean+sd of its own calibration errors)
//     and beta = 5 alpha,
//   * measured FNR_lsh (honest checkpoints failing LSH matching) and
//     FPR_lsh (spoofed checkpoints passing), over 10 independent LSH
//     families per epoch.
//
// Findings to reproduce: spoof distances sit far above reproduction errors
// and beta in every epoch; FNR/FPR stay below the tuned working point; the
// double-check fallback therefore yields 0 false negatives end to end.

#include <algorithm>

#include "bench_util.h"
#include "core/calibrate.h"
#include "lsh/pstable.h"
#include "sim/stats.h"

namespace {
using namespace rpol;

struct EpochRow {
  double max_repr = 0.0;
  double min_spoof = 1e300;
  double alpha = 0.0;
  double beta = 0.0;
  double fnr = 0.0;
  double fpr = 0.0;
};

void run_task(const std::string& which, double beta_x) {
  constexpr std::int64_t kEpochs = 6;
  constexpr int kLshRepeats = 10;
  auto task = bench::make_conv_task(which, 4242, 15, 3, 1920,
                                    /*phase_coded=*/false);
  task->hp.batch_size = 32;
  task->hp.learning_rate = 1e-4F;  // stable noise-propagation regime (see Fig. 4 bench)

  // Partitions: manager calibration part, honest worker part, adversary part.
  const auto parts = data::shuffle_and_partition(task->dataset, 3, 777);

  core::StepExecutor state_holder(task->factory, task->hp);
  core::TrainState global = state_holder.save_state();
  std::printf("\n%s\n", task->name.c_str());
  std::printf("%-7s %-12s %-12s %-12s %-12s %-8s %-8s %-8s\n", "epoch",
              "max_repr", "min_spoof", "alpha", "beta", "FNR%", "FPR%",
              "e2eFN%");

  core::StepExecutor worker(task->factory, task->hp);
  core::StepExecutor replayer(task->factory, task->hp);
  const std::vector<bool>& mask = replayer.trainable_mask();

  for (std::int64_t epoch = 0; epoch < kEpochs; ++epoch) {
    EpochRow row;

    // Manager-side adaptive calibration on its own i.i.d. part.
    core::EpochContext mgr_ctx;
    mgr_ctx.epoch = epoch;
    mgr_ctx.nonce = derive_seed(10, static_cast<std::uint64_t>(epoch));
    mgr_ctx.initial = global;
    mgr_ctx.dataset = &parts[0];
    core::CalibrationConfig calib_cfg;
    calib_cfg.alpha_mode = core::AlphaMode::kMaxPlusSd;  // Sec. V-C convention
    calib_cfg.beta_x = beta_x;
    const core::CalibrationResult calib = core::calibrate_epoch(
        task->factory, task->hp, mgr_ctx, sim::device_g3090(), sim::device_ga10(),
        derive_seed(11, static_cast<std::uint64_t>(epoch)), calib_cfg);
    row.alpha = calib.alpha;
    row.beta = calib.beta;

    // Honest worker trace (GA10) + adversary trace (Eq. 12 spoof of the
    // last two-thirds of the checkpoints).
    core::EpochContext wrk_ctx = mgr_ctx;
    wrk_ctx.nonce = derive_seed(20, static_cast<std::uint64_t>(epoch));
    wrk_ctx.dataset = &parts[1];
    sim::DeviceExecution worker_dev(
        sim::device_ga10(), derive_seed(21, static_cast<std::uint64_t>(epoch)));
    core::HonestPolicy honest;
    const core::EpochTrace honest_trace =
        honest.produce_trace(worker, wrk_ctx, worker_dev);

    core::EpochContext adv_ctx = mgr_ctx;
    adv_ctx.nonce = derive_seed(30, static_cast<std::uint64_t>(epoch));
    adv_ctx.dataset = &parts[2];
    sim::DeviceExecution adv_dev(
        sim::device_ga10(), derive_seed(31, static_cast<std::uint64_t>(epoch)));
    core::SpoofPolicy spoof(1.0 / 3.0, 0.5);
    const core::EpochTrace spoof_trace = spoof.produce_trace(worker, adv_ctx, adv_dev);

    // Manager re-executes every transition of both traces on G3090 and
    // collects the replayed model vectors.
    auto replay_models = [&](const core::EpochTrace& trace,
                             const core::EpochContext& ctx) {
      std::vector<std::vector<float>> replays;
      const core::DeterministicSelector selector(ctx.nonce);
      sim::DeviceExecution mgr_dev(
          sim::device_g3090(),
          derive_seed(40, static_cast<std::uint64_t>(epoch) * 100 +
                              static_cast<std::uint64_t>(replays.size())));
      for (std::int64_t j = 0; j < trace.num_transitions(); ++j) {
        replayer.load_state(trace.checkpoints[static_cast<std::size_t>(j)]);
        const std::int64_t first = trace.step_of[static_cast<std::size_t>(j)];
        const std::int64_t count =
            trace.step_of[static_cast<std::size_t>(j + 1)] - first;
        replayer.run_steps(first, count, *ctx.dataset, selector, &mgr_dev);
        replays.push_back(
            core::extract_trainable(replayer.save_state().model, mask));
      }
      return replays;
    };
    const auto honest_replays = replay_models(honest_trace, wrk_ctx);
    const auto spoof_replays = replay_models(spoof_trace, adv_ctx);

    const std::int64_t spoof_start =
        (spoof_trace.num_transitions() + 2) / 3;  // honest prefix = 1/3
    for (std::int64_t j = 0; j < honest_trace.num_transitions(); ++j) {
      row.max_repr = std::max(
          row.max_repr,
          l2_distance(honest_replays[static_cast<std::size_t>(j)],
                      core::extract_trainable(
                          honest_trace.checkpoints[static_cast<std::size_t>(j + 1)].model,
                          mask)));
    }
    for (std::int64_t j = spoof_start; j < spoof_trace.num_transitions(); ++j) {
      row.min_spoof = std::min(
          row.min_spoof,
          l2_distance(spoof_replays[static_cast<std::size_t>(j)],
                      core::extract_trainable(
                          spoof_trace.checkpoints[static_cast<std::size_t>(j + 1)].model,
                          mask)));
    }

    // Per-transition honest reproduction distances (for the end-to-end
    // false-negative accounting: LSH miss AND distance > beta).
    std::vector<double> honest_distances;
    for (std::int64_t j = 0; j < honest_trace.num_transitions(); ++j) {
      honest_distances.push_back(l2_distance(
          honest_replays[static_cast<std::size_t>(j)],
          core::extract_trainable(
              honest_trace.checkpoints[static_cast<std::size_t>(j + 1)].model,
              mask)));
    }

    // FNR/FPR over independent LSH families tuned to (alpha, beta).
    int honest_misses = 0, honest_total = 0, spoof_passes = 0, spoof_total = 0;
    int end_to_end_fn = 0;
    for (int rep = 0; rep < kLshRepeats; ++rep) {
      lsh::LshConfig cfg;
      cfg.params = calib.lsh.params;
      cfg.dim = static_cast<std::int64_t>(honest_replays.front().size());
      cfg.seed = derive_seed(50, static_cast<std::uint64_t>(epoch) * 100 +
                                     static_cast<std::uint64_t>(rep));
      const lsh::PStableLsh hasher(cfg);
      for (std::int64_t j = 0; j < honest_trace.num_transitions(); ++j) {
        const auto claimed = core::extract_trainable(
            honest_trace.checkpoints[static_cast<std::size_t>(j + 1)].model, mask);
        if (!lsh::lsh_match(hasher.hash(claimed),
                            hasher.hash(honest_replays[static_cast<std::size_t>(j)]))) {
          ++honest_misses;
          // Double-check fallback: fetch raw weights, distance test.
          if (honest_distances[static_cast<std::size_t>(j)] > row.beta) {
            ++end_to_end_fn;
          }
        }
        ++honest_total;
      }
      for (std::int64_t j = spoof_start; j < spoof_trace.num_transitions(); ++j) {
        const auto claimed = core::extract_trainable(
            spoof_trace.checkpoints[static_cast<std::size_t>(j + 1)].model, mask);
        if (lsh::lsh_match(hasher.hash(claimed),
                           hasher.hash(spoof_replays[static_cast<std::size_t>(j)]))) {
          ++spoof_passes;
        }
        ++spoof_total;
      }
    }
    row.fnr = 100.0 * honest_misses / honest_total;
    row.fpr = 100.0 * spoof_passes / spoof_total;
    const double e2e_fn = 100.0 * end_to_end_fn / honest_total;

    std::printf("%-7lld %-12.3e %-12.3e %-12.3e %-12.3e %-8.1f %-8.1f %-8.1f\n",
                static_cast<long long>(epoch), row.max_repr, row.min_spoof,
                row.alpha, row.beta, row.fnr, row.fpr, e2e_fn);

    // Advance the global model with the honest worker's update.
    global.model = honest_trace.checkpoints.back().model;
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 5 — adaptive LSH calibration: errors, spoof distances, alpha/beta, "
      "FNR/FPR per epoch",
      "Sec. VII-D Fig. 5: spoof distances >> reproduction errors; measured "
      "FNR/FPR below the tuned working point; 0 false negatives with the "
      "double-check");

  // beta = x * alpha: x = 5 (the paper's example) suffices for the
  // ResNet18-family; the deeper ResNet50-family shows heavier-tailed
  // reproduction errors (more ReLU-boundary events per interval), so its
  // pool manager tunes x up — exactly the knob Sec. V-C exposes
  // ("x and y are tunable for the pool manager").
  const double bench_t0 = bench::now_seconds();
  run_task("resnet18_c10", 5.0);
  run_task("resnet18_c100", 5.0);
  run_task("resnet50_c10", 25.0);
  run_task("resnet50_c100", 25.0);
  bench::BenchRecorder recorder("bench_fig5");
  recorder.add("wall_s", "s", bench::now_seconds() - bench_t0);
  recorder.write();
  std::printf(
      "\nNote: with beta = x*alpha (x=5 for the ResNet18-family, x=25 for the\n"
      "deeper ResNet50-family) always below min_spoof and above max_repr,\n"
      "LSH misses on honest work are rescued by the double-check distance\n"
      "test => 0 end-to-end false negatives (the paper's claim).\n");
  return 0;
}
