// Microbenchmarks (google-benchmark) for the primitives on RPoL's hot
// paths: hashing (commitments), p-stable LSH digests, AMLayer derivation,
// training-step execution, and checkpoint state capture — plus a
// deterministic kernel harness that times the runtime's blocked GEMM /
// im2col kernels at the paper models' layer shapes
// (src/sim/model_specs.cpp) and writes BENCH_micro.json so future PRs have
// a perf trajectory (ops/sec, speedup vs. the seed scalar kernels, and
// thread scaling).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/amlayer.h"
#include "core/ckptstore.h"
#include "core/commitment.h"
#include "core/detsel.h"
#include "data/synthetic.h"
#include "lsh/pstable.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "runtime/thread_pool.h"
#include "sim/model_specs.h"
#include "tensor/layout.h"
#include "tensor/ops.h"

namespace {
using namespace rpol;

// ---------------------------------------------------------------------------
// Seed scalar reference kernels (frozen copies of the pre-runtime
// implementations) — the baseline BENCH_micro.json speedups are measured
// against. Do not "optimize" these; they exist to keep the comparison
// honest across PRs.

Tensor seed_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0F) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor seed_im2col(const Tensor& input, const Conv2dSpec& spec) {
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t patch = c * spec.kernel * spec.kernel;
  Tensor cols({patch, n * oh * ow});
  float* pc = cols.data();
  const std::int64_t col_stride = n * oh * ow;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
          const std::int64_t prow = (ch * spec.kernel + kh) * spec.kernel + kw;
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t in_y = y * spec.stride + kh - spec.padding;
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t in_x = x * spec.stride + kw - spec.padding;
              const std::int64_t pcol = (img * oh + y) * ow + x;
              float v = 0.0F;
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                v = input.at4(img, ch, in_y, in_x);
              }
              pc[prow * col_stride + pcol] = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

// ---------------------------------------------------------------------------
// Frozen seed crypto reference (pre-pipeline implementations): staging-buffer
// SHA-256, copy-then-hash state hashing, serial commitments, and
// rebuild-the-tree-per-proof transition proofs. Same "do not optimize" rule
// as the scalar kernels above — these anchor the crypto speedup records.

class SeedSha256 {
 public:
  void update(const std::uint8_t* data, std::size_t len) {
    total_len_ += len;
    while (len > 0) {
      const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
      std::memcpy(buffer_.data() + buffer_len_, data, take);
      buffer_len_ += take;
      data += take;
      len -= take;
      if (buffer_len_ == buffer_.size()) {
        process_block(buffer_.data());
        buffer_len_ = 0;
      }
    }
  }
  void update(const Bytes& data) { update(data.data(), data.size()); }

  Digest finish() {
    const std::uint64_t bit_len = total_len_ * 8;
    const std::uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) update(&zero, 1);
    std::array<std::uint8_t, 8> len_bytes{};
    for (int i = 0; i < 8; ++i) {
      len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    std::memcpy(buffer_.data() + buffer_len_, len_bytes.data(), 8);
    process_block(buffer_.data());
    Digest out{};
    for (int i = 0; i < 8; ++i) {
      out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
      out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
      out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
      out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
  }

 private:
  static std::uint32_t rotr(std::uint32_t x, int n) {
    return (x >> n) | (x << (32 - n));
  }
  void process_block(const std::uint8_t* block) {
    static constexpr std::array<std::uint32_t, 64> kk = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
        0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
        0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
        0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
        0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
        0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
        0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
        0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
        0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
        0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
    std::array<std::uint32_t, 64> w{};
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    auto a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    auto e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kk[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
    state_[4] += e; state_[5] += f; state_[6] += g; state_[7] += h;
  }

  std::array<std::uint32_t, 8> state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                         0xa54ff53a, 0x510e527f, 0x9b05688c,
                                         0x1f83d9ab, 0x5be0cd19};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

Digest seed_sha256(const Bytes& data) {
  SeedSha256 h;
  h.update(data);
  return h.finish();
}

Digest seed_hash_state(const core::TrainState& s) {
  return seed_sha256(core::serialize_state(s));  // full serialize copy
}

Digest seed_lsh_leaf(const lsh::LshDigest& d) {
  SeedSha256 h;
  const std::uint8_t domain = 0x4C;
  h.update(&domain, 1);
  h.update(lsh::serialize_lsh_digest(d));
  return h.finish();
}

Digest seed_merkle_parent(const Digest& left, const Digest& right) {
  SeedSha256 h;
  const std::uint8_t domain = 0x01;
  h.update(&domain, 1);
  h.update(left.data(), left.size());
  h.update(right.data(), right.size());
  return h.finish();
}

// Serial bottom-up tree build; returns all levels (leaves first).
std::vector<std::vector<Digest>> seed_merkle_levels(std::vector<Digest> leaves) {
  std::vector<std::vector<Digest>> levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const auto& prev = levels.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Digest& left = prev[i];
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(seed_merkle_parent(left, right));
    }
    levels.push_back(std::move(next));
  }
  return levels;
}

std::vector<Digest> seed_merkle_prove(
    const std::vector<std::vector<Digest>>& levels, std::size_t leaf) {
  std::vector<Digest> siblings;
  std::size_t idx = leaf;
  for (std::size_t level = 0; level + 1 < levels.size(); ++level) {
    const auto& nodes = levels[level];
    const std::size_t sib = (idx % 2 == 0) ? idx + 1 : idx - 1;
    siblings.push_back(sib < nodes.size() ? nodes[sib] : nodes[idx]);
    idx /= 2;
  }
  return siblings;
}

core::Commitment seed_commit_v2(const core::EpochTrace& trace,
                                const lsh::PStableLsh& hasher) {
  core::Commitment c;
  c.version = core::CommitmentVersion::kV2;
  c.state_hashes.reserve(trace.checkpoints.size());
  c.lsh_digests.reserve(trace.checkpoints.size());
  for (const auto& state : trace.checkpoints) {
    c.state_hashes.push_back(seed_hash_state(state));
    c.lsh_digests.push_back(hasher.hash(state.model));
  }
  c.root = core::commitment_root(c);
  return c;
}

// Seed-shaped proof generation: rebuilds the state tree AND re-hashes every
// LSH leaf for each transition, exactly like pre-pipeline
// make_transition_proof.
std::vector<Digest> seed_transition_proof(const core::Commitment& full,
                                          std::size_t transition) {
  const auto state_levels = seed_merkle_levels(full.state_hashes);
  std::vector<Digest> lsh_leaves;
  lsh_leaves.reserve(full.lsh_digests.size());
  for (const auto& d : full.lsh_digests) lsh_leaves.push_back(seed_lsh_leaf(d));
  const auto lsh_levels = seed_merkle_levels(std::move(lsh_leaves));
  std::vector<Digest> out = seed_merkle_prove(state_levels, transition);
  const auto second = seed_merkle_prove(state_levels, transition + 1);
  const auto third = seed_merkle_prove(lsh_levels, transition + 1);
  out.insert(out.end(), second.begin(), second.end());
  out.insert(out.end(), third.begin(), third.end());
  return out;
}

// Best-of-k wall-clock seconds for fn(), with one warmup call. The sample
// set is reduced through bench::summarize_latencies so the "best" reported
// here and the quantiles elsewhere share one definition.
template <typename Fn>
double time_best(Fn&& fn, double min_total_s = 0.3, int max_iters = 5) {
  fn();  // warmup
  std::vector<double> samples;
  double total = 0.0;
  while ((total < min_total_s &&
          samples.size() < static_cast<std::size_t>(max_iters)) ||
         samples.size() < 2) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    samples.push_back(s);
    total += s;
  }
  return bench::summarize_latencies(samples).best;
}

struct KernelResult {
  std::string model, layer;
  std::int64_t m = 0, k = 0, cols = 0, batch = 0, in_h = 0;
  double gemm_flops = 0.0;
  double seed_s = 0.0, new1_s = 0.0, new4_s = 0.0;       // conv GEMM (im2col+matmul)
  double mm_seed_s = 0.0, mm_new1_s = 0.0, mm_new4_s = 0.0;  // pure GEMM
};

KernelResult run_shape(const std::string& model, const sim::ConvLayerShape& shape,
                       std::int64_t batch, std::int64_t spatial_div) {
  KernelResult r;
  r.model = model;
  r.layer = shape.layer;
  sim::ConvLayerShape s = shape;
  s.in_h /= spatial_div;
  s.in_w /= spatial_div;
  r.batch = batch;
  r.in_h = s.in_h;
  r.m = s.gemm_m();
  r.k = s.gemm_k();
  r.cols = s.gemm_n(batch);
  r.gemm_flops = 2.0 * static_cast<double>(r.m) * static_cast<double>(r.k) *
                 static_cast<double>(r.cols);

  Rng rng(7);
  const Tensor input =
      Tensor::randn({batch, s.in_channels, s.in_h, s.in_w}, rng, 1.0F);
  const Tensor weight = Tensor::randn({r.m, r.k}, rng, 0.05F);
  const Conv2dSpec spec{s.in_channels, s.out_channels, s.kernel, s.stride,
                        s.padding};

  const Tensor cols = im2col(input, spec);
  r.seed_s = time_best([&] {
    benchmark::DoNotOptimize(seed_matmul(weight, seed_im2col(input, spec)));
  });
  r.mm_seed_s = time_best([&] {
    benchmark::DoNotOptimize(seed_matmul(weight, cols));
  });
  runtime::set_threads(1);
  r.new1_s = time_best([&] {
    benchmark::DoNotOptimize(matmul(weight, im2col(input, spec)));
  });
  r.mm_new1_s = time_best([&] { benchmark::DoNotOptimize(matmul(weight, cols)); });
  runtime::set_threads(4);
  r.new4_s = time_best([&] {
    benchmark::DoNotOptimize(matmul(weight, im2col(input, spec)));
  });
  r.mm_new4_s = time_best([&] { benchmark::DoNotOptimize(matmul(weight, cols)); });
  return r;
}

void write_kernel_json(const std::vector<KernelResult>& results,
                       int default_threads) {
  std::FILE* f = std::fopen("BENCH_micro.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
  std::fprintf(f, "  \"threads_default\": %d,\n", default_threads);
  std::fprintf(f, "  \"note\": \"conv_gemm = im2col + GEMM at the layer shape; "
                  "seed = frozen scalar kernels from the seed tree; "
                  "speedups are wall-clock, new kernels at 1/4 threads\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"layer\": \"%s\", \"batch\": %lld, "
        "\"in_h\": %lld, \"m\": %lld, \"k\": %lld, \"cols\": %lld,\n"
        "     \"conv_gemm\": {\"seed_gflops\": %.3f, \"new_1t_gflops\": %.3f, "
        "\"new_4t_gflops\": %.3f, \"speedup_1t_vs_seed\": %.2f, "
        "\"speedup_4t_vs_seed\": %.2f, \"speedup_4t_vs_1t\": %.2f},\n"
        "     \"matmul\": {\"seed_gflops\": %.3f, \"new_1t_gflops\": %.3f, "
        "\"new_4t_gflops\": %.3f, \"speedup_1t_vs_seed\": %.2f, "
        "\"speedup_4t_vs_seed\": %.2f, \"speedup_4t_vs_1t\": %.2f}}%s\n",
        r.model.c_str(), r.layer.c_str(), static_cast<long long>(r.batch),
        static_cast<long long>(r.in_h), static_cast<long long>(r.m),
        static_cast<long long>(r.k), static_cast<long long>(r.cols),
        r.gemm_flops / r.seed_s / 1e9, r.gemm_flops / r.new1_s / 1e9,
        r.gemm_flops / r.new4_s / 1e9, r.seed_s / r.new1_s,
        r.seed_s / r.new4_s, r.new1_s / r.new4_s,
        r.gemm_flops / r.mm_seed_s / 1e9, r.gemm_flops / r.mm_new1_s / 1e9,
        r.gemm_flops / r.mm_new4_s / 1e9, r.mm_seed_s / r.mm_new1_s,
        r.mm_seed_s / r.mm_new4_s, r.mm_new1_s / r.mm_new4_s,
        i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void run_kernel_harness() {
  const int default_threads = runtime::threads();
  std::vector<KernelResult> results;
  // ResNet18 residual-stage shapes at full 224px spatial resolution,
  // batch 1; VGG16's early layers at 1/4 spatial (their GEMMs are ~16x
  // larger — same shape class, bench-sized spatial extent).
  for (const auto& s : sim::resnet18_conv_shapes()) {
    if (s.layer == "conv1" || s.layer.find("entry") != std::string::npos) continue;
    results.push_back(run_shape("ResNet18", s, /*batch=*/1, /*spatial_div=*/1));
  }
  for (const auto& s : sim::vgg16_conv_shapes()) {
    if (s.layer != "conv3_x" && s.layer != "conv5_x") continue;
    results.push_back(run_shape("VGG16", s, /*batch=*/1, /*spatial_div=*/4));
  }
  runtime::set_threads(default_threads);
  write_kernel_json(results, default_threads);

  // Registry records (rpol.bench.v1) for the bench-diff trajectory: GFLOP/s
  // per shape at 1 and 4 threads, keyed so baseline comparisons survive
  // reordering.
  // The measurements above ran at explicitly pinned thread counts and the
  // ambient pool was restored before this point, so every record carries its
  // measurement-time count (stamping the ambient value here mislabeled every
  // .4t row as threads:1).
  bench::BenchRecorder recorder("bench_micro");
  for (const KernelResult& r : results) {
    const std::string key = r.model + "." + r.layer;
    recorder.add("conv_gemm." + key + ".gflops.1t", "gflop/s",
                 r.gemm_flops / r.new1_s / 1e9, /*higher_is_better=*/true,
                 /*threads=*/1);
    recorder.add("conv_gemm." + key + ".gflops.4t", "gflop/s",
                 r.gemm_flops / r.new4_s / 1e9, /*higher_is_better=*/true,
                 /*threads=*/4);
    recorder.add("matmul." + key + ".gflops.4t", "gflop/s",
                 r.gemm_flops / r.mm_new4_s / 1e9, /*higher_is_better=*/true,
                 /*threads=*/4);
  }
  recorder.write();

  std::printf("kernel harness (threads default %d) -> BENCH_micro.json\n",
              default_threads);
  std::printf("%-10s %-10s %5s %5s %6s | conv_gemm gflops seed/1t/4t | speedup 4t vs seed\n",
              "model", "layer", "m", "k", "cols");
  for (const KernelResult& r : results) {
    std::printf("%-10s %-10s %5lld %5lld %6lld | %7.3f %7.3f %7.3f | %.2fx\n",
                r.model.c_str(), r.layer.c_str(), static_cast<long long>(r.m),
                static_cast<long long>(r.k), static_cast<long long>(r.cols),
                r.gemm_flops / r.seed_s / 1e9, r.gemm_flops / r.new1_s / 1e9,
                r.gemm_flops / r.new4_s / 1e9, r.seed_s / r.new4_s);
  }
}

// ---------------------------------------------------------------------------
// Layout harness: the blocked direct-conv path (tensor/layout.h) against
// the im2col + GEMM fallback, measured THROUGH the Conv2d layer so the
// numbers include everything a verifier re-execution pays — nchw<->nChw8c
// reorders, the pack cache, column-buffer management. Emits nn.layout.*
// rpol.bench.v1 records; the geometric-mean forward speedup over the
// ResNet18 shapes at 4 threads is the PR's acceptance metric.

struct LayoutResult {
  std::string model, layer;
  std::int64_t batch = 0, in_h = 0;
  double fb_fwd_1t = 0.0, fb_fwd_4t = 0.0;    // fallback forward seconds
  double dir_fwd_1t = 0.0, dir_fwd_4t = 0.0;  // direct forward seconds
  double fb_train_4t = 0.0, dir_train_4t = 0.0;  // forward + backward
};

LayoutResult run_layout_shape(const std::string& model,
                              const sim::ConvLayerShape& shape,
                              std::int64_t batch, std::int64_t spatial_div) {
  LayoutResult r;
  r.model = model;
  r.layer = shape.layer;
  sim::ConvLayerShape s = shape;
  s.in_h /= spatial_div;
  s.in_w /= spatial_div;
  r.batch = batch;
  r.in_h = s.in_h;

  Rng rng(7);
  const Conv2dSpec spec{s.in_channels, s.out_channels, s.kernel, s.stride,
                        s.padding};
  nn::Conv2d conv(spec, rng, /*bias=*/true);
  const Tensor input =
      Tensor::randn({batch, s.in_channels, s.in_h, s.in_w}, rng, 1.0F);
  Rng grng(9);
  const Tensor dy = Tensor::randn(conv.output_shape(input.shape()), grng, 0.1F);

  auto fwd = [&] { benchmark::DoNotOptimize(conv.forward(input, true)); };
  auto train = [&] {
    conv.forward(input, true);
    benchmark::DoNotOptimize(conv.backward(dy));
  };

  // These shapes run in single-digit milliseconds, so the default 5-sample
  // cap leaves the direct-vs-fallback ratio at the mercy of one scheduler
  // stall; give each measurement a real time budget instead.
  constexpr double kMinS = 0.25;
  constexpr int kMaxIters = 60;
  layout::set_direct_conv_enabled(false);
  runtime::set_threads(1);
  r.fb_fwd_1t = time_best(fwd, kMinS, kMaxIters);
  runtime::set_threads(4);
  r.fb_fwd_4t = time_best(fwd, kMinS, kMaxIters);
  r.fb_train_4t = time_best(train, kMinS, kMaxIters);

  layout::set_direct_conv_enabled(true);
  runtime::set_threads(1);
  r.dir_fwd_1t = time_best(fwd, kMinS, kMaxIters);
  runtime::set_threads(4);
  r.dir_fwd_4t = time_best(fwd, kMinS, kMaxIters);
  r.dir_train_4t = time_best(train, kMinS, kMaxIters);
  return r;
}

void run_layout_harness() {
  const int default_threads = runtime::threads();
  const bool saved_gate = layout::direct_conv_enabled();
  std::vector<LayoutResult> results;
  // Same shape selection as the kernel harness: ResNet18 residual stages at
  // full spatial resolution (batch 1 — the verifier's re-execution regime),
  // VGG16 mid/late stages at 1/4 spatial.
  for (const auto& s : sim::resnet18_conv_shapes()) {
    if (s.layer == "conv1" || s.layer.find("entry") != std::string::npos) continue;
    results.push_back(run_layout_shape("ResNet18", s, /*batch=*/1, /*spatial_div=*/1));
  }
  for (const auto& s : sim::vgg16_conv_shapes()) {
    if (s.layer != "conv3_x" && s.layer != "conv5_x") continue;
    results.push_back(run_layout_shape("VGG16", s, /*batch=*/1, /*spatial_div=*/4));
  }
  layout::set_direct_conv_enabled(saved_gate);
  runtime::set_threads(default_threads);

  bench::BenchRecorder recorder("bench_micro");
  double log_sum = 0.0;
  int resnet_rows = 0;
  for (const LayoutResult& r : results) {
    const std::string key = r.model + "." + r.layer;
    recorder.add("nn.layout.fwd." + key + ".speedup.1t", "x",
                 r.fb_fwd_1t / r.dir_fwd_1t, /*higher_is_better=*/true,
                 /*threads=*/1);
    recorder.add("nn.layout.fwd." + key + ".speedup.4t", "x",
                 r.fb_fwd_4t / r.dir_fwd_4t, /*higher_is_better=*/true,
                 /*threads=*/4);
    recorder.add("nn.layout.train." + key + ".speedup.4t", "x",
                 r.fb_train_4t / r.dir_train_4t, /*higher_is_better=*/true,
                 /*threads=*/4);
    recorder.add("nn.layout.fwd." + key + ".ms.4t", "ms", r.dir_fwd_4t * 1e3,
                 /*higher_is_better=*/false, /*threads=*/4);
    if (r.model == "ResNet18") {
      log_sum += std::log(r.fb_fwd_4t / r.dir_fwd_4t);
      ++resnet_rows;
    }
  }
  const double geomean =
      resnet_rows > 0 ? std::exp(log_sum / resnet_rows) : 0.0;
  recorder.add("nn.layout.fwd.resnet18.geomean_speedup.4t", "x", geomean,
               /*higher_is_better=*/true, /*threads=*/4);
  recorder.write();

  std::printf("\nlayout harness: direct (nChw8c + packed weights) vs "
              "im2col+GEMM fallback, Conv2d end to end\n");
  std::printf("%-10s %-10s | fwd 1t fb/dir (ms) | fwd 4t fb/dir (ms) | "
              "speedup 4t fwd/train\n",
              "model", "layer");
  for (const LayoutResult& r : results) {
    std::printf("%-10s %-10s | %8.2f %8.2f | %8.2f %8.2f | %5.2fx %5.2fx\n",
                r.model.c_str(), r.layer.c_str(), r.fb_fwd_1t * 1e3,
                r.dir_fwd_1t * 1e3, r.fb_fwd_4t * 1e3, r.dir_fwd_4t * 1e3,
                r.fb_fwd_4t / r.dir_fwd_4t, r.fb_train_4t / r.dir_train_4t);
  }
  std::printf("ResNet18 forward geomean speedup (4t): %.2fx\n", geomean);
}

// Crypto/commitment harness: SHA-256 streaming throughput, batched state
// hashing, end-to-end commit_v1/commit_v2 at ResNet18-scale state sizes,
// Merkle construction, and memoized transition proofs — each against the
// frozen seed reference above, recorded in the rpol.bench.v1 registry.
void run_crypto_harness() {
  const int default_threads = runtime::threads();
  bench::BenchRecorder recorder("bench_micro");

  // SHA-256 streaming throughput (single-threaded, one-shot over 8 MiB).
  const double stream_mb = 8.0;
  Bytes stream(static_cast<std::size_t>(stream_mb * (1 << 20)));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const double seed_sha_s =
      time_best([&] { benchmark::DoNotOptimize(seed_sha256(stream)); });
  const double new_sha_s =
      time_best([&] { benchmark::DoNotOptimize(sha256(stream)); });
  recorder.add("crypto.sha256.stream.mb_s", "MB/s", stream_mb / new_sha_s,
               /*higher_is_better=*/true, /*threads=*/1);

  // ResNet18-scale trace: 11.7M model floats + momentum-sized optimizer per
  // checkpoint, 4 checkpoints (3 transitions).
  const std::size_t model_n = 11'689'512;
  const std::size_t opt_n = model_n / 2;
  const std::size_t checkpoints = 4;
  core::EpochTrace trace;
  Rng rng(11);
  for (std::size_t i = 0; i < checkpoints; ++i) {
    core::TrainState s;
    s.model.resize(model_n);
    s.optimizer.resize(opt_n);
    rng.fill_normal(s.model, 0.0F, 0.1F);
    rng.fill_normal(s.optimizer, 0.0F, 0.1F);
    trace.checkpoints.push_back(std::move(s));
    trace.step_of.push_back(static_cast<std::int64_t>(i));
  }
  const double commit_mb = static_cast<double>(checkpoints) *
                           (16.0 + 4.0 * static_cast<double>(model_n + opt_n)) /
                           (1 << 20);

  // Small LSH family (1x2 projections) so the records isolate the hashing
  // pipeline rather than LSH projection arithmetic.
  lsh::LshConfig lsh_cfg{{1.0, 1, 2}, static_cast<std::int64_t>(model_n), 17};
  const lsh::PStableLsh hasher(lsh_cfg);

  const double seed_v2_s = time_best(
      [&] { benchmark::DoNotOptimize(seed_commit_v2(trace, hasher)); });

  runtime::set_threads(1);
  const double v1_1t_s =
      time_best([&] { benchmark::DoNotOptimize(core::commit_v1(trace)); });
  const double v2_1t_s = time_best(
      [&] { benchmark::DoNotOptimize(core::commit_v2(trace, hasher)); });
  runtime::set_threads(4);
  const double v1_4t_s =
      time_best([&] { benchmark::DoNotOptimize(core::commit_v1(trace)); });
  const double v2_4t_s = time_best(
      [&] { benchmark::DoNotOptimize(core::commit_v2(trace, hasher)); });

  recorder.add("crypto.state_hash.batch.mb_s.1t", "MB/s", commit_mb / v1_1t_s,
               /*higher_is_better=*/true, /*threads=*/1);
  recorder.add("crypto.state_hash.batch.mb_s.4t", "MB/s", commit_mb / v1_4t_s,
               /*higher_is_better=*/true, /*threads=*/4);
  recorder.add("crypto.commit_v1.resnet18.s.4t", "s", v1_4t_s,
               /*higher_is_better=*/false, /*threads=*/4);
  recorder.add("crypto.commit_v2.resnet18.s.1t", "s", v2_1t_s,
               /*higher_is_better=*/false, /*threads=*/1);
  recorder.add("crypto.commit_v2.resnet18.s.4t", "s", v2_4t_s,
               /*higher_is_better=*/false, /*threads=*/4);
  recorder.add("crypto.commit_v2.resnet18.speedup_vs_seed", "x",
               seed_v2_s / v2_4t_s, /*higher_is_better=*/true, /*threads=*/4);

  // Merkle construction over 65536 leaves (parallel per-level build).
  std::vector<Digest> leaves(65'536);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    Bytes b(8);
    for (int j = 0; j < 8; ++j) b[j] = static_cast<std::uint8_t>(i >> (8 * j));
    leaves[i] = sha256(b);
  }
  const double seed_merkle_s = time_best(
      [&] { benchmark::DoNotOptimize(seed_merkle_levels(leaves)); });
  const double merkle_s =
      time_best([&] { benchmark::DoNotOptimize(MerkleTree(leaves)); });
  recorder.add("crypto.merkle.build_65536.s", "s", merkle_s,
               /*higher_is_better=*/false, /*threads=*/4);

  // Transition proofs: n=1024 small checkpoints, q=16 sampled transitions.
  // Seed rebuilds both trees per sample (O(n) hashing each); the pipeline
  // builds a CommitmentIndex once and answers each sample in O(log n).
  core::EpochTrace small_trace;
  for (std::size_t i = 0; i < 1024; ++i) {
    core::TrainState s;
    s.model.resize(32);
    s.optimizer.resize(16);
    rng.fill_normal(s.model, 0.0F, 0.1F);
    rng.fill_normal(s.optimizer, 0.0F, 0.1F);
    small_trace.checkpoints.push_back(std::move(s));
    small_trace.step_of.push_back(static_cast<std::int64_t>(i));
  }
  lsh::LshConfig small_cfg{{1.0, 2, 3}, 32, 23};
  const lsh::PStableLsh small_hasher(small_cfg);
  const core::Commitment small_full =
      core::commit_v2(small_trace, small_hasher);
  std::vector<std::size_t> samples;
  for (std::size_t q = 0; q < 16; ++q) samples.push_back((q * 61) % 1023);
  const double seed_proofs_s = time_best([&] {
    for (const std::size_t j : samples) {
      benchmark::DoNotOptimize(seed_transition_proof(small_full, j));
    }
  });
  const double new_proofs_s = time_best([&] {
    const core::CommitmentIndex index(small_full);
    for (const std::size_t j : samples) {
      benchmark::DoNotOptimize(
          index.prove_transition(static_cast<std::int64_t>(j)));
    }
  });
  recorder.add("crypto.transition_proof.n1024.q16.speedup_vs_seed", "x",
               seed_proofs_s / new_proofs_s, /*higher_is_better=*/true,
               /*threads=*/4);

  runtime::set_threads(default_threads);
  recorder.write();

  std::printf("\ncrypto harness (state = %.1f MB/commit)\n", commit_mb);
  std::printf("  sha256 stream 8MiB      : seed %7.1f MB/s, new %7.1f MB/s (%.2fx)\n",
              stream_mb / seed_sha_s, stream_mb / new_sha_s,
              seed_sha_s / new_sha_s);
  std::printf("  commit_v1 resnet18      : 1t %.3fs, 4t %.3fs\n", v1_1t_s,
              v1_4t_s);
  std::printf("  commit_v2 resnet18      : seed %.3fs, 1t %.3fs, 4t %.3fs "
              "(%.2fx vs seed)\n",
              seed_v2_s, v2_1t_s, v2_4t_s, seed_v2_s / v2_4t_s);
  std::printf("  merkle build 65536      : seed %.4fs, new %.4fs (%.2fx)\n",
              seed_merkle_s, merkle_s, seed_merkle_s / merkle_s);
  std::printf("  transition proofs q16   : seed %.4fs, indexed %.4fs (%.1fx)\n",
              seed_proofs_s, new_proofs_s, seed_proofs_s / new_proofs_s);
}

// ---------------------------------------------------------------------------
// Streaming bounded-memory harness (core.stream.*): one epoch's checkpoint
// pipeline at 10x the crypto harness's checkpoint count (40 vs 4), under a
// hot-cache budget a fraction of the epoch's footprint. Commit phase streams
// every checkpoint through CommitmentBuilder + CheckpointStore (hash, fold,
// spill, evict); verify phase fetches sampled transition endpoints back
// through the store (mostly cold reloads) and re-checks them against the
// commitment. Each record carries env.peak_rss_bytes, so the tier-1
// bench-diff's --mem-tolerance gates the bounded-memory claim: if streaming
// ever starts materializing the epoch, peak RSS jumps and the diff fails.
void run_stream_harness() {
  bench::BenchRecorder recorder("bench_micro");

  const std::size_t checkpoints = 40;  // 10x the crypto harness's trace
  const std::size_t model_n = 250'000;
  const std::size_t opt_n = model_n / 2;
  const std::uint64_t budget_bytes = 4ull << 20;  // ~2.8 hot states

  // One resident state, permuted cheaply per checkpoint: the harness times
  // the hashing/spill pipeline, not synthetic data generation.
  core::TrainState state;
  state.model.resize(model_n);
  state.optimizer.resize(opt_n);
  Rng rng(13);
  rng.fill_normal(state.model, 0.0F, 0.1F);
  rng.fill_normal(state.optimizer, 0.0F, 0.1F);

  const double state_mb =
      (16.0 + 4.0 * static_cast<double>(model_n + opt_n)) / (1 << 20);
  const double epoch_mb = static_cast<double>(checkpoints) * state_mb;

  core::CkptStoreConfig store_cfg;
  store_cfg.budget_bytes = budget_bytes;

  std::unique_ptr<core::CheckpointStore> store;
  core::Commitment full;
  core::CompactCommitment compact;
  const double commit_s = time_best([&] {
    store = std::make_unique<core::CheckpointStore>(store_cfg);
    core::CommitmentBuilder builder(core::CommitmentVersion::kV1);
    for (std::size_t i = 0; i < checkpoints; ++i) {
      state.model[i % model_n] += 0.25F;  // new bits every checkpoint
      builder.add_checkpoint(state);
      store->append(state);
    }
    full = builder.finish();
    compact = builder.compact();
    benchmark::DoNotOptimize(compact);
  });

  // Verify phase: q=16 sampled transitions; fetch both endpoints through
  // the store (the scattered stride defeats the LRU, so most reads are
  // cold spill reloads) and re-check their hashes against the commitment.
  std::vector<std::size_t> samples;
  for (std::size_t q = 0; q < 16; ++q) {
    samples.push_back((q * 23) % (checkpoints - 1));
  }
  bool verified = true;
  const double verify_s = time_best([&] {
    for (const std::size_t j : samples) {
      const core::TrainState in =
          store->fetch(static_cast<std::int64_t>(j));
      const core::TrainState out =
          store->fetch(static_cast<std::int64_t>(j + 1));
      verified = verified &&
                 digest_equal(core::hash_state(in), full.state_hashes[j]) &&
                 digest_equal(core::hash_state(out), full.state_hashes[j + 1]);
    }
    benchmark::DoNotOptimize(verified);
  });

  const core::CkptStoreStats stats = store->stats();
  const double peak_hot_mb =
      static_cast<double>(
          obs::mem_stats(obs::MemTag::kCkptStore).peak_bytes) /
      (1 << 20);

  recorder.add("core.stream.commit.epoch40.mb_s", "MB/s", epoch_mb / commit_s,
               /*higher_is_better=*/true, /*threads=*/runtime::threads());
  recorder.add("core.stream.commit.epoch40.s", "s", commit_s,
               /*higher_is_better=*/false, /*threads=*/runtime::threads());
  recorder.add("core.stream.verify.q16.s", "s", verify_s,
               /*higher_is_better=*/false, /*threads=*/runtime::threads());
  recorder.add("core.stream.peak_hot_mb", "MB", peak_hot_mb,
               /*higher_is_better=*/false, /*threads=*/runtime::threads());
  recorder.write();

  std::printf("\nstream harness (epoch = %zu checkpoints x %.1f MB = %.0f MB, "
              "hot budget %.0f MB)\n",
              checkpoints, state_mb, epoch_mb,
              static_cast<double>(budget_bytes) / (1 << 20));
  std::printf("  commit+spill            : %.3fs (%.1f MB/s)\n", commit_s,
              epoch_mb / commit_s);
  std::printf("  verify fetch q16        : %.3fs (%llu reloads, %llu "
              "evictions)\n",
              verify_s, static_cast<unsigned long long>(stats.reloads),
              static_cast<unsigned long long>(stats.evictions));
  std::printf("  hot peak                : %.1f MB (budget %.1f MB), "
              "verified=%s\n",
              peak_hot_mb, static_cast<double>(budget_bytes) / (1 << 20),
              verified ? "yes" : "NO");
}

void BM_Sha256_1MB(benchmark::State& state) {
  Bytes data(1 << 20, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 20));
}
BENCHMARK(BM_Sha256_1MB);

void BM_HashState_100k(benchmark::State& state) {
  core::TrainState s;
  s.model.resize(100'000, 0.5F);
  s.optimizer.resize(100'000, 0.25F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_state(s));
  }
}
BENCHMARK(BM_HashState_100k);

void BM_LshDigest(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  lsh::LshConfig cfg{{1.0, 4, 4}, dim, 7};
  lsh::PStableLsh hasher(cfg);
  Rng rng(1);
  std::vector<float> v(static_cast<std::size_t>(dim));
  rng.fill_normal(v, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.hash(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * dim *
                          16);
}
BENCHMARK(BM_LshDigest)->Arg(10'000)->Arg(100'000);

void BM_AmLayerDerivation(benchmark::State& state) {
  const Address address = Address::from_seed(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::derive_amlayer_weight(address, core::AmLayerConfig{}));
  }
}
BENCHMARK(BM_AmLayerDerivation);

void BM_PrfBatchSelection(benchmark::State& state) {
  core::DeterministicSelector selector(99);
  std::int64_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.batch_indices(step++, 128, 50'000));
  }
}
BENCHMARK(BM_PrfBatchSelection);

struct StepFixtureData {
  data::Dataset dataset;
  data::DatasetView view;
  std::unique_ptr<core::StepExecutor> executor;
  core::DeterministicSelector selector{5};

  StepFixtureData() {
    data::SyntheticImageConfig cfg;
    cfg.num_examples = 256;
    cfg.image_size = 8;
    cfg.seed = 3;
    dataset = data::make_synthetic_images(cfg);
    view = data::DatasetView::whole(dataset);
    nn::ModelConfig mc;
    mc.image_size = 8;
    mc.width = 4;
    mc.num_classes = 10;
    core::Hyperparams hp;
    hp.batch_size = 16;
    hp.steps_per_epoch = 1;
    executor = std::make_unique<core::StepExecutor>(
        nn::mini_resnet18_factory(mc, 1), hp);
  }
};

void BM_TrainingStep_MiniResNet18(benchmark::State& state) {
  static StepFixtureData fixture;
  std::int64_t step = 0;
  for (auto _ : state) {
    fixture.executor->run_steps(step++, 1, fixture.view, fixture.selector,
                                nullptr);
  }
}
BENCHMARK(BM_TrainingStep_MiniResNet18);

void BM_CheckpointSaveRestore(benchmark::State& state) {
  static StepFixtureData fixture;
  for (auto _ : state) {
    core::TrainState s = fixture.executor->save_state();
    fixture.executor->load_state(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_CheckpointSaveRestore);

void BM_ConvGemm_ResNet18_conv2(benchmark::State& state) {
  const auto shapes = sim::resnet18_conv_shapes();
  const sim::ConvLayerShape& s = shapes[1];  // conv2_x
  Rng rng(7);
  const Tensor input = Tensor::randn({1, s.in_channels, s.in_h, s.in_w}, rng);
  const Tensor weight = Tensor::randn({s.gemm_m(), s.gemm_k()}, rng, 0.05F);
  const Conv2dSpec spec{s.in_channels, s.out_channels, s.kernel, s.stride,
                        s.padding};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(weight, im2col(input, spec)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConvGemm_ResNet18_conv2);

}  // namespace

int main(int argc, char** argv) {
  // --crypto-only / --layout-only / --stream-only: run just that harness
  // (the tier-1
  // advisory bench-diff runs these; the kernel harness + google-benchmark
  // suite take much longer).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--crypto-only") {
      run_crypto_harness();
      return 0;
    }
    if (std::string(argv[i]) == "--layout-only") {
      run_layout_harness();
      return 0;
    }
    if (std::string(argv[i]) == "--stream-only") {
      run_stream_harness();
      return 0;
    }
  }
  run_kernel_harness();
  run_layout_harness();
  run_crypto_harness();
  run_stream_harness();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
