// Microbenchmarks (google-benchmark) for the primitives on RPoL's hot
// paths: hashing (commitments), p-stable LSH digests, AMLayer derivation,
// training-step execution, and checkpoint state capture — plus a
// deterministic kernel harness that times the runtime's blocked GEMM /
// im2col kernels at the paper models' layer shapes
// (src/sim/model_specs.cpp) and writes BENCH_micro.json so future PRs have
// a perf trajectory (ops/sec, speedup vs. the seed scalar kernels, and
// thread scaling).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/amlayer.h"
#include "core/commitment.h"
#include "core/detsel.h"
#include "data/synthetic.h"
#include "lsh/pstable.h"
#include "nn/models.h"
#include "runtime/thread_pool.h"
#include "sim/model_specs.h"
#include "tensor/ops.h"

namespace {
using namespace rpol;

// ---------------------------------------------------------------------------
// Seed scalar reference kernels (frozen copies of the pre-runtime
// implementations) — the baseline BENCH_micro.json speedups are measured
// against. Do not "optimize" these; they exist to keep the comparison
// honest across PRs.

Tensor seed_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0F) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor seed_im2col(const Tensor& input, const Conv2dSpec& spec) {
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t patch = c * spec.kernel * spec.kernel;
  Tensor cols({patch, n * oh * ow});
  float* pc = cols.data();
  const std::int64_t col_stride = n * oh * ow;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
          const std::int64_t prow = (ch * spec.kernel + kh) * spec.kernel + kw;
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t in_y = y * spec.stride + kh - spec.padding;
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t in_x = x * spec.stride + kw - spec.padding;
              const std::int64_t pcol = (img * oh + y) * ow + x;
              float v = 0.0F;
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                v = input.at4(img, ch, in_y, in_x);
              }
              pc[prow * col_stride + pcol] = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

// Best-of-k wall-clock seconds for fn(), with one warmup call. The sample
// set is reduced through bench::summarize_latencies so the "best" reported
// here and the quantiles elsewhere share one definition.
template <typename Fn>
double time_best(Fn&& fn, double min_total_s = 0.3, int max_iters = 5) {
  fn();  // warmup
  std::vector<double> samples;
  double total = 0.0;
  while ((total < min_total_s &&
          samples.size() < static_cast<std::size_t>(max_iters)) ||
         samples.size() < 2) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    samples.push_back(s);
    total += s;
  }
  return bench::summarize_latencies(samples).best;
}

struct KernelResult {
  std::string model, layer;
  std::int64_t m = 0, k = 0, cols = 0, batch = 0, in_h = 0;
  double gemm_flops = 0.0;
  double seed_s = 0.0, new1_s = 0.0, new4_s = 0.0;       // conv GEMM (im2col+matmul)
  double mm_seed_s = 0.0, mm_new1_s = 0.0, mm_new4_s = 0.0;  // pure GEMM
};

KernelResult run_shape(const std::string& model, const sim::ConvLayerShape& shape,
                       std::int64_t batch, std::int64_t spatial_div) {
  KernelResult r;
  r.model = model;
  r.layer = shape.layer;
  sim::ConvLayerShape s = shape;
  s.in_h /= spatial_div;
  s.in_w /= spatial_div;
  r.batch = batch;
  r.in_h = s.in_h;
  r.m = s.gemm_m();
  r.k = s.gemm_k();
  r.cols = s.gemm_n(batch);
  r.gemm_flops = 2.0 * static_cast<double>(r.m) * static_cast<double>(r.k) *
                 static_cast<double>(r.cols);

  Rng rng(7);
  const Tensor input =
      Tensor::randn({batch, s.in_channels, s.in_h, s.in_w}, rng, 1.0F);
  const Tensor weight = Tensor::randn({r.m, r.k}, rng, 0.05F);
  const Conv2dSpec spec{s.in_channels, s.out_channels, s.kernel, s.stride,
                        s.padding};

  const Tensor cols = im2col(input, spec);
  r.seed_s = time_best([&] {
    benchmark::DoNotOptimize(seed_matmul(weight, seed_im2col(input, spec)));
  });
  r.mm_seed_s = time_best([&] {
    benchmark::DoNotOptimize(seed_matmul(weight, cols));
  });
  runtime::set_threads(1);
  r.new1_s = time_best([&] {
    benchmark::DoNotOptimize(matmul(weight, im2col(input, spec)));
  });
  r.mm_new1_s = time_best([&] { benchmark::DoNotOptimize(matmul(weight, cols)); });
  runtime::set_threads(4);
  r.new4_s = time_best([&] {
    benchmark::DoNotOptimize(matmul(weight, im2col(input, spec)));
  });
  r.mm_new4_s = time_best([&] { benchmark::DoNotOptimize(matmul(weight, cols)); });
  return r;
}

void write_kernel_json(const std::vector<KernelResult>& results,
                       int default_threads) {
  std::FILE* f = std::fopen("BENCH_micro.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
  std::fprintf(f, "  \"threads_default\": %d,\n", default_threads);
  std::fprintf(f, "  \"note\": \"conv_gemm = im2col + GEMM at the layer shape; "
                  "seed = frozen scalar kernels from the seed tree; "
                  "speedups are wall-clock, new kernels at 1/4 threads\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"layer\": \"%s\", \"batch\": %lld, "
        "\"in_h\": %lld, \"m\": %lld, \"k\": %lld, \"cols\": %lld,\n"
        "     \"conv_gemm\": {\"seed_gflops\": %.3f, \"new_1t_gflops\": %.3f, "
        "\"new_4t_gflops\": %.3f, \"speedup_1t_vs_seed\": %.2f, "
        "\"speedup_4t_vs_seed\": %.2f, \"speedup_4t_vs_1t\": %.2f},\n"
        "     \"matmul\": {\"seed_gflops\": %.3f, \"new_1t_gflops\": %.3f, "
        "\"new_4t_gflops\": %.3f, \"speedup_1t_vs_seed\": %.2f, "
        "\"speedup_4t_vs_seed\": %.2f, \"speedup_4t_vs_1t\": %.2f}}%s\n",
        r.model.c_str(), r.layer.c_str(), static_cast<long long>(r.batch),
        static_cast<long long>(r.in_h), static_cast<long long>(r.m),
        static_cast<long long>(r.k), static_cast<long long>(r.cols),
        r.gemm_flops / r.seed_s / 1e9, r.gemm_flops / r.new1_s / 1e9,
        r.gemm_flops / r.new4_s / 1e9, r.seed_s / r.new1_s,
        r.seed_s / r.new4_s, r.new1_s / r.new4_s,
        r.gemm_flops / r.mm_seed_s / 1e9, r.gemm_flops / r.mm_new1_s / 1e9,
        r.gemm_flops / r.mm_new4_s / 1e9, r.mm_seed_s / r.mm_new1_s,
        r.mm_seed_s / r.mm_new4_s, r.mm_new1_s / r.mm_new4_s,
        i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void run_kernel_harness() {
  const int default_threads = runtime::threads();
  std::vector<KernelResult> results;
  // ResNet18 residual-stage shapes at full 224px spatial resolution,
  // batch 1; VGG16's early layers at 1/4 spatial (their GEMMs are ~16x
  // larger — same shape class, bench-sized spatial extent).
  for (const auto& s : sim::resnet18_conv_shapes()) {
    if (s.layer == "conv1" || s.layer.find("entry") != std::string::npos) continue;
    results.push_back(run_shape("ResNet18", s, /*batch=*/1, /*spatial_div=*/1));
  }
  for (const auto& s : sim::vgg16_conv_shapes()) {
    if (s.layer != "conv3_x" && s.layer != "conv5_x") continue;
    results.push_back(run_shape("VGG16", s, /*batch=*/1, /*spatial_div=*/4));
  }
  runtime::set_threads(default_threads);
  write_kernel_json(results, default_threads);

  // Registry records (rpol.bench.v1) for the bench-diff trajectory: GFLOP/s
  // per shape at 1 and 4 threads, keyed so baseline comparisons survive
  // reordering.
  bench::BenchRecorder recorder("bench_micro");
  for (const KernelResult& r : results) {
    const std::string key = r.model + "." + r.layer;
    recorder.add("conv_gemm." + key + ".gflops.1t", "gflop/s",
                 r.gemm_flops / r.new1_s / 1e9, /*higher_is_better=*/true);
    recorder.add("conv_gemm." + key + ".gflops.4t", "gflop/s",
                 r.gemm_flops / r.new4_s / 1e9, /*higher_is_better=*/true);
    recorder.add("matmul." + key + ".gflops.4t", "gflop/s",
                 r.gemm_flops / r.mm_new4_s / 1e9, /*higher_is_better=*/true);
  }
  recorder.write();

  std::printf("kernel harness (threads default %d) -> BENCH_micro.json\n",
              default_threads);
  std::printf("%-10s %-10s %5s %5s %6s | conv_gemm gflops seed/1t/4t | speedup 4t vs seed\n",
              "model", "layer", "m", "k", "cols");
  for (const KernelResult& r : results) {
    std::printf("%-10s %-10s %5lld %5lld %6lld | %7.3f %7.3f %7.3f | %.2fx\n",
                r.model.c_str(), r.layer.c_str(), static_cast<long long>(r.m),
                static_cast<long long>(r.k), static_cast<long long>(r.cols),
                r.gemm_flops / r.seed_s / 1e9, r.gemm_flops / r.new1_s / 1e9,
                r.gemm_flops / r.new4_s / 1e9, r.seed_s / r.new4_s);
  }
}

void BM_Sha256_1MB(benchmark::State& state) {
  Bytes data(1 << 20, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 20));
}
BENCHMARK(BM_Sha256_1MB);

void BM_HashState_100k(benchmark::State& state) {
  core::TrainState s;
  s.model.resize(100'000, 0.5F);
  s.optimizer.resize(100'000, 0.25F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_state(s));
  }
}
BENCHMARK(BM_HashState_100k);

void BM_LshDigest(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  lsh::LshConfig cfg{{1.0, 4, 4}, dim, 7};
  lsh::PStableLsh hasher(cfg);
  Rng rng(1);
  std::vector<float> v(static_cast<std::size_t>(dim));
  rng.fill_normal(v, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.hash(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * dim *
                          16);
}
BENCHMARK(BM_LshDigest)->Arg(10'000)->Arg(100'000);

void BM_AmLayerDerivation(benchmark::State& state) {
  const Address address = Address::from_seed(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::derive_amlayer_weight(address, core::AmLayerConfig{}));
  }
}
BENCHMARK(BM_AmLayerDerivation);

void BM_PrfBatchSelection(benchmark::State& state) {
  core::DeterministicSelector selector(99);
  std::int64_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.batch_indices(step++, 128, 50'000));
  }
}
BENCHMARK(BM_PrfBatchSelection);

struct StepFixtureData {
  data::Dataset dataset;
  data::DatasetView view;
  std::unique_ptr<core::StepExecutor> executor;
  core::DeterministicSelector selector{5};

  StepFixtureData() {
    data::SyntheticImageConfig cfg;
    cfg.num_examples = 256;
    cfg.image_size = 8;
    cfg.seed = 3;
    dataset = data::make_synthetic_images(cfg);
    view = data::DatasetView::whole(dataset);
    nn::ModelConfig mc;
    mc.image_size = 8;
    mc.width = 4;
    mc.num_classes = 10;
    core::Hyperparams hp;
    hp.batch_size = 16;
    hp.steps_per_epoch = 1;
    executor = std::make_unique<core::StepExecutor>(
        nn::mini_resnet18_factory(mc, 1), hp);
  }
};

void BM_TrainingStep_MiniResNet18(benchmark::State& state) {
  static StepFixtureData fixture;
  std::int64_t step = 0;
  for (auto _ : state) {
    fixture.executor->run_steps(step++, 1, fixture.view, fixture.selector,
                                nullptr);
  }
}
BENCHMARK(BM_TrainingStep_MiniResNet18);

void BM_CheckpointSaveRestore(benchmark::State& state) {
  static StepFixtureData fixture;
  for (auto _ : state) {
    core::TrainState s = fixture.executor->save_state();
    fixture.executor->load_state(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_CheckpointSaveRestore);

void BM_ConvGemm_ResNet18_conv2(benchmark::State& state) {
  const auto shapes = sim::resnet18_conv_shapes();
  const sim::ConvLayerShape& s = shapes[1];  // conv2_x
  Rng rng(7);
  const Tensor input = Tensor::randn({1, s.in_channels, s.in_h, s.in_w}, rng);
  const Tensor weight = Tensor::randn({s.gemm_m(), s.gemm_k()}, rng, 0.05F);
  const Conv2dSpec spec{s.in_channels, s.out_channels, s.kernel, s.stride,
                        s.padding};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(weight, im2col(input, spec)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConvGemm_ResNet18_conv2);

}  // namespace

int main(int argc, char** argv) {
  run_kernel_harness();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
