// Microbenchmarks (google-benchmark) for the primitives on RPoL's hot
// paths: hashing (commitments), p-stable LSH digests, AMLayer derivation,
// training-step execution, and checkpoint state capture.

#include <benchmark/benchmark.h>

#include "core/amlayer.h"
#include "core/commitment.h"
#include "core/detsel.h"
#include "data/synthetic.h"
#include "lsh/pstable.h"
#include "nn/models.h"

namespace {
using namespace rpol;

void BM_Sha256_1MB(benchmark::State& state) {
  Bytes data(1 << 20, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 20));
}
BENCHMARK(BM_Sha256_1MB);

void BM_HashState_100k(benchmark::State& state) {
  core::TrainState s;
  s.model.resize(100'000, 0.5F);
  s.optimizer.resize(100'000, 0.25F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_state(s));
  }
}
BENCHMARK(BM_HashState_100k);

void BM_LshDigest(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  lsh::LshConfig cfg{{1.0, 4, 4}, dim, 7};
  lsh::PStableLsh hasher(cfg);
  Rng rng(1);
  std::vector<float> v(static_cast<std::size_t>(dim));
  rng.fill_normal(v, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.hash(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * dim *
                          16);
}
BENCHMARK(BM_LshDigest)->Arg(10'000)->Arg(100'000);

void BM_AmLayerDerivation(benchmark::State& state) {
  const Address address = Address::from_seed(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::derive_amlayer_weight(address, core::AmLayerConfig{}));
  }
}
BENCHMARK(BM_AmLayerDerivation);

void BM_PrfBatchSelection(benchmark::State& state) {
  core::DeterministicSelector selector(99);
  std::int64_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.batch_indices(step++, 128, 50'000));
  }
}
BENCHMARK(BM_PrfBatchSelection);

struct StepFixtureData {
  data::Dataset dataset;
  data::DatasetView view;
  std::unique_ptr<core::StepExecutor> executor;
  core::DeterministicSelector selector{5};

  StepFixtureData() {
    data::SyntheticImageConfig cfg;
    cfg.num_examples = 256;
    cfg.image_size = 8;
    cfg.seed = 3;
    dataset = data::make_synthetic_images(cfg);
    view = data::DatasetView::whole(dataset);
    nn::ModelConfig mc;
    mc.image_size = 8;
    mc.width = 4;
    mc.num_classes = 10;
    core::Hyperparams hp;
    hp.batch_size = 16;
    hp.steps_per_epoch = 1;
    executor = std::make_unique<core::StepExecutor>(
        nn::mini_resnet18_factory(mc, 1), hp);
  }
};

void BM_TrainingStep_MiniResNet18(benchmark::State& state) {
  static StepFixtureData fixture;
  std::int64_t step = 0;
  for (auto _ : state) {
    fixture.executor->run_steps(step++, 1, fixture.view, fixture.selector,
                                nullptr);
  }
}
BENCHMARK(BM_TrainingStep_MiniResNet18);

void BM_CheckpointSaveRestore(benchmark::State& state) {
  static StepFixtureData fixture;
  for (auto _ : state) {
    core::TrainState s = fixture.executor->save_state();
    fixture.executor->load_state(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_CheckpointSaveRestore);

}  // namespace

BENCHMARK_MAIN();
