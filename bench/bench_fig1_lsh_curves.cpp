// Figure 1: LSH matching probability vs. data distance under varied LSH
// parameters, with upper/lower bounds for similar/dissimilar data.
//
// Prints the analytic Pr_lsh(c, r, k, l) curves the figure plots, plus an
// empirical column measured with the actual p-stable hash family over
// random weight-vector pairs, validating the analytic model end to end.

#include <cmath>

#include "bench_util.h"
#include "lsh/pstable.h"
#include "lsh/tuning.h"

namespace {

using namespace rpol;
using namespace rpol::lsh;

// Empirical match rate of the real family for vectors at distance c.
double empirical_match_rate(double c, const LshParams& params, int trials) {
  constexpr std::int64_t kDim = 128;
  int matches = 0;
  for (int t = 0; t < trials; ++t) {
    LshConfig cfg{params, kDim, static_cast<std::uint64_t>(9000 + t)};
    PStableLsh lsh(cfg);
    Rng rng(static_cast<std::uint64_t>(t));
    std::vector<float> base(kDim);
    rng.fill_normal(base, 0.0F, 1.0F);
    std::vector<float> direction(kDim);
    rng.fill_normal(direction, 0.0F, 1.0F);
    double norm = 0.0;
    for (const float d : direction) norm += static_cast<double>(d) * d;
    norm = std::sqrt(norm);
    std::vector<float> other = base;
    for (std::int64_t i = 0; i < kDim; ++i) {
      other[static_cast<std::size_t>(i)] +=
          static_cast<float>(c * direction[static_cast<std::size_t>(i)] / norm);
    }
    if (lsh_match(lsh.hash(base), lsh.hash(other))) ++matches;
  }
  return static_cast<double>(matches) / trials;
}

}  // namespace

int main() {
  rpol::bench::print_header(
      "Fig. 1 — LSH matching probability vs distance, varied {r,k,l}",
      "Sec. II-C Fig. 1: matching-probability curves with similar-data upper "
      "bound and dissimilar-data lower bound");

  const std::vector<LshParams> families = {
      {1.0, 1, 1}, {1.0, 2, 2}, {1.0, 4, 4}, {2.0, 4, 4}, {1.0, 8, 2},
  };

  std::printf("\n%-10s", "dist c");
  for (const auto& f : families) {
    std::printf("  r=%.0f,k=%d,l=%d(an/emp)", f.r, f.k, f.l);
  }
  std::printf("\n");
  for (double c = 0.125; c <= 8.0 + 1e-9; c *= 2.0) {
    std::printf("%-10.3f", c);
    for (const auto& f : families) {
      const double analytic = match_probability(c, f);
      const double empirical = empirical_match_rate(c, f, 300);
      std::printf("       %.3f/%.3f    ", analytic, empirical);
    }
    std::printf("\n");
  }

  // The figure's "green and red lines": bounds at the tuned working point.
  const double alpha = 1.0, beta = 5.0;
  const TuningResult tuned = optimize_lsh(alpha, beta, 16);
  std::printf(
      "\nTuned family for (alpha=%.1f, beta=%.1f, K_lsh=16): r=%.3f k=%d l=%d\n",
      alpha, beta, tuned.params.r, tuned.params.k, tuned.params.l);
  std::printf("  similar-data bound    Pr_lsh(alpha) = %.4f  (paper target ~0.95)\n",
              tuned.pr_alpha);
  std::printf("  dissimilar-data bound Pr_lsh(beta)  = %.4f  (paper target ~0.05)\n",
              tuned.pr_beta);
  const TuningResult tuned24 = optimize_lsh(alpha, beta, 24);
  std::printf(
      "  (K_lsh=24 reaches the quoted 95/5 point: Pr(a)=%.4f Pr(b)=%.4f, "
      "k=%d l=%d)\n",
      tuned24.pr_alpha, tuned24.pr_beta, tuned24.params.k, tuned24.params.l);

  rpol::bench::BenchRecorder recorder("bench_fig1");
  recorder.add("tuned.k16.pr_alpha", "prob", tuned.pr_alpha,
               /*higher_is_better=*/true);
  recorder.add("tuned.k16.pr_beta", "prob", tuned.pr_beta);
  recorder.add("tuned.k24.pr_alpha", "prob", tuned24.pr_alpha,
               /*higher_is_better=*/true);
  recorder.add("tuned.k24.pr_beta", "prob", tuned24.pr_beta);
  recorder.write();
  return 0;
}
