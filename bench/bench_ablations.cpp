// Ablation studies for RPoL's design choices (beyond the paper's tables):
//
//   1. double-check strategy ON vs OFF: without it, LSH fuzzy-matching
//      misses reject honest workers (false negatives), the failure mode
//      Sec. V-C's double-check exists to prevent;
//   2. K_lsh budget sweep: matching-quality frontier vs hashing cost;
//   3. checkpoint-interval sweep: storage/communication vs per-transition
//      verification compute;
//   4. sample count q sweep: detection probability of a 50%-honest spoofer
//      vs verification cost, compared with the Theorem-2 bound;
//   5. adaptive vs one-shot calibration (calibrate every epoch vs epoch 0).

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "core/calibrate.h"
#include "core/costing.h"
#include "sim/stats.h"
#include "lsh/tuning.h"

namespace {
using namespace rpol;

void ablate_double_check() {
  std::printf("\n[1] double-check ON vs OFF (honest worker, 200 LSH trials at "
              "distance alpha)\n");
  // At the tuned working point Pr(alpha) ~ 0.93 at K=16: without the
  // double-check ~7% of honest checkpoints would be rejected outright.
  const lsh::TuningResult tuned = lsh::optimize_lsh(1.0, 5.0, 16);
  std::printf("  Pr_lsh(alpha) = %.3f => expected honest LSH-miss rate %.1f%%\n",
              tuned.pr_alpha, 100.0 * (1.0 - tuned.pr_alpha));
  std::printf("  double-check OFF: honest rejection rate per sample = %.1f%%, "
              "per epoch (q=3) = %.1f%%\n",
              100.0 * (1.0 - tuned.pr_alpha),
              100.0 * (1.0 - std::pow(tuned.pr_alpha, 3)));
  std::printf("  double-check ON : honest rejection rate = 0 (distance test "
              "rescues every miss; Fig. 5 bench e2eFN column)\n");
}

void ablate_k_lsh() {
  std::printf("\n[2] K_lsh budget sweep (alpha=1, beta=5)\n");
  std::printf("  %-8s %-10s %-10s %-14s %-18s\n", "K_lsh", "Pr(alpha)",
              "Pr(beta)", "SAW objective", "hash GFLOPs/ckpt*");
  for (const int k : {4, 8, 16, 24, 32, 64}) {
    const lsh::TuningResult t = lsh::optimize_lsh(1.0, 5.0, k);
    // *for a ResNet50-sized weight vector (23.77M params, 2 FLOPs/proj).
    const double gflops = 2.0 * 23.77e6 * k / 1e9;
    std::printf("  %-8d %-10.4f %-10.4f %-14.4f %-18.3f\n", k, t.pr_alpha,
                t.pr_beta, t.objective, gflops);
  }
}

void ablate_checkpoint_interval() {
  std::printf("\n[3] checkpoint interval sweep (ResNet50/ImageNet, 100 workers, "
              "RPoLv2)\n");
  std::printf("  %-10s %-16s %-18s %-20s\n", "interval", "storage/worker GB",
              "manager verify s", "ckpts committed");
  for (const std::int64_t interval : {1, 2, 5, 10, 20}) {
    core::CostScenario s;
    s.scheme = core::Scheme::kRPoLv2;
    s.model = sim::real_resnet50();
    s.dataset = sim::real_imagenet();
    s.num_workers = 100;
    s.checkpoint_interval = interval;
    const auto report = core::estimate_epoch_cost(s);
    std::printf("  %-10lld %-16.2f %-18.0f %-20lld\n",
                static_cast<long long>(interval),
                static_cast<double>(report.storage_bytes_per_worker) /
                    (1024.0 * 1024.0 * 1024.0),
                report.manager_verify_s,
                static_cast<long long>(core::checkpoints_per_epoch(s)));
  }
  std::printf("  (larger intervals cut storage but raise per-sample verify "
              "compute and reproduction error — Fig. 4 bench)\n");
}

void ablate_sample_count() {
  std::printf("\n[4] sample count q: detection of a 50%%-honest spoofer "
              "(20 transitions)\n");
  std::printf("  %-6s %-22s %-22s %-18s\n", "q", "Theorem-2 evasion bound",
              "simulated evasion", "verify cost (xq)");
  for (const std::int64_t q : {1, 2, 3, 5, 8}) {
    // Closed form with Pr_lsh(beta)=0 (distance test catches all spoofs).
    const double bound = std::pow(0.5, static_cast<double>(q));
    int evasions = 0;
    constexpr int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
      Bytes b;
      append_u64(b, static_cast<std::uint64_t>(t));
      bool caught = false;
      for (const auto s : core::sample_transitions(3, sha256(b), 20, q)) {
        if (s >= 10) caught = true;
      }
      if (!caught) ++evasions;
    }
    std::printf("  %-6lld %-22.4f %-22.4f %-18lld\n", static_cast<long long>(q),
                bound, static_cast<double>(evasions) / kTrials,
                static_cast<long long>(q));
  }
}

void ablate_adaptive_calibration() {
  std::printf("\n[5] adaptive (every-epoch) vs one-shot calibration\n");
  const auto task = bench::make_mlp_task(9090, 8, 2);
  for (const bool adaptive : {true, false}) {
    core::PoolConfig cfg;
    cfg.scheme = core::Scheme::kRPoLv2;
    cfg.hp = task->hp;
    cfg.epochs = 6;
    cfg.seed = 31;
    cfg.calibrate_every_epoch = adaptive;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 6; ++w) {
      core::WorkerSpec spec;
      spec.policy = w == 0 ? std::unique_ptr<core::WorkerPolicy>(
                                 std::make_unique<core::SpoofPolicy>(0.1, 0.5))
                           : std::make_unique<core::HonestPolicy>();
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::MiningPool pool(cfg, task->factory, task->dataset, task->split.test,
                          std::move(workers));
    const auto report = pool.run();
    std::int64_t honest_rejections = 0, adv_detections = 0;
    for (const auto& e : report.epochs) {
      for (std::size_t w = 0; w < e.accepted.size(); ++w) {
        if (w == 0 && !e.accepted[w]) ++adv_detections;
        if (w != 0 && !e.accepted[w]) ++honest_rejections;
      }
    }
    std::printf("  %-22s adv detected %lld/6 epochs, honest false rejections "
                "%lld, final acc %.4f\n",
                adaptive ? "adaptive (per-epoch)" : "one-shot (epoch 0)",
                static_cast<long long>(adv_detections),
                static_cast<long long>(honest_rejections),
                report.final_accuracy);
  }
  std::printf("  (reproduction errors drift across epochs; per-epoch "
              "calibration keeps alpha/beta matched to the drift)\n");
}

void ablate_noniid_calibration() {
  std::printf("\n[6] i.i.d. assumption of the adaptive calibration (Sec. V-C)\n");
  std::printf("  The manager estimates alpha from ITS OWN sub-dataset; label-\n"
              "  skewed partitions make worker error scales drift from it.\n");
  std::printf("  %-14s %-18s %-18s %-16s\n", "iid fraction",
              "manager alpha", "worker max err", "covered by beta?");
  const auto task = bench::make_mlp_task(7777, 15, 3);
  core::Hyperparams hp = task->hp;
  hp.learning_rate = 1e-3F;  // stable regime for clean error comparison
  core::StepExecutor init(task->factory, hp);
  const core::TrainState initial = init.save_state();

  for (const double iid : {1.0, 0.5, 0.0}) {
    const auto parts =
        data::partition_label_skew(task->dataset, 4, iid, 4242);
    core::EpochContext mgr_ctx;
    mgr_ctx.nonce = 11;
    mgr_ctx.initial = initial;
    mgr_ctx.dataset = &parts[0];
    core::CalibrationConfig ccfg;
    ccfg.alpha_mode = core::AlphaMode::kMaxPlusSd;
    const auto calib = core::calibrate_epoch(
        task->factory, hp, mgr_ctx, sim::device_g3090(), sim::device_ga10(),
        99, ccfg);

    double worker_max = 0.0;
    for (std::size_t w = 1; w < parts.size(); ++w) {
      core::EpochContext wrk_ctx = mgr_ctx;
      wrk_ctx.nonce = 20 + w;
      wrk_ctx.dataset = &parts[w];
      const auto errs = core::measure_reproduction_errors(
          task->factory, hp, wrk_ctx, sim::device_ga10(), 100 + w,
          sim::device_g3090(), 200 + w);
      worker_max = std::max(worker_max, sim::max_value(errs));
    }
    std::printf("  %-14.1f %-18.3e %-18.3e %s (x%.1f of alpha)\n", iid,
                calib.alpha, worker_max,
                worker_max <= calib.beta ? "yes" : "NO ",
                worker_max / calib.alpha);
  }
  std::printf("  (i.i.d. parts keep worker errors within beta = 5*alpha; "
              "strong skew can break the manager's estimate)\n");
}

}  // namespace

int main() {
  bench::print_header("Ablations — double-check, K_lsh, checkpoint interval, "
                      "q, adaptive calibration, non-i.i.d. data",
                      "design choices called out in DESIGN.md / Sec. V");
  const double bench_t0 = bench::now_seconds();
  ablate_double_check();
  ablate_k_lsh();
  ablate_checkpoint_interval();
  ablate_sample_count();
  ablate_adaptive_calibration();
  ablate_noniid_calibration();
  bench::BenchRecorder recorder("bench_ablations");
  recorder.add("wall_s", "s", bench::now_seconds() - bench_t0);
  recorder.write();
  return 0;
}
