// Future-work extensions bench (Sec. IX): quantifies the two features the
// paper leaves open, implemented in this repository.
//
//   A. Decentralized verification: committee size vs (a) wall-clock
//      verification speedup and (b) robustness to colluding verifiers.
//   B. Asynchronous pooled learning: heterogeneous-speed workers under
//      sync vs async updating — async keeps fast workers busy (more
//      applied updates in the same ticks) while RPoL verification keeps
//      rejecting async adversaries.

#include "bench_util.h"
#include "core/async_pool.h"
#include "core/decentralized.h"
#include "data/partition.h"

namespace {
using namespace rpol;

void bench_decentralized() {
  std::printf("\n[A] decentralized verification: committee scaling\n");
  const auto task = bench::make_mlp_task(8181, 18, 3);
  const auto view = data::DatasetView::whole(task->dataset);
  core::StepExecutor init(task->factory, task->hp);
  core::EpochContext ctx;
  ctx.nonce = 31;
  ctx.initial = init.save_state();
  ctx.dataset = &view;

  core::StepExecutor worker(task->factory, task->hp);
  sim::DeviceExecution wd(sim::device_ga10(), 1);
  core::HonestPolicy honest;
  const core::EpochTrace trace = honest.produce_trace(worker, ctx, wd);
  const core::Commitment commitment = core::commit_v1(trace);

  std::printf("  %-12s %-12s %-16s %-18s %-14s\n", "verifiers", "r/sample",
              "total steps", "critical path", "speedup");
  for (const std::size_t pool_size : {3u, 5u, 9u, 15u}) {
    core::DecentralizedConfig cfg;
    cfg.samples_q = 6;  // verify every transition for a clear picture
    cfg.verifiers_per_sample = 3;
    cfg.beta = 2e-3;
    core::DecentralizedVerifier verifier(task->factory, task->hp, cfg);
    std::vector<core::VerifierNode> committee;
    const auto devices = sim::all_devices();
    for (std::size_t i = 0; i < pool_size; ++i) {
      committee.push_back({core::VerifierBehavior::kHonest,
                           devices[i % devices.size()], 100 + i});
    }
    const auto result = verifier.verify(commitment, trace, ctx,
                                        core::hash_state(ctx.initial), committee);
    std::printf("  %-12zu %-12d %-16lld %-18lld x%.1f %s\n", pool_size,
                3, static_cast<long long>(result.total_reexecuted_steps),
                static_cast<long long>(result.critical_path_steps),
                static_cast<double>(result.total_reexecuted_steps) /
                    static_cast<double>(result.critical_path_steps),
                result.accepted ? "" : "(REJECTED?)");
  }

  std::printf("\n  Byzantine tolerance at 9 verifiers, r=3 (spoofing prover):\n");
  core::StepExecutor adv_exec(task->factory, task->hp);
  sim::DeviceExecution ad(sim::device_ga10(), 2);
  core::SpoofPolicy spoof(0.2, 0.5);
  const core::EpochTrace bad = spoof.produce_trace(adv_exec, ctx, ad);
  const core::Commitment bad_commit = core::commit_v1(bad);
  std::printf("  %-14s %-12s\n", "colluders", "verdict");
  for (const int colluders : {0, 1, 2, 4, 9}) {
    core::DecentralizedConfig cfg;
    cfg.samples_q = 3;
    cfg.verifiers_per_sample = 3;
    cfg.beta = 2e-3;
    core::DecentralizedVerifier verifier(task->factory, task->hp, cfg);
    std::vector<core::VerifierNode> committee;
    const auto devices = sim::all_devices();
    for (std::size_t i = 0; i < 9; ++i) {
      committee.push_back({static_cast<int>(i) < colluders
                               ? core::VerifierBehavior::kColludeAccept
                               : core::VerifierBehavior::kHonest,
                           devices[i % devices.size()], 200 + i});
    }
    const auto verdict = verifier.verify(bad_commit, bad, ctx,
                                         core::hash_state(ctx.initial), committee);
    std::printf("  %-14d %s\n", colluders,
                verdict.accepted ? "spoofer ACCEPTED (collusion won)"
                                 : "spoofer rejected");
  }
}

void bench_async() {
  std::printf("\n[B] asynchronous pooled learning (heterogeneous workers)\n");
  const auto task = bench::make_mlp_task(8282, 8, 2);

  auto build_workers = [&](std::size_t num_adv) {
    std::vector<core::AsyncWorkerSpec> specs;
    const std::vector<std::int64_t> periods{1, 1, 2, 3, 4, 6};
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < periods.size(); ++w) {
      core::AsyncWorkerSpec spec;
      if (w < num_adv) {
        // Fabricators inject random-walk "updates" — actively poisonous
        // when an insecure pool applies them.
        spec.policy = std::make_unique<core::FabricationPolicy>(0.05F, 7 + w);
      } else {
        spec.policy = std::make_unique<core::HonestPolicy>();
      }
      spec.device = devices[w % devices.size()];
      spec.period = periods[w];
      specs.push_back(std::move(spec));
    }
    return specs;
  };

  std::printf("  %-26s %-12s %-10s %-10s %-10s\n", "setting", "final acc",
              "applied", "rejected", "max stale");
  for (const std::size_t num_adv : {0u, 2u}) {
    for (const bool verify : {true, false}) {
      core::AsyncPoolConfig cfg;
      cfg.hp = task->hp;
      cfg.ticks = 18;
      cfg.beta = 2e-3;
      cfg.seed = 44;
      cfg.verify = verify;
      const auto split = data::train_test_split(task->dataset, 0.2, 3);
      core::AsyncMiningPool pool(cfg, task->factory, task->dataset, split.test,
                                 build_workers(num_adv));
      const core::AsyncRunReport report = pool.run();
      std::int64_t max_stale = 0;
      for (const auto& s : report.submissions) {
        max_stale = std::max(max_stale, s.staleness);
      }
      char label[64];
      std::snprintf(label, sizeof label, "%zu adversaries, %s", num_adv,
                    verify ? "RPoL verify" : "insecure");
      std::printf("  %-26s %-12.4f %-10lld %-10lld %-10lld\n", label,
                  report.final_accuracy, static_cast<long long>(report.applied),
                  static_cast<long long>(report.rejected),
                  static_cast<long long>(max_stale));
    }
  }
  std::printf("  (verification drops every spoofed async submission; honest\n"
              "   throughput is untouched because checks are per-submission)\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Future-work extensions — decentralized verification & async learning",
      "Sec. IX: smart-contract fair exchange is tested in chain_escrow_test; "
      "here: committee verification scaling and async pooled training");
  const double bench_t0 = bench::now_seconds();
  bench_decentralized();
  bench_async();
  bench::BenchRecorder recorder("bench_extensions");
  recorder.add("wall_s", "s", bench::now_seconds() - bench_t0);
  recorder.write();
  return 0;
}
