// Sharded-manager scale bench: submissions/sec and peak RSS for a
// mining-pool-sized worker set (ISSUE 10 / Sec. II's 10^3..10^4 regime)
// driven through core/sharded_pool.h with bounded admission queues.
//
// Two regimes bracket the manager's operating envelope:
//   * verifier_bound  — lossless transport: wall time is dominated by
//     sampled re-execution, i.e. the work the shards exist to spread;
//   * network_bound   — a drop/delay-heavy fault plan: sessions burn their
//     retry budgets, so the manager spends its time on retransmitted legs
//     and failed sessions rather than verification.
//
// Emits rpol.bench.v1 rows (obs/benchreg.h): per-regime submissions/sec
// (higher is better) plus an explicit peak-RSS row, so the tier-1 advisory
// bench-diff can flag both throughput and memory regressions
// (`rpol bench-diff --mem-tolerance`). Every record's env column also
// carries peak_rss_bytes automatically.
//
// Scale knobs: --workers N (default 1024, the ISSUE's >= 1k floor),
// --epochs N (default 2), --shards N (default 8; RPOL_SHARDS also applies
// when unset, matching ShardedPoolConfig resolution).

#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "core/sharded_pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fault/fault.h"
#include "nn/models.h"
#include "obs/mem.h"

namespace {
using namespace rpol;

struct ScaleConfig {
  std::size_t workers = 1024;
  std::int64_t epochs = 2;
  int shards = 8;
};

struct RegimeResult {
  double subs_per_s = 0.0;
  double wall_s = 0.0;
  std::int64_t submissions = 0;       // sessions that completed every leg
  std::int64_t accepted = 0;
  std::int64_t session_failures = 0;
  std::int64_t retransmissions = 0;
  std::int64_t requeued = 0;
  std::int64_t max_queue_depth = 0;
  std::uint64_t wan_bytes = 0;
};

// One full sharded run; submissions/sec counts sessions the manager fully
// processed (delivered AND verified) per wall-clock second.
RegimeResult run_regime(const ScaleConfig& scale,
                        const fault::FaultPlan* plan) {
  // The per-worker task is deliberately tiny: the bench loads the MANAGER
  // (admission, sharded verification, health bookkeeping), not the workers.
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.num_examples = static_cast<std::int64_t>(8 * (scale.workers + 1));
  data_cfg.features = 8;
  data_cfg.class_separation = 1.5F;
  data_cfg.seed = 9001;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::TrainTestSplit split =
      data::train_test_split(dataset, 0.125, 17);

  core::ShardedPoolConfig cfg;
  cfg.base.scheme = core::Scheme::kRPoLv2;
  cfg.base.hp.learning_rate = 0.02F;
  cfg.base.hp.batch_size = 8;
  cfg.base.hp.steps_per_epoch = 2;
  cfg.base.hp.checkpoint_interval = 1;
  cfg.base.epochs = scale.epochs;
  cfg.base.samples_q = 1;
  cfg.base.seed = 71;
  cfg.base.fault_plan = plan;
  cfg.base.eviction_threshold = 3;
  cfg.shards = scale.shards;
  cfg.queue_capacity = 64;
  cfg.verify_batch = 16;
  cfg.overflow = core::AdmissionPolicy::kRequeue;

  std::vector<core::WorkerSpec> workers;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < scale.workers; ++w) {
    core::WorkerSpec spec;
    spec.policy = std::make_unique<core::HonestPolicy>();
    spec.device = devices[w % devices.size()];
    workers.push_back(std::move(spec));
  }

  core::ShardedPool pool(std::move(cfg), nn::mlp_factory(8, {8}, 4, 33),
                         dataset, split.test, std::move(workers));

  const double start = bench::now_seconds();
  const core::PoolRunReport report = pool.run();
  const double wall = bench::now_seconds() - start;

  RegimeResult r;
  r.wall_s = wall;
  for (const core::EpochReport& epoch : report.epochs) {
    for (const bool p : epoch.participated) r.submissions += p ? 1 : 0;
    for (const bool a : epoch.accepted) r.accepted += a ? 1 : 0;
    r.session_failures += epoch.session_failures;
    r.retransmissions += epoch.retransmissions;
    r.requeued += epoch.admission_requeued;
    r.max_queue_depth = std::max(r.max_queue_depth, epoch.max_queue_depth);
    r.wan_bytes += epoch.bytes_this_epoch;
  }
  r.subs_per_s = wall > 0.0 ? static_cast<double>(r.submissions) / wall : 0.0;
  return r;
}

void print_regime(const char* name, const RegimeResult& r) {
  std::printf("%-16s %10.0f subs/s  wall %6.2fs  verified %6lld  "
              "failed %5lld  retrans %6lld  requeued %6lld  depth<=%lld  "
              "WAN %.1f MB\n",
              name, r.subs_per_s, r.wall_s,
              static_cast<long long>(r.submissions),
              static_cast<long long>(r.session_failures),
              static_cast<long long>(r.retransmissions),
              static_cast<long long>(r.requeued),
              static_cast<long long>(r.max_queue_depth),
              static_cast<double>(r.wan_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main(int argc, char** argv) {
  ScaleConfig scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      scale.workers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      scale.epochs = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      scale.shards = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workers N] [--epochs N] [--shards N]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "Pool scale — sharded manager throughput at " +
          std::to_string(scale.workers) + " workers, " +
          std::to_string(scale.shards) + " shards",
      "Sec. II mining-pool scale (10^3..10^4 workers), ISSUE 10 tentpole");

  // Verifier-bound: perfect transport, all time in sampled re-execution.
  const RegimeResult verifier_bound = run_regime(scale, nullptr);

  // Network-bound: heavy drop/delay burns retry budgets on every leg.
  fault::FaultProfile lossy;
  lossy.drop = 0.25;
  lossy.delay = 0.10;
  const fault::FaultPlan plan = fault::FaultPlan::transport(lossy, 4242);
  const RegimeResult network_bound = run_regime(scale, &plan);

  std::printf("\n%zu workers over %d shards, %lld epochs, queue cap 64 "
              "(requeue), verify waves of 16\n\n",
              scale.workers, scale.shards,
              static_cast<long long>(scale.epochs));
  print_regime("verifier_bound", verifier_bound);
  print_regime("network_bound", network_bound);

  const std::uint64_t peak_rss = obs::read_proc_rss().vm_hwm_bytes;
  std::printf("\npeak RSS: %.1f MB\n",
              static_cast<double>(peak_rss) / (1024.0 * 1024.0));

  bench::BenchRecorder recorder("bench_pool_scale");
  recorder.add("pool.scale.verifier_bound.subs_per_s", "subs/s",
               verifier_bound.subs_per_s, /*higher_is_better=*/true);
  recorder.add("pool.scale.network_bound.subs_per_s", "subs/s",
               network_bound.subs_per_s, /*higher_is_better=*/true);
  recorder.add("pool.scale.network_bound.retransmissions", "count",
               static_cast<double>(network_bound.retransmissions));
  recorder.add("pool.scale.peak_rss_bytes", "bytes",
               static_cast<double>(peak_rss));
  const std::string path = recorder.write();
  if (!path.empty()) std::printf("bench registry: %s\n", path.c_str());
  return 0;
}
