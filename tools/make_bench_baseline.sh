#!/usr/bin/env bash
# Regenerates BENCH_baseline.json — the committed rpol.bench.v1 registry that
# seeds the performance trajectory (`rpol bench-diff BENCH_baseline.json ...`).
#
# Only the smoke-shape benches feed the baseline (the full suite takes
# minutes): bench_micro's kernel, crypto/commitment, blocked-layout conv, and
# streaming-checkpoint harnesses (wall-clock GFLOP/s, SHA/commit throughput,
# direct-vs-fallback speedups, and core.stream.* bounded-memory rows),
# bench_table3's deterministic cost-model rows, and bench_pool_scale's
# sharded-manager pool.scale.* rows (submissions/sec at >= 1k workers plus an
# explicit peak-RSS row). All write into the same file via RPOL_BENCH_FILE;
# BenchRecorder overlay-merges on write. Every record's env
# now carries peak_rss_bytes (VmHWM at record time), so a regenerated
# baseline lets `rpol bench-diff --mem-tolerance 0.xx` gate memory too.
#
# Usage: tools/make_bench_baseline.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

for bin in bench_micro bench_table3_overhead bench_pool_scale; do
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    echo "missing $BUILD/bench/$bin — build first: cmake --build $BUILD -j" >&2
    exit 1
  fi
done

rm -f BENCH_baseline.json

# The kernel harness always runs; '^$' filters out the google-benchmark
# suite so the baseline pass stays short.
RPOL_BENCH_FILE=BENCH_baseline.json \
  "$BUILD/bench/bench_micro" --benchmark_filter='^$' >/dev/null

RPOL_BENCH_FILE=BENCH_baseline.json \
  "$BUILD/bench/bench_table3_overhead" >/dev/null

RPOL_BENCH_FILE=BENCH_baseline.json \
  "$BUILD/bench/bench_pool_scale" >/dev/null

echo "wrote BENCH_baseline.json:"
"$BUILD/tools/rpol" bench-diff BENCH_baseline.json BENCH_baseline.json
