// rpol — command-line front end to the RPoL library.
//
// Subcommands:
//   simulate    run a mining-pool simulation and print per-epoch reports
//   calibrate   run one adaptive-calibration pass (alpha/beta/LSH params)
//   economics   print Theorem-2/3 sampling tables for given parameters
//   costs       estimate real-scale epoch costs (Tables II/III model)
//   trace       summarize a JSONL trace produced with RPOL_TRACE=1
//   timeline    reconstruct per-epoch causal trees from a trace
//   health      summarize an rpol.health.v1 file (worker scores + memory)
//   watch       tail + render an rpol.live.v1 stream (RPOL_LIVE=1 runs)
//   alerts      summarize the alerts in an rpol.live.v1 stream
//   bench-diff  compare two rpol.bench.v1 files with a tolerance gate
//   bench-merge overlay-merge rpol.bench.v1 files into one registry
//
// Examples:
//   rpol simulate --workers 8 --adversaries 3 --adv-type replay
//                 --scheme v2 --epochs 6
//   rpol economics --pr-beta 0.05 --target 0.01
//   rpol costs --model vgg16 --workers 100 --scheme v1
//   RPOL_TRACE=1 rpol simulate --epochs 2 && rpol trace --verify-refs
//   RPOL_TRACE=1 rpol simulate --epochs 2 && rpol health
//   rpol timeline --file rpol_trace.jsonl --export trace.perfetto.json
//   rpol bench-diff BENCH_baseline.json BENCH_current.json --tolerance 0.35
//                   --mem-tolerance 0.25
//
// `simulate` exports the registry to rpol_trace.jsonl (or RPOL_TRACE_FILE)
// when RPOL_TRACE is set; `trace`/`timeline` load and analyze such a file.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/costing.h"
#include "core/economics.h"
#include "core/rewards.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "obs/analyze.h"
#include "obs/benchreg.h"
#include "obs/health.h"
#include "obs/health_read.h"
#include "obs/live.h"
#include "obs/live_read.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "obs/timeline.h"

namespace {
using namespace rpol;

// Minimal argument parser: `--key value` pairs, bare `--flag` switches
// (value "1" when the next token is another flag or the end), and anything
// without a leading `--` collected as a positional.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        positional_.emplace_back(argv[i]);
        continue;
      }
      const std::string key(argv[i] + 2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_.insert_or_assign(key, std::string(argv[i + 1]));
        ++i;
      } else {
        values_.insert_or_assign(key, std::string("1"));
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stol(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  bool has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

core::Scheme parse_scheme(const std::string& name) {
  if (name == "baseline") return core::Scheme::kBaseline;
  if (name == "v1") return core::Scheme::kRPoLv1;
  if (name == "v2") return core::Scheme::kRPoLv2;
  throw std::invalid_argument("unknown scheme: " + name +
                              " (want baseline|v1|v2)");
}

int cmd_simulate(const Args& args) {
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 6));
  const auto adversaries =
      static_cast<std::size_t>(args.get_int("adversaries", 2));
  const std::string adv_type = args.get("adv-type", "replay");
  const core::Scheme scheme = parse_scheme(args.get("scheme", "v2"));
  const auto epochs = args.get_int("epochs", 6);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  if (adversaries > workers) {
    throw std::invalid_argument("more adversaries than workers");
  }

  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.num_examples = 4096;
  data_cfg.features = 32;
  data_cfg.class_separation = 1.2F;
  data_cfg.seed = derive_seed(seed, 1);
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::TrainTestSplit split =
      data::train_test_split(dataset, 0.2, derive_seed(seed, 2));

  core::PoolConfig cfg;
  cfg.scheme = scheme;
  cfg.hp.learning_rate = 0.015F;
  cfg.hp.batch_size = 32;
  cfg.hp.steps_per_epoch = 10;
  cfg.hp.checkpoint_interval = 2;
  cfg.epochs = epochs;
  cfg.seed = seed;

  std::vector<core::WorkerSpec> specs;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < workers; ++w) {
    core::WorkerSpec spec;
    if (w < adversaries) {
      if (adv_type == "replay") {
        spec.policy = std::make_unique<core::ReplayPolicy>();
      } else if (adv_type == "spoof") {
        spec.policy = std::make_unique<core::SpoofPolicy>(0.1, 0.5);
      } else if (adv_type == "fabricate") {
        spec.policy = std::make_unique<core::FabricationPolicy>();
      } else {
        throw std::invalid_argument("unknown adv-type (replay|spoof|fabricate)");
      }
    } else {
      spec.policy = std::make_unique<core::HonestPolicy>();
    }
    spec.device = devices[w % devices.size()];
    specs.push_back(std::move(spec));
  }

  // Peak-RSS sampling rides along only when tracing is on: the sampler is
  // pure observation, but there is no reason to spin a thread otherwise.
  // Started before the pool is built so the executors' tagged allocations
  // fall inside the sampling window.
  std::optional<obs::RssSampler> rss;
  if (obs::enabled()) rss.emplace(std::chrono::milliseconds(10));
  // Live telemetry (RPOL_LIVE=1): background flusher + alert engine + crash
  // flight recorder. Pure observer — started before the pool so the first
  // snapshots cover setup; nullptr when the surface is off.
  std::unique_ptr<obs::LiveFlusher> live =
      obs::maybe_start_live("rpol_live.jsonl");
  core::MiningPool pool(cfg, nn::mlp_factory(32, {32, 16}, 10, derive_seed(seed, 3)),
                        dataset, split.test, std::move(specs));
  std::printf("scheme=%s workers=%zu adversaries=%zu (%s) epochs=%ld\n",
              core::scheme_name(scheme).c_str(), workers, adversaries,
              adv_type.c_str(), epochs);
  std::printf("%-7s %-10s %-10s %-12s %-12s %-10s\n", "epoch", "test acc",
              "rejected", "alpha", "beta", "MB");
  const core::PoolRunReport report = pool.run();
  if (rss.has_value()) rss->stop();
  for (const auto& e : report.epochs) {
    std::printf("%-7lld %-10.4f %lld/%zu%-5s %-12.2e %-12.2e %-10.2f\n",
                static_cast<long long>(e.epoch), e.test_accuracy,
                static_cast<long long>(e.rejected_count), workers, "", e.alpha,
                e.beta,
                static_cast<double>(e.bytes_this_epoch) / (1024.0 * 1024.0));
  }
  const auto counts = core::verified_epoch_counts(report);
  const auto payout = core::distribute_rewards(10'000, counts);
  std::printf("final accuracy %.4f; reward split (10000 units, 2.5%% fee):",
              report.final_accuracy);
  for (const auto p : payout.worker_payouts) {
    std::printf(" %llu", static_cast<unsigned long long>(p));
  }
  std::printf("\n");
  const std::string trace_path = obs::maybe_export("rpol_trace.jsonl");
  if (!trace_path.empty()) {
    std::printf("trace written to %s (summarize with `rpol trace --file %s`)\n",
                trace_path.c_str(), trace_path.c_str());
  }
  obs::RssSampler::Summary rss_summary;
  if (rss.has_value()) rss_summary = rss->summary();
  const std::string health_path = obs::maybe_export_health(
      "rpol_health.jsonl", pool.health(),
      rss.has_value() ? &rss_summary : nullptr);
  if (!health_path.empty()) {
    std::printf("health written to %s (summarize with `rpol health --file "
                "%s`)\n",
                health_path.c_str(), health_path.c_str());
  }
  if (live != nullptr) {
    live->stop();  // final snapshot covering the run's end state
    std::printf("live stream written to %s (%llu snapshot(s), %llu alert(s); "
                "render with `rpol watch --once --file %s`)\n",
                live->path().c_str(),
                static_cast<unsigned long long>(live->snapshots_written()),
                static_cast<unsigned long long>(live->alerts_emitted()),
                live->path().c_str());
  }
  return 0;
}

int cmd_trace(const Args& args) {
  const std::string path = args.get("file", "rpol_trace.jsonl");
  const bool strict = args.has("strict");
  const obs::Trace trace = obs::load_trace_file(path, strict);
  std::printf("trace %s: %zu spans, %zu counters, %zu histograms\n",
              path.c_str(), trace.spans.size(), trace.counters.size(),
              trace.histograms.size());
  obs::print_trace_summary(trace, stdout);
  int rc = 0;
  if (trace.skipped_lines > 0) {
    // Already detailed by print_trace_summary; --strict would have thrown
    // before reaching here, so this only flags the tolerant path's verdict.
    std::printf("note: %zu malformed line(s) skipped (rerun with --strict to "
                "fail on them)\n",
                trace.skipped_lines);
  }
  if (args.has("verify-refs")) {
    const obs::RefCheck refs = obs::verify_refs(trace);
    if (refs.ok()) {
      std::printf("verify-refs: OK — every parent/link among %zu spans "
                  "resolves in-file\n",
                  refs.total_spans);
    } else {
      std::printf("verify-refs: FAILED — %zu orphan parent(s), %zu orphan "
                  "link(s) out of %zu spans\n",
                  refs.orphan_parents.size(), refs.orphan_links.size(),
                  refs.total_spans);
      for (const auto id : refs.orphan_parents) {
        std::printf("  span %llu: parent missing\n",
                    static_cast<unsigned long long>(id));
      }
      for (const auto id : refs.orphan_links) {
        std::printf("  span %llu: link missing\n",
                    static_cast<unsigned long long>(id));
      }
      rc = 1;
    }
  }
  return rc;
}

int cmd_timeline(const Args& args) {
  const std::string path = args.get("file", "rpol_trace.jsonl");
  const obs::Trace trace = obs::load_trace_file(path, args.has("strict"));
  const obs::TimelineReport report = obs::build_timeline(trace);
  obs::print_timeline(report, stdout);
  const std::string export_path = args.get("export", "");
  if (!export_path.empty()) {
    if (!obs::export_chrome_trace_file(trace, export_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", export_path.c_str());
      return 1;
    }
    std::printf("\nChrome-trace JSON written to %s (open in Perfetto or "
                "chrome://tracing)\n",
                export_path.c_str());
  }
  return report.refs.ok() ? 0 : 1;
}

int cmd_health(const Args& args) {
  const std::string path = args.get("file", "rpol_health.jsonl");
  const obs::HealthReport report =
      obs::load_health_file(path, args.has("strict"));
  std::printf("health %s:\n", path.c_str());
  obs::print_health_report(report, stdout);
  return 0;
}

int cmd_watch(const Args& args) {
  const std::string path =
      args.get("file", obs::live_file_path("rpol_live.jsonl"));
  const bool once = args.has("once");
  const long interval_ms = args.get_int("interval-ms", 1000);
  const bool strict = args.has("strict");
  for (;;) {
    obs::LiveDoc doc;
    bool loaded = false;
    try {
      doc = obs::load_live_file(path, strict);
      loaded = true;
    } catch (const std::exception& e) {
      if (once || strict) throw;
      // Not written yet (the run may still be starting): keep waiting.
      std::printf("watching %s: %s\n", path.c_str(), e.what());
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home between frames
    if (loaded) {
      std::printf("watch %s:\n", path.c_str());
      obs::print_live_report(doc, stdout);
    }
    if (once) return 0;
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(interval_ms < 1 ? 1 : interval_ms));
  }
}

int cmd_alerts(const Args& args) {
  const std::string path =
      args.get("file", obs::live_file_path("rpol_live.jsonl"));
  const obs::LiveDoc doc = obs::load_live_file(path, args.has("strict"));
  std::printf("alerts %s:\n", path.c_str());
  obs::print_alerts_summary(doc, stdout);
  return 0;
}

int cmd_bench_diff(const Args& args) {
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: rpol bench-diff <baseline.json> <current.json> "
                 "[--tolerance 0.xx] [--mem-tolerance 0.xx]\n");
    return 2;
  }
  const obs::BenchReport baseline = obs::load_bench_file(args.positional()[0]);
  const obs::BenchReport current = obs::load_bench_file(args.positional()[1]);
  const double tolerance = args.get_double("tolerance", 0.35);
  // Default 0 keeps memory advisory (ratio column only, never gates).
  const double mem_tolerance = args.get_double("mem-tolerance", 0.0);
  const obs::BenchDiffResult diff =
      obs::diff_bench(baseline, current, tolerance, mem_tolerance);
  obs::print_bench_diff(diff, stdout);
  return diff.ok() ? 0 : 1;
}

int cmd_bench_merge(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty() || args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: rpol bench-merge --out <merged.json> <in.json>...\n");
    return 2;
  }
  obs::BenchReport merged;
  for (const auto& path : args.positional()) {
    merged = obs::merge_bench_reports(merged, obs::load_bench_file(path));
  }
  if (!obs::write_bench_json_file(merged, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("merged %zu file(s) -> %s (%zu records)\n",
              args.positional().size(), out.c_str(), merged.records.size());
  return 0;
}

int cmd_calibrate(const Args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double beta_x = args.get_double("beta-x", 5.0);
  const auto k_lsh = static_cast<int>(args.get_int("k-lsh", 16));

  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_examples = 2048;
  data_cfg.seed = derive_seed(seed, 1);
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::DatasetView view = data::DatasetView::whole(dataset);
  const nn::ModelFactory factory =
      nn::mlp_factory(32, {32, 16}, 10, derive_seed(seed, 2));
  core::Hyperparams hp;
  hp.learning_rate = 0.01F;
  hp.batch_size = 32;
  hp.steps_per_epoch = 15;
  hp.checkpoint_interval = 3;

  core::StepExecutor init(factory, hp);
  core::EpochContext ctx;
  ctx.nonce = derive_seed(seed, 3);
  ctx.initial = init.save_state();
  ctx.dataset = &view;

  core::CalibrationConfig ccfg;
  ccfg.beta_x = beta_x;
  ccfg.k_lsh = k_lsh;
  const core::CalibrationResult result = core::calibrate_epoch(
      factory, hp, ctx, sim::device_g3090(), sim::device_ga10(), seed, ccfg);
  std::printf("per-transition reproduction errors:");
  for (const double e : result.errors) std::printf(" %.3e", e);
  std::printf("\nmax error  %.4e\nalpha      %.4e\nbeta       %.4e (x%.1f)\n",
              result.max_error, result.alpha, result.beta, beta_x);
  std::printf("LSH params r=%.4f k=%d l=%d  Pr(alpha)=%.3f Pr(beta)=%.3f\n",
              result.lsh.params.r, result.lsh.params.k, result.lsh.params.l,
              result.lsh.pr_alpha, result.lsh.pr_beta);
  return 0;
}

int cmd_economics(const Args& args) {
  const double pr_beta = args.get_double("pr-beta", 0.05);
  const double target = args.get_double("target", 0.01);
  core::EconomicParams params;
  params.c_train = args.get_double("c-train", 0.88);
  params.pr_lsh_beta = pr_beta;
  std::printf("%-12s %-22s %-14s %-18s\n", "honesty h", "q (soundness target)",
              "q (economic)", "net gain @ q_econ");
  for (double h = 0.1; h <= 0.91; h += 0.1) {
    const auto q_sound = core::required_samples(target, h, pr_beta);
    const auto q_econ = core::economic_samples(h, params);
    std::printf("%-12.1f %-22lld %-14lld %-18.4f\n", h,
                static_cast<long long>(q_sound), static_cast<long long>(q_econ),
                core::expected_net_gain(h, q_econ, params));
  }
  return 0;
}

int cmd_costs(const Args& args) {
  core::CostScenario s;
  const std::string model = args.get("model", "resnet50");
  if (model == "resnet18") {
    s.model = sim::real_resnet18();
  } else if (model == "resnet50") {
    s.model = sim::real_resnet50();
  } else if (model == "vgg16") {
    s.model = sim::real_vgg16();
  } else {
    throw std::invalid_argument("unknown model (resnet18|resnet50|vgg16)");
  }
  s.dataset = sim::real_imagenet();
  s.num_workers = static_cast<std::size_t>(args.get_int("workers", 100));
  s.scheme = parse_scheme(args.get("scheme", "v2"));
  s.samples_q = args.get_int("q", 3);
  s.checkpoint_interval = args.get_int("interval", 5);

  const auto r = core::estimate_epoch_cost(s);
  const double gb = 1024.0 * 1024.0 * 1024.0;
  std::printf("%s on ImageNet, %zu workers, %s:\n", s.model.name.c_str(),
              s.num_workers, core::scheme_name(s.scheme).c_str());
  std::printf("  epoch wall time     %.0f s\n", r.epoch_wall_s);
  std::printf("  worker train        %.1f s (+%.1f s LSH)\n", r.worker_train_s,
              r.worker_lsh_s);
  std::printf("  manager compute     %.0f s (verify %.0f + calibrate %.0f)\n",
              r.manager_compute_s(), r.manager_verify_s, r.manager_calibrate_s);
  std::printf("  uploads             %.1f GB (proofs %.1f GB)\n",
              static_cast<double>(r.upload_bytes_total) / gb,
              static_cast<double>(r.proof_bytes_total) / gb);
  std::printf("  storage per worker  %.2f GB\n",
              static_cast<double>(r.storage_bytes_per_worker) / gb);
  std::printf("  capital cost        $%.2f (compute %.2f, comm %.2f, storage "
              "%.2f)\n",
              r.capital.total(), r.capital.compute_usd, r.capital.comm_usd,
              r.capital.storage_usd);
  return 0;
}

void usage() {
  std::printf(
      "rpol <command> [--flag value ...]\n"
      "commands:\n"
      "  simulate   --workers N --adversaries N --adv-type replay|spoof|fabricate\n"
      "             --scheme baseline|v1|v2 --epochs E --seed S\n"
      "  calibrate  --seed S --beta-x X --k-lsh K\n"
      "  economics  --pr-beta P --target T --c-train C\n"
      "  costs      --model resnet18|resnet50|vgg16 --workers N --scheme v1|v2\n"
      "             --q Q --interval I\n"
      "  trace      --file rpol_trace.jsonl [--strict] [--verify-refs]\n"
      "  timeline   --file rpol_trace.jsonl [--export out.perfetto.json]\n"
      "  health     --file rpol_health.jsonl [--strict]\n"
      "  watch      --file rpol_live.jsonl [--once] [--interval-ms N] [--strict]\n"
      "  alerts     --file rpol_live.jsonl [--strict]\n"
      "  bench-diff <baseline.json> <current.json> [--tolerance 0.xx]\n"
      "             [--mem-tolerance 0.xx]\n"
      "  bench-merge --out merged.json <in.json>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "calibrate") return cmd_calibrate(args);
    if (command == "economics") return cmd_economics(args);
    if (command == "costs") return cmd_costs(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "timeline") return cmd_timeline(args);
    if (command == "health") return cmd_health(args);
    if (command == "watch") return cmd_watch(args);
    if (command == "alerts") return cmd_alerts(args);
    if (command == "bench-diff") return cmd_bench_diff(args);
    if (command == "bench-merge") return cmd_bench_merge(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
