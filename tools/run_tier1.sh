#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite three
# times — once pinned to a single compute thread, once with RPOL_THREADS unset
# (pool defaults to hardware_concurrency), and once with RPOL_TRACE=1. All
# passes must be green: the runtime's determinism contract says neither thread
# count nor tracing can ever change results, so a test that passes serially
# but fails parallel (or only fails while traced) is a runtime bug, not
# flakiness.
#
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> tier-1 pass 1/3: RPOL_THREADS=1"
(cd "$BUILD_DIR" && RPOL_THREADS=1 ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 2/3: RPOL_THREADS unset (default thread count)"
(cd "$BUILD_DIR" && env -u RPOL_THREADS ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 3/3: RPOL_TRACE=1 (tracing on; results must not change)"
(cd "$BUILD_DIR" && RPOL_TRACE=1 ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 OK: all three configurations green"
