#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite in
# eight passes — (1) pinned to a single compute thread, (2) RPOL_THREADS
# unset (pool defaults to hardware_concurrency), (3) RPOL_SHARDS=3 (the
# sharded pool manager resolves a multi-shard default; §6 says shard layout
# can never change results), (4) RPOL_TRACE=1, (5) RPOL_LIVE=1 (background
# flusher + flight recorder armed; the determinism suite proves bitwise
# identity), (6) a bounded-memory pass with RPOL_CKPT_BUDGET squeezed to a
# few KiB so the checkpoint stores spill and evict constantly, then (7) and
# (8) under AddressSanitizer and UndefinedBehaviorSanitizer in separate
# build trees.
# All passes must be green: the runtime's determinism contract says neither
# thread count, shard count, tracing, nor the checkpoint-store budget can
# ever change results, and the fault-injection/fuzz suites push hostile
# bytes through every decoder, so memory or UB findings anywhere are real
# bugs, not flakiness.
#
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
# Set RPOL_SKIP_SANITIZERS=1 to run only the six fast passes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> tier-1 pass 1/8: RPOL_THREADS=1"
(cd "$BUILD_DIR" && RPOL_THREADS=1 ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 2/8: RPOL_THREADS unset (default thread count)"
(cd "$BUILD_DIR" && env -u RPOL_THREADS ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 3/8: RPOL_SHARDS=3 (sharded manager default; shard"
echo "    layout must never change results)"
(cd "$BUILD_DIR" && RPOL_SHARDS=3 ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 4/8: RPOL_TRACE=1 (tracing on; results must not change)"
(cd "$BUILD_DIR" && RPOL_TRACE=1 ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 5/8: RPOL_LIVE=1 (live flusher + flight recorder armed;"
echo "    snapshots stream to a scratch file, results must not change)"
(cd "$BUILD_DIR" && RPOL_LIVE=1 RPOL_LIVE_INTERVAL_MS=50 \
  RPOL_LIVE_FILE=tier1_live_scratch.jsonl \
  RPOL_FLIGHT_FILE=tier1_flight_scratch.jsonl \
  ctest --output-on-failure -j "$(nproc)")
rm -f "$BUILD_DIR/tier1_live_scratch.jsonl" "$BUILD_DIR/tier1_flight_scratch.jsonl"

echo "==> tier-1 pass 6/8: RPOL_CKPT_BUDGET=4096 (hot cache squeezed to one"
echo "    checkpoint; streaming suites must stay bitwise identical)"
(cd "$BUILD_DIR" && RPOL_CKPT_BUDGET=4096 ctest --output-on-failure \
  -R 'core_ckptstore_test|runtime_determinism_test|core_commitment_golden_test' \
  -j "$(nproc)")

# Advisory regression check against the committed benchmark baseline: the
# cost-model rows are deterministic, so only genuine protocol-cost changes
# (or a stale baseline — regenerate with tools/make_bench_baseline.sh) move
# them, the crypto/commitment harness covers the hashing hot path, the
# blocked-layout conv harness covers the direct-vs-fallback speedup rows,
# and the streaming harness covers the bounded-memory checkpoint pipeline
# (its core.stream.* rows carry peak RSS, which --mem-tolerance compares),
# and bench_pool_scale covers the sharded manager's submissions/sec and
# peak-RSS envelope at >= 1k workers (pool.scale.* rows).
# Advisory because wall-clock rows vary across machines. --mem-tolerance adds
# an advisory peak-RSS comparison on records where both sides carry the
# memory column (old baselines without it are simply not compared).
if [[ -f BENCH_baseline.json ]]; then
  echo "==> advisory: rpol bench-diff vs BENCH_baseline.json (does not gate)"
  rm -f "$BUILD_DIR/BENCH_current.json"
  (cd "$BUILD_DIR" && RPOL_BENCH_FILE=BENCH_current.json \
    ./bench/bench_table3_overhead >/dev/null)
  (cd "$BUILD_DIR" && RPOL_BENCH_FILE=BENCH_current.json \
    ./bench/bench_micro --crypto-only >/dev/null)
  (cd "$BUILD_DIR" && RPOL_BENCH_FILE=BENCH_current.json \
    ./bench/bench_micro --layout-only >/dev/null)
  (cd "$BUILD_DIR" && RPOL_BENCH_FILE=BENCH_current.json \
    ./bench/bench_micro --stream-only >/dev/null)
  (cd "$BUILD_DIR" && RPOL_BENCH_FILE=BENCH_current.json \
    ./bench/bench_pool_scale >/dev/null)
  "$BUILD_DIR/tools/rpol" bench-diff BENCH_baseline.json \
    "$BUILD_DIR/BENCH_current.json" --tolerance 0.35 --mem-tolerance 0.50 \
    || echo "==> advisory bench-diff flagged deltas (non-fatal)"
fi

if [[ "${RPOL_SKIP_SANITIZERS:-0}" == "1" ]]; then
  echo "==> tier-1 OK: six fast configurations green (sanitizers skipped)"
  exit 0
fi

echo "==> tier-1 pass 7/8: AddressSanitizer (RPOL_SANITIZE=address)"
cmake -B "${BUILD_DIR}-asan" -S . -DRPOL_SANITIZE=address
cmake --build "${BUILD_DIR}-asan" -j "$(nproc)"
(cd "${BUILD_DIR}-asan" && ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 pass 8/8: UndefinedBehaviorSanitizer (RPOL_SANITIZE=undefined)"
cmake -B "${BUILD_DIR}-ubsan" -S . -DRPOL_SANITIZE=undefined
cmake --build "${BUILD_DIR}-ubsan" -j "$(nproc)"
(cd "${BUILD_DIR}-ubsan" && ctest --output-on-failure -j "$(nproc)")

echo "==> tier-1 OK: all eight configurations green"
