#include "obs/alerts.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/obs.h"

#ifdef __unix__
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace rpol::obs {

// ---------------------------------------------------------------------------
// Flight recorder ring

namespace {

// One ring slot: the event payload plus a per-slot seqlock. `seq` holds
// 2*generation+1 while the generation-th write is in flight and
// 2*generation+2 once it is stable, where generation = ticket / capacity.
// Two writers that collide on a slot after a wrap therefore use DIFFERENT
// seq values, so a reader can never confuse "both mid-write" with "stable":
// it accepts a copy only when seq was even and unchanged across the copy.
struct FlightSlot {
  std::atomic<std::uint64_t> seq{0};  // 0 = never written
  FlightEvent event;
};

// Static storage, no dynamic init: recordable from any static-init-order
// position and readable during exit, like the mem.h tag cells.
FlightSlot g_flight[kFlightCapacity];
std::atomic<std::uint64_t> g_flight_head{0};  // tickets ever issued

void copy_what(char (&dst)[48], std::string_view src) {
  const std::size_t n = std::min(src.size(), sizeof dst - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kMark: return "mark";
    case FlightKind::kSpanClose: return "span";
    case FlightKind::kFault: return "fault";
    case FlightKind::kEviction: return "eviction";
    case FlightKind::kAlert: return "alert";
  }
  return "mark";
}

void flight_record(FlightKind kind, std::string_view what, std::int64_t worker,
                   std::int64_t epoch, std::uint64_t value) {
  if (!live_enabled()) return;
  const std::uint64_t ticket =
      g_flight_head.fetch_add(1, std::memory_order_relaxed);
  FlightSlot& slot = g_flight[ticket % kFlightCapacity];
  const std::uint64_t generation = ticket / kFlightCapacity;
  slot.seq.store(2 * generation + 1, std::memory_order_release);  // in flight
  slot.event.t_ns = now_ns();
  slot.event.kind = kind;
  slot.event.worker = worker;
  slot.event.epoch = epoch;
  slot.event.value = value;
  copy_what(slot.event.what, what);
  slot.seq.store(2 * generation + 2, std::memory_order_release);  // stable
}

std::uint64_t flight_count() {
  return g_flight_head.load(std::memory_order_relaxed);
}

std::vector<FlightEvent> flight_snapshot() {
  std::vector<FlightEvent> out;
  const std::uint64_t total = g_flight_head.load(std::memory_order_acquire);
  const std::uint64_t held = std::min<std::uint64_t>(total, kFlightCapacity);
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = total - held; i < total; ++i) {
    FlightSlot& slot = g_flight[i % kFlightCapacity];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // never written or mid-write
    FlightEvent copy = slot.event;
    if (slot.seq.load(std::memory_order_acquire) != s1) continue;  // torn
    out.push_back(copy);
  }
  return out;
}

void flight_reset() {
  g_flight_head.store(0, std::memory_order_relaxed);
  for (auto& slot : g_flight) {
    slot.seq.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Flight dumps (normal path: stdio; signal path: raw fd + manual formatting)

namespace {

void json_escape_what(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // labels are plain ASCII; degrade rather than escape
    } else {
      out += c;
    }
  }
}

}  // namespace

std::size_t dump_flight_record(std::FILE* out) {
  const std::vector<FlightEvent> events = flight_snapshot();
  std::size_t lines = 0;
  std::fprintf(out,
               "{\"type\":\"meta\",\"schema\":\"rpol.flight.v1\","
               "\"capacity\":%zu,\"recorded\":%llu}\n",
               kFlightCapacity,
               static_cast<unsigned long long>(flight_count()));
  ++lines;
  std::string what;
  for (const FlightEvent& e : events) {
    what.clear();
    json_escape_what(what, e.what);
    std::fprintf(out,
                 "{\"type\":\"flight\",\"t_ns\":%llu,\"kind\":\"%s\","
                 "\"worker\":%lld,\"epoch\":%lld,\"value\":%llu,"
                 "\"what\":\"%s\"}\n",
                 static_cast<unsigned long long>(e.t_ns),
                 flight_kind_name(e.kind), static_cast<long long>(e.worker),
                 static_cast<long long>(e.epoch),
                 static_cast<unsigned long long>(e.value), what.c_str());
    ++lines;
  }
  return lines;
}

bool dump_flight_record_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  dump_flight_record(f);
  std::fclose(f);
  return true;
}

namespace {

std::string flight_default_path() {
  const char* env = std::getenv("RPOL_FLIGHT_FILE");
  return (env != nullptr && env[0] != '\0') ? env : "rpol_flight.jsonl";
}

}  // namespace

std::string dump_flight_record() {
  if (!live_enabled()) return "";
  const std::string path = flight_default_path();
  if (!dump_flight_record_file(path)) return "";
  return path;
}

// ---------------------------------------------------------------------------
// Fatal-signal dump: everything below must stay async-signal-safe (no
// stdio, no allocation, no locks) — open/write/close plus stack formatting.

#ifdef __unix__

namespace {

char g_signal_dump_path[256] = {};
std::atomic<bool> g_handler_installed{false};

std::size_t sig_append(char* buf, std::size_t pos, std::size_t cap,
                       const char* s) {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
  return pos;
}

std::size_t sig_append_u64(char* buf, std::size_t pos, std::size_t cap,
                           std::uint64_t v) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

std::size_t sig_append_i64(char* buf, std::size_t pos, std::size_t cap,
                           std::int64_t v) {
  if (v < 0) {
    pos = sig_append(buf, pos, cap, "-");
    return sig_append_u64(buf, pos, cap, static_cast<std::uint64_t>(-v));
  }
  return sig_append_u64(buf, pos, cap, static_cast<std::uint64_t>(v));
}

void sig_write_line(int fd, const FlightEvent& e) {
  char buf[256];
  std::size_t p = 0;
  p = sig_append(buf, p, sizeof buf, "{\"type\":\"flight\",\"t_ns\":");
  p = sig_append_u64(buf, p, sizeof buf, e.t_ns);
  p = sig_append(buf, p, sizeof buf, ",\"kind\":\"");
  p = sig_append(buf, p, sizeof buf, flight_kind_name(e.kind));
  p = sig_append(buf, p, sizeof buf, "\",\"worker\":");
  p = sig_append_i64(buf, p, sizeof buf, e.worker);
  p = sig_append(buf, p, sizeof buf, ",\"epoch\":");
  p = sig_append_i64(buf, p, sizeof buf, e.epoch);
  p = sig_append(buf, p, sizeof buf, ",\"value\":");
  p = sig_append_u64(buf, p, sizeof buf, e.value);
  p = sig_append(buf, p, sizeof buf, ",\"what\":\"");
  for (const char* s = e.what; *s != '\0'; ++s) {
    const char c = (*s == '"' || *s == '\\') ? ' ' : *s;
    if (p + 1 < sizeof buf) buf[p++] = c;
  }
  p = sig_append(buf, p, sizeof buf, "\"}\n");
  ssize_t rc = write(fd, buf, p);
  (void)rc;
}

extern "C" void rpol_flight_signal_handler(int sig) {
  const int fd = open(g_signal_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    char buf[128];
    std::size_t p = 0;
    p = sig_append(buf, p, sizeof buf,
                   "{\"type\":\"meta\",\"schema\":\"rpol.flight.v1\","
                   "\"signal\":");
    p = sig_append_i64(buf, p, sizeof buf, sig);
    p = sig_append(buf, p, sizeof buf, "}\n");
    ssize_t rc = write(fd, buf, p);
    (void)rc;
    // Same iteration as flight_snapshot(), minus the vector: read each slot
    // once, skipping torn entries.
    const std::uint64_t total = g_flight_head.load(std::memory_order_acquire);
    const std::uint64_t held = total < kFlightCapacity ? total : kFlightCapacity;
    for (std::uint64_t i = total - held; i < total; ++i) {
      FlightSlot& slot = g_flight[i % kFlightCapacity];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;
      const FlightEvent copy = slot.event;
      if (slot.seq.load(std::memory_order_acquire) != s1) continue;
      sig_write_line(fd, copy);
    }
    close(fd);
  }
  // SA_RESETHAND already restored the default disposition; re-raise so the
  // process still dies with the original signal (core dumps intact).
  raise(sig);
}

}  // namespace

void install_flight_signal_handler() {
  if (!live_enabled()) return;
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) return;
  const std::string path = flight_default_path();
  const std::size_t n = std::min(path.size(), sizeof g_signal_dump_path - 1);
  std::memcpy(g_signal_dump_path, path.data(), n);
  g_signal_dump_path[n] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = rpol_flight_signal_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    sigaction(sig, &sa, nullptr);
  }
}

#else  // !__unix__

void install_flight_signal_handler() {}

#endif

// ---------------------------------------------------------------------------
// Alert engine

const char* alert_severity_name(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarn: return "warn";
    case AlertSeverity::kCrit: return "crit";
  }
  return "info";
}

AlertEngine::AlertEngine(AlertRuleConfig config) : config_(config) {}

namespace {

void format_message(Alert& alert, const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  alert.message = buf;
}

}  // namespace

std::vector<Alert> AlertEngine::evaluate(const LiveTick& tick) {
  std::vector<Alert> out;
  const auto push = [&](Alert alert) {
    out.push_back(std::move(alert));
    ++alerts_emitted_;
  };

  // Rule 1: verdict reject-rate drift vs the trailing EWMA baseline.
  const std::uint64_t verdicts = tick.accepts_delta + tick.rejects_delta;
  if (verdicts >= config_.drift_min_verdicts) {
    const double rate =
        static_cast<double>(tick.rejects_delta) / static_cast<double>(verdicts);
    const double drift = rate - reject_rate_ewma_;
    if (drift >= config_.drift_warn) {
      Alert alert;
      alert.rule = "reject_rate_drift";
      alert.severity = drift >= config_.drift_crit ? AlertSeverity::kCrit
                                                   : AlertSeverity::kWarn;
      alert.value = rate;
      alert.baseline = reject_rate_ewma_;
      alert.threshold = config_.drift_warn;
      format_message(alert,
                     "window reject rate %.2f vs trailing baseline %.2f", rate,
                     reject_rate_ewma_);
      push(std::move(alert));
    }
    reject_rate_ewma_ = config_.ewma_alpha * rate +
                        (1.0 - config_.ewma_alpha) * reject_rate_ewma_;
  }

  // Rule 2: session p95 latency burn vs the trailing p95 EWMA.
  if (tick.latency_count_delta >= config_.burn_min_samples &&
      tick.latency_p95_ns > 0) {
    const double p95 = static_cast<double>(tick.latency_p95_ns);
    if (have_latency_baseline_ && latency_p95_ewma_ns_ > 0.0) {
      const double factor = p95 / latency_p95_ewma_ns_;
      if (factor >= config_.burn_warn_factor) {
        Alert alert;
        alert.rule = "latency_burn";
        alert.severity = factor >= config_.burn_crit_factor
                             ? AlertSeverity::kCrit
                             : AlertSeverity::kWarn;
        alert.value = p95;
        alert.baseline = latency_p95_ewma_ns_;
        alert.threshold = config_.burn_warn_factor;
        format_message(alert, "window p95 %.0f ns is %.1fx trailing baseline",
                       p95, factor);
        push(std::move(alert));
      }
      latency_p95_ewma_ns_ = config_.ewma_alpha * p95 +
                             (1.0 - config_.ewma_alpha) * latency_p95_ewma_ns_;
    } else {
      latency_p95_ewma_ns_ = p95;
      have_latency_baseline_ = true;
    }
  }

  // Rule 3: retransmission spike within one window.
  if (tick.retrans_delta >= config_.retrans_warn) {
    Alert alert;
    alert.rule = "retrans_spike";
    alert.severity = tick.retrans_delta >= config_.retrans_crit
                         ? AlertSeverity::kCrit
                         : AlertSeverity::kWarn;
    alert.value = static_cast<double>(tick.retrans_delta);
    alert.threshold = static_cast<double>(config_.retrans_warn);
    format_message(alert, "%.0f retransmissions in one window (warn at %.0f)",
                   alert.value, alert.threshold);
    push(std::move(alert));
  }

  // Rule 4: RSS slope — resident set grew too fast since the last tick.
  if (tick.rss_bytes > 0) {
    if (have_rss_baseline_ && tick.rss_bytes > last_rss_bytes_) {
      const std::uint64_t growth = tick.rss_bytes - last_rss_bytes_;
      if (growth >= config_.rss_warn_bytes) {
        Alert alert;
        alert.rule = "rss_slope";
        alert.severity = growth >= config_.rss_crit_bytes
                             ? AlertSeverity::kCrit
                             : AlertSeverity::kWarn;
        alert.value = static_cast<double>(tick.rss_bytes);
        alert.baseline = static_cast<double>(last_rss_bytes_);
        alert.threshold = static_cast<double>(config_.rss_warn_bytes);
        format_message(alert, "RSS grew %.0f bytes in one tick (warn at %.0f)",
                       static_cast<double>(growth), alert.threshold);
        push(std::move(alert));
      }
    }
    last_rss_bytes_ = tick.rss_bytes;
    have_rss_baseline_ = true;
  }

  // Rule 5: per-worker health-score drops and fresh evictions.
  for (const LiveHealthRow& row : tick.workers) {
    const LiveHealthRow* prev = nullptr;
    for (const LiveHealthRow& p : last_workers_) {
      if (p.worker == row.worker) {
        prev = &p;
        break;
      }
    }
    if (prev == nullptr) continue;
    if (!prev->evicted && row.evicted) {
      Alert alert;
      alert.rule = "worker_evicted";
      alert.severity = AlertSeverity::kCrit;
      alert.value = row.score;
      alert.baseline = prev->score;
      alert.worker = row.worker;
      format_message(alert, "worker evicted (score %.1f -> %.1f)", prev->score,
                     row.score);
      push(std::move(alert));
      continue;
    }
    const double drop = prev->score - row.score;
    if (drop >= config_.health_warn_drop) {
      Alert alert;
      alert.rule = "health_drop";
      alert.severity = drop >= config_.health_crit_drop ? AlertSeverity::kCrit
                                                        : AlertSeverity::kWarn;
      alert.value = row.score;
      alert.baseline = prev->score;
      alert.threshold = config_.health_warn_drop;
      alert.worker = row.worker;
      format_message(alert, "health score fell %.1f points to %.1f", drop,
                     row.score);
      push(std::move(alert));
    }
  }
  if (!tick.workers.empty()) last_workers_ = tick.workers;

  return out;
}

}  // namespace rpol::obs
