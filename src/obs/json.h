// Minimal JSON reader shared by the trace analyzer (src/obs/analyze.cpp),
// the timeline reconstructor (src/obs/timeline.cpp), and the benchmark
// registry (src/obs/benchreg.cpp) — just enough for the objects, nested
// objects, and arrays the rpol.trace.v2 / rpol.bench.v1 exporters emit.
// Numbers keep their raw token so u64 fields (byte counts, timestamps)
// parse losslessly; rpol::obs emitters never produce values a double can't
// round-trip except those u64s, which callers read back via as_u64().

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rpol::obs {

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  std::string token;  // raw number token, or string payload
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  double as_double() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const Json* find(std::string_view key) const;
};

// Parses one complete JSON value (whitespace incl. newlines allowed around
// tokens, nothing may trail it); throws std::runtime_error on malformed
// input with the failing byte offset in the message.
Json parse_json(std::string_view text);

}  // namespace rpol::obs
