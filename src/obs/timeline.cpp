#include "obs/timeline.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace rpol::obs {
namespace {

constexpr double kNsToS = 1e-9;

// The causal parent used for tree reconstruction: same-agent `parent` when
// present, otherwise the cross-agent `link` the wire envelope carried.
std::uint64_t effective_parent(const SpanRecord& s) {
  return s.parent != 0 ? s.parent : s.link;
}

bool is_train_phase(const std::string& name) {
  return name == "train" || name == "submission";
}

bool is_verify_phase(const std::string& name) {
  return name == "verify" || name == "reexecute" || name == "serve_proof" ||
         name == "proof_exchange";
}

void write_json_escaped(std::FILE* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", out); break;
      case '\\': std::fputs("\\\\", out); break;
      case '\n': std::fputs("\\n", out); break;
      case '\t': std::fputs("\\t", out); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", c);
        } else {
          std::fputc(c, out);
        }
    }
  }
}

}  // namespace

RefCheck verify_refs(const Trace& trace) {
  RefCheck check;
  check.total_spans = trace.spans.size();
  std::unordered_set<std::uint64_t> ids;
  ids.reserve(trace.spans.size());
  for (const auto& s : trace.spans) ids.insert(s.id);
  for (const auto& s : trace.spans) {
    if (s.parent != 0 && ids.count(s.parent) == 0) {
      check.orphan_parents.push_back(s.id);
    }
    if (s.link != 0 && ids.count(s.link) == 0) {
      check.orphan_links.push_back(s.id);
    }
  }
  return check;
}

TimelineReport build_timeline(const Trace& trace) {
  TimelineReport report;
  report.refs = verify_refs(trace);

  // Group spans into causal trees.
  std::map<std::uint64_t, std::vector<const SpanRecord*>> trees;
  for (const auto& s : trace.spans) {
    if (s.trace_id == 0) {
      ++report.stray_spans;
      continue;
    }
    trees[s.trace_id].push_back(&s);
  }

  for (auto& [trace_id, spans] : trees) {
    EpochTimeline tl;
    tl.trace_id = trace_id;
    tl.span_count = spans.size();

    std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
    by_id.reserve(spans.size());
    for (const auto* s : spans) by_id.emplace(s->id, s);

    // Roots: spans whose effective parent does not resolve inside the tree.
    const SpanRecord* root = nullptr;
    for (const auto* s : spans) {
      const std::uint64_t p = effective_parent(*s);
      if (p != 0 && by_id.count(p) != 0) continue;
      ++tl.root_count;
      // Prefer the span whose own id IS the trace id — that is the true
      // root by construction; earliest start breaks ties on damaged files.
      if (root == nullptr || s->id == trace_id ||
          (root->id != trace_id && s->start_ns < root->start_ns)) {
        root = s;
      }
    }
    if (root == nullptr) {
      // Fully cyclic damage; fall back to the earliest span so the tree is
      // still reported rather than dropped.
      root = *std::min_element(spans.begin(), spans.end(),
                               [](const SpanRecord* a, const SpanRecord* b) {
                                 return a->start_ns < b->start_ns;
                               });
      tl.root_count = 1;
    }
    tl.root_span = root->id;
    tl.root_name = root->name;
    tl.epoch = root->epoch;
    tl.extent_s = static_cast<double>(root->dur_ns) * kNsToS;

    // Children index for the phase attribution and the critical path.
    std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;
    for (const auto* s : spans) {
      if (s == root) continue;
      const std::uint64_t p = effective_parent(*s);
      if (p != 0) children[p].push_back(s);
    }

    // Phase attribution: direct children of the root, grouped by name, plus
    // the interval union of their extents clamped to the root's extent.
    std::map<std::string, PhaseAttribution> phases;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
    const std::uint64_t root_begin = root->start_ns;
    const std::uint64_t root_end = root->start_ns + root->dur_ns;
    auto it = children.find(root->id);
    if (it != children.end()) {
      for (const auto* c : it->second) {
        PhaseAttribution& p = phases[c->name];
        p.phase = c->name;
        ++p.count;
        p.total_s += static_cast<double>(c->dur_ns) * kNsToS;
        const std::uint64_t b = std::max(c->start_ns, root_begin);
        const std::uint64_t e =
            std::min(c->start_ns + c->dur_ns, root_end);
        if (e > b) intervals.emplace_back(b, e);
      }
    }
    std::sort(intervals.begin(), intervals.end());
    std::uint64_t covered = 0, cur_b = 0, cur_e = 0;
    bool open = false;
    for (const auto& [b, e] : intervals) {
      if (!open || b > cur_e) {
        if (open) covered += cur_e - cur_b;
        cur_b = b;
        cur_e = e;
        open = true;
      } else {
        cur_e = std::max(cur_e, e);
      }
    }
    if (open) covered += cur_e - cur_b;
    tl.attributed_s = static_cast<double>(covered) * kNsToS;
    tl.attributed_share =
        root->dur_ns > 0
            ? static_cast<double>(covered) / static_cast<double>(root->dur_ns)
            : 0.0;
    for (auto& [name, p] : phases) {
      p.share = tl.extent_s > 0.0 ? p.total_s / tl.extent_s : 0.0;
      tl.phases.push_back(p);
    }
    std::sort(tl.phases.begin(), tl.phases.end(),
              [](const PhaseAttribution& a, const PhaseAttribution& b) {
                if (a.total_s != b.total_s) return a.total_s > b.total_s;
                return a.phase < b.phase;
              });

    // Per-worker cost rows.
    std::map<std::int64_t, WorkerTimeline> workers;
    for (const auto* s : spans) {
      if (s->worker < 0) continue;
      WorkerTimeline& w = workers[s->worker];
      w.worker = s->worker;
      ++w.spans;
      const double d = static_cast<double>(s->dur_ns) * kNsToS;
      if (is_train_phase(s->name)) w.train_s += d;
      else if (s->name == "commit") w.commit_s += d;
      else if (is_verify_phase(s->name)) w.verify_s += d;
    }
    for (const auto& [id, w] : workers) tl.workers.push_back(w);

    // Critical path: from the root, repeatedly descend into the child that
    // finishes last — the chain that bounds the epoch's wall time.
    const SpanRecord* cur = root;
    std::unordered_set<std::uint64_t> visited;  // cycle guard on damage
    while (cur != nullptr && visited.insert(cur->id).second) {
      tl.critical_path.push_back(cur->name);
      tl.critical_path_s = static_cast<double>(cur->dur_ns) * kNsToS;
      auto cit = children.find(cur->id);
      if (cit == children.end()) break;
      const SpanRecord* next = nullptr;
      for (const auto* c : cit->second) {
        if (next == nullptr ||
            c->start_ns + c->dur_ns > next->start_ns + next->dur_ns) {
          next = c;
        }
      }
      cur = next;
    }

    report.epochs.push_back(std::move(tl));
  }

  std::sort(report.epochs.begin(), report.epochs.end(),
            [](const EpochTimeline& a, const EpochTimeline& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.trace_id < b.trace_id;
            });
  return report;
}

void print_timeline(const TimelineReport& report, std::FILE* out) {
  std::fprintf(out, "== causal timeline: %zu tree(s), %zu stray span(s) ==\n",
               report.epochs.size(), report.stray_spans);
  if (!report.refs.ok()) {
    std::fprintf(out,
                 "WARNING: broken references — %zu orphan parent(s), %zu "
                 "orphan link(s)\n",
                 report.refs.orphan_parents.size(),
                 report.refs.orphan_links.size());
  }
  for (const auto& tl : report.epochs) {
    std::fprintf(out, "\n-- %s", tl.root_name.c_str());
    if (tl.epoch >= 0) std::fprintf(out, " epoch %lld",
                                    static_cast<long long>(tl.epoch));
    std::fprintf(out,
                 " (trace %llu): %zu spans, extent %.3f ms, attributed "
                 "%.1f%%%s\n",
                 static_cast<unsigned long long>(tl.trace_id), tl.span_count,
                 tl.extent_s * 1e3, tl.attributed_share * 100.0,
                 tl.root_count == 1 ? "" : "  [BROKEN TREE: multiple roots]");
    for (const auto& p : tl.phases) {
      std::fprintf(out, "   %-16s x%-4zu %10.3f ms  %5.1f%%\n",
                   p.phase.c_str(), p.count, p.total_s * 1e3,
                   p.share * 100.0);
    }
    if (!tl.workers.empty()) {
      std::fprintf(out, "   worker     train(ms)   commit(ms)   verify(ms)\n");
      for (const auto& w : tl.workers) {
        std::fprintf(out, "   %-6lld %11.3f %12.3f %12.3f\n",
                     static_cast<long long>(w.worker), w.train_s * 1e3,
                     w.commit_s * 1e3, w.verify_s * 1e3);
      }
    }
    if (!tl.critical_path.empty()) {
      std::fprintf(out, "   critical path:");
      for (std::size_t i = 0; i < tl.critical_path.size(); ++i) {
        std::fprintf(out, "%s%s", i == 0 ? " " : " > ",
                     tl.critical_path[i].c_str());
      }
      std::fprintf(out, "\n");
    }
  }
}

std::size_t export_chrome_trace(const Trace& trace, std::FILE* out) {
  std::size_t events = 0;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", out);

  // Metadata: one process per causal tree (named by its root span), one
  // thread lane per agent (tid 0 = manager, tid w+1 = worker w). Sorted so
  // the export is stable across runs with identical span structure.
  std::map<std::uint64_t, const SpanRecord*> roots;
  std::map<std::pair<std::uint64_t, std::int64_t>, bool> lanes;
  bool has_stray = false;
  for (const auto& s : trace.spans) {
    if (s.trace_id == 0) {
      has_stray = true;
      lanes[{0, s.worker}] = true;
      continue;
    }
    lanes[{s.trace_id, s.worker}] = true;
    auto it = roots.find(s.trace_id);
    if (it == roots.end() || s.id == s.trace_id) roots[s.trace_id] = &s;
  }
  auto emit_comma = [&events, out] {
    if (events > 0) std::fputc(',', out);
    ++events;
  };
  if (has_stray) {
    emit_comma();
    std::fputs(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"untraced\"}}",
        out);
  }
  for (const auto& [trace_id, root] : roots) {
    emit_comma();
    std::fprintf(out,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%llu,"
                 "\"tid\":0,\"args\":{\"name\":\"",
                 static_cast<unsigned long long>(trace_id));
    write_json_escaped(out, root->name);
    if (root->epoch >= 0) {
      std::fprintf(out, " epoch %lld", static_cast<long long>(root->epoch));
    }
    std::fputs("\"}}", out);
  }
  for (const auto& [lane, unused] : lanes) {
    (void)unused;
    emit_comma();
    std::fprintf(out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%llu,"
                 "\"tid\":%lld,\"args\":{\"name\":\"",
                 static_cast<unsigned long long>(lane.first),
                 static_cast<long long>(lane.second + 1));
    if (lane.second < 0) {
      std::fputs("manager", out);
    } else {
      std::fprintf(out, "worker %lld", static_cast<long long>(lane.second));
    }
    std::fputs("\"}}", out);
  }

  // Complete events, in recorded (completion) order. Timestamps are the
  // only run-varying fields.
  for (const auto& s : trace.spans) {
    emit_comma();
    std::fputs("{\"name\":\"", out);
    write_json_escaped(out, s.name);
    std::fprintf(
        out,
        "\",\"cat\":\"rpol\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%llu,\"tid\":%lld,\"args\":{\"id\":%llu,\"parent\":%llu,"
        "\"link\":%llu,\"epoch\":%lld}}",
        static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(s.dur_ns) / 1e3,
        static_cast<unsigned long long>(s.trace_id),
        static_cast<long long>(s.worker + 1),
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent),
        static_cast<unsigned long long>(s.link),
        static_cast<long long>(s.epoch));
  }
  std::fputs("]}\n", out);
  return events;
}

bool export_chrome_trace_file(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  export_chrome_trace(trace, f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace rpol::obs
