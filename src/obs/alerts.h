// Online anomaly alerts + crash flight recorder: the "tell me while it
// runs, and leave a tail when it dies" half of live telemetry (live.h).
//
// AlertEngine evaluates a fixed rule set over the windowed observations the
// live flusher assembles each tick — verdict reject-rate drift against a
// trailing baseline, session p95 latency burn, retransmission spikes, RSS
// slope, and per-worker health-score drops — and returns typed Alert events
// (schema "rpol.alert.v1" when serialized into the live stream) carrying
// severity and the triggering window values. The engine is deterministic
// given its tick inputs: all trailing state (EWMA baselines, previous
// health rows) lives inside the engine, so rules are unit-testable without
// threads or clocks.
//
// FlightRecorder is a fixed-size lock-light ring of the last
// kFlightCapacity span-close / fault / eviction / alert / mark events.
// Recording is a few relaxed atomics plus a bounded memcpy into a
// preallocated POD slot (per-slot seqlock so readers skip torn entries);
// no allocation, no mutex, safe from any thread and — via the manual
// integer formatting in dump paths — from a fatal-signal handler.
// obs::dump_flight_record() writes the ring as JSONL; pools call it on
// worker eviction, sessions on hard failure, and install_flight_signal_
// handler() wires SIGSEGV/SIGABRT/SIGBUS/SIGFPE to an async-signal-safe
// dump, so a crash or byzantine blow-up leaves forensics even with
// tracing off.
//
// Determinism contract: identical to obs.h — write-only, decision-blind.
// No alert, severity, or flight event is ever read back by protocol code;
// eviction stays the HealthRegistry's consecutive-strikes rule, alerts
// merely narrate it. Every entry point is gated on live_enabled() (one
// relaxed atomic), so a run without RPOL_LIVE pays a single load.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace rpol::obs {

// ---------------------------------------------------------------------------
// Flight recorder

enum class FlightKind : int {
  kMark = 0,   // epoch/tick boundaries, verdicts, free-form breadcrumbs
  kSpanClose,  // a traced span completed (only while tracing is also on)
  kFault,      // session hard-failure, lost submission, delivery fault
  kEviction,   // health registry evicted a worker
  kAlert,      // alert engine fired a rule
};

// Stable lowercase name ("mark", "span", "fault", "eviction", "alert").
const char* flight_kind_name(FlightKind kind);

struct FlightEvent {
  std::uint64_t t_ns = 0;  // obs::now_ns() at record time
  FlightKind kind = FlightKind::kMark;
  std::int64_t worker = -1;
  std::int64_t epoch = -1;
  std::uint64_t value = 0;
  // Fixed-width label; longer inputs are truncated. POD so recording never
  // allocates and a signal-time dump never touches the heap.
  char what[48] = {};
};

inline constexpr std::size_t kFlightCapacity = 4096;

// Appends one event to the ring when live_enabled(); otherwise one relaxed
// load and out. Lock-free, allocation-free, bounded-copy.
void flight_record(FlightKind kind, std::string_view what,
                   std::int64_t worker = -1, std::int64_t epoch = -1,
                   std::uint64_t value = 0);

// Total events ever recorded (the ring keeps the last kFlightCapacity).
std::uint64_t flight_count();

// Consistent copy of the ring, oldest first. Entries a writer is mid-way
// through are skipped rather than returned torn.
std::vector<FlightEvent> flight_snapshot();

// Drops all recorded events (tests / between runs).
void flight_reset();

// Writes the ring as JSONL: one meta line ("rpol.flight.v1"), then one line
// per event, oldest first. Returns lines written.
std::size_t dump_flight_record(std::FILE* out);
bool dump_flight_record_file(const std::string& path);

// The hook entry point: when live_enabled(), writes the ring to
// RPOL_FLIGHT_FILE (default "rpol_flight.jsonl") and returns the path;
// returns "" when disabled or the file cannot be opened.
std::string dump_flight_record();

// Async-signal-safe dump (open/write/close + manual formatting only) to the
// path resolved at install time. Installed by install_flight_signal_handler
// for SIGSEGV/SIGABRT/SIGBUS/SIGFPE; the handler dumps, restores the
// default disposition, and re-raises. Idempotent; no-op unless
// live_enabled() at install time.
void install_flight_signal_handler();

// ---------------------------------------------------------------------------
// Alert engine

enum class AlertSeverity : int { kInfo = 0, kWarn, kCrit };

// Stable lowercase name ("info" / "warn" / "crit").
const char* alert_severity_name(AlertSeverity severity);

struct Alert {
  std::string rule;  // "reject_rate_drift", "latency_burn", ...
  AlertSeverity severity = AlertSeverity::kInfo;
  double value = 0.0;      // the triggering window observation
  double baseline = 0.0;   // trailing reference it was compared against
  double threshold = 0.0;  // the rule's firing threshold
  std::int64_t worker = -1;  // per-worker rules only
  std::string message;
};

// Per-worker health row as published to the live layer (a plain copy, so
// the flusher never touches the pool-owned HealthRegistry concurrently).
struct LiveHealthRow {
  std::int64_t worker = -1;
  double score = 0.0;
  bool evicted = false;
  int consecutive_failures = 0;
  std::uint64_t window_total = 0;
  std::uint64_t window_accepted = 0;
  std::uint64_t window_retransmissions = 0;
};

// One flusher tick's windowed observations — everything the rules may see.
struct LiveTick {
  std::uint64_t t_ns = 0;
  std::uint64_t seq = 0;  // snapshot sequence number
  // Verdict window deltas (verify.accept / verify.reject).
  std::uint64_t accepts_delta = 0;
  std::uint64_t rejects_delta = 0;
  // Wire retries in the window (pool + async + session retry counters).
  std::uint64_t retrans_delta = 0;
  // Windowed p95 of the session-latency histogram, 0 when absent.
  std::uint64_t latency_p95_ns = 0;
  std::uint64_t latency_count_delta = 0;
  // Current resident set (0 off Linux).
  std::uint64_t rss_bytes = 0;
  std::vector<LiveHealthRow> workers;
};

struct AlertRuleConfig {
  // reject_rate_drift: window reject rate exceeds the trailing EWMA rate by
  // warn/crit margins, with at least min_verdicts in the window.
  std::uint64_t drift_min_verdicts = 3;
  double drift_warn = 0.25;
  double drift_crit = 0.50;
  // Trailing-baseline smoothing shared by the EWMA rules (reject rate and
  // latency p95). Baselines start at zero-history: the first bad window of
  // a fresh run compares against "nothing was rejected yet", which is what
  // makes a byzantine worker visible from epoch 0.
  double ewma_alpha = 0.3;
  // latency_burn: window p95 exceeds burn_factor x the trailing p95 EWMA,
  // with at least min_latency samples in the window.
  std::uint64_t burn_min_samples = 3;
  double burn_warn_factor = 2.0;
  double burn_crit_factor = 4.0;
  // retrans_spike: retransmissions in one window reach warn/crit counts.
  std::uint64_t retrans_warn = 8;
  std::uint64_t retrans_crit = 32;
  // rss_slope: RSS grew by more than warn/crit bytes since the previous
  // tick (sustained growth re-fires each tick, which is the point).
  std::uint64_t rss_warn_bytes = 256ull << 20;
  std::uint64_t rss_crit_bytes = 1024ull << 20;
  // health_drop: a worker's score fell by warn/crit points since the
  // previous published rows; a fresh eviction is always crit.
  double health_warn_drop = 20.0;
  double health_crit_drop = 40.0;
};

class AlertEngine {
 public:
  explicit AlertEngine(AlertRuleConfig config = {});

  // Evaluates every rule against one tick. Trailing baselines update AFTER
  // comparison, so a drift is judged against history, not against itself.
  std::vector<Alert> evaluate(const LiveTick& tick);

  std::uint64_t alerts_emitted() const { return alerts_emitted_; }
  const AlertRuleConfig& config() const { return config_; }

 private:
  AlertRuleConfig config_;
  double reject_rate_ewma_ = 0.0;
  bool have_latency_baseline_ = false;
  double latency_p95_ewma_ns_ = 0.0;
  bool have_rss_baseline_ = false;
  std::uint64_t last_rss_bytes_ = 0;
  std::vector<LiveHealthRow> last_workers_;
  std::uint64_t alerts_emitted_ = 0;
};

}  // namespace rpol::obs
