#include "obs/analyze.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "sim/stats.h"

namespace rpol::obs {

namespace {

const Json& require(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  if (v == nullptr) {
    throw std::runtime_error("trace record missing field '" +
                             std::string(key) + "'");
  }
  return *v;
}

SpanRecord parse_span(const Json& obj) {
  SpanRecord s;
  s.id = require(obj, "id").as_u64();
  s.parent = require(obj, "parent").as_u64();
  // v2 additions; absent in v1 files, where every span is trace-less.
  if (const Json* t = obj.find("trace")) s.trace_id = t->as_u64();
  if (const Json* l = obj.find("link")) s.link = l->as_u64();
  s.name = require(obj, "name").token;
  s.worker = require(obj, "worker").as_i64();
  s.epoch = require(obj, "epoch").as_i64();
  s.start_ns = require(obj, "start_ns").as_u64();
  s.dur_ns = require(obj, "dur_ns").as_u64();
  for (const auto& [key, value] : require(obj, "attrs").obj) {
    SpanAttr a;
    a.key = key;
    if (value.kind == Json::Kind::kString) {
      a.value = value.token;
      a.quoted = true;
    } else if (value.kind == Json::Kind::kBool) {
      a.value = value.b ? "true" : "false";
    } else {
      a.value = value.token;
    }
    s.attrs.push_back(std::move(a));
  }
  return s;
}

ParsedHistogram parse_histogram(const Json& obj) {
  ParsedHistogram h;
  h.name = require(obj, "name").token;
  h.count = require(obj, "count").as_u64();
  h.sum = require(obj, "sum").as_u64();
  h.max = require(obj, "max").as_u64();
  h.p50 = require(obj, "p50").as_u64();
  h.p95 = require(obj, "p95").as_u64();
  for (const Json& pair : require(obj, "buckets").arr) {
    if (pair.arr.size() != 2) {
      throw std::runtime_error("histogram bucket is not a [le, count] pair");
    }
    h.buckets.emplace_back(pair.arr[0].as_u64(), pair.arr[1].as_u64());
  }
  return h;
}

const std::string* span_attr(const SpanRecord& s, std::string_view key) {
  for (const SpanAttr& a : s.attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

}  // namespace

Trace parse_trace_jsonl(std::istream& in, bool strict) {
  Trace trace;
  std::string line;
  bool saw_meta = false;
  std::size_t line_no = 0;
  std::size_t line_start = 0;  // byte offset of the current line
  constexpr std::size_t kMaxKeptErrors = 8;
  while (std::getline(in, line)) {
    ++line_no;
    // getline consumed the line plus its newline unless it stopped at EOF,
    // in which case this is a final line the writer never terminated.
    const bool unterminated_tail = in.eof();
    const std::size_t this_line_start = line_start;
    line_start += line.size() + (unterminated_tail ? 0 : 1);
    if (line.empty()) continue;
    try {
      const Json obj = parse_json(line);
      const std::string& type = require(obj, "type").token;
      if (type == "meta") {
        trace.schema = require(obj, "schema").token;
        if (trace.schema != "rpol.trace.v1" &&
            trace.schema != "rpol.trace.v2") {
          // Not tolerable even in lenient mode: the whole file speaks a
          // dialect this analyzer does not know.
          throw std::runtime_error("unknown trace schema: " + trace.schema);
        }
        trace.wall_unix_ns = require(obj, "wall_unix_ns").as_u64();
        saw_meta = true;
      } else if (type == "counter") {
        trace.counters[require(obj, "name").token] =
            require(obj, "value").as_u64();
      } else if (type == "gauge") {
        trace.gauges[require(obj, "name").token] =
            require(obj, "value").as_double();
      } else if (type == "histogram") {
        trace.histograms.push_back(parse_histogram(obj));
      } else if (type == "span") {
        trace.spans.push_back(parse_span(obj));
      } else {
        throw std::runtime_error("unknown record type '" + type + "'");
      }
    } catch (const std::exception& e) {
      const std::string what =
          "line " + std::to_string(line_no) + ": " + e.what();
      const bool schema_error =
          std::string_view(e.what()).find("unknown trace schema") !=
          std::string_view::npos;
      if (unterminated_tail && !schema_error) {
        // Cut mid-record, not damaged: the writer crashed or is still
        // appending. Tolerant mode reports it; strict mode pinpoints it.
        if (strict) {
          throw std::runtime_error(
              "trace truncated mid-record at byte offset " +
              std::to_string(this_line_start) + " (" + what + ")");
        }
        trace.truncated_tail = true;
        trace.truncated_tail_offset = this_line_start;
        break;
      }
      if (strict || schema_error) throw std::runtime_error(what);
      ++trace.skipped_lines;
      if (trace.parse_errors.size() < kMaxKeptErrors) {
        trace.parse_errors.push_back(what);
      }
    }
  }
  if (!saw_meta) {
    throw std::runtime_error("not an rpol trace: no meta line found");
  }
  return trace;
}

Trace load_trace_file(const std::string& path, bool strict) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  return parse_trace_jsonl(in, strict);
}

TraceSummary summarize_trace(const Trace& trace) {
  TraceSummary summary;

  // Wall extent: the union [min start, max end] over all spans.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const SpanRecord& s : trace.spans) {
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.start_ns + s.dur_ns);
  }
  summary.wall_extent_s =
      trace.spans.empty() ? 0.0 : static_cast<double>(hi - lo) / 1e9;

  // Per-phase: group spans by name.
  std::map<std::string, std::vector<double>> durations;
  for (const SpanRecord& s : trace.spans) {
    durations[s.name].push_back(static_cast<double>(s.dur_ns) / 1e9);
  }
  for (const auto& [name, xs] : durations) {
    PhaseSummary ph;
    ph.name = name;
    ph.count = xs.size();
    for (const double d : xs) ph.total_s += d;
    ph.wall_share =
        summary.wall_extent_s > 0.0 ? ph.total_s / summary.wall_extent_s : 0.0;
    ph.p50_s = sim::percentile(xs, 50.0);
    ph.p95_s = sim::percentile(xs, 95.0);
    ph.max_s = sim::max_value(xs);
    summary.phases.push_back(std::move(ph));
  }
  std::sort(summary.phases.begin(), summary.phases.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              return a.total_s > b.total_s;
            });

  // Per-worker: training spans ("train" sync pools, "submission" async) and
  // verification spans carry a worker tag; verdicts ride as span attrs.
  std::map<std::int64_t, WorkerSummary> workers;
  for (const SpanRecord& s : trace.spans) {
    if (s.worker < 0) continue;
    WorkerSummary& w = workers[s.worker];
    w.worker = s.worker;
    if (s.name == "train" || s.name == "submission") {
      w.train_s += static_cast<double>(s.dur_ns) / 1e9;
    }
    if (s.name == "verify") {
      w.verify_s += static_cast<double>(s.dur_ns) / 1e9;
    }
    if (const std::string* verdict = span_attr(s, "accepted")) {
      if (*verdict == "true") {
        ++w.accepts;
      } else {
        ++w.rejects;
      }
    }
    if (const std::string* dc = span_attr(s, "double_checks")) {
      w.double_checks += std::strtoll(dc->c_str(), nullptr, 10);
    }
  }
  for (const auto& entry : workers) summary.workers.push_back(entry.second);

  // Per-message-type bytes: the "bytes.<type>" counter namespace.
  for (const auto& [name, value] : trace.counters) {
    if (name.rfind("bytes.", 0) == 0) {
      summary.bytes_by_type.emplace_back(name.substr(6), value);
      summary.bytes_total += value;
    }
  }
  return summary;
}

void print_trace_summary(const Trace& trace, std::FILE* out) {
  const TraceSummary s = summarize_trace(trace);
  std::fprintf(out, "schema %s, %zu spans, %zu counters, %zu histograms\n",
               trace.schema.c_str(), trace.spans.size(), trace.counters.size(),
               trace.histograms.size());
  if (trace.skipped_lines > 0) {
    std::fprintf(out, "WARNING: skipped %zu malformed line%s:\n",
                 trace.skipped_lines, trace.skipped_lines == 1 ? "" : "s");
    for (const std::string& err : trace.parse_errors) {
      std::fprintf(out, "  %s\n", err.c_str());
    }
    if (trace.parse_errors.size() < trace.skipped_lines) {
      std::fprintf(out, "  ... and %zu more\n",
                   trace.skipped_lines - trace.parse_errors.size());
    }
  }
  if (trace.truncated_tail) {
    std::fprintf(out,
                 "WARNING: final record truncated at byte %zu (writer cut "
                 "mid-append)\n",
                 trace.truncated_tail_offset);
  }
  std::fprintf(out, "wall extent covered by spans: %.3f s\n", s.wall_extent_s);

  if (!s.phases.empty()) {
    std::fprintf(out, "\nper-phase (time share of wall extent)\n");
    std::fprintf(out, "%-16s %7s %10s %7s %10s %10s %10s\n", "phase", "count",
                 "total_s", "share", "p50_ms", "p95_ms", "max_ms");
    for (const PhaseSummary& ph : s.phases) {
      std::fprintf(out, "%-16s %7zu %10.3f %6.1f%% %10.3f %10.3f %10.3f\n",
                   ph.name.c_str(), ph.count, ph.total_s,
                   100.0 * ph.wall_share, ph.p50_s * 1e3, ph.p95_s * 1e3,
                   ph.max_s * 1e3);
    }
  }

  if (!s.workers.empty()) {
    std::fprintf(out, "\nper-worker\n");
    std::fprintf(out, "%-8s %10s %10s %8s %8s %14s\n", "worker", "train_s",
                 "verify_s", "accept", "reject", "double_checks");
    for (const WorkerSummary& w : s.workers) {
      std::fprintf(out, "%-8lld %10.3f %10.3f %8lld %8lld %14lld\n",
                   static_cast<long long>(w.worker), w.train_s, w.verify_s,
                   static_cast<long long>(w.accepts),
                   static_cast<long long>(w.rejects),
                   static_cast<long long>(w.double_checks));
    }
  }

  if (!s.bytes_by_type.empty()) {
    std::fprintf(out, "\nbytes by message type\n");
    std::fprintf(out, "%-18s %14s %7s\n", "type", "bytes", "share");
    for (const auto& [type, bytes] : s.bytes_by_type) {
      std::fprintf(out, "%-18s %14llu %6.1f%%\n", type.c_str(),
                   static_cast<unsigned long long>(bytes),
                   s.bytes_total > 0
                       ? 100.0 * static_cast<double>(bytes) /
                             static_cast<double>(s.bytes_total)
                       : 0.0);
    }
    std::fprintf(out, "%-18s %14llu\n", "total",
                 static_cast<unsigned long long>(s.bytes_total));
  }

  // Verdict + runtime counters of interest, if present.
  const auto counter_or_zero = [&](const char* name) -> std::uint64_t {
    const auto it = trace.counters.find(name);
    return it == trace.counters.end() ? 0 : it->second;
  };
  std::fprintf(out,
               "\nverify verdicts: accept=%llu reject=%llu lsh_mismatch=%llu "
               "double_check=%llu\n",
               static_cast<unsigned long long>(counter_or_zero("verify.accept")),
               static_cast<unsigned long long>(counter_or_zero("verify.reject")),
               static_cast<unsigned long long>(
                   counter_or_zero("verify.lsh_mismatch")),
               static_cast<unsigned long long>(
                   counter_or_zero("verify.double_check")));
  // Fault/retry resilience counters (src/fault/): only printed when the run
  // saw transport faults or evictions, so fault-free traces are unchanged.
  const std::uint64_t retries = counter_or_zero("session.retry") +
                                counter_or_zero("pool.retransmission") +
                                counter_or_zero("async.retransmission");
  const std::uint64_t session_failures =
      counter_or_zero("pool.session_failure") + counter_or_zero("async.lost");
  const std::uint64_t evictions =
      counter_or_zero("pool.eviction") + counter_or_zero("async.eviction");
  const std::uint64_t decode_rejects =
      counter_or_zero("session.decode_reject") +
      counter_or_zero("session.oversize_rejected");
  if (retries + session_failures + evictions + decode_rejects > 0) {
    std::fprintf(out,
                 "fault resilience: retransmissions=%llu session_failures=%llu "
                 "evictions=%llu decode_rejects=%llu\n",
                 static_cast<unsigned long long>(retries),
                 static_cast<unsigned long long>(session_failures),
                 static_cast<unsigned long long>(evictions),
                 static_cast<unsigned long long>(decode_rejects));
  }
  const std::uint64_t pf_calls = counter_or_zero("runtime.parallel_for.calls");
  if (pf_calls > 0) {
    const std::uint64_t pf_inline =
        counter_or_zero("runtime.parallel_for.inline");
    const std::uint64_t pf_slices =
        counter_or_zero("runtime.parallel_for.slices");
    const auto threads_it = trace.gauges.find("runtime.threads");
    const double threads =
        threads_it == trace.gauges.end() ? 0.0 : threads_it->second;
    std::fprintf(out,
                 "thread pool: %llu parallel_for calls (%llu inline), "
                 "%llu slices",
                 static_cast<unsigned long long>(pf_calls),
                 static_cast<unsigned long long>(pf_inline),
                 static_cast<unsigned long long>(pf_slices));
    if (threads > 0.0 && pf_calls > pf_inline) {
      std::fprintf(out, ", utilization %.0f%% of %d threads",
                   100.0 * static_cast<double>(pf_slices) /
                       (static_cast<double>(pf_calls - pf_inline) * threads),
                   static_cast<int>(threads));
    }
    std::fprintf(out, "\n");
  }

  if (!trace.histograms.empty()) {
    std::fprintf(out, "\nhistograms (sampled)\n");
    std::fprintf(out, "%-24s %10s %10s %10s %10s\n", "name", "count", "p50_us",
                 "p95_us", "max_us");
    for (const ParsedHistogram& h : trace.histograms) {
      std::fprintf(out, "%-24s %10llu %10.1f %10.1f %10.1f\n", h.name.c_str(),
                   static_cast<unsigned long long>(h.count),
                   static_cast<double>(h.p50) / 1e3,
                   static_cast<double>(h.p95) / 1e3,
                   static_cast<double>(h.max) / 1e3);
    }
  }
}

}  // namespace rpol::obs
