// Windowed metric aggregation: bounded ring buffers of cumulative metric
// snapshots, turned into rates and rolling percentiles on demand.
//
// The registry's counters and histograms are cumulative for the process
// lifetime — ideal for totals, useless for "what happened recently". These
// windows close the gap without unbounded growth: a sampler (a bench
// harness, the health exporter, a future dashboard) calls sample() on a
// fixed cadence, the window keeps the last N cumulative snapshots in a
// fixed-size ring, and deltas between ring entries yield per-window rates
// and percentiles. Memory is bounded at construction: capacity * 8 bytes
// for a CounterWindow, capacity * sizeof(Histogram::Snapshot) (~2 KB) for
// a HistogramWindow, and nothing ever reallocates after the ring fills.
//
// Histogram windows subtract bucket vectors entrywise. Because every
// sample is a consistent Snapshot (taken under the histogram's writer-
// exclusion guard, obs.h), newest - oldest is itself a valid histogram of
// exactly the values recorded inside the window, so windowed percentiles
// carry the same ~12.5% bucket error bound as cumulative ones.
//
// Windows are single-sampler objects: call sample() from one thread (the
// underlying metric may be written from any number of threads — reads go
// through the atomics / the snapshot guard). They never feed back into the
// metrics they observe, preserving the obs write-only contract.

#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.h"

namespace rpol::obs {

// Ring of cumulative counter readings.
class CounterWindow {
 public:
  explicit CounterWindow(std::size_t capacity);

  void sample(const Counter& c) { sample(c.value()); }
  void sample(std::uint64_t cumulative_value);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }  // samples held (<= cap)

  // Newest minus oldest sample in the ring (0 with < 2 samples). Saturates
  // at 0 if the counter was drained mid-window.
  std::uint64_t window_delta() const;
  // window_delta() averaged over the sample gaps in the ring; 0 with < 2
  // samples. With a fixed sampling cadence this is "per tick" rate.
  double rate_per_sample() const;
  std::uint64_t latest() const;
  std::uint64_t oldest() const;

 private:
  std::size_t capacity_;
  std::vector<std::uint64_t> ring_;
  std::size_t next_ = 0;  // overwrite position once full
};

// Ring of cumulative histogram snapshots.
class HistogramWindow {
 public:
  explicit HistogramWindow(std::size_t capacity);

  void sample(const Histogram& h) { push(h.snapshot()); }
  void push(const Histogram::Snapshot& snapshot);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }

  // Newest minus oldest snapshot, bucketwise (all-zero with < 2 samples).
  // `max` is the newest cumulative max: the true windowed max is not
  // recoverable from cumulative state, so the delta's percentiles clamp
  // against the lifetime max (an upper bound, same as the cumulative path).
  Histogram::Snapshot window_delta() const;

  // Rolling percentile over just the values recorded inside the window.
  std::uint64_t windowed_percentile(double p) const;
  // Values recorded inside the window (window_delta().count).
  std::uint64_t windowed_count() const;
  // windowed_count() averaged over the ring's sample gaps.
  double rate_per_sample() const;

 private:
  std::size_t capacity_;
  std::vector<Histogram::Snapshot> ring_;
  std::size_t next_ = 0;
};

}  // namespace rpol::obs
