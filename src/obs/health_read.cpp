#include "obs/health_read.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace rpol::obs {

namespace {

std::uint64_t u64_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_u64() : 0;
}

bool bool_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return v != nullptr && v->kind == Json::Kind::kBool && v->b;
}

std::string string_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return (v != nullptr && v->kind == Json::Kind::kString) ? v->token
                                                          : std::string();
}

void parse_worker_line(const Json& obj, HealthReport& report) {
  HealthWorkerRow row;
  row.worker = static_cast<std::size_t>(u64_field(obj, "worker"));
  const Json* score = obj.find("score");
  row.score = score != nullptr ? score->as_double() : 0.0;
  row.state = health_state_from_name(string_field(obj, "state"));
  row.evicted = bool_field(obj, "evicted");
  row.consecutive_failures =
      static_cast<int>(u64_field(obj, "consecutive_failures"));
  if (const Json* w = obj.find("window"); w != nullptr) {
    row.window.total = u64_field(*w, "total");
    row.window.participated = u64_field(*w, "participated");
    row.window.accepted = u64_field(*w, "accepted");
    row.window.retransmissions = u64_field(*w, "retransmissions");
    row.window.mean_latency_ns = u64_field(*w, "mean_latency_ns");
    row.window.min_latency_ns = u64_field(*w, "min_latency_ns");
    row.window.max_latency_ns = u64_field(*w, "max_latency_ns");
  }
  report.workers.push_back(std::move(row));
}

}  // namespace

std::uint64_t HealthReport::tagged_peak_total() const {
  std::uint64_t sum = 0;
  for (const HealthMemRow& row : mem) sum += row.stats.peak_bytes;
  return sum;
}

double HealthReport::coverage_vs_rss_growth() const {
  if (!has_rss || !rss.valid || rss.growth_bytes == 0) return 0.0;
  return static_cast<double>(tagged_peak_total()) /
         static_cast<double>(rss.growth_bytes);
}

HealthReport parse_health_jsonl(std::string_view text, bool strict) {
  constexpr std::size_t kMaxKeptErrors = 8;
  HealthReport report;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t line_start = pos;
    std::size_t end = text.find('\n', pos);
    const bool has_newline = end != std::string_view::npos;
    if (!has_newline) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = has_newline ? end + 1 : text.size();
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    Json obj;
    try {
      obj = parse_json(line);
    } catch (const std::exception& e) {
      if (!has_newline) {
        // Final line cut mid-record: the exporter crashed or a reader is
        // racing the writer — not interior corruption.
        if (strict) {
          throw std::runtime_error(
              "health export truncated mid-record at byte offset " +
              std::to_string(line_start) + " (line " +
              std::to_string(line_no) + "): " + e.what());
        }
        report.truncated_tail = true;
        report.truncated_tail_offset = line_start;
        break;
      }
      if (strict) {
        throw std::runtime_error("health line " + std::to_string(line_no) +
                                 ": " + e.what());
      }
      ++report.skipped_lines;
      if (report.parse_errors.size() < kMaxKeptErrors) {
        report.parse_errors.push_back("line " + std::to_string(line_no) +
                                      ": " + e.what());
      }
      continue;
    }
    const std::string type = string_field(obj, "type");
    if (type == "meta") {
      report.schema = string_field(obj, "schema");
      report.wall_unix_ns = u64_field(obj, "wall_unix_ns");
      report.eviction_threshold =
          static_cast<int>(u64_field(obj, "eviction_threshold"));
      report.workers_declared =
          static_cast<std::size_t>(u64_field(obj, "workers"));
    } else if (type == "worker") {
      parse_worker_line(obj, report);
    } else if (type == "mem") {
      HealthMemRow row;
      row.tag = string_field(obj, "tag");
      row.stats.current_bytes = u64_field(obj, "current_bytes");
      row.stats.peak_bytes = u64_field(obj, "peak_bytes");
      row.stats.total_bytes = u64_field(obj, "total_bytes");
      report.mem.push_back(std::move(row));
    } else if (type == "rss") {
      report.has_rss = true;
      report.rss.valid = bool_field(obj, "valid");
      report.rss.samples = u64_field(obj, "samples");
      report.rss.baseline_bytes = u64_field(obj, "baseline_bytes");
      report.rss.min_bytes = u64_field(obj, "min_bytes");
      report.rss.peak_bytes = u64_field(obj, "peak_bytes");
      report.rss.last_bytes = u64_field(obj, "last_bytes");
      report.rss.growth_bytes = u64_field(obj, "growth_bytes");
    }
    // Unknown types: skipped for forward compatibility.
  }
  return report;
}

HealthReport load_health_file(const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open health file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_health_jsonl(buf.str(), strict);
}

namespace {

std::string human_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.2f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

void print_health_report(const HealthReport& report, std::FILE* out) {
  std::fprintf(out, "health report (%s), %zu worker(s), threshold %d\n",
               report.schema.empty() ? "unknown schema" : report.schema.c_str(),
               report.workers.size(), report.eviction_threshold);
  if (report.skipped_lines > 0) {
    std::fprintf(out, "  WARNING: skipped %zu malformed line%s\n",
                 report.skipped_lines, report.skipped_lines == 1 ? "" : "s");
    for (const std::string& err : report.parse_errors) {
      std::fprintf(out, "    %s\n", err.c_str());
    }
  }
  if (report.truncated_tail) {
    std::fprintf(out,
                 "  WARNING: final record truncated at byte %zu (writer cut "
                 "mid-append)\n",
                 report.truncated_tail_offset);
  }

  if (!report.workers.empty()) {
    std::fprintf(out,
                 "\n  %-7s %-7s %-9s %-8s %-9s %-9s %-8s %-12s\n",
                 "worker", "score", "state", "strikes", "sessions", "accepted",
                 "retrans", "mean-latency");
    for (const HealthWorkerRow& row : report.workers) {
      char latency[32];
      if (row.window.mean_latency_ns > 0) {
        std::snprintf(latency, sizeof latency, "%.3f ms",
                      static_cast<double>(row.window.mean_latency_ns) / 1e6);
      } else {
        std::snprintf(latency, sizeof latency, "-");
      }
      std::fprintf(out, "  %-7zu %-7.1f %-9s %-8d %-9llu %-9llu %-8llu %-12s\n",
                   row.worker, row.score, health_state_name(row.state),
                   row.consecutive_failures,
                   static_cast<unsigned long long>(row.window.total),
                   static_cast<unsigned long long>(row.window.accepted),
                   static_cast<unsigned long long>(row.window.retransmissions),
                   latency);
    }
  }

  if (!report.mem.empty()) {
    std::fprintf(out, "\n  memory by subsystem:\n");
    std::fprintf(out, "  %-12s %14s %14s %14s\n", "tag", "current", "peak",
                 "total");
    for (const HealthMemRow& row : report.mem) {
      std::fprintf(out, "  %-12s %14s %14s %14s\n", row.tag.c_str(),
                   human_bytes(row.stats.current_bytes).c_str(),
                   human_bytes(row.stats.peak_bytes).c_str(),
                   human_bytes(row.stats.total_bytes).c_str());
    }
    std::fprintf(out, "  %-12s %14s %14s\n", "(sum)", "",
                 human_bytes(report.tagged_peak_total()).c_str());
  }

  if (report.has_rss) {
    if (report.rss.valid) {
      std::fprintf(out,
                   "\n  rss: baseline %s, peak %s, growth %s over %llu "
                   "sample(s)\n",
                   human_bytes(report.rss.baseline_bytes).c_str(),
                   human_bytes(report.rss.peak_bytes).c_str(),
                   human_bytes(report.rss.growth_bytes).c_str(),
                   static_cast<unsigned long long>(report.rss.samples));
      const double cov = report.coverage_vs_rss_growth();
      if (cov > 0.0) {
        std::fprintf(out,
                     "  accounting coverage: tagged peak = %.0f%% of sampled "
                     "RSS growth%s\n",
                     cov * 100.0,
                     cov > 1.0 ? " (>100%: tag peaks are lifetime maxima and "
                                 "the allocator reuses freed pages)"
                               : "");
      }
    } else {
      std::fprintf(out, "\n  rss: unavailable (/proc not readable)\n");
    }
  }
}

}  // namespace rpol::obs
