#include "obs/live_read.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace rpol::obs {

namespace {

constexpr std::size_t kMaxKeptErrors = 8;

std::uint64_t u64_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_u64() : 0;
}

std::int64_t i64_field(const Json& obj, std::string_view key,
                       std::int64_t fallback) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_i64() : fallback;
}

double double_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_double() : 0.0;
}

bool bool_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return v != nullptr && v->kind == Json::Kind::kBool && v->b;
}

std::string string_field(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return (v != nullptr && v->kind == Json::Kind::kString) ? v->token
                                                          : std::string();
}

void parse_snapshot_line(const Json& obj, LiveDoc& doc) {
  LiveSnapshot snap;
  snap.seq = u64_field(obj, "seq");
  snap.t_ns = u64_field(obj, "t_ns");
  if (const Json* counters = obj.find("counters"); counters != nullptr) {
    for (const auto& [name, v] : counters->obj) {
      LiveCounterRow row;
      row.name = name;
      row.total = u64_field(v, "total");
      row.delta = u64_field(v, "delta");
      row.rate = double_field(v, "rate");
      snap.counters.push_back(std::move(row));
    }
  }
  if (const Json* hists = obj.find("histograms"); hists != nullptr) {
    for (const auto& [name, v] : hists->obj) {
      LiveHistogramRow row;
      row.name = name;
      row.count = u64_field(v, "count");
      row.delta = u64_field(v, "delta");
      row.p50 = u64_field(v, "p50");
      row.p95 = u64_field(v, "p95");
      row.max = u64_field(v, "max");
      snap.histograms.push_back(std::move(row));
    }
  }
  if (const Json* mem = obj.find("mem"); mem != nullptr) {
    for (const auto& [tag, v] : mem->obj) {
      LiveMemRow row;
      row.tag = tag;
      row.current_bytes = u64_field(v, "current");
      row.peak_bytes = u64_field(v, "peak");
      snap.mem.push_back(std::move(row));
    }
  }
  snap.rss_bytes = u64_field(obj, "rss_bytes");
  if (const Json* workers = obj.find("workers"); workers != nullptr) {
    for (const Json& w : workers->arr) {
      LiveHealthRow row;
      row.worker = i64_field(w, "worker", -1);
      row.score = double_field(w, "score");
      row.evicted = bool_field(w, "evicted");
      row.consecutive_failures =
          static_cast<int>(i64_field(w, "consecutive_failures", 0));
      row.window_total = u64_field(w, "window_total");
      row.window_accepted = u64_field(w, "window_accepted");
      row.window_retransmissions = u64_field(w, "window_retransmissions");
      snap.workers.push_back(row);
    }
  }
  doc.snapshots.push_back(std::move(snap));
}

void parse_alert_line(const Json& obj, LiveDoc& doc) {
  LiveAlertRow row;
  row.seq = u64_field(obj, "seq");
  row.t_ns = u64_field(obj, "t_ns");
  row.rule = string_field(obj, "rule");
  row.severity = string_field(obj, "severity");
  row.value = double_field(obj, "value");
  row.baseline = double_field(obj, "baseline");
  row.threshold = double_field(obj, "threshold");
  row.worker = i64_field(obj, "worker", -1);
  row.message = string_field(obj, "message");
  doc.alerts.push_back(std::move(row));
}

}  // namespace

LiveDoc parse_live_jsonl(std::string_view text, bool strict) {
  LiveDoc doc;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t line_start = pos;
    std::size_t end = text.find('\n', pos);
    const bool has_newline = end != std::string_view::npos;
    if (!has_newline) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = has_newline ? end + 1 : text.size();
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    Json obj;
    try {
      obj = parse_json(line);
    } catch (const std::exception& e) {
      // A newline-less final line is an in-flight append (the flusher was
      // mid-write when we read the file), not corruption.
      if (!has_newline) {
        if (strict) {
          throw std::runtime_error(
              "live stream truncated mid-record at byte offset " +
              std::to_string(line_start) + " (line " + std::to_string(line_no) +
              "): " + e.what());
        }
        doc.truncated_tail = true;
        doc.truncated_tail_offset = line_start;
        break;
      }
      if (strict) {
        throw std::runtime_error("live line " + std::to_string(line_no) +
                                 ": " + e.what());
      }
      ++doc.skipped_lines;
      if (doc.parse_errors.size() < kMaxKeptErrors) {
        doc.parse_errors.push_back("line " + std::to_string(line_no) + ": " +
                                   e.what());
      }
      continue;
    }
    const std::string type = string_field(obj, "type");
    if (type == "meta") {
      doc.schema = string_field(obj, "schema");
      doc.interval_ms = u64_field(obj, "interval_ms");
      doc.window = static_cast<std::size_t>(u64_field(obj, "window"));
    } else if (type == "snapshot") {
      parse_snapshot_line(obj, doc);
    } else if (type == "alert") {
      parse_alert_line(obj, doc);
    }
    // Unknown types: skipped for forward compatibility.
  }
  return doc;
}

LiveDoc load_live_file(const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open live file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_live_jsonl(buf.str(), strict);
}

namespace {

std::string human_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.2f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void print_alert_row(const LiveAlertRow& alert, std::FILE* out) {
  std::fprintf(out, "  [%-4s] seq %-4llu %-18s %s\n", alert.severity.c_str(),
               static_cast<unsigned long long>(alert.seq), alert.rule.c_str(),
               alert.message.c_str());
}

}  // namespace

void print_live_report(const LiveDoc& doc, std::FILE* out) {
  std::fprintf(out, "live stream (%s), %zu snapshot(s), interval %llu ms\n",
               doc.schema.empty() ? "unknown schema" : doc.schema.c_str(),
               doc.snapshots.size(),
               static_cast<unsigned long long>(doc.interval_ms));
  if (doc.snapshots.empty()) {
    std::fprintf(out, "  (no snapshots yet)\n");
    return;
  }
  const LiveSnapshot& snap = doc.snapshots.back();
  std::fprintf(out, "  latest: seq %llu, t %.3f s, rss %s\n",
               static_cast<unsigned long long>(snap.seq),
               static_cast<double>(snap.t_ns) / 1e9,
               human_bytes(snap.rss_bytes).c_str());

  if (!snap.counters.empty()) {
    std::fprintf(out, "\n  %-32s %12s %10s %10s\n", "counter", "total",
                 "delta", "rate/tick");
    for (const LiveCounterRow& row : snap.counters) {
      std::fprintf(out, "  %-32s %12llu %10llu %10.2f\n", row.name.c_str(),
                   static_cast<unsigned long long>(row.total),
                   static_cast<unsigned long long>(row.delta), row.rate);
    }
  }

  if (!snap.histograms.empty()) {
    std::fprintf(out, "\n  %-32s %10s %8s %12s %12s\n", "histogram", "count",
                 "delta", "p50", "p95");
    for (const LiveHistogramRow& row : snap.histograms) {
      std::fprintf(out, "  %-32s %10llu %8llu %12llu %12llu\n",
                   row.name.c_str(),
                   static_cast<unsigned long long>(row.count),
                   static_cast<unsigned long long>(row.delta),
                   static_cast<unsigned long long>(row.p50),
                   static_cast<unsigned long long>(row.p95));
    }
  }

  if (!snap.workers.empty()) {
    // One worker per column: a compact strip for terminal watching.
    std::fprintf(out, "\n  workers:");
    for (const LiveHealthRow& row : snap.workers) {
      const char* state = row.evicted ? "EVICTED"
                          : row.score >= 75.0 ? "ok"
                                              : "degraded";
      std::fprintf(out, "  [w%lld %.0f %s]", static_cast<long long>(row.worker),
                   row.score, state);
    }
    std::fprintf(out, "\n");
  }

  // Alerts belonging to the latest window (same seq), then a recent tail.
  std::size_t active = 0;
  for (const LiveAlertRow& alert : doc.alerts) {
    if (alert.seq == snap.seq) ++active;
  }
  if (active > 0) {
    std::fprintf(out, "\n  active alerts (this window):\n");
    for (const LiveAlertRow& alert : doc.alerts) {
      if (alert.seq == snap.seq) print_alert_row(alert, out);
    }
  } else if (!doc.alerts.empty()) {
    std::fprintf(out, "\n  no active alerts (%zu earlier in stream)\n",
                 doc.alerts.size());
  }

  if (doc.skipped_lines > 0) {
    std::fprintf(out, "\n  (%zu damaged line(s) skipped)\n", doc.skipped_lines);
  }
  if (doc.truncated_tail) {
    std::fprintf(out,
                 "  (final record truncated at byte %zu — writer mid-append)\n",
                 doc.truncated_tail_offset);
  }
}

void print_alerts_summary(const LiveDoc& doc, std::FILE* out) {
  std::fprintf(out, "alerts: %zu over %zu snapshot(s)\n", doc.alerts.size(),
               doc.snapshots.size());
  if (doc.alerts.empty()) return;

  // Group by rule, preserving first-seen order.
  std::vector<std::string> rules;
  for (const LiveAlertRow& alert : doc.alerts) {
    bool seen = false;
    for (const std::string& r : rules) {
      if (r == alert.rule) {
        seen = true;
        break;
      }
    }
    if (!seen) rules.push_back(alert.rule);
  }
  for (const std::string& rule : rules) {
    std::size_t n = 0;
    for (const LiveAlertRow& alert : doc.alerts) {
      if (alert.rule == rule) ++n;
    }
    std::fprintf(out, "\n  %s (%zu):\n", rule.c_str(), n);
    for (const LiveAlertRow& alert : doc.alerts) {
      if (alert.rule == rule) print_alert_row(alert, out);
    }
  }
  if (doc.truncated_tail) {
    std::fprintf(out,
                 "\n  (final record truncated at byte %zu — writer "
                 "mid-append)\n",
                 doc.truncated_tail_offset);
  }
}

}  // namespace rpol::obs
