// Causal timeline reconstruction over a rpol.trace.v2 export: stitches the
// per-epoch span trees back together (same-agent `parent` edges plus
// cross-agent `link` edges carried by the wire envelope), attributes each
// epoch's wall time to protocol phases, surfaces per-worker costs and the
// critical path, and flags referential damage (orphan parents / broken
// links). Backs the `rpol timeline` CLI subcommand and the Chrome-trace /
// Perfetto export used for visual inspection.
//
// Terminology: a "trace" is one causal tree, identified by the id of its
// root span (SpanRecord::trace_id). MiningPool roots one per epoch,
// AsyncMiningPool one per submission, a bare ProtocolSession one per
// session. Spans with trace_id == 0 come from legacy (v1) emitters and are
// reported as strays, never as errors.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/analyze.h"

namespace rpol::obs {

// Referential self-check: does every non-zero parent / link id resolve to a
// span present in the same file? `rpol trace --verify-refs` gates on ok().
struct RefCheck {
  std::size_t total_spans = 0;
  std::vector<std::uint64_t> orphan_parents;  // span ids with missing parent
  std::vector<std::uint64_t> orphan_links;    // span ids with missing link
  bool ok() const { return orphan_parents.empty() && orphan_links.empty(); }
};

RefCheck verify_refs(const Trace& trace);

// One protocol phase's share of an epoch: direct children of the trace root
// grouped by span name (train, commit, verify, aggregate, evaluate, ...).
struct PhaseAttribution {
  std::string phase;
  std::size_t count = 0;
  double total_s = 0.0;
  double share = 0.0;  // of the root span's extent
};

struct WorkerTimeline {
  std::int64_t worker = -1;
  double train_s = 0.0;   // "train" + "submission" spans
  double commit_s = 0.0;
  double verify_s = 0.0;
  std::size_t spans = 0;
};

// One reconstructed causal tree (= one epoch / submission / session).
struct EpochTimeline {
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;
  std::string root_name;
  std::int64_t epoch = -1;   // root span's epoch tag
  std::size_t span_count = 0;
  std::size_t root_count = 0;  // spans with no in-tree parent; 1 when intact
  double extent_s = 0.0;       // root span duration
  // Interval union of the root's direct children, clamped to the root:
  // "how much of the epoch do the phase spans explain?" The acceptance bar
  // for pool epochs is attributed_share >= 0.95.
  double attributed_s = 0.0;
  double attributed_share = 0.0;
  std::vector<PhaseAttribution> phases;   // sorted by total time, descending
  std::vector<WorkerTimeline> workers;    // sorted by worker id
  std::vector<std::string> critical_path;  // root -> ... span names
  double critical_path_s = 0.0;            // duration of its deepest span
};

struct TimelineReport {
  std::vector<EpochTimeline> epochs;  // sorted by (epoch, trace_id)
  std::size_t stray_spans = 0;        // trace_id == 0 (legacy emitters)
  RefCheck refs;
};

TimelineReport build_timeline(const Trace& trace);

void print_timeline(const TimelineReport& report, std::FILE* out);

// Chrome-trace ("traceEvents") JSON, loadable by Perfetto and
// chrome://tracing: one complete-event ("ph":"X") per span with
// microsecond timestamps, pid = trace id, tid = worker lane (0 = manager),
// plus process/thread-name metadata events. Returns the number of events
// written. Output is deterministic given identical span structure: only ts
// and dur vary between runs.
std::size_t export_chrome_trace(const Trace& trace, std::FILE* out);
bool export_chrome_trace_file(const Trace& trace, const std::string& path);

}  // namespace rpol::obs
