#include "obs/window.h"

namespace rpol::obs {

// ---------------------------------------------------------------------------
// CounterWindow

CounterWindow::CounterWindow(std::size_t capacity)
    : capacity_(capacity > 1 ? capacity : 2) {
  ring_.reserve(capacity_);
}

void CounterWindow::sample(std::uint64_t cumulative_value) {
  if (ring_.size() < capacity_) {
    ring_.push_back(cumulative_value);
    return;
  }
  ring_[next_] = cumulative_value;
  next_ = (next_ + 1) % ring_.size();
}

std::uint64_t CounterWindow::latest() const {
  if (ring_.empty()) return 0;
  if (ring_.size() < capacity_) return ring_.back();
  return ring_[(next_ + ring_.size() - 1) % ring_.size()];
}

std::uint64_t CounterWindow::oldest() const {
  if (ring_.empty()) return 0;
  if (ring_.size() < capacity_) return ring_.front();
  return ring_[next_];
}

std::uint64_t CounterWindow::window_delta() const {
  if (ring_.size() < 2) return 0;
  const std::uint64_t newest = latest();
  const std::uint64_t old = oldest();
  return newest > old ? newest - old : 0;
}

double CounterWindow::rate_per_sample() const {
  if (ring_.size() < 2) return 0.0;
  return static_cast<double>(window_delta()) /
         static_cast<double>(ring_.size() - 1);
}

// ---------------------------------------------------------------------------
// HistogramWindow

HistogramWindow::HistogramWindow(std::size_t capacity)
    : capacity_(capacity > 1 ? capacity : 2) {
  ring_.reserve(capacity_);
}

void HistogramWindow::push(const Histogram::Snapshot& snapshot) {
  if (ring_.size() < capacity_) {
    ring_.push_back(snapshot);
    return;
  }
  ring_[next_] = snapshot;
  next_ = (next_ + 1) % ring_.size();
}

Histogram::Snapshot HistogramWindow::window_delta() const {
  Histogram::Snapshot delta;
  if (ring_.size() < 2) return delta;
  const std::size_t n = ring_.size();
  const bool full = n == capacity_;
  const Histogram::Snapshot& oldest = full ? ring_[next_] : ring_.front();
  const Histogram::Snapshot& newest =
      full ? ring_[(next_ + n - 1) % n] : ring_.back();
  // Saturating subtraction: a reset() mid-window makes newest < oldest, in
  // which case the affected fields collapse to zero instead of wrapping.
  delta.count = newest.count > oldest.count ? newest.count - oldest.count : 0;
  delta.sum = newest.sum > oldest.sum ? newest.sum - oldest.sum : 0;
  delta.max = newest.max;  // lifetime max: upper bound for the window
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    delta.buckets[i] = newest.buckets[i] > oldest.buckets[i]
                           ? newest.buckets[i] - oldest.buckets[i]
                           : 0;
  }
  return delta;
}

std::uint64_t HistogramWindow::windowed_percentile(double p) const {
  return window_delta().approx_percentile(p);
}

std::uint64_t HistogramWindow::windowed_count() const {
  return window_delta().count;
}

double HistogramWindow::rate_per_sample() const {
  if (ring_.size() < 2) return 0.0;
  return static_cast<double>(windowed_count()) /
         static_cast<double>(ring_.size() - 1);
}

}  // namespace rpol::obs
