// Live telemetry: a background flusher that appends one "rpol.live.v1"
// JSONL snapshot per interval — windowed counter/histogram deltas and
// rates (window.h rings over the registry's cumulative metrics), the
// per-tag memory breakdown (mem.h), an RSS sample, and the most recently
// published per-worker health rows — plus the alert lines the AlertEngine
// (alerts.h) derives from those same windows.
//
// The flusher is a pure READER of telemetry state: it samples the
// registry's atomics under the reset seqlock (obs::stable_telemetry_read),
// keeps its windows privately, and writes only to its own file. Protocol
// code never sees it; a run with the flusher on is bitwise identical to a
// run without (runtime_determinism_test proves it). Pools hand it health
// rows by value via live_publish_health() at safe points (end of epoch /
// tick), so it never touches a pool-owned HealthRegistry concurrently.
//
// Enablement mirrors tracing: RPOL_LIVE=1 turns the surface on (one
// relaxed atomic when off), RPOL_LIVE_INTERVAL_MS sets the cadence
// (default 1000), RPOL_LIVE_FILE the sink (default "rpol_live.jsonl").
// maybe_start_live() bundles the policy: start a flusher and install the
// flight-recorder signal handler iff live_enabled(). Schema:
// docs/observability.md §live.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/alerts.h"
#include "obs/health.h"

namespace rpol::obs {

// RPOL_LIVE_INTERVAL_MS (default 1000; values < 1 clamp to 1). Read per
// call so tests can setenv between runs.
std::uint64_t live_interval_ms();

// RPOL_LIVE_FILE, or `default_path` when unset/empty.
std::string live_file_path(const std::string& default_path);

// ---------------------------------------------------------------------------
// Health publication: pools copy their HealthRegistry into this process-wide
// slot at deterministic safe points; the flusher reads the copy. No-op (one
// relaxed atomic) unless live_enabled().

void live_publish_health(const HealthRegistry& reg);
std::vector<LiveHealthRow> live_health_rows();
void live_reset_health();  // tests / between runs

// ---------------------------------------------------------------------------
// LiveFlusher

class LiveFlusher {
 public:
  struct Options {
    std::string path = "rpol_live.jsonl";
    std::chrono::milliseconds interval{1000};
    // Ring capacity of every counter/histogram window (ticks of history
    // behind the rolling deltas/percentiles).
    std::size_t window_capacity = 16;
    AlertRuleConfig rules;
  };

  // Opens the file, writes the meta line, starts the flusher thread.
  explicit LiveFlusher(Options options);
  ~LiveFlusher();  // implies stop()
  LiveFlusher(const LiveFlusher&) = delete;
  LiveFlusher& operator=(const LiveFlusher&) = delete;

  // Joins the thread after one final flush; idempotent.
  void stop();

  // Synchronous tick from the calling thread (tests, `--once` style use);
  // serialized with the background thread's ticks.
  void flush_now();

  bool ok() const;  // false when the sink could not be opened
  const std::string& path() const;
  std::uint64_t snapshots_written() const;
  std::uint64_t alerts_emitted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// When live_enabled(): installs the flight signal handler and returns a
// running flusher aimed at live_file_path(default_path) with the env
// cadence. Returns nullptr when disabled (the caller keeps the unique_ptr
// alive for the run and lets it stop on scope exit).
std::unique_ptr<LiveFlusher> maybe_start_live(const std::string& default_path);

}  // namespace rpol::obs
