#include "obs/json.h"

#include <cstdlib>
#include <stdexcept>

namespace rpol::obs {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Json key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key.token), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json parse_string() {
    Json v;
    v.kind = Json::Kind::kString;
    expect('"');
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c != '\\') {
        v.token += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': v.token += '"'; break;
        case '\\': v.token += '\\'; break;
        case '/': v.token += '/'; break;
        case 'n': v.token += '\n'; break;
        case 'r': v.token += '\r'; break;
        case 't': v.token += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned long cp =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16);
          pos_ += 4;
          // The exporters only escape control characters, all < 0x80.
          v.token += static_cast<char>(cp & 0x7F);
          break;
        }
        default: fail("unsupported escape");
      }
    }
  }

  Json parse_bool() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.b = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.b = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json parse_null() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    return Json{};
  }

  Json parse_number() {
    Json v;
    v.kind = Json::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    v.token = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

double Json::as_double() const { return std::strtod(token.c_str(), nullptr); }

std::uint64_t Json::as_u64() const {
  return std::strtoull(token.c_str(), nullptr, 10);
}

std::int64_t Json::as_i64() const {
  return std::strtoll(token.c_str(), nullptr, 10);
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json parse_json(std::string_view text) { return JsonParser(text).parse(); }

}  // namespace rpol::obs
