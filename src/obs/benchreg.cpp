#include "obs/benchreg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace rpol::obs {
namespace {

void write_escaped(std::FILE* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", out); break;
      case '\\': std::fputs("\\\\", out); break;
      case '\n': std::fputs("\\n", out); break;
      case '\t': std::fputs("\\t", out); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", c);
        } else {
          std::fputc(c, out);
        }
    }
  }
}

std::string require_string(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind != Json::Kind::kString) {
    throw std::runtime_error(std::string("bench record missing \"") + key +
                             "\"");
  }
  return v->token;
}

std::string record_key(const BenchRecord& r) { return r.bench + "/" + r.name; }

}  // namespace

void sort_bench_records(BenchReport& report) {
  std::sort(report.records.begin(), report.records.end(),
            [](const BenchRecord& a, const BenchRecord& b) {
              if (a.bench != b.bench) return a.bench < b.bench;
              return a.name < b.name;
            });
}

std::size_t write_bench_json(const BenchReport& report, std::FILE* out) {
  BenchReport sorted = report;
  sort_bench_records(sorted);
  std::fputs("{\"schema\":\"rpol.bench.v1\",\"records\":[", out);
  for (std::size_t i = 0; i < sorted.records.size(); ++i) {
    const BenchRecord& r = sorted.records[i];
    std::fputs(i == 0 ? "\n" : ",\n", out);
    std::fputs(" {\"bench\":\"", out);
    write_escaped(out, r.bench);
    std::fputs("\",\"name\":\"", out);
    write_escaped(out, r.name);
    std::fputs("\",\"unit\":\"", out);
    write_escaped(out, r.unit);
    std::fprintf(out, "\",\"value\":%.9g,\"higher_is_better\":%s", r.value,
                 r.higher_is_better ? "true" : "false");
    if (r.has_stats) {
      std::fprintf(out,
                   ",\"stats\":{\"best\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
                   "\"worst\":%.9g}",
                   r.stats.best, r.stats.p50, r.stats.p95, r.stats.worst);
    }
    std::fprintf(out, ",\"env\":{\"threads\":%lld,\"build\":\"",
                 static_cast<long long>(r.env.threads));
    write_escaped(out, r.env.build);
    std::fputs("\",\"compiler\":\"", out);
    write_escaped(out, r.env.compiler);
    std::fprintf(out, "\",\"peak_rss_bytes\":%llu}}",
                 static_cast<unsigned long long>(r.env.peak_rss_bytes));
  }
  std::fputs("\n]}\n", out);
  return sorted.records.size();
}

bool write_bench_json_file(const BenchReport& report, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  write_bench_json(report, f);
  return std::fclose(f) == 0;
}

BenchReport parse_bench_json(std::string_view text) {
  const Json root = parse_json(text);
  if (root.kind != Json::Kind::kObject) {
    throw std::runtime_error("bench file: top level is not an object");
  }
  const Json* schema = root.find("schema");
  if (schema == nullptr || schema->kind != Json::Kind::kString ||
      schema->token != "rpol.bench.v1") {
    throw std::runtime_error("bench file: unknown bench schema");
  }
  const Json* records = root.find("records");
  if (records == nullptr || records->kind != Json::Kind::kArray) {
    throw std::runtime_error("bench file: missing \"records\" array");
  }
  BenchReport report;
  report.records.reserve(records->arr.size());
  for (const Json& jr : records->arr) {
    if (jr.kind != Json::Kind::kObject) {
      throw std::runtime_error("bench file: record is not an object");
    }
    BenchRecord r;
    r.bench = require_string(jr, "bench");
    r.name = require_string(jr, "name");
    r.unit = require_string(jr, "unit");
    const Json* value = jr.find("value");
    if (value == nullptr || value->kind != Json::Kind::kNumber) {
      throw std::runtime_error("bench file: record missing numeric \"value\"");
    }
    r.value = value->as_double();
    if (const Json* hib = jr.find("higher_is_better");
        hib != nullptr && hib->kind == Json::Kind::kBool) {
      r.higher_is_better = hib->b;
    }
    if (const Json* stats = jr.find("stats");
        stats != nullptr && stats->kind == Json::Kind::kObject) {
      r.has_stats = true;
      if (const Json* v = stats->find("best")) r.stats.best = v->as_double();
      if (const Json* v = stats->find("p50")) r.stats.p50 = v->as_double();
      if (const Json* v = stats->find("p95")) r.stats.p95 = v->as_double();
      if (const Json* v = stats->find("worst")) r.stats.worst = v->as_double();
    }
    if (const Json* env = jr.find("env");
        env != nullptr && env->kind == Json::Kind::kObject) {
      if (const Json* v = env->find("threads")) r.env.threads = v->as_i64();
      if (const Json* v = env->find("build");
          v != nullptr && v->kind == Json::Kind::kString) {
        r.env.build = v->token;
      }
      if (const Json* v = env->find("compiler");
          v != nullptr && v->kind == Json::Kind::kString) {
        r.env.compiler = v->token;
      }
      // Absent in pre-memory-column files: stays 0 (= not recorded).
      if (const Json* v = env->find("peak_rss_bytes")) {
        r.env.peak_rss_bytes = v->as_u64();
      }
    }
    report.records.push_back(std::move(r));
  }
  sort_bench_records(report);
  return report;
}

BenchReport load_bench_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_bench_json(buf.str());
}

BenchReport merge_bench_reports(const BenchReport& base,
                                const BenchReport& update) {
  std::map<std::string, BenchRecord> merged;
  for (const auto& r : base.records) merged[record_key(r)] = r;
  for (const auto& r : update.records) merged[record_key(r)] = r;
  BenchReport out;
  out.records.reserve(merged.size());
  for (auto& [key, r] : merged) out.records.push_back(std::move(r));
  sort_bench_records(out);
  return out;
}

BenchDiffResult diff_bench(const BenchReport& baseline,
                           const BenchReport& current, double tolerance,
                           double mem_tolerance) {
  BenchDiffResult diff;
  diff.tolerance = tolerance;
  diff.mem_tolerance = mem_tolerance;

  std::map<std::string, const BenchRecord*> cur;
  for (const auto& r : current.records) cur[record_key(r)] = &r;
  std::map<std::string, bool> matched;

  BenchReport base_sorted = baseline;
  sort_bench_records(base_sorted);
  for (const auto& b : base_sorted.records) {
    const std::string key = record_key(b);
    const auto it = cur.find(key);
    if (it == cur.end()) {
      diff.only_baseline.push_back(key);
      continue;
    }
    matched[key] = true;
    const BenchRecord& c = *it->second;
    BenchDelta d;
    d.bench = b.bench;
    d.name = b.name;
    d.unit = b.unit;
    d.baseline = b.value;
    d.current = c.value;
    d.higher_is_better = b.higher_is_better;
    d.ratio = b.value != 0.0 ? c.value / b.value : 0.0;
    if (b.value != 0.0 && std::isfinite(c.value)) {
      if (b.higher_is_better) {
        d.regression = c.value < b.value * (1.0 - tolerance);
        d.improvement = c.value > b.value * (1.0 + tolerance);
      } else {
        d.regression = c.value > b.value * (1.0 + tolerance);
        d.improvement = c.value < b.value * (1.0 - tolerance);
      }
    } else {
      d.regression = !std::isfinite(c.value);
    }
    if (d.regression) ++diff.regressions;
    // Memory column: compared only when both sides recorded a peak RSS
    // (older baselines carry 0), always lower-is-better.
    d.baseline_rss = b.env.peak_rss_bytes;
    d.current_rss = c.env.peak_rss_bytes;
    if (d.baseline_rss > 0 && d.current_rss > 0) {
      d.rss_ratio = static_cast<double>(d.current_rss) /
                    static_cast<double>(d.baseline_rss);
      if (mem_tolerance > 0.0) {
        d.rss_regression = d.rss_ratio > 1.0 + mem_tolerance;
        if (d.rss_regression) ++diff.mem_regressions;
      }
    }
    diff.deltas.push_back(std::move(d));
  }
  for (const auto& r : current.records) {
    const std::string key = record_key(r);
    if (matched.find(key) == matched.end()) diff.only_current.push_back(key);
  }
  std::sort(diff.only_current.begin(), diff.only_current.end());
  return diff;
}

void print_bench_diff(const BenchDiffResult& diff, std::FILE* out) {
  // RSS columns appear only when some record carries the memory column, so
  // diffs of old files render exactly as before.
  bool any_rss = false;
  for (const auto& d : diff.deltas) {
    if (d.baseline_rss > 0 || d.current_rss > 0) any_rss = true;
  }
  if (diff.mem_tolerance > 0.0) {
    std::fprintf(out,
                 "== bench-diff: %zu compared, %zu regression(s) at ±%.0f%%, "
                 "%zu memory regression(s) at +%.0f%% ==\n",
                 diff.deltas.size(), diff.regressions, diff.tolerance * 100.0,
                 diff.mem_regressions, diff.mem_tolerance * 100.0);
  } else {
    std::fprintf(
        out, "== bench-diff: %zu compared, %zu regression(s) at ±%.0f%% ==\n",
        diff.deltas.size(), diff.regressions, diff.tolerance * 100.0);
  }
  std::fprintf(out, "%-14s %-28s %12s %12s %8s", "bench", "name", "baseline",
               "current", "ratio");
  if (any_rss) std::fprintf(out, " %9s", "rss");
  std::fprintf(out, "  %s\n", "verdict");
  for (const auto& d : diff.deltas) {
    const char* verdict = d.regression     ? "REGRESSION"
                          : d.rss_regression ? "MEM-REGRESSION"
                          : d.improvement    ? "improved"
                                             : "ok";
    std::fprintf(out, "%-14s %-28s %12.5g %12.5g %7.2fx", d.bench.c_str(),
                 d.name.c_str(), d.baseline, d.current, d.ratio);
    if (any_rss) {
      if (d.rss_ratio > 0.0) {
        std::fprintf(out, " %8.2fx", d.rss_ratio);
      } else {
        std::fprintf(out, " %9s", "-");
      }
    }
    std::fprintf(out, "  %s\n", verdict);
  }
  for (const auto& k : diff.only_baseline) {
    std::fprintf(out, "  missing from current: %s\n", k.c_str());
  }
  for (const auto& k : diff.only_current) {
    std::fprintf(out, "  new in current:       %s\n", k.c_str());
  }
}

}  // namespace rpol::obs
