// Per-worker health scoring + the rpol.health.v1 report: turns the session
// outcomes a pool already observes (participation, verification verdicts,
// retransmissions, submission latency) into a 0-100 score and a
// healthy / degraded / evicted state per worker, and owns the eviction
// bookkeeping the pools previously kept as ad-hoc strike counters.
//
// Two strictly separated roles:
//
//   * DECISIONS (eviction) use only deterministic protocol facts. Failures
//     are split by KIND: a session is a LOSS when the worker did not
//     participate (transport exhausted the retry budget — the link's fault,
//     not necessarily the worker's) and a REJECTION when it participated
//     but verification rejected it (evidence of misbehavior). Each kind
//     keeps its own consecutive-strike counter; `eviction_threshold`
//     consecutive strikes OF ONE KIND evict permanently, and one accepted
//     session clears everything. For pure streaks (all-loss blackouts,
//     all-rejection byzantine workers) this is byte-for-byte the single-
//     counter policy the pools always had (fault_conformance_test holds).
//     The deliberate divergence is MIXED streaks: a lossy link whose
//     occasional delivered submissions get rejected no longer evicts at
//     `threshold` total failures — link loss must not burn the byzantine-
//     eviction budget ("PoL with Incentive Security": a lossy link is not
//     byzantine evidence). A mixed streak still evicts once either kind
//     alone reaches the threshold, so hostile workers cannot hide behind
//     packet loss indefinitely.
//
//   * REPORTING (score, state) may additionally fold in wall-clock facts —
//     submission latency, retransmission counts — because nothing ever
//     reads a score back into the protocol. Scores are telemetry, exactly
//     like span durations: hash-blind and decision-blind (DESIGN.md §7).
//
// Scoring is windowed: each worker keeps a fixed ring of the last kWindow
// session outcomes, so a worker that recovers from an early bad patch sees
// its score recover too (the strike counter — the decision side — already
// worked this way). Memory per worker is fixed at construction; nothing
// grows with epoch count.
//
// Export: export_health_jsonl writes the rpol.health.v1 schema — one meta
// line, one line per worker, one line per memory tag (mem.h breakdown),
// and one RSS line when a sampler summary is supplied. maybe_export_health
// mirrors obs::maybe_export: enabled()-gated, honors RPOL_HEALTH_FILE.
// Schema: docs/observability.md §health. `rpol health <file>` renders it.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/mem.h"

namespace rpol::obs {

// One protocol session / submission as the pool saw it.
struct HealthOutcome {
  bool participated = false;      // worker produced a decodable submission
  bool accepted = false;          // verification verdict
  std::uint64_t retransmissions = 0;  // wire-level retries this session
  std::uint64_t latency_ns = 0;       // wall-clock train->verdict (report-only)
};

enum class HealthState : int { kHealthy = 0, kDegraded, kEvicted };

// Stable lowercase name ("healthy" / "degraded" / "evicted").
const char* health_state_name(HealthState state);
// Inverse; returns kEvicted for unknown names (conservative for tooling).
HealthState health_state_from_name(std::string_view name);

class HealthRegistry {
 public:
  // Outcomes retained per worker for scoring. Fixed so registry memory is
  // workers * O(kWindow), independent of run length.
  static constexpr std::size_t kWindow = 16;

  // `eviction_threshold` consecutive failures evict (same default the pool
  // configs use). Values < 1 are clamped to 1.
  explicit HealthRegistry(int eviction_threshold = 3,
                          std::size_t workers = 0);

  // Drops all state and re-sizes to `workers` fresh slots.
  void reset(std::size_t workers);
  std::size_t size() const { return slots_.size(); }
  int eviction_threshold() const { return threshold_; }

  // Records one session outcome. Returns true when this exact outcome newly
  // evicted the worker (callers bump their eviction counter on it).
  // Outcomes for already-evicted or out-of-range workers are ignored.
  bool record(std::size_t worker, const HealthOutcome& outcome);

  bool evicted(std::size_t worker) const;
  // Total consecutive failed sessions of any kind (the rpol.health.v1
  // export field; resets on success).
  int consecutive_failures(std::size_t worker) const;
  // Kind-split strike counters — the eviction inputs. Losses count sessions
  // the worker never delivered; rejections count delivered-but-rejected
  // verdicts. Only success resets them (a loss does not forgive a rejection
  // streak or vice versa).
  int consecutive_losses(std::size_t worker) const;
  int consecutive_rejections(std::size_t worker) const;

  // Deterministic-decision-blind report card, 0..100. 100 for a fresh
  // worker, 0 once evicted. Weighted window facts: acceptance 55,
  // participation 25, retransmission burden 10, latency stability 10.
  double score(std::size_t worker) const;
  HealthState state(std::size_t worker) const;

  // Aggregates over the worker's outcome window (not the whole run).
  struct WindowStats {
    std::uint64_t total = 0;
    std::uint64_t participated = 0;
    std::uint64_t accepted = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t mean_latency_ns = 0;
    std::uint64_t min_latency_ns = 0;
    std::uint64_t max_latency_ns = 0;
  };
  WindowStats window_stats(std::size_t worker) const;

 private:
  struct Slot {
    HealthOutcome ring[kWindow];
    std::size_t count = 0;  // outcomes recorded, saturates at kWindow
    std::size_t next = 0;   // overwrite position once full
    int consecutive_failures = 0;   // any kind (reporting)
    int consecutive_losses = 0;     // !participated (decision input)
    int consecutive_rejections = 0; // participated && !accepted (decision input)
    bool evicted = false;
  };
  const Slot* slot(std::size_t worker) const;

  int threshold_;
  std::vector<Slot> slots_;
};

// ---------------------------------------------------------------------------
// rpol.health.v1 export

// Writes the registry (plus the mem.h tag breakdown and, when given, an RSS
// sampler summary) as JSONL; returns lines written.
std::size_t export_health_jsonl(std::FILE* out, const HealthRegistry& reg,
                                const RssSampler::Summary* rss = nullptr);
bool export_health_jsonl_file(const std::string& path,
                              const HealthRegistry& reg,
                              const RssSampler::Summary* rss = nullptr);

// If tracing is enabled (obs::enabled()), exports to RPOL_HEALTH_FILE (or
// `default_path` when unset) and returns the path written; "" otherwise.
std::string maybe_export_health(const std::string& default_path,
                                const HealthRegistry& reg,
                                const RssSampler::Summary* rss = nullptr);

}  // namespace rpol::obs
