// Subsystem memory accounting + process-RSS sampling: the "where does the
// memory go" counterpart to the span/metric tracing in obs.h.
//
// Two complementary views, both exported in the rpol.health.v1 report
// (health.h) and stamped into every rpol.bench.v1 record (benchreg.h):
//
//   * Tagged byte counters — the big allocators (checkpoint stores, Merkle
//     trees, wire buffers, packed-weight panels, im2col scratch) call
//     mem_add / mem_sub (or hold a MemScope) with a fixed MemTag, giving a
//     per-subsystem breakdown of current / peak / cumulative bytes. The
//     counters are ALWAYS on: each call is one or two relaxed atomic RMWs
//     at an allocation site that just moved megabytes, so there is nothing
//     to gate. They never allocate and never look at the clock.
//
//   * Process RSS — read_proc_rss() parses VmRSS / VmHWM out of
//     /proc/self/status (zeros off Linux), and RssSampler runs a background
//     thread that samples VmRSS on a fixed interval into a bounded ring,
//     yielding baseline / peak / growth over the sampled window. Comparing
//     RSS growth against the tagged-counter total is how `rpol health`
//     judges accounting coverage.
//
// Determinism contract: exactly like obs.h, everything here is write-only
// telemetry. No protocol decision, kernel, or hash ever reads these
// counters, so an instrumented run is bitwise identical to one where every
// call is deleted (tests/runtime_determinism_test.cpp covers the pool path
// with a live RssSampler).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace rpol::obs {

// Fixed tag set: one per big-allocator family. A fixed enum (not string
// keys) keeps mem_add() lock-free and allocation-free — allocation sites
// must never take the registry mutex.
enum class MemTag : int {
  kCheckpoint = 0,  // EpochTrace checkpoint stores (core/pool, async_pool)
  kMerkle,          // commitments + CommitmentIndex Merkle trees
  kWire,            // session wire buffers (encoded protocol messages)
  kPackCache,       // packed weight panels (tensor/packcache.h)
  kScratch,         // im2col columns + blocked activation scratch
  kCkptStore,       // hot LRU of the spill-to-disk store (core/ckptstore.h)
  kOther,           // anything instrumented without a dedicated tag
  kNumTags,
};

inline constexpr int kNumMemTags = static_cast<int>(MemTag::kNumTags);

// Stable lowercase tag name ("checkpoint", "merkle", ...) used by the
// rpol.health.v1 schema; "other" for out-of-range values.
const char* mem_tag_name(MemTag tag);
// Inverse of mem_tag_name; kNumTags when the name is unknown.
MemTag mem_tag_from_name(std::string_view name);

struct MemStats {
  std::uint64_t current_bytes = 0;  // live right now
  std::uint64_t peak_bytes = 0;     // high-water mark of current_bytes
  std::uint64_t total_bytes = 0;    // cumulative bytes ever added
};

// Tagged-counter entry points. mem_sub clamps at zero instead of wrapping
// so an unmatched release (double-subtract under teardown races) cannot
// turn the breakdown into 2^64 garbage.
void mem_add(MemTag tag, std::uint64_t bytes);
void mem_sub(MemTag tag, std::uint64_t bytes);

MemStats mem_stats(MemTag tag);
// All tags in enum order (including zero-valued ones).
std::vector<MemStats> mem_stats_all();
// Sum of current bytes across all tags.
std::uint64_t mem_tagged_total();
// Zeroes every tag (tests); live MemScopes keep their balances, so only
// call between protocol runs.
void mem_reset();

// RAII balance for one owner: add() charges the tag, the destructor
// releases everything charged through this scope. Movable so owning
// objects (e.g. CommitmentIndex) stay movable.
class MemScope {
 public:
  explicit MemScope(MemTag tag) : tag_(tag) {}
  MemScope(MemTag tag, std::uint64_t bytes) : tag_(tag) { add(bytes); }
  ~MemScope() { release(); }

  MemScope(MemScope&& other) noexcept
      : tag_(other.tag_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemScope& operator=(MemScope&& other) noexcept {
    if (this != &other) {
      release();
      tag_ = other.tag_;
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

  void add(std::uint64_t bytes) {
    mem_add(tag_, bytes);
    bytes_ += bytes;
  }
  // Re-charges the scope to exactly `bytes` (delta-accounted).
  void set(std::uint64_t bytes) {
    if (bytes >= bytes_) {
      mem_add(tag_, bytes - bytes_);
    } else {
      mem_sub(tag_, bytes_ - bytes);
    }
    bytes_ = bytes;
  }
  void release() {
    mem_sub(tag_, bytes_);
    bytes_ = 0;
  }
  std::uint64_t bytes() const { return bytes_; }
  MemTag tag() const { return tag_; }

 private:
  MemTag tag_ = MemTag::kOther;
  std::uint64_t bytes_ = 0;
};

// One /proc/self/status reading. `valid` is false off Linux (fields zero)
// or when the file cannot be parsed.
struct RssSample {
  std::uint64_t vm_rss_bytes = 0;  // VmRSS: current resident set
  std::uint64_t vm_hwm_bytes = 0;  // VmHWM: lifetime peak resident set
  bool valid = false;
};

RssSample read_proc_rss();

// Background peak-RSS sampler: one thread reading VmRSS every `interval`
// into a bounded ring (windowed view) while tracking the exact min / max
// over its whole lifetime. Sampling is pure observation — it touches no
// registry or protocol state.
class RssSampler {
 public:
  struct Summary {
    std::uint64_t samples = 0;         // total samples taken
    std::uint64_t baseline_bytes = 0;  // first sample (startup RSS)
    std::uint64_t min_bytes = 0;
    std::uint64_t peak_bytes = 0;      // max sampled VmRSS
    std::uint64_t last_bytes = 0;
    // peak - baseline, clamped at 0: RSS growth while the sampler ran.
    std::uint64_t growth_bytes = 0;
    bool valid = false;  // false when /proc is unavailable
  };

  explicit RssSampler(
      std::chrono::milliseconds interval = std::chrono::milliseconds(10),
      std::size_t window = 64);
  ~RssSampler();
  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  // Stops the thread after taking one final sample; idempotent. The
  // destructor calls it, so scoping a sampler around a run is enough.
  void stop();

  Summary summary() const;
  // Snapshot of the most recent samples, oldest first (bounded by the
  // window size passed at construction).
  std::vector<std::uint64_t> window() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace rpol::obs
