#include "obs/health.h"

#include <cstdlib>

#include "obs/obs.h"

namespace rpol::obs {

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kEvicted:
      return "evicted";
  }
  return "evicted";
}

HealthState health_state_from_name(std::string_view name) {
  if (name == "healthy") return HealthState::kHealthy;
  if (name == "degraded") return HealthState::kDegraded;
  return HealthState::kEvicted;
}

HealthRegistry::HealthRegistry(int eviction_threshold, std::size_t workers)
    : threshold_(eviction_threshold > 0 ? eviction_threshold : 1) {
  reset(workers);
}

void HealthRegistry::reset(std::size_t workers) {
  slots_.assign(workers, Slot{});
}

const HealthRegistry::Slot* HealthRegistry::slot(std::size_t worker) const {
  return worker < slots_.size() ? &slots_[worker] : nullptr;
}

bool HealthRegistry::record(std::size_t worker, const HealthOutcome& outcome) {
  if (worker >= slots_.size()) return false;
  Slot& s = slots_[worker];
  if (s.evicted) return false;

  if (s.count < kWindow) {
    s.ring[s.count++] = outcome;
  } else {
    s.ring[s.next] = outcome;
    s.next = (s.next + 1) % kWindow;
  }

  // The decision path. Only protocol facts participate, and the strike
  // budget is split by failure kind: transport loss (the worker never
  // delivered) and verification rejection (delivered but judged bad) each
  // keep their own consecutive counter, and eviction requires threshold_
  // consecutive strikes OF ONE KIND. Pure streaks behave exactly like the
  // single-counter rule the pools always had; mixed loss/rejection streaks
  // deliberately survive longer (see the header's divergence note).
  const bool lost = !outcome.participated;
  const bool rejected = outcome.participated && !outcome.accepted;
  if (!lost && !rejected) {
    s.consecutive_failures = 0;
    s.consecutive_losses = 0;
    s.consecutive_rejections = 0;
    return false;
  }
  ++s.consecutive_failures;
  if (lost) ++s.consecutive_losses;
  if (rejected) ++s.consecutive_rejections;
  if (s.consecutive_losses >= threshold_ ||
      s.consecutive_rejections >= threshold_) {
    s.evicted = true;
    return true;
  }
  return false;
}

bool HealthRegistry::evicted(std::size_t worker) const {
  const Slot* s = slot(worker);
  // Unknown workers read conservatively evicted, matching state()/score().
  return s == nullptr || s->evicted;
}

int HealthRegistry::consecutive_failures(std::size_t worker) const {
  const Slot* s = slot(worker);
  return s != nullptr ? s->consecutive_failures : 0;
}

int HealthRegistry::consecutive_losses(std::size_t worker) const {
  const Slot* s = slot(worker);
  return s != nullptr ? s->consecutive_losses : 0;
}

int HealthRegistry::consecutive_rejections(std::size_t worker) const {
  const Slot* s = slot(worker);
  return s != nullptr ? s->consecutive_rejections : 0;
}

HealthRegistry::WindowStats HealthRegistry::window_stats(
    std::size_t worker) const {
  WindowStats w;
  const Slot* s = slot(worker);
  if (s == nullptr) return w;
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_n = 0;
  for (std::size_t i = 0; i < s->count; ++i) {
    const HealthOutcome& o = s->ring[i];
    ++w.total;
    if (o.participated) ++w.participated;
    if (o.accepted) ++w.accepted;
    w.retransmissions += o.retransmissions;
    if (o.latency_ns > 0) {
      latency_sum += o.latency_ns;
      ++latency_n;
      if (w.min_latency_ns == 0 || o.latency_ns < w.min_latency_ns) {
        w.min_latency_ns = o.latency_ns;
      }
      if (o.latency_ns > w.max_latency_ns) w.max_latency_ns = o.latency_ns;
    }
  }
  if (latency_n > 0) w.mean_latency_ns = latency_sum / latency_n;
  return w;
}

double HealthRegistry::score(std::size_t worker) const {
  const Slot* s = slot(worker);
  if (s == nullptr) return 0.0;
  if (s->evicted) return 0.0;
  const WindowStats w = window_stats(worker);
  if (w.total == 0) return 100.0;  // fresh worker: innocent until observed

  const double total = static_cast<double>(w.total);
  const double accept_rate = static_cast<double>(w.accepted) / total;
  const double part_rate = static_cast<double>(w.participated) / total;
  // Retransmission burden: 1.0 with no retries, decaying with the per-
  // session retry rate (2 retries/session -> 1/3 of the weight).
  const double retrans_per = static_cast<double>(w.retransmissions) / total;
  const double retrans_factor = 1.0 / (1.0 + retrans_per);
  // Latency stability: min/mean in (0, 1]; 1.0 when latency is flat or
  // unmeasured. Report-only wall-clock — never a protocol input.
  double latency_factor = 1.0;
  if (w.mean_latency_ns > 0 && w.min_latency_ns > 0) {
    latency_factor = static_cast<double>(w.min_latency_ns) /
                     static_cast<double>(w.mean_latency_ns);
  }

  double score = 55.0 * accept_rate + 25.0 * part_rate +
                 10.0 * retrans_factor + 10.0 * latency_factor;
  if (score < 0.0) score = 0.0;
  if (score > 100.0) score = 100.0;
  return score;
}

HealthState HealthRegistry::state(std::size_t worker) const {
  const Slot* s = slot(worker);
  if (s == nullptr || s->evicted) return HealthState::kEvicted;
  return score(worker) >= 75.0 ? HealthState::kHealthy
                               : HealthState::kDegraded;
}

// ---------------------------------------------------------------------------
// rpol.health.v1 export

std::size_t export_health_jsonl(std::FILE* out, const HealthRegistry& reg,
                                const RssSampler::Summary* rss) {
  std::size_t lines = 0;
  std::fprintf(out,
               "{\"type\":\"meta\",\"schema\":\"rpol.health.v1\","
               "\"wall_unix_ns\":%llu,\"eviction_threshold\":%d,"
               "\"workers\":%zu}\n",
               static_cast<unsigned long long>(
                   Registry::instance().wall_anchor_unix_ns()),
               reg.eviction_threshold(), reg.size());
  ++lines;

  for (std::size_t w = 0; w < reg.size(); ++w) {
    const HealthRegistry::WindowStats ws = reg.window_stats(w);
    std::fprintf(
        out,
        "{\"type\":\"worker\",\"worker\":%zu,\"score\":%.2f,"
        "\"state\":\"%s\",\"evicted\":%s,\"consecutive_failures\":%d,"
        "\"window\":{\"total\":%llu,\"participated\":%llu,"
        "\"accepted\":%llu,\"retransmissions\":%llu,"
        "\"mean_latency_ns\":%llu,\"min_latency_ns\":%llu,"
        "\"max_latency_ns\":%llu}}\n",
        w, reg.score(w), health_state_name(reg.state(w)),
        reg.evicted(w) ? "true" : "false", reg.consecutive_failures(w),
        static_cast<unsigned long long>(ws.total),
        static_cast<unsigned long long>(ws.participated),
        static_cast<unsigned long long>(ws.accepted),
        static_cast<unsigned long long>(ws.retransmissions),
        static_cast<unsigned long long>(ws.mean_latency_ns),
        static_cast<unsigned long long>(ws.min_latency_ns),
        static_cast<unsigned long long>(ws.max_latency_ns));
    ++lines;
  }

  for (int t = 0; t < kNumMemTags; ++t) {
    const MemStats ms = mem_stats(static_cast<MemTag>(t));
    std::fprintf(out,
                 "{\"type\":\"mem\",\"tag\":\"%s\",\"current_bytes\":%llu,"
                 "\"peak_bytes\":%llu,\"total_bytes\":%llu}\n",
                 mem_tag_name(static_cast<MemTag>(t)),
                 static_cast<unsigned long long>(ms.current_bytes),
                 static_cast<unsigned long long>(ms.peak_bytes),
                 static_cast<unsigned long long>(ms.total_bytes));
    ++lines;
  }

  if (rss != nullptr) {
    std::fprintf(out,
                 "{\"type\":\"rss\",\"valid\":%s,\"samples\":%llu,"
                 "\"baseline_bytes\":%llu,\"min_bytes\":%llu,"
                 "\"peak_bytes\":%llu,\"last_bytes\":%llu,"
                 "\"growth_bytes\":%llu}\n",
                 rss->valid ? "true" : "false",
                 static_cast<unsigned long long>(rss->samples),
                 static_cast<unsigned long long>(rss->baseline_bytes),
                 static_cast<unsigned long long>(rss->min_bytes),
                 static_cast<unsigned long long>(rss->peak_bytes),
                 static_cast<unsigned long long>(rss->last_bytes),
                 static_cast<unsigned long long>(rss->growth_bytes));
    ++lines;
  }
  return lines;
}

bool export_health_jsonl_file(const std::string& path,
                              const HealthRegistry& reg,
                              const RssSampler::Summary* rss) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  export_health_jsonl(f, reg, rss);
  std::fclose(f);
  return true;
}

std::string maybe_export_health(const std::string& default_path,
                                const HealthRegistry& reg,
                                const RssSampler::Summary* rss) {
  if (!enabled()) return "";
  const char* env = std::getenv("RPOL_HEALTH_FILE");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : default_path;
  if (!export_health_jsonl_file(path, reg, rss)) return "";
  return path;
}

}  // namespace rpol::obs
