#include "obs/live.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "obs/window.h"

namespace rpol::obs {

// ---------------------------------------------------------------------------
// Env policy

std::uint64_t live_interval_ms() {
  const char* env = std::getenv("RPOL_LIVE_INTERVAL_MS");
  if (env == nullptr || env[0] == '\0') return 1000;
  const long long v = std::atoll(env);
  return v < 1 ? 1 : static_cast<std::uint64_t>(v);
}

std::string live_file_path(const std::string& default_path) {
  const char* env = std::getenv("RPOL_LIVE_FILE");
  return (env != nullptr && env[0] != '\0') ? env : default_path;
}

// ---------------------------------------------------------------------------
// Health publication slot

namespace {

std::mutex g_health_mutex;
std::vector<LiveHealthRow> g_health_rows;

}  // namespace

void live_publish_health(const HealthRegistry& reg) {
  if (!live_enabled()) return;
  std::vector<LiveHealthRow> rows;
  rows.reserve(reg.size());
  for (std::size_t w = 0; w < reg.size(); ++w) {
    LiveHealthRow row;
    row.worker = static_cast<std::int64_t>(w);
    row.score = reg.score(w);
    row.evicted = reg.evicted(w);
    row.consecutive_failures = reg.consecutive_failures(w);
    const HealthRegistry::WindowStats stats = reg.window_stats(w);
    row.window_total = stats.total;
    row.window_accepted = stats.accepted;
    row.window_retransmissions = stats.retransmissions;
    rows.push_back(row);
  }
  std::lock_guard<std::mutex> lock(g_health_mutex);
  g_health_rows.swap(rows);
}

std::vector<LiveHealthRow> live_health_rows() {
  std::lock_guard<std::mutex> lock(g_health_mutex);
  return g_health_rows;
}

void live_reset_health() {
  std::lock_guard<std::mutex> lock(g_health_mutex);
  g_health_rows.clear();
}

// ---------------------------------------------------------------------------
// JSON line assembly (names and messages are code-controlled ASCII; escape
// the two structural characters and degrade control bytes to spaces).

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// LiveFlusher

struct LiveFlusher::Impl {
  Options options;
  std::FILE* file = nullptr;

  // Tick state: windows, engine, sequence. One mutex serializes background
  // ticks with flush_now() callers.
  std::mutex tick_mutex;
  std::map<std::string, CounterWindow> counter_windows;
  std::map<std::string, HistogramWindow> histogram_windows;
  AlertEngine engine;
  std::uint64_t seq = 0;

  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> alerts{0};

  // Thread control, RssSampler-style.
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  bool stopped = false;
  std::thread thread;

  explicit Impl(Options opts)
      : options(std::move(opts)), engine(options.rules) {}

  CounterWindow& counter_window(const std::string& name) {
    auto it = counter_windows.find(name);
    if (it == counter_windows.end()) {
      it = counter_windows
               .emplace(name, CounterWindow(options.window_capacity))
               .first;
      // Seed with zero so the first observed reading counts as the first
      // window's delta (a counter that appears mid-stream did all its work
      // "recently" as far as this window is concerned).
      it->second.sample(std::uint64_t{0});
    }
    return it->second;
  }

  HistogramWindow& histogram_window(const std::string& name) {
    auto it = histogram_windows.find(name);
    if (it == histogram_windows.end()) {
      it = histogram_windows
               .emplace(name, HistogramWindow(options.window_capacity))
               .first;
      it->second.push(Histogram::Snapshot{});  // same zero-seed as counters
    }
    return it->second;
  }

  std::uint64_t summed_counter_delta(std::initializer_list<const char*> names) {
    std::uint64_t sum = 0;
    for (const char* name : names) {
      const auto it = counter_windows.find(name);
      if (it != counter_windows.end()) sum += it->second.window_delta();
    }
    return sum;
  }

  void write_alert_line(const Alert& alert, std::uint64_t t_ns) {
    std::string line;
    line.reserve(256);
    line += "{\"type\":\"alert\",\"schema\":\"rpol.alert.v1\",\"seq\":";
    append_u64(line, seq);
    line += ",\"t_ns\":";
    append_u64(line, t_ns);
    line += ",\"rule\":\"";
    append_escaped(line, alert.rule);
    line += "\",\"severity\":\"";
    line += alert_severity_name(alert.severity);
    line += "\",\"value\":";
    append_double(line, alert.value);
    line += ",\"baseline\":";
    append_double(line, alert.baseline);
    line += ",\"threshold\":";
    append_double(line, alert.threshold);
    if (alert.worker >= 0) {
      line += ",\"worker\":";
      append_i64(line, alert.worker);
    }
    line += ",\"message\":\"";
    append_escaped(line, alert.message);
    line += "\"}\n";
    std::fwrite(line.data(), 1, line.size(), file);
  }

  // One snapshot: sample every metric under the reset seqlock, update the
  // windows, emit the snapshot line, run the alert rules, emit their lines.
  void tick() {
    std::lock_guard<std::mutex> lock(tick_mutex);
    if (file == nullptr) return;

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    std::vector<MemStats> mem;
    const bool stable = stable_telemetry_read([&] {
      counters = Registry::instance().counter_values();
      histograms = Registry::instance().histogram_snapshots();
      mem = mem_stats_all();
    });
    if (!stable) return;  // reset hammer: skip the sample, never emit torn

    for (const auto& [name, value] : counters) {
      counter_window(name).sample(value);
    }
    for (const auto& [name, snapshot] : histograms) {
      histogram_window(name).push(snapshot);
    }

    const std::uint64_t t_ns = now_ns();
    const RssSample rss = read_proc_rss();
    const std::vector<LiveHealthRow> workers = live_health_rows();
    ++seq;

    std::string line;
    line.reserve(1024);
    line += "{\"type\":\"snapshot\",\"seq\":";
    append_u64(line, seq);
    line += ",\"t_ns\":";
    append_u64(line, t_ns);

    line += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (value == 0) continue;  // keep lines bounded; zeros carry no news
      const CounterWindow& w = counter_windows.at(name);
      if (!first) line += ',';
      first = false;
      line += '"';
      append_escaped(line, name);
      line += "\":{\"total\":";
      append_u64(line, value);
      line += ",\"delta\":";
      append_u64(line, w.window_delta());
      line += ",\"rate\":";
      append_double(line, w.rate_per_sample());
      line += '}';
    }
    line += '}';

    line += ",\"histograms\":{";
    first = true;
    for (const auto& [name, snapshot] : histograms) {
      if (snapshot.count == 0) continue;
      const HistogramWindow& w = histogram_windows.at(name);
      if (!first) line += ',';
      first = false;
      line += '"';
      append_escaped(line, name);
      line += "\":{\"count\":";
      append_u64(line, snapshot.count);
      line += ",\"delta\":";
      append_u64(line, w.windowed_count());
      line += ",\"p50\":";
      append_u64(line, w.windowed_percentile(50));
      line += ",\"p95\":";
      append_u64(line, w.windowed_percentile(95));
      line += ",\"max\":";
      append_u64(line, snapshot.max);
      line += '}';
    }
    line += '}';

    line += ",\"mem\":{";
    first = true;
    for (int i = 0; i < kNumMemTags; ++i) {
      const MemStats& s = mem[static_cast<std::size_t>(i)];
      if (s.total_bytes == 0) continue;
      if (!first) line += ',';
      first = false;
      line += '"';
      line += mem_tag_name(static_cast<MemTag>(i));
      line += "\":{\"current\":";
      append_u64(line, s.current_bytes);
      line += ",\"peak\":";
      append_u64(line, s.peak_bytes);
      line += '}';
    }
    line += '}';

    line += ",\"rss_bytes\":";
    append_u64(line, rss.valid ? rss.vm_rss_bytes : 0);

    line += ",\"workers\":[";
    first = true;
    for (const LiveHealthRow& row : workers) {
      if (!first) line += ',';
      first = false;
      line += "{\"worker\":";
      append_i64(line, row.worker);
      line += ",\"score\":";
      append_double(line, row.score);
      line += ",\"evicted\":";
      line += row.evicted ? "true" : "false";
      line += ",\"consecutive_failures\":";
      append_i64(line, row.consecutive_failures);
      line += ",\"window_total\":";
      append_u64(line, row.window_total);
      line += ",\"window_accepted\":";
      append_u64(line, row.window_accepted);
      line += ",\"window_retransmissions\":";
      append_u64(line, row.window_retransmissions);
      line += '}';
    }
    line += "]}\n";
    std::fwrite(line.data(), 1, line.size(), file);
    snapshots.fetch_add(1, std::memory_order_relaxed);

    // Alert pass over the windows just refreshed.
    LiveTick t;
    t.t_ns = t_ns;
    t.seq = seq;
    t.accepts_delta = summed_counter_delta({"verify.accept"});
    t.rejects_delta = summed_counter_delta({"verify.reject"});
    t.retrans_delta = summed_counter_delta(
        {"pool.retransmission", "async.retransmission", "session.retry"});
    const auto pick_latency = [&]() -> const HistogramWindow* {
      for (const char* name :
           {"pool.session_latency_ns", "async.submission_latency_ns"}) {
        const auto it = histogram_windows.find(name);
        if (it != histogram_windows.end() && it->second.windowed_count() > 0) {
          return &it->second;
        }
      }
      return nullptr;
    };
    if (const HistogramWindow* lat = pick_latency()) {
      t.latency_p95_ns = lat->windowed_percentile(95);
      t.latency_count_delta = lat->windowed_count();
    }
    t.rss_bytes = rss.valid ? rss.vm_rss_bytes : 0;
    t.workers = workers;

    const std::vector<Alert> fired = engine.evaluate(t);
    for (const Alert& alert : fired) {
      write_alert_line(alert, t_ns);
      flight_record(FlightKind::kAlert, alert.rule, alert.worker, -1,
                    static_cast<std::uint64_t>(alert.severity));
      alerts.fetch_add(1, std::memory_order_relaxed);
    }
    std::fflush(file);
  }

  void run() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      lock.unlock();
      tick();
      lock.lock();
      cv.wait_for(lock, options.interval, [this] { return stopping; });
    }
  }
};

LiveFlusher::LiveFlusher(Options options) : impl_(new Impl(std::move(options))) {
  if (impl_->options.interval.count() < 1) {
    impl_->options.interval = std::chrono::milliseconds(1);
  }
  if (impl_->options.window_capacity < 2) impl_->options.window_capacity = 2;
  impl_->file = std::fopen(impl_->options.path.c_str(), "w");
  if (impl_->file != nullptr) {
    std::string meta;
    meta += "{\"type\":\"meta\",\"schema\":\"rpol.live.v1\",\"interval_ms\":";
    append_u64(meta, static_cast<std::uint64_t>(impl_->options.interval.count()));
    meta += ",\"window\":";
    append_u64(meta, impl_->options.window_capacity);
    meta += ",\"wall_anchor_unix_ns\":";
    append_u64(meta, Registry::instance().wall_anchor_unix_ns());
    meta += "}\n";
    std::fwrite(meta.data(), 1, meta.size(), impl_->file);
    std::fflush(impl_->file);
  }
  impl_->thread = std::thread([this] { impl_->run(); });
}

LiveFlusher::~LiveFlusher() {
  stop();
  if (impl_->file != nullptr) std::fclose(impl_->file);
}

void LiveFlusher::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
  // One final snapshot so a run shorter than the interval still lands its
  // end state (same shape as RssSampler::stop).
  impl_->tick();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->stopped = true;
}

void LiveFlusher::flush_now() { impl_->tick(); }

bool LiveFlusher::ok() const { return impl_->file != nullptr; }

const std::string& LiveFlusher::path() const { return impl_->options.path; }

std::uint64_t LiveFlusher::snapshots_written() const {
  return impl_->snapshots.load(std::memory_order_relaxed);
}

std::uint64_t LiveFlusher::alerts_emitted() const {
  return impl_->alerts.load(std::memory_order_relaxed);
}

std::unique_ptr<LiveFlusher> maybe_start_live(const std::string& default_path) {
  if (!live_enabled()) return nullptr;
  install_flight_signal_handler();
  LiveFlusher::Options options;
  options.path = live_file_path(default_path);
  options.interval = std::chrono::milliseconds(
      static_cast<long long>(live_interval_ms()));
  return std::make_unique<LiveFlusher>(std::move(options));
}

}  // namespace rpol::obs
