#include "obs/mem.h"

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/obs.h"

namespace rpol::obs {

namespace {

struct TagCell {
  std::atomic<std::uint64_t> current{0};
  std::atomic<std::uint64_t> peak{0};
  std::atomic<std::uint64_t> total{0};
};

// Plain static array, no dynamic init: usable from any static-init-order
// position and during exit, matching the leaked obs Registry.
TagCell g_tags[kNumMemTags];

TagCell& cell(MemTag tag) {
  int i = static_cast<int>(tag);
  if (i < 0 || i >= kNumMemTags) i = static_cast<int>(MemTag::kOther);
  return g_tags[i];
}

constexpr const char* kTagNames[kNumMemTags] = {
    "checkpoint", "merkle", "wire", "packcache", "scratch", "ckptstore",
    "other",
};

}  // namespace

const char* mem_tag_name(MemTag tag) {
  const int i = static_cast<int>(tag);
  if (i < 0 || i >= kNumMemTags) return "other";
  return kTagNames[i];
}

MemTag mem_tag_from_name(std::string_view name) {
  for (int i = 0; i < kNumMemTags; ++i) {
    if (name == kTagNames[i]) return static_cast<MemTag>(i);
  }
  return MemTag::kNumTags;
}

void mem_add(MemTag tag, std::uint64_t bytes) {
  if (bytes == 0) return;
  TagCell& c = cell(tag);
  const std::uint64_t now =
      c.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  c.total.fetch_add(bytes, std::memory_order_relaxed);
  std::uint64_t peak = c.peak.load(std::memory_order_relaxed);
  while (peak < now &&
         !c.peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void mem_sub(MemTag tag, std::uint64_t bytes) {
  if (bytes == 0) return;
  TagCell& c = cell(tag);
  // Clamp at zero: retry the subtraction with whatever is actually live so
  // an unbalanced release can never wrap the counter.
  std::uint64_t cur = c.current.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t take = bytes < cur ? bytes : cur;
    if (c.current.compare_exchange_weak(cur, cur - take,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

MemStats mem_stats(MemTag tag) {
  const TagCell& c = cell(tag);
  MemStats s;
  s.current_bytes = c.current.load(std::memory_order_relaxed);
  s.peak_bytes = c.peak.load(std::memory_order_relaxed);
  s.total_bytes = c.total.load(std::memory_order_relaxed);
  return s;
}

std::vector<MemStats> mem_stats_all() {
  std::vector<MemStats> out;
  out.reserve(kNumMemTags);
  for (int i = 0; i < kNumMemTags; ++i) {
    out.push_back(mem_stats(static_cast<MemTag>(i)));
  }
  return out;
}

std::uint64_t mem_tagged_total() {
  std::uint64_t sum = 0;
  for (int i = 0; i < kNumMemTags; ++i) {
    sum += g_tags[i].current.load(std::memory_order_relaxed);
  }
  return sum;
}

void mem_reset() {
  // Same odd-generation bracket as Registry::reset(): a live snapshot
  // never mixes pre- and post-reset tag values.
  const detail::ResetBarrier barrier;
  for (auto& c : g_tags) {
    c.current.store(0, std::memory_order_relaxed);
    c.peak.store(0, std::memory_order_relaxed);
    c.total.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// /proc/self/status

RssSample read_proc_rss() {
  RssSample sample;
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return sample;
  char line[256];
  int found = 0;
  while (found < 2 && std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      sample.vm_rss_bytes = static_cast<std::uint64_t>(kb) * 1024;
      ++found;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      sample.vm_hwm_bytes = static_cast<std::uint64_t>(kb) * 1024;
      ++found;
    }
  }
  std::fclose(f);
  sample.valid = found == 2;
#endif
  return sample;
}

// ---------------------------------------------------------------------------
// RssSampler

struct RssSampler::Impl {
  std::chrono::milliseconds interval;
  std::size_t window_capacity;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  bool stopped = false;

  // All below guarded by mutex.
  std::vector<std::uint64_t> ring;  // bounded at window_capacity
  std::size_t ring_next = 0;
  Summary acc;

  std::thread thread;

  void take_sample() {
    const RssSample s = read_proc_rss();
    if (!s.valid) return;
    std::lock_guard<std::mutex> lock(mutex);
    if (acc.samples == 0) {
      acc.baseline_bytes = s.vm_rss_bytes;
      acc.min_bytes = s.vm_rss_bytes;
      acc.peak_bytes = s.vm_rss_bytes;
      acc.valid = true;
    }
    ++acc.samples;
    acc.last_bytes = s.vm_rss_bytes;
    if (s.vm_rss_bytes < acc.min_bytes) acc.min_bytes = s.vm_rss_bytes;
    if (s.vm_rss_bytes > acc.peak_bytes) acc.peak_bytes = s.vm_rss_bytes;
    if (ring.size() < window_capacity) {
      ring.push_back(s.vm_rss_bytes);
    } else if (!ring.empty()) {
      ring[ring_next] = s.vm_rss_bytes;
      ring_next = (ring_next + 1) % ring.size();
    }
  }

  void run() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      lock.unlock();
      take_sample();
      lock.lock();
      cv.wait_for(lock, interval, [this] { return stopping; });
    }
  }
};

RssSampler::RssSampler(std::chrono::milliseconds interval, std::size_t window)
    : impl_(new Impl) {
  impl_->interval = interval.count() > 0 ? interval
                                         : std::chrono::milliseconds(1);
  impl_->window_capacity = window > 0 ? window : 1;
  impl_->thread = std::thread([this] { impl_->run(); });
}

RssSampler::~RssSampler() {
  stop();
  delete impl_;
}

void RssSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
  // One final sample so a short-lived run still sees its end state.
  impl_->take_sample();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->stopped = true;
}

RssSampler::Summary RssSampler::summary() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Summary s = impl_->acc;
  s.growth_bytes =
      s.peak_bytes > s.baseline_bytes ? s.peak_bytes - s.baseline_bytes : 0;
  return s;
}

std::vector<std::uint64_t> RssSampler::window() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::uint64_t> out;
  out.reserve(impl_->ring.size());
  if (impl_->ring.size() < impl_->window_capacity) {
    out = impl_->ring;  // not yet wrapped: already oldest-first
  } else {
    for (std::size_t i = 0; i < impl_->ring.size(); ++i) {
      out.push_back(
          impl_->ring[(impl_->ring_next + i) % impl_->ring.size()]);
    }
  }
  return out;
}

}  // namespace rpol::obs
