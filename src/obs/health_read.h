// Reader + renderer for rpol.health.v1 exports (health.h): parses the
// JSONL back into structs and prints the `rpol health` summary — per-worker
// score table, per-subsystem memory breakdown, sampled-RSS line, and the
// accounting-coverage ratio (tagged peak bytes vs sampled RSS growth).
// Lives in the analyzer library, not rpol_obs: readers may allocate and
// throw freely, emitters may not.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/health.h"

namespace rpol::obs {

struct HealthWorkerRow {
  std::size_t worker = 0;
  double score = 0.0;
  HealthState state = HealthState::kHealthy;
  bool evicted = false;
  int consecutive_failures = 0;
  HealthRegistry::WindowStats window;
};

struct HealthMemRow {
  std::string tag;
  MemStats stats;
};

struct HealthReport {
  std::string schema;  // "rpol.health.v1"
  std::uint64_t wall_unix_ns = 0;
  int eviction_threshold = 0;
  std::size_t workers_declared = 0;
  std::vector<HealthWorkerRow> workers;
  std::vector<HealthMemRow> mem;
  RssSampler::Summary rss;  // rss.valid == false when the line was absent
  bool has_rss = false;

  // Sum of per-tag peak bytes: the instrumented ceiling to compare against
  // sampled RSS growth.
  std::uint64_t tagged_peak_total() const;
  // tagged_peak_total() / rss.growth_bytes in [0, inf); 0 when either side
  // is unknown. `rpol health` reports this as accounting coverage.
  double coverage_vs_rss_growth() const;
};

// Parses an rpol.health.v1 JSONL document. Unknown line types are skipped
// (forward compatibility); malformed JSON throws std::runtime_error with
// the offending line number.
HealthReport parse_health_jsonl(std::string_view text);
HealthReport load_health_file(const std::string& path);

// Human-readable summary used by `rpol health`.
void print_health_report(const HealthReport& report, std::FILE* out);

}  // namespace rpol::obs
