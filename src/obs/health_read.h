// Reader + renderer for rpol.health.v1 exports (health.h): parses the
// JSONL back into structs and prints the `rpol health` summary — per-worker
// score table, per-subsystem memory breakdown, sampled-RSS line, and the
// accounting-coverage ratio (tagged peak bytes vs sampled RSS growth).
// Lives in the analyzer library, not rpol_obs: readers may allocate and
// throw freely, emitters may not.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/health.h"

namespace rpol::obs {

struct HealthWorkerRow {
  std::size_t worker = 0;
  double score = 0.0;
  HealthState state = HealthState::kHealthy;
  bool evicted = false;
  int consecutive_failures = 0;
  HealthRegistry::WindowStats window;
};

struct HealthMemRow {
  std::string tag;
  MemStats stats;
};

struct HealthReport {
  std::string schema;  // "rpol.health.v1"
  std::uint64_t wall_unix_ns = 0;
  int eviction_threshold = 0;
  std::size_t workers_declared = 0;
  std::vector<HealthWorkerRow> workers;
  std::vector<HealthMemRow> mem;
  RssSampler::Summary rss;  // rss.valid == false when the line was absent
  bool has_rss = false;

  // Tolerant-mode damage report (same shape as analyze.h's Trace): damaged
  // interior lines are skipped and counted; an unparseable final line with
  // no trailing newline is a write cut mid-record and is flagged apart.
  std::size_t skipped_lines = 0;
  std::vector<std::string> parse_errors;  // "line N: why", capped
  bool truncated_tail = false;
  std::size_t truncated_tail_offset = 0;

  // Sum of per-tag peak bytes: the instrumented ceiling to compare against
  // sampled RSS growth.
  std::uint64_t tagged_peak_total() const;
  // tagged_peak_total() / rss.growth_bytes in [0, inf); 0 when either side
  // is unknown. `rpol health` reports this as accounting coverage.
  double coverage_vs_rss_growth() const;
};

// Parses an rpol.health.v1 JSONL document. Unknown line types are skipped
// (forward compatibility). Damaged lines are skipped-and-counted by
// default; with strict=true they throw std::runtime_error naming the line
// number — or, for a truncated final line, the byte offset.
HealthReport parse_health_jsonl(std::string_view text, bool strict = false);
HealthReport load_health_file(const std::string& path, bool strict = false);

// Human-readable summary used by `rpol health`.
void print_health_report(const HealthReport& report, std::FILE* out);

}  // namespace rpol::obs
