// Trace analyzer: loads a "rpol.trace.v2" JSONL export (src/obs/obs.h) back
// into structured records and summarizes it — per-phase wall-time shares and
// latency quantiles, per-worker train/verify time and verdicts, and
// per-message-type byte shares. Backs the `rpol trace` CLI subcommand and
// the exporter round-trip tests. Legacy "rpol.trace.v1" files (no
// trace/link span fields) load too; the missing fields default to 0.
//
// Quantiles over span durations use sim::percentile (the same routine the
// bench harness uses), so analyzer and bench numbers are computed by one
// definition of "p50".

#pragma once

#include <cstdio>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace rpol::obs {

struct ParsedHistogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // (le, count)
};

struct Trace {
  std::string schema;
  std::uint64_t wall_unix_ns = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<ParsedHistogram> histograms;
  std::vector<SpanRecord> spans;
  // Tolerant-mode damage report: lines that failed to parse (truncated
  // writes, editor mangling) are skipped and counted here, with the first
  // few error messages kept for diagnosis.
  std::size_t skipped_lines = 0;
  std::vector<std::string> parse_errors;  // "line N: why", capped
  // A final line with no trailing newline that fails to parse is a write
  // cut mid-record (a crash, or a reader racing the writer), not interior
  // damage: tolerant mode flags it here instead of counting it skipped,
  // and strict mode's error names the byte offset where it starts.
  bool truncated_tail = false;
  std::size_t truncated_tail_offset = 0;
};

// Parses one JSONL stream. A missing meta line or an unknown schema always
// throws std::runtime_error — the file is not an rpol trace at all. Damaged
// individual records are skipped and counted (Trace::skipped_lines) by
// default; with strict=true any unparsable line throws instead.
Trace parse_trace_jsonl(std::istream& in, bool strict = false);
Trace load_trace_file(const std::string& path, bool strict = false);

struct PhaseSummary {
  std::string name;
  std::size_t count = 0;
  double total_s = 0.0;
  double wall_share = 0.0;  // fraction of the trace's wall extent
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
};

struct WorkerSummary {
  std::int64_t worker = -1;
  double train_s = 0.0;
  double verify_s = 0.0;
  std::int64_t accepts = 0;
  std::int64_t rejects = 0;
  std::int64_t double_checks = 0;
};

struct TraceSummary {
  double wall_extent_s = 0.0;  // max span end - min span start
  std::vector<PhaseSummary> phases;    // sorted by total time, descending
  std::vector<WorkerSummary> workers;  // sorted by worker id
  std::vector<std::pair<std::string, std::uint64_t>> bytes_by_type;
  std::uint64_t bytes_total = 0;
};

TraceSummary summarize_trace(const Trace& trace);

// Human-readable report: phase table, worker table, byte shares, verdict
// counters, and kernel histograms.
void print_trace_summary(const Trace& trace, std::FILE* out);

}  // namespace rpol::obs
