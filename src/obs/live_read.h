// Reader + renderer for rpol.live.v1 streams (live.h): parses the JSONL
// back into structs and prints the `rpol watch` / `rpol alerts` views —
// windowed rate table, active alerts, and the per-worker health strip.
// Lives in the analyzer library, not rpol_obs: readers may allocate and
// throw freely, emitters may not.
//
// Truncation tolerance: a live file is routinely read WHILE the flusher
// appends, so the final line is often cut mid-record. Tolerant parsing
// (the default) treats an unparseable final line with no trailing newline
// as an in-flight write — counted and reported via `truncated_tail` /
// `truncated_tail_offset`, never an error. Strict mode throws instead,
// naming the byte offset where the truncated record starts.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/alerts.h"
#include "obs/mem.h"

namespace rpol::obs {

struct LiveCounterRow {
  std::string name;
  std::uint64_t total = 0;
  std::uint64_t delta = 0;
  double rate = 0.0;
};

struct LiveHistogramRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t delta = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t max = 0;
};

struct LiveMemRow {
  std::string tag;
  std::uint64_t current_bytes = 0;
  std::uint64_t peak_bytes = 0;
};

struct LiveSnapshot {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
  std::vector<LiveCounterRow> counters;
  std::vector<LiveHistogramRow> histograms;
  std::vector<LiveMemRow> mem;
  std::uint64_t rss_bytes = 0;
  std::vector<LiveHealthRow> workers;
};

struct LiveAlertRow {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
  std::string rule;
  std::string severity;  // "info" / "warn" / "crit"
  double value = 0.0;
  double baseline = 0.0;
  double threshold = 0.0;
  std::int64_t worker = -1;
  std::string message;
};

struct LiveDoc {
  std::string schema;  // "rpol.live.v1"
  std::uint64_t interval_ms = 0;
  std::size_t window = 0;
  std::vector<LiveSnapshot> snapshots;
  std::vector<LiveAlertRow> alerts;

  // Tolerant-mode damage accounting (mirrors analyze.h's Trace fields).
  std::size_t skipped_lines = 0;
  std::vector<std::string> parse_errors;  // first few, for diagnostics
  bool truncated_tail = false;            // final line cut mid-record
  std::size_t truncated_tail_offset = 0;  // byte offset of that line
};

// Parses an rpol.live.v1 JSONL document. Tolerant mode (default) skips
// damaged interior lines (counted in skipped_lines) and flags a truncated
// final line; strict mode throws std::runtime_error naming the line number
// — or, for a truncated tail, the byte offset.
LiveDoc parse_live_jsonl(std::string_view text, bool strict = false);
LiveDoc load_live_file(const std::string& path, bool strict = false);

// `rpol watch` view: latest snapshot's rate table, worker health strip,
// and any alerts fired at-or-after that snapshot's window.
void print_live_report(const LiveDoc& doc, std::FILE* out);

// `rpol alerts` view: every alert in the stream, grouped by rule.
void print_alerts_summary(const LiveDoc& doc, std::FILE* out);

}  // namespace rpol::obs
