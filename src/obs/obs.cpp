#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>

#include "obs/alerts.h"
#include "obs/mem.h"

namespace rpol::obs {

namespace {

// -1 = follow RPOL_TRACE, 0 = forced off, 1 = forced on.
std::atomic<int> g_override{-1};
// Same trio of states for RPOL_LIVE.
std::atomic<int> g_live_override{-1};

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

bool env_enabled() {
  static const bool cached = env_flag("RPOL_TRACE");
  return cached;
}

bool env_live_enabled() {
  static const bool cached = env_flag("RPOL_LIVE");
  return cached;
}

// Reset seqlock state. `seq` is odd while any reset runs; `depth` lets
// reset_all() nest Registry::reset() + mem_reset() inside ONE odd window
// (and makes concurrent resets from two threads share a window instead of
// flapping the parity).
std::atomic<std::uint64_t> g_reset_seq{0};
std::atomic<int> g_reset_depth{0};

std::chrono::steady_clock::time_point steady_anchor() {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool enabled() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_enabled();
}

void set_enabled(bool on) {
  g_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool live_enabled() {
  const int o = g_live_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_live_enabled();
}

void set_live_enabled(bool on) {
  g_live_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t reset_generation() {
  return g_reset_seq.load(std::memory_order_acquire);
}

namespace detail {

void reset_barrier_begin() {
  if (g_reset_depth.fetch_add(1, std::memory_order_acq_rel) == 0) {
    g_reset_seq.fetch_add(1, std::memory_order_acq_rel);  // now odd
  }
}

void reset_barrier_end() {
  if (g_reset_depth.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g_reset_seq.fetch_add(1, std::memory_order_release);  // even again
  }
}

}  // namespace detail

void reset_all() {
  const detail::ResetBarrier barrier;
  Registry::instance().reset();
  mem_reset();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - steady_anchor())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::bucket_index(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kSmallBuckets)) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);  // >= 3 here
  const int sub = static_cast<int>((v >> (msb - 2)) & 3);
  return kSmallBuckets + (msb - 3) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_upper_bound(int i) {
  if (i < kSmallBuckets) return static_cast<std::uint64_t>(i);
  const int msb = (i - kSmallBuckets) / kSubBuckets + 3;
  const int sub = (i - kSmallBuckets) % kSubBuckets;
  // Values in the bucket share the top 3 bits (1, then `sub` in 2 bits).
  return ((static_cast<std::uint64_t>(kSubBuckets + sub + 1)) << (msb - 2)) - 1;
}

void Histogram::record(std::uint64_t v) {
  // Writer entry: announce first, THEN check for an exclusive op. An
  // exclusive op that sees writers_ == 0 after flipping seq_ odd is
  // guaranteed no recorder is past this gate, so its multi-word work can
  // never interleave with a half-applied sample.
  for (;;) {
    writers_.fetch_add(1, std::memory_order_acq_rel);
    if ((seq_.load(std::memory_order_acquire) & 1) == 0) break;
    writers_.fetch_sub(1, std::memory_order_acq_rel);
    while ((seq_.load(std::memory_order_acquire) & 1) != 0) {
      // Exclusive ops copy or zero ~2 KB; spinning is cheaper than parking.
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
  writers_.fetch_sub(1, std::memory_order_release);
}

template <typename Fn>
void Histogram::exclusive(Fn&& fn) const {
  seq_.fetch_add(1, std::memory_order_acq_rel);  // now odd: recorders back off
  while (writers_.load(std::memory_order_acquire) != 0) {
    // Drain in-flight recorders (each holds the gate for a few increments).
  }
  fn();
  seq_.fetch_add(1, std::memory_order_release);  // even again
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  exclusive([&] {
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumBuckets; ++i) {
      s.buckets[i] =
          buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
  });
  return s;
}

void Histogram::reset() {
  exclusive([&] {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  });
}

namespace {

std::uint64_t percentile_from_buckets(double p, std::uint64_t n,
                                      std::uint64_t max,
                                      const std::uint64_t* buckets) {
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::min(Histogram::bucket_upper_bound(i), max);
    }
  }
  return max;
}

}  // namespace

std::uint64_t Histogram::approx_percentile(double p) const {
  const Snapshot s = snapshot();
  return percentile_from_buckets(p, s.count, s.max, s.buckets);
}

std::uint64_t Histogram::Snapshot::approx_percentile(double p) const {
  return percentile_from_buckets(p, count, max, buckets);
}

// ---------------------------------------------------------------------------
// Span

Span::Span(std::string_view name, std::uint64_t parent, std::int64_t worker,
           std::int64_t epoch) {
  if (!enabled()) return;
  active_ = true;
  rec_.id = Registry::instance().next_span_id();
  rec_.parent = parent;
  rec_.name = name;
  rec_.worker = worker;
  rec_.epoch = epoch;
  rec_.start_ns = now_ns();
}

Span::Span(std::string_view name, const Span& parent, std::int64_t worker,
           std::int64_t epoch)
    : Span(name, parent.id(), worker, epoch) {
  rec_.trace_id = parent.trace_id();
}

Span::Span(std::string_view name, const TraceContext& remote_parent,
           std::int64_t worker, std::int64_t epoch)
    : Span(name, /*parent=*/std::uint64_t{0}, worker, epoch) {
  if (!active_) return;
  if (remote_parent.valid()) {
    rec_.trace_id = remote_parent.trace_id;
    rec_.link = remote_parent.span_id;
  } else {
    rec_.trace_id = rec_.id;  // roots a new causal tree
  }
}

Span::~Span() {
  if (!active_) return;
  rec_.dur_ns = now_ns() - rec_.start_ns;
  Registry::instance().record_span(std::move(rec_));
}

void Span::attr(std::string_view key, double v) {
  if (!active_) return;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  rec_.attrs.push_back({std::string(key), buf, false});
}

void Span::attr(std::string_view key, std::int64_t v) {
  if (!active_) return;
  rec_.attrs.push_back({std::string(key), std::to_string(v), false});
}

void Span::attr(std::string_view key, std::uint64_t v) {
  if (!active_) return;
  rec_.attrs.push_back({std::string(key), std::to_string(v), false});
}

void Span::attr(std::string_view key, bool v) {
  if (!active_) return;
  rec_.attrs.push_back({std::string(key), v ? "true" : "false", false});
}

void Span::attr(std::string_view key, std::string_view v) {
  if (!active_) return;
  rec_.attrs.push_back({std::string(key), std::string(v), true});
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  // Deques give metric handles stable addresses for the process lifetime.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*, std::less<>> counter_by_name;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name;
  std::vector<SpanRecord> spans;
  // Bytes charged to MemTag::kOther for the span store (the registry
  // accounting its own footprint); released on reset().
  std::uint64_t span_mem_bytes = 0;
  std::atomic<std::uint64_t> next_span_id{1};
};

namespace {

// Approximate heap footprint of one recorded span: the record itself plus
// the heap blocks behind its name and attribute strings.
std::uint64_t span_record_bytes(const SpanRecord& rec) {
  std::uint64_t bytes = sizeof(SpanRecord) + rec.name.capacity();
  bytes += rec.attrs.capacity() * sizeof(SpanAttr);
  for (const SpanAttr& a : rec.attrs) {
    bytes += a.key.capacity() + a.value.capacity();
  }
  return bytes;
}

}  // namespace

Registry::Registry() : impl_(new Impl) {
  (void)steady_anchor();  // pin the time base before any span exists
  wall_anchor_unix_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Registry& Registry::instance() {
  static Registry* reg = new Registry;  // leaked: usable during exit
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counter_by_name.find(name);
  if (it != impl_->counter_by_name.end()) return *it->second;
  impl_->counters.emplace_back(std::string(name));
  Counter* c = &impl_->counters.back();
  impl_->counter_by_name.emplace(c->name(), c);
  return *c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->gauge_by_name.find(name);
  if (it != impl_->gauge_by_name.end()) return *it->second;
  impl_->gauges.emplace_back(std::string(name));
  Gauge* g = &impl_->gauges.back();
  impl_->gauge_by_name.emplace(g->name(), g);
  return *g;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->histogram_by_name.find(name);
  if (it != impl_->histogram_by_name.end()) return *it->second;
  impl_->histograms.emplace_back(std::string(name));
  Histogram* h = &impl_->histograms.back();
  impl_->histogram_by_name.emplace(h->name(), h);
  return *h;
}

std::uint64_t Registry::next_span_id() {
  return impl_->next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void Registry::record_span(SpanRecord rec) {
  // Feed the crash flight recorder before the record moves: a fatal signal
  // mid-run then still shows which protocol scopes closed last.
  flight_record(FlightKind::kSpanClose, rec.name, rec.worker, rec.epoch,
                rec.dur_ns);
  const std::uint64_t bytes = span_record_bytes(rec);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->spans.push_back(std::move(rec));
  impl_->span_mem_bytes += bytes;
  mem_add(MemTag::kOther, bytes);
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->spans;
}

std::size_t Registry::span_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->spans.size();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counter_by_name.size());
  for (const auto& [name, c] : impl_->counter_by_name) {
    out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::histogram_snapshots() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(impl_->histogram_by_name.size());
  for (const auto& [name, h] : impl_->histogram_by_name) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

void Registry::reset() {
  // Odd-generation window: a flusher snapshot bracketed by
  // stable_telemetry_read that overlaps this reset retries instead of
  // mixing drained and undrained metrics.
  const detail::ResetBarrier barrier;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (Counter& c : impl_->counters) {
    c.drain();  // exchange, not store: concurrent adds land before or after
  }
  for (Gauge& g : impl_->gauges) {
    g.value_.store(0.0, std::memory_order_relaxed);
  }
  for (Histogram& h : impl_->histograms) {
    h.reset();  // under the writer-exclusion guard
  }
  impl_->spans.clear();
  mem_sub(MemTag::kOther, impl_->span_mem_bytes);
  impl_->span_mem_bytes = 0;
  impl_->next_span_id.store(1, std::memory_order_relaxed);
}

std::size_t Registry::export_jsonl(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t lines = 0;
  std::string buf;

  std::fprintf(out,
               "{\"type\":\"meta\",\"schema\":\"rpol.trace.v2\","
               "\"wall_unix_ns\":%llu}\n",
               static_cast<unsigned long long>(wall_anchor_unix_ns_));
  ++lines;

  // The by-name maps are already sorted; metrics still at their zero value
  // are skipped so the export reflects what actually happened, not what was
  // ever registered (handles survive Registry::reset()).
  for (const auto& [name, c] : impl_->counter_by_name) {
    if (c->value() == 0) continue;
    buf.clear();
    json_escape(buf, name);
    std::fprintf(out, "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                 buf.c_str(), static_cast<unsigned long long>(c->value()));
    ++lines;
  }
  for (const auto& [name, g] : impl_->gauge_by_name) {
    if (g->value() == 0.0) continue;
    buf.clear();
    json_escape(buf, name);
    std::fprintf(out, "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.17g}\n",
                 buf.c_str(), g->value());
    ++lines;
  }
  for (const auto& [name, h] : impl_->histogram_by_name) {
    // One consistent snapshot per histogram: count, sum, and buckets are
    // taken under the writer-exclusion guard, so the exported line always
    // satisfies count == sum over buckets even with recorders running.
    const Histogram::Snapshot snap = h->snapshot();
    if (snap.count == 0) continue;
    buf.clear();
    json_escape(buf, name);
    std::fprintf(out,
                 "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
                 "\"sum\":%llu,\"max\":%llu,\"p50\":%llu,\"p95\":%llu,"
                 "\"buckets\":[",
                 buf.c_str(), static_cast<unsigned long long>(snap.count),
                 static_cast<unsigned long long>(snap.sum),
                 static_cast<unsigned long long>(snap.max),
                 static_cast<unsigned long long>(snap.approx_percentile(50.0)),
                 static_cast<unsigned long long>(snap.approx_percentile(95.0)));
    bool first = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = snap.buckets[i];
      if (n == 0) continue;
      std::fprintf(out, "%s[%llu,%llu]", first ? "" : ",",
                   static_cast<unsigned long long>(
                       Histogram::bucket_upper_bound(i)),
                   static_cast<unsigned long long>(n));
      first = false;
    }
    std::fprintf(out, "]}\n");
    ++lines;
  }
  for (const SpanRecord& s : impl_->spans) {
    buf.clear();
    json_escape(buf, s.name);
    std::fprintf(out,
                 "{\"type\":\"span\",\"id\":%llu,\"parent\":%llu,"
                 "\"trace\":%llu,\"link\":%llu,"
                 "\"name\":\"%s\",\"worker\":%lld,\"epoch\":%lld,"
                 "\"start_ns\":%llu,\"dur_ns\":%llu,\"attrs\":{",
                 static_cast<unsigned long long>(s.id),
                 static_cast<unsigned long long>(s.parent),
                 static_cast<unsigned long long>(s.trace_id),
                 static_cast<unsigned long long>(s.link), buf.c_str(),
                 static_cast<long long>(s.worker),
                 static_cast<long long>(s.epoch),
                 static_cast<unsigned long long>(s.start_ns),
                 static_cast<unsigned long long>(s.dur_ns));
    for (std::size_t i = 0; i < s.attrs.size(); ++i) {
      const SpanAttr& a = s.attrs[i];
      buf.clear();
      json_escape(buf, a.key);
      std::fprintf(out, "%s\"%s\":", i == 0 ? "" : ",", buf.c_str());
      if (a.quoted) {
        buf.clear();
        json_escape(buf, a.value);
        std::fprintf(out, "\"%s\"", buf.c_str());
      } else {
        std::fprintf(out, "%s", a.value.c_str());
      }
    }
    std::fprintf(out, "}}\n");
    ++lines;
  }
  return lines;
}

bool Registry::export_jsonl_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  export_jsonl(f);
  std::fclose(f);
  return true;
}

std::string maybe_export(const std::string& default_path) {
  if (!enabled()) return "";
  const char* env = std::getenv("RPOL_TRACE_FILE");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env : default_path;
  if (!Registry::instance().export_jsonl_file(path)) return "";
  return path;
}

}  // namespace rpol::obs
