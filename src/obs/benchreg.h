// Benchmark registry ("rpol.bench.v1"): a standardized JSON record for every
// kernel / phase / protocol benchmark, so performance has a machine-checkable
// trajectory instead of free-form stdout tables.
//
// File format — one JSON object per file:
//   {"schema":"rpol.bench.v1",
//    "records":[
//      {"bench":"bench_micro","name":"gemm.256","unit":"s","value":1.2e-3,
//       "higher_is_better":false,
//       "stats":{"best":...,"p50":...,"p95":...,"worst":...},
//       "env":{"threads":8,"build":"release","compiler":"..."}}, ...]}
//
// `value` is the headline number compared by bench-diff (conventionally the
// p50 for latencies); `stats` keeps the spread for humans. Records are keyed
// and sorted by (bench, name) so files diff cleanly in git.
//
// `rpol bench-diff <baseline> <current> [--tolerance 0.xx]` compares two
// files: a record regresses when its value moves past the tolerance in the
// bad direction (higher for latencies, lower for throughputs). The committed
// BENCH_baseline.json seeds the trajectory; tools/run_tier1.sh runs the diff
// advisorily.

#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace rpol::obs {

struct BenchStats {
  double best = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double worst = 0.0;
};

// Environment fingerprint: enough to explain "why did this number move"
// without being so specific that every machine produces a diff.
struct BenchEnv {
  std::int64_t threads = 0;
  std::string build;     // "release" / "debug"
  std::string compiler;  // __VERSION__
  // VmHWM at record time (obs/mem.h read_proc_rss); 0 when unavailable.
  // Carried per record so bench-diff can gate memory like time.
  std::uint64_t peak_rss_bytes = 0;
};

struct BenchRecord {
  std::string bench;  // emitting binary, e.g. "bench_micro"
  std::string name;   // metric, e.g. "gemm.f32.256x256"
  std::string unit;   // "s", "ops/s", "bytes", ...
  double value = 0.0;
  bool higher_is_better = false;
  bool has_stats = false;
  BenchStats stats{};
  BenchEnv env{};
};

struct BenchReport {
  std::vector<BenchRecord> records;
};

// Sorts by (bench, name) — the canonical on-disk order.
void sort_bench_records(BenchReport& report);

// Serializes as rpol.bench.v1 (records sorted first). Returns records written.
std::size_t write_bench_json(const BenchReport& report, std::FILE* out);
bool write_bench_json_file(const BenchReport& report, const std::string& path);

// Throws std::runtime_error on wrong/missing schema or malformed JSON.
BenchReport parse_bench_json(std::string_view text);
BenchReport load_bench_file(const std::string& path);

// Overlay merge: records from `update` replace same-(bench,name) records in
// `base`; everything else is kept. Used to build BENCH_baseline.json from
// several binaries' outputs.
BenchReport merge_bench_reports(const BenchReport& base,
                                const BenchReport& update);

struct BenchDelta {
  std::string bench;
  std::string name;
  std::string unit;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  // current / baseline (0 when baseline == 0)
  bool higher_is_better = false;
  bool regression = false;
  bool improvement = false;  // moved past tolerance in the good direction
  // Memory column (env.peak_rss_bytes, 0 = not recorded on that side).
  std::uint64_t baseline_rss = 0;
  std::uint64_t current_rss = 0;
  double rss_ratio = 0.0;  // current_rss / baseline_rss (0 when unknown)
  bool rss_regression = false;
};

struct BenchDiffResult {
  std::vector<BenchDelta> deltas;          // (bench,name) order
  std::vector<std::string> only_baseline;  // "bench/name" dropped records
  std::vector<std::string> only_current;   // "bench/name" new records
  double tolerance = 0.0;
  double mem_tolerance = 0.0;  // <= 0: memory is advisory, never gates
  std::size_t regressions = 0;
  std::size_t mem_regressions = 0;
  bool ok() const { return regressions == 0 && mem_regressions == 0; }
};

// A record regresses when the bad-direction relative change exceeds
// `tolerance`: value > baseline*(1+tol) for lower-is-better, value <
// baseline*(1-tol) for higher-is-better. Records present on only one side
// are reported but never gate. When `mem_tolerance` > 0, peak RSS is gated
// the same way (always lower-is-better) for records where both sides carry
// env.peak_rss_bytes; the default 0 keeps memory advisory, so existing
// callers see no new failures.
BenchDiffResult diff_bench(const BenchReport& baseline,
                           const BenchReport& current, double tolerance,
                           double mem_tolerance = 0.0);

void print_bench_diff(const BenchDiffResult& diff, std::FILE* out);

}  // namespace rpol::obs
