// Protocol-aware tracing & metrics: the measurement substrate behind every
// quantitative claim the protocol makes (communication volume, re-execution
// cost, double-check rates, kernel throughput).
//
// Three primitives, all owned by a global Registry:
//   * Span        — RAII wall-clock scope with an explicit parent id, an
//                   optional worker/epoch tag, and free-form attributes.
//                   Spans cover the protocol lifecycle (task announce ->
//                   train -> commit -> sampling -> proof exchange ->
//                   re-execution -> LSH match -> decision).
//   * Counter     — monotonically increasing u64 (bytes per message type,
//                   verify verdicts, parallel_for invocations).
//   * Gauge       — last-write-wins double (thread count, modeled costs).
//   * Histogram   — fixed log-linear buckets over u64 values (kernel
//                   nanoseconds); recording is a relaxed atomic increment,
//                   no allocation on the hot path.
//
// Determinism contract: the registry is WRITE-ONLY from protocol code.
// Timing fields are wall-clock-tagged but never feed back into any protocol
// decision, batch selection, or kernel result, so a traced run is bitwise
// identical to an untraced one (tests/runtime_determinism_test.cpp proves
// it at the checkpoint-bytes / Merkle-root level).
//
// Cost when disabled: every entry point first checks one relaxed atomic
// bool (`enabled()`); spans skip both clock reads, counters skip the add.
// Enablement: RPOL_TRACE env var (read once; any value except "" / "0"),
// overridden by obs::set_enabled(). Export is explicit — call
// Registry::export_jsonl (or the maybe_export helper, which honors
// RPOL_TRACE_FILE) from the binary that owns the run. Schema:
// docs/observability.md ("rpol.trace.v2").
//
// Causal propagation: every span carries a trace_id (the id of the root
// span of its causal tree — one tree per epoch/submission) and, when its
// parent lives in ANOTHER agent, a `link` to that remote span. The
// TraceContext {trace_id, span_id} pair is what crosses the wire (see
// core/wire.h's trace envelope); receivers adopt it so one epoch becomes a
// single stitched tree spanning manager and workers. Propagation is as
// write-only as everything else here: contexts ride OUTSIDE the canonical
// message bytes and are stripped before any decode or hash.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace rpol::obs {

// True when tracing is on: RPOL_TRACE env (cached at first call) unless
// overridden by set_enabled().
bool enabled();

// Explicit override of the RPOL_TRACE default; wins until called again.
void set_enabled(bool on);

// True when live telemetry is on: RPOL_LIVE env (cached at first call)
// unless overridden by set_live_enabled(). Orthogonal to enabled():
// RPOL_LIVE=1 alone streams periodic snapshots without accumulating spans.
bool live_enabled();
void set_live_enabled(bool on);

// True when either surface wants metric writes. Counters and histograms
// feed both the export-at-exit trace and the live flusher, so their call
// sites gate on this; spans stay gated on enabled() alone (a long-running
// live service must not grow an unbounded span store).
inline bool telemetry_enabled() { return enabled() || live_enabled(); }

// ---------------------------------------------------------------------------
// Reset-vs-reader seqlock (the Histogram guard, lifted to whole-registry
// scope): Registry::reset(), mem_reset(), and reset_all() hold the
// generation odd while they run. A multi-metric reader (the live flusher
// building one snapshot line from several mutex acquisitions) brackets its
// reads with reset_generation() and retries on a change, so a snapshot can
// never mix pre-reset and post-reset values.

// Current reset generation: odd while any reset is in progress.
std::uint64_t reset_generation();

namespace detail {
// Nestable odd-window bracket around a reset; for obs-internal reset paths
// (Registry::reset, mem_reset, reset_all) — not a public API.
void reset_barrier_begin();
void reset_barrier_end();
struct ResetBarrier {
  ResetBarrier() { reset_barrier_begin(); }
  ~ResetBarrier() { reset_barrier_end(); }
};
}  // namespace detail

// Resets the metric registry AND the tagged memory counters under one odd
// generation window (the "between protocol runs" reset tests use).
void reset_all();

// Runs `fn` as a seqlock reader: waits out any in-progress reset, runs the
// reads, and retries if a reset intervened. Returns false when no stable
// read landed within `max_retries` attempts (a reset hammer that never
// pauses); callers then skip this sample rather than emit a torn one.
template <typename Fn>
bool stable_telemetry_read(Fn&& fn, int max_retries = 64) {
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    const std::uint64_t g1 = reset_generation();
    if ((g1 & 1) != 0) continue;  // reset in progress: spin to the next try
    fn();
    if (reset_generation() == g1) return true;
  }
  return false;
}

// Nanoseconds since the registry's steady-clock anchor (process start).
std::uint64_t now_ns();

// Hot-path sampling guard: fires for 1 call in `every` while tracing is
// enabled. `counter` is a call-site-owned relaxed atomic so concurrent
// kernels never contend on registry state just to decide "not this one".
inline bool sample_tick(std::atomic<std::uint64_t>& counter,
                        std::uint64_t every) {
  if (!enabled()) return false;
  return counter.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

class Counter {
 public:
  void add(std::uint64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  // Atomic read-and-zero. Counters are a single word, so unlike histograms
  // they cannot tear — but a load followed by a store CAN drop a concurrent
  // add between the two. Reset paths drain instead, making every recorded
  // increment land either in the returned value or in the fresh window.
  std::uint64_t drain() { return value_.exchange(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Construct via Registry::counter(); public only for in-place container
  // construction.
  explicit Counter(std::string name) : name_(std::move(name)) {}

 private:
  friend class Registry;
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Construct via Registry::gauge().
  explicit Gauge(std::string name) : name_(std::move(name)) {}

 private:
  friend class Registry;
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Log-linear bucketed histogram over u64 values: values 0..7 get exact
// buckets, larger values land in 4 sub-buckets per power of two (HDR-style),
// bounding the relative quantile error at ~12.5% with 2 KB of state.
//
// Concurrency: record() is a handful of relaxed atomic increments spread
// over several words (count, sum, one bucket), so a reset or multi-word
// read racing a record could observe a half-applied sample. Both therefore
// go through a seqlock-style writer-exclusion guard: recorders announce
// themselves on `writers_` and back off while `seq_` is odd; reset() and
// snapshot() flip `seq_` odd, wait for in-flight recorders to drain, do
// their multi-word work exclusively, and flip `seq_` even again. Snapshots
// and resets are thus always internally consistent (count == sum of the
// buckets), while the record() fast path stays lock- and allocation-free.
class Histogram {
 public:
  static constexpr int kSmallBuckets = 8;   // exact buckets for 0..7
  static constexpr int kSubBuckets = 4;     // per power of two above 8
  static constexpr int kNumBuckets = kSmallBuckets + 61 * kSubBuckets;

  static int bucket_index(std::uint64_t v);
  // Largest value that lands in bucket i (inclusive).
  static std::uint64_t bucket_upper_bound(int i);

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  // Upper-bound estimate of the p-th percentile (p in [0, 100]) from the
  // bucket counts; 0 for an empty histogram.
  std::uint64_t approx_percentile(double p) const;
  const std::string& name() const { return name_; }

  // Consistent multi-word copy of the histogram state: taken under the
  // writer-exclusion guard, so count == sum over buckets always holds.
  // This is what the exporter and window aggregation (window.h) read.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t buckets[kNumBuckets] = {};

    std::uint64_t approx_percentile(double p) const;
  };
  Snapshot snapshot() const;

  // Zeroes everything under the same guard (no concurrent record is ever
  // torn across the reset boundary).
  void reset();

  // Construct via Registry::histogram().
  explicit Histogram(std::string name) : name_(std::move(name)) {}

 private:
  friend class Registry;

  // Runs `fn` with every record() excluded; used by reset()/snapshot().
  template <typename Fn>
  void exclusive(Fn&& fn) const;

  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  // Seqlock guard state (mutable: snapshot() is logically const).
  mutable std::atomic<std::uint64_t> seq_{0};     // odd = exclusive op running
  mutable std::atomic<std::uint32_t> writers_{0};  // in-flight record() count
};

// One span attribute; `quoted` distinguishes JSON strings from raw
// number/bool tokens so export and the analyzer round-trip exactly.
struct SpanAttr {
  std::string key;
  std::string value;
  bool quoted = false;
};

// The causal coordinates one span hands to its descendants: the id of the
// tree root (trace_id) and its own span id. A zero span_id means "no
// context" — produced by inert spans and legacy (pre-v2) senders — and
// adopting it starts a fresh tree instead of linking.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;    // same-agent parent span, 0 = root
  std::uint64_t trace_id = 0;  // root span id of the causal tree, 0 = legacy
  std::uint64_t link = 0;      // remote (cross-agent) parent span, 0 = none
  std::string name;
  std::int64_t worker = -1;  // -1 = not worker-scoped (manager / global)
  std::int64_t epoch = -1;   // -1 = not epoch-scoped
  std::uint64_t start_ns = 0;  // relative to the registry anchor
  std::uint64_t dur_ns = 0;
  std::vector<SpanAttr> attrs;
};

// RAII protocol scope. Construction snapshots the clock when tracing is
// enabled; destruction appends the completed record to the registry.
// A span constructed while tracing is disabled is inert (id() == 0).
class Span {
 public:
  // Legacy form: raw parent id, no trace membership (trace_id stays 0).
  explicit Span(std::string_view name, std::uint64_t parent = 0,
                std::int64_t worker = -1, std::int64_t epoch = -1);
  // Same-agent child: inherits the parent's trace_id.
  Span(std::string_view name, const Span& parent, std::int64_t worker = -1,
       std::int64_t epoch = -1);
  // Trace-aware span. A valid remote context makes this span a cross-agent
  // child (trace_id adopted, `link` set to the remote span); an invalid one
  // roots a NEW trace (trace_id = own id). Pass obs::TraceContext{} to start
  // an epoch/submission tree.
  Span(std::string_view name, const TraceContext& remote_parent,
       std::int64_t worker = -1, std::int64_t epoch = -1);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  std::uint64_t id() const { return rec_.id; }
  std::uint64_t trace_id() const { return rec_.trace_id; }
  // Coordinates descendants (local or remote) should adopt. All-zero when
  // the span is inert, so propagation degrades to the legacy no-op.
  TraceContext context() const { return {rec_.trace_id, rec_.id}; }

  void attr(std::string_view key, double v);
  void attr(std::string_view key, std::int64_t v);
  void attr(std::string_view key, std::uint64_t v);
  void attr(std::string_view key, bool v);
  void attr(std::string_view key, std::string_view v);

 private:
  SpanRecord rec_;
  bool active_ = false;
};

class Registry {
 public:
  static Registry& instance();

  // Metric handles are created on first use and live for the process;
  // returned references stay valid across reset().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::uint64_t next_span_id();
  void record_span(SpanRecord rec);

  std::vector<SpanRecord> spans() const;  // snapshot copy
  std::size_t span_count() const;

  // Name/value listings for samplers (the live flusher): one mutex
  // acquisition each, sorted by name. Histogram snapshots are taken under
  // the per-histogram writer-exclusion guard, so each entry is internally
  // consistent; bracket calls with stable_telemetry_read to also make the
  // listing consistent against reset().
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histogram_snapshots()
      const;

  // Zeroes every metric and drops recorded spans; handles stay registered.
  void reset();

  // Writes the whole registry as JSONL ("rpol.trace.v2"): one meta line,
  // then counters, gauges, histograms (each sorted by name), then spans in
  // completion order. Returns the number of lines written.
  std::size_t export_jsonl(std::FILE* out) const;
  bool export_jsonl_file(const std::string& path) const;

  std::uint64_t wall_anchor_unix_ns() const { return wall_anchor_unix_ns_; }

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // intentionally leaked: metrics may be touched at exit
  std::uint64_t wall_anchor_unix_ns_ = 0;
};

// Convenience forwards to the global registry.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

// Counts only while some telemetry surface is enabled (the common call-site
// pattern): tracing, the live flusher, or both.
inline void count(std::string_view name, std::uint64_t v) {
  if (telemetry_enabled()) counter(name).add(v);
}

// Histogram-recording twin of count(): one gated relaxed-atomic check, then
// the lock-free record path.
inline void observe(std::string_view name, std::uint64_t v) {
  if (telemetry_enabled()) histogram(name).record(v);
}

// If tracing is enabled, exports the registry to RPOL_TRACE_FILE (or
// `default_path` when unset) and returns the path written; returns "" when
// tracing is disabled or the file cannot be opened.
std::string maybe_export(const std::string& default_path);

}  // namespace rpol::obs
