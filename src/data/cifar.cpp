#include "data/cifar.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace rpol::data {

namespace {

constexpr std::int64_t kPixels = 3 * 32 * 32;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::vector<std::uint8_t> read_all(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) throw std::runtime_error("cannot open " + path);
  std::fseek(file.get(), 0, SEEK_END);
  const long size = std::ftell(file.get());
  if (size < 0) throw std::runtime_error("cannot stat " + path);
  std::fseek(file.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    throw std::runtime_error("short read on " + path);
  }
  return bytes;
}

float pixel_to_float(std::uint8_t b) {
  return static_cast<float>(b) / 127.5F - 1.0F;
}

std::uint8_t float_to_pixel(float v) {
  const float scaled = (v + 1.0F) * 127.5F;
  return static_cast<std::uint8_t>(
      std::clamp(std::lround(scaled), 0L, 255L));
}

Dataset parse_records(const std::vector<std::vector<std::uint8_t>>& files,
                      std::size_t label_bytes, std::size_t label_offset,
                      std::int64_t num_classes) {
  const std::size_t record = label_bytes + static_cast<std::size_t>(kPixels);
  std::vector<float> examples;
  std::vector<std::int64_t> labels;
  for (const auto& bytes : files) {
    if (bytes.empty() || bytes.size() % record != 0) {
      throw std::runtime_error("malformed CIFAR file (size not a multiple of "
                               "the record length)");
    }
    const std::size_t count = bytes.size() / record;
    examples.reserve(examples.size() + count * static_cast<std::size_t>(kPixels));
    labels.reserve(labels.size() + count);
    for (std::size_t r = 0; r < count; ++r) {
      const std::uint8_t* rec = bytes.data() + r * record;
      const std::int64_t label = rec[label_offset];
      if (label >= num_classes) {
        throw std::runtime_error("CIFAR label out of range");
      }
      labels.push_back(label);
      for (std::int64_t p = 0; p < kPixels; ++p) {
        examples.push_back(pixel_to_float(rec[label_bytes + static_cast<std::size_t>(p)]));
      }
    }
  }
  return Dataset({3, 32, 32}, std::move(examples), std::move(labels),
                 num_classes);
}

}  // namespace

Dataset load_cifar10_binary(const std::vector<std::string>& paths) {
  if (paths.empty()) throw std::invalid_argument("no CIFAR-10 files given");
  std::vector<std::vector<std::uint8_t>> files;
  files.reserve(paths.size());
  for (const auto& path : paths) files.push_back(read_all(path));
  return parse_records(files, /*label_bytes=*/1, /*label_offset=*/0,
                       /*num_classes=*/10);
}

Dataset load_cifar100_binary(const std::string& path) {
  std::vector<std::vector<std::uint8_t>> files;
  files.push_back(read_all(path));
  // Record: coarse label, fine label, pixels; we classify on fine labels.
  return parse_records(files, /*label_bytes=*/2, /*label_offset=*/1,
                       /*num_classes=*/100);
}

void write_cifar10_binary(const Dataset& dataset, const std::string& path) {
  if (dataset.example_shape() != Shape{3, 32, 32}) {
    throw std::invalid_argument("CIFAR writer needs 3x32x32 examples");
  }
  if (dataset.num_classes() > 256) {
    throw std::invalid_argument("CIFAR writer supports <= 256 classes");
  }
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) throw std::runtime_error("cannot create " + path);
  std::vector<float> example(static_cast<std::size_t>(kPixels));
  std::vector<std::uint8_t> record(1 + static_cast<std::size_t>(kPixels));
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    dataset.copy_example(i, example.data());
    record[0] = static_cast<std::uint8_t>(dataset.label(i));
    for (std::int64_t p = 0; p < kPixels; ++p) {
      record[1 + static_cast<std::size_t>(p)] =
          float_to_pixel(example[static_cast<std::size_t>(p)]);
    }
    if (std::fwrite(record.data(), 1, record.size(), file.get()) !=
        record.size()) {
      throw std::runtime_error("short write on " + path);
    }
  }
}

}  // namespace rpol::data
