#include "data/partition.h"

#include <algorithm>
#include <stdexcept>

namespace rpol::data {

std::vector<DatasetView> shuffle_and_partition(const Dataset& dataset,
                                               std::int64_t parts,
                                               std::uint64_t seed) {
  if (parts < 1) throw std::invalid_argument("parts must be >= 1");
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::size_t>(dataset.size()));
  const std::int64_t per_part = dataset.size() / parts;
  if (per_part == 0) throw std::invalid_argument("dataset too small to partition");

  std::vector<DatasetView> views;
  views.reserve(static_cast<std::size_t>(parts));
  for (std::int64_t p = 0; p < parts; ++p) {
    std::vector<std::int64_t> indices(static_cast<std::size_t>(per_part));
    for (std::int64_t i = 0; i < per_part; ++i) {
      indices[static_cast<std::size_t>(i)] =
          static_cast<std::int64_t>(perm[static_cast<std::size_t>(p * per_part + i)]);
    }
    views.emplace_back(&dataset, std::move(indices));
  }
  return views;
}

std::vector<DatasetView> partition_label_skew(const Dataset& dataset,
                                              std::int64_t parts,
                                              double iid_fraction,
                                              std::uint64_t seed) {
  if (parts < 1) throw std::invalid_argument("parts must be >= 1");
  if (iid_fraction < 0.0 || iid_fraction > 1.0) {
    throw std::invalid_argument("iid_fraction must be in [0, 1]");
  }
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::size_t>(dataset.size()));

  // Split the shuffled indices into a uniform pool and a label-sorted pool.
  const std::size_t iid_count = static_cast<std::size_t>(
      iid_fraction * static_cast<double>(dataset.size()));
  std::vector<std::int64_t> uniform_pool, skew_pool;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto idx = static_cast<std::int64_t>(perm[i]);
    if (i < iid_count) {
      uniform_pool.push_back(idx);
    } else {
      skew_pool.push_back(idx);
    }
  }
  std::stable_sort(skew_pool.begin(), skew_pool.end(),
                   [&dataset](std::int64_t a, std::int64_t b) {
                     return dataset.label(a) < dataset.label(b);
                   });

  // Deal both pools in contiguous shards so each part gets its share of the
  // uniform pool plus one label-sorted shard.
  const std::int64_t per_part = dataset.size() / parts;
  if (per_part == 0) throw std::invalid_argument("dataset too small to partition");
  const std::size_t uniform_per_part = uniform_pool.size() / static_cast<std::size_t>(parts);
  const std::size_t skew_per_part = skew_pool.size() / static_cast<std::size_t>(parts);

  std::vector<DatasetView> views;
  views.reserve(static_cast<std::size_t>(parts));
  for (std::int64_t p = 0; p < parts; ++p) {
    std::vector<std::int64_t> indices;
    indices.reserve(uniform_per_part + skew_per_part);
    const std::size_t u0 = static_cast<std::size_t>(p) * uniform_per_part;
    indices.insert(indices.end(), uniform_pool.begin() + static_cast<std::ptrdiff_t>(u0),
                   uniform_pool.begin() + static_cast<std::ptrdiff_t>(u0 + uniform_per_part));
    const std::size_t s0 = static_cast<std::size_t>(p) * skew_per_part;
    indices.insert(indices.end(), skew_pool.begin() + static_cast<std::ptrdiff_t>(s0),
                   skew_pool.begin() + static_cast<std::ptrdiff_t>(s0 + skew_per_part));
    views.emplace_back(&dataset, std::move(indices));
  }
  return views;
}

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::size_t>(dataset.size()));
  const std::int64_t test_count =
      static_cast<std::int64_t>(test_fraction * static_cast<double>(dataset.size()));
  if (test_count == 0 || test_count == dataset.size()) {
    throw std::invalid_argument("degenerate train/test split");
  }
  std::vector<std::int64_t> test_idx, train_idx;
  test_idx.reserve(static_cast<std::size_t>(test_count));
  train_idx.reserve(static_cast<std::size_t>(dataset.size() - test_count));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (static_cast<std::int64_t>(i) < test_count) {
      test_idx.push_back(static_cast<std::int64_t>(perm[i]));
    } else {
      train_idx.push_back(static_cast<std::int64_t>(perm[i]));
    }
  }
  return {DatasetView(&dataset, std::move(train_idx)),
          DatasetView(&dataset, std::move(test_idx))};
}

}  // namespace rpol::data
