// Deterministic shuffling and i.i.d. partitioning.
//
// Sec. II-A / V-C: the manager randomly shuffles the dataset and divides it
// equally — into n sub-datasets for the workers, or n+1 so the manager can
// keep one i.i.d. sub-task for LSH calibration. Class-balanced synthetic
// data + a seeded uniform shuffle makes every part i.i.d. by construction.

#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace rpol::data {

// Splits `dataset` into `parts` equal views after a seeded shuffle.
// A remainder of size() % parts examples is dropped, matching the paper's
// "equally divided" phrasing. parts must be >= 1.
std::vector<DatasetView> shuffle_and_partition(const Dataset& dataset,
                                               std::int64_t parts,
                                               std::uint64_t seed);

// Deterministic train/test split: first `test_fraction` of the shuffled
// indices become the test view.
struct TrainTestSplit {
  DatasetView train;
  DatasetView test;
};
TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed);

// Label-skewed (non-i.i.d.) partitioning: an `iid_fraction` of the examples
// is spread uniformly; the rest is sorted by label and dealt in contiguous
// shards, so each part over-represents a few classes. iid_fraction = 1
// degenerates to shuffle_and_partition; 0 gives fully sorted shards.
//
// The paper's adaptive calibration ASSUMES i.i.d. sub-datasets (Sec. V-C);
// this partitioner exists to probe what breaks when that assumption fails
// (see bench_ablations).
std::vector<DatasetView> partition_label_skew(const Dataset& dataset,
                                              std::int64_t parts,
                                              double iid_fraction,
                                              std::uint64_t seed);

}  // namespace rpol::data
