// Dataset containers.
//
// A Dataset owns a flat store of fixed-shape examples plus labels. Views
// (sub-datasets for pool workers) reference the parent by index list, so
// partitioning the training set across n workers (Sec. II-A) costs no
// copies and the PRF-selected batch indices map 1:1 onto what the paper
// calls "the n-th data from the sub-dataset D_w".

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace rpol::data {

class Dataset {
 public:
  Dataset() = default;

  // example_shape excludes the leading batch dimension (e.g. {3, 8, 8} for
  // images or {32} for feature vectors).
  Dataset(Shape example_shape, std::vector<float> examples,
          std::vector<std::int64_t> labels, std::int64_t num_classes);

  std::int64_t size() const { return static_cast<std::int64_t>(labels_.size()); }
  std::int64_t num_classes() const { return num_classes_; }
  const Shape& example_shape() const { return example_shape_; }
  std::int64_t example_numel() const { return example_numel_; }

  std::int64_t label(std::int64_t index) const {
    return labels_[static_cast<std::size_t>(index)];
  }

  // Copies the example at `index` into `dst` (example_numel floats).
  void copy_example(std::int64_t index, float* dst) const;

  // Assembles a batch tensor of shape {indices.size(), example_shape...}
  // and the matching label vector.
  Tensor make_batch(const std::vector<std::int64_t>& indices,
                    std::vector<std::int64_t>& labels_out) const;

 private:
  Shape example_shape_;
  std::int64_t example_numel_ = 0;
  std::vector<float> examples_;  // size() * example_numel_
  std::vector<std::int64_t> labels_;
  std::int64_t num_classes_ = 0;
};

// An index-based view into a parent dataset. Views are cheap to copy.
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(const Dataset* parent, std::vector<std::int64_t> indices);

  // A view of the whole dataset in natural order.
  static DatasetView whole(const Dataset& parent);

  std::int64_t size() const { return static_cast<std::int64_t>(indices_.size()); }
  std::int64_t num_classes() const { return parent_->num_classes(); }
  const Dataset& parent() const { return *parent_; }

  std::int64_t parent_index(std::int64_t i) const {
    return indices_[static_cast<std::size_t>(i)];
  }

  Tensor make_batch(const std::vector<std::int64_t>& view_indices,
                    std::vector<std::int64_t>& labels_out) const;

 private:
  const Dataset* parent_ = nullptr;
  std::vector<std::int64_t> indices_;
};

}  // namespace rpol::data
