#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace rpol::data {

Dataset::Dataset(Shape example_shape, std::vector<float> examples,
                 std::vector<std::int64_t> labels, std::int64_t num_classes)
    : example_shape_(std::move(example_shape)),
      example_numel_(shape_numel(example_shape_)),
      examples_(std::move(examples)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  if (examples_.size() != labels_.size() * static_cast<std::size_t>(example_numel_)) {
    throw std::invalid_argument("dataset example/label size mismatch");
  }
  for (const auto l : labels_) {
    if (l < 0 || l >= num_classes_) {
      throw std::invalid_argument("dataset label out of range");
    }
  }
}

void Dataset::copy_example(std::int64_t index, float* dst) const {
  const float* src =
      examples_.data() + static_cast<std::size_t>(index * example_numel_);
  std::memcpy(dst, src, static_cast<std::size_t>(example_numel_) * sizeof(float));
}

Tensor Dataset::make_batch(const std::vector<std::int64_t>& indices,
                           std::vector<std::int64_t>& labels_out) const {
  Shape batch_shape;
  batch_shape.push_back(static_cast<std::int64_t>(indices.size()));
  batch_shape.insert(batch_shape.end(), example_shape_.begin(), example_shape_.end());
  Tensor batch(batch_shape);
  labels_out.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t idx = indices[i];
    if (idx < 0 || idx >= size()) throw std::out_of_range("batch index out of range");
    copy_example(idx, batch.data() + i * static_cast<std::size_t>(example_numel_));
    labels_out[i] = label(idx);
  }
  return batch;
}

DatasetView::DatasetView(const Dataset* parent, std::vector<std::int64_t> indices)
    : parent_(parent), indices_(std::move(indices)) {
  for (const auto idx : indices_) {
    if (idx < 0 || idx >= parent_->size()) {
      throw std::out_of_range("dataset view index out of range");
    }
  }
}

DatasetView DatasetView::whole(const Dataset& parent) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(parent.size()));
  for (std::int64_t i = 0; i < parent.size(); ++i) idx[static_cast<std::size_t>(i)] = i;
  return DatasetView(&parent, std::move(idx));
}

Tensor DatasetView::make_batch(const std::vector<std::int64_t>& view_indices,
                               std::vector<std::int64_t>& labels_out) const {
  std::vector<std::int64_t> parent_indices(view_indices.size());
  for (std::size_t i = 0; i < view_indices.size(); ++i) {
    const std::int64_t vi = view_indices[i];
    if (vi < 0 || vi >= size()) throw std::out_of_range("view batch index");
    parent_indices[i] = indices_[static_cast<std::size_t>(vi)];
  }
  return parent_->make_batch(parent_indices, labels_out);
}

}  // namespace rpol::data
