// CIFAR-10/100 binary-format loader.
//
// The paper evaluates on CIFAR-10/100; this repository substitutes
// synthetic data (DESIGN.md §1) because the environment is offline, but a
// downstream user with the real files can load them directly:
//
//   auto train = data::load_cifar10_binary({"data_batch_1.bin", ...});
//
// Format (https://www.cs.toronto.edu/~kriz/cifar.html):
//   CIFAR-10 : records of 1 label byte + 3072 pixel bytes (3x32x32, RGB
//              planar, row-major);
//   CIFAR-100: records of 1 coarse-label byte + 1 fine-label byte + 3072
//              pixel bytes.
// Pixels are normalized to [-1, 1] floats.
//
// A writer for the same format exists so tests can round-trip without the
// real dataset.

#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"

namespace rpol::data {

// Loads one or more CIFAR-10 batch files (each 10000 records, but any
// record count is accepted). Throws on I/O errors or malformed sizes.
Dataset load_cifar10_binary(const std::vector<std::string>& paths);

// Loads a CIFAR-100 file using the fine labels (100 classes).
Dataset load_cifar100_binary(const std::string& path);

// Writes `dataset` (which must have 3x32x32 examples and <= 256 classes)
// in CIFAR-10 binary format — primarily for tests and for exporting
// synthetic data to tools that expect the CIFAR layout. Pixel floats are
// mapped from [-1, 1] back to bytes with clamping.
void write_cifar10_binary(const Dataset& dataset, const std::string& path);

}  // namespace rpol::data
