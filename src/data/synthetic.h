// Synthetic dataset generators standing in for CIFAR-10/100 and ImageNet.
//
// Substitution rationale (see DESIGN.md §1): the paper's experiments need a
// *learnable, i.i.d.-partitionable classification task*, not natural images.
// We synthesize class-conditioned images: each class owns a random spatial
// frequency pattern plus a color bias; examples are the class pattern plus
// per-example Gaussian pixel noise. Difficulty (class separation vs noise)
// is tunable so accuracy curves have the paper's familiar rising shape.
//
// A feature-vector variant (Gaussian blobs) serves the protocol-heavy
// sweeps where an MLP is the training task.

#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace rpol::data {

struct SyntheticImageConfig {
  std::int64_t num_classes = 10;
  std::int64_t num_examples = 512;
  std::int64_t channels = 3;
  std::int64_t image_size = 8;
  float noise_stddev = 0.6F;     // per-pixel Gaussian noise
  float pattern_scale = 1.0F;    // class pattern amplitude
  // Spatial-frequency band of the class patterns, in cycles per image.
  // Low frequencies give robust, linearly-separable classes; frequencies
  // near Nyquist give fragile classes whose accuracy collapses under a
  // random invertible remap — the CIFAR-like regime the AMLayer
  // address-replacing experiment (Table I) needs.
  float min_frequency = 0.5F;
  float max_frequency = 3.0F;
  // Phase-coded classes: all classes share one carrier frequency and are
  // distinguished only by the carrier's phase. Class means then sit close
  // together (margins are small relative to the input norm), which makes
  // trained models fragile to input remappings — the regime where the
  // AMLayer address-replacing attack collapses accuracy as it does on
  // CIFAR (Table I). The default (false) keeps per-class random carriers,
  // which give robust, widely separated classes.
  bool phase_coded = false;
  std::uint64_t seed = 1234;
};

// "CIFAR-like" synthetic image classification set.
Dataset make_synthetic_images(const SyntheticImageConfig& cfg);

struct SyntheticBlobConfig {
  std::int64_t num_classes = 10;
  std::int64_t num_examples = 2048;
  std::int64_t features = 32;
  float class_separation = 2.0F;  // distance between class centers
  float noise_stddev = 1.0F;
  std::uint64_t seed = 1234;
};

// Gaussian-blob feature-vector classification set.
Dataset make_synthetic_blobs(const SyntheticBlobConfig& cfg);

}  // namespace rpol::data
