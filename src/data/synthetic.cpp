#include "data/synthetic.h"

#include <cmath>

namespace rpol::data {

Dataset make_synthetic_images(const SyntheticImageConfig& cfg) {
  Rng rng(cfg.seed);
  const std::int64_t pixels = cfg.channels * cfg.image_size * cfg.image_size;

  // Per-class pattern: a smooth 2-D sinusoid with class-specific frequency,
  // phase and per-channel amplitude. Smooth patterns give conv nets an edge
  // over chance quickly, like low-level image statistics do on CIFAR.
  // Shared carrier for phase-coded mode (drawn once per dataset).
  const float band = cfg.max_frequency - cfg.min_frequency;
  const float shared_fx = cfg.min_frequency + band * rng.next_float();
  const float shared_fy = cfg.min_frequency + band * rng.next_float();
  std::vector<float> shared_amp(static_cast<std::size_t>(cfg.channels));
  rng.fill_uniform(shared_amp, 0.5F, 1.0F);

  std::vector<std::vector<float>> patterns(
      static_cast<std::size_t>(cfg.num_classes));
  for (std::size_t cls = 0; cls < patterns.size(); ++cls) {
    auto& pattern = patterns[cls];
    pattern.resize(static_cast<std::size_t>(pixels));
    float fx = 0.0F, fy = 0.0F, phase = 0.0F;
    std::vector<float> channel_amp;
    if (cfg.phase_coded) {
      fx = shared_fx;
      fy = shared_fy;
      phase = 6.2831853F * static_cast<float>(cls) /
              static_cast<float>(cfg.num_classes);
      channel_amp = shared_amp;
    } else {
      fx = cfg.min_frequency + band * rng.next_float();
      fy = cfg.min_frequency + band * rng.next_float();
      phase = 6.2831853F * rng.next_float();
      channel_amp.resize(static_cast<std::size_t>(cfg.channels));
      rng.fill_uniform(channel_amp, -1.0F, 1.0F);
    }
    std::size_t p = 0;
    for (std::int64_t c = 0; c < cfg.channels; ++c) {
      for (std::int64_t y = 0; y < cfg.image_size; ++y) {
        for (std::int64_t x = 0; x < cfg.image_size; ++x) {
          const float yy = static_cast<float>(y) / static_cast<float>(cfg.image_size);
          const float xx = static_cast<float>(x) / static_cast<float>(cfg.image_size);
          pattern[p++] = cfg.pattern_scale *
                         channel_amp[static_cast<std::size_t>(c)] *
                         std::sin(6.2831853F * (fx * xx + fy * yy) + phase);
        }
      }
    }
  }

  std::vector<float> examples(
      static_cast<std::size_t>(cfg.num_examples * pixels));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(cfg.num_examples));
  for (std::int64_t i = 0; i < cfg.num_examples; ++i) {
    const std::int64_t cls = i % cfg.num_classes;  // balanced classes
    labels[static_cast<std::size_t>(i)] = cls;
    float* dst = examples.data() + static_cast<std::size_t>(i * pixels);
    const auto& pattern = patterns[static_cast<std::size_t>(cls)];
    for (std::int64_t p = 0; p < pixels; ++p) {
      dst[p] = pattern[static_cast<std::size_t>(p)] +
               cfg.noise_stddev * rng.next_normal();
    }
  }
  return Dataset({cfg.channels, cfg.image_size, cfg.image_size},
                 std::move(examples), std::move(labels), cfg.num_classes);
}

Dataset make_synthetic_blobs(const SyntheticBlobConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<std::vector<float>> centers(static_cast<std::size_t>(cfg.num_classes));
  for (auto& center : centers) {
    center.resize(static_cast<std::size_t>(cfg.features));
    rng.fill_normal(center, 0.0F, cfg.class_separation);
  }
  std::vector<float> examples(
      static_cast<std::size_t>(cfg.num_examples * cfg.features));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(cfg.num_examples));
  for (std::int64_t i = 0; i < cfg.num_examples; ++i) {
    const std::int64_t cls = i % cfg.num_classes;
    labels[static_cast<std::size_t>(i)] = cls;
    float* dst = examples.data() + static_cast<std::size_t>(i * cfg.features);
    const auto& center = centers[static_cast<std::size_t>(cls)];
    for (std::int64_t f = 0; f < cfg.features; ++f) {
      dst[f] = center[static_cast<std::size_t>(f)] +
               cfg.noise_stddev * rng.next_normal();
    }
  }
  return Dataset({cfg.features}, std::move(examples), std::move(labels),
                 cfg.num_classes);
}

}  // namespace rpol::data
