#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>

namespace rpol::fault {

const char* byzantine_name(Byzantine behavior) {
  switch (behavior) {
    case Byzantine::kNone: return "none";
    case Byzantine::kStaleCommitmentReplay: return "stale_commitment_replay";
    case Byzantine::kForgedCheckpointState: return "forged_checkpoint_state";
    case Byzantine::kProofWithholding: return "proof_withholding";
    case Byzantine::kOversizedPayload: return "oversized_payload";
  }
  return "unknown";
}

FaultPlan FaultPlan::transport(const FaultProfile& profile,
                               std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.profiles.fill(profile);
  return plan;
}

FaultPlan FaultPlan::adversary(Byzantine behavior, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.byzantine = behavior;
  return plan;
}

std::int64_t backoff_ticks(const RetryPolicy& policy, int retry) {
  if (retry < 0) retry = 0;
  // Saturating base << retry. Two overflow holes the naive loop has that
  // soak-scale budgets (max_attempts in the thousands, caps near INT64_MAX)
  // actually hit: (a) doubling can pass the cap by overflowing first when
  // the cap exceeds INT64_MAX/2, which is signed-overflow UB, and (b) a
  // negative base doubles toward -INT64_MAX and overflows the other way.
  // Clamp both inputs to [0, cap] and stop doubling the moment the next
  // double would exceed the cap.
  const std::int64_t cap = std::max<std::int64_t>(policy.backoff_cap_ticks, 0);
  std::int64_t ticks =
      std::min(std::max<std::int64_t>(policy.backoff_base_ticks, 0), cap);
  for (int i = 0; i < retry && ticks < cap; ++i) {
    if (ticks > cap - ticks) {  // ticks * 2 > cap, computed without overflow
      ticks = cap;
      break;
    }
    ticks *= 2;
  }
  return ticks;
}

double expected_transmissions(double failure_probability, int max_attempts) {
  const double p = std::clamp(failure_probability, 0.0, 1.0);
  if (max_attempts < 1) return 0.0;
  if (p >= 1.0) return static_cast<double>(max_attempts);
  // Geometric series: the i-th transmission happens iff the first i failed.
  double sum = 0.0;
  double term = 1.0;
  for (int i = 0; i < max_attempts; ++i) {
    sum += term;
    term *= p;
  }
  return sum;
}

std::uint64_t FaultStats::total_faults() const {
  std::uint64_t total = 0;
  for (int t = 0; t < kMaxMessageTypes; ++t) {
    const auto i = static_cast<std::size_t>(t);
    total += drops[i] + delays[i] + truncations[i] + corruptions[i] +
             duplicates[i];
  }
  return total;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t stream)
    : plan_(plan), rng_(derive_seed(plan.seed, stream)) {}

Delivery FaultInjector::decide(int type) {
  if (type < 0 || type >= kMaxMessageTypes) {
    throw std::out_of_range("message type outside fault plan range");
  }
  const auto i = static_cast<std::size_t>(type);
  ++stats_.attempts[i];
  const FaultProfile& profile = plan_.profiles[i];

  // Always consume exactly five uniforms per attempt so the decision
  // stream is independent of which probabilities happen to be zero —
  // editing one knob of a plan must not reshuffle every later draw.
  const double u_drop = rng_.next_double();
  const double u_delay = rng_.next_double();
  const double u_truncate = rng_.next_double();
  const double u_corrupt = rng_.next_double();
  const double u_duplicate = rng_.next_double();

  Delivery delivery;
  last_mangle_ = Mangle::kNone;
  if (u_drop < profile.drop) {
    delivery.status = DeliveryStatus::kDropped;
    ++stats_.drops[i];
  } else if (u_delay < profile.delay) {
    delivery.status = DeliveryStatus::kDelayed;
    ++stats_.delays[i];
  } else if (u_truncate < profile.truncate) {
    delivery.corrupted = true;
    last_mangle_ = Mangle::kTruncate;
    ++stats_.truncations[i];
  } else if (u_corrupt < profile.corrupt) {
    delivery.corrupted = true;
    last_mangle_ = Mangle::kCorrupt;
    ++stats_.corruptions[i];
  } else if (u_duplicate < profile.duplicate) {
    delivery.duplicated = true;
    ++stats_.duplicates[i];
  }
  return delivery;
}

Delivery FaultInjector::attempt(int type) { return decide(type); }

Delivery FaultInjector::transmit(int type, const Bytes& message) {
  Delivery delivery = decide(type);
  if (delivery.status != DeliveryStatus::kDelivered) return delivery;

  delivery.payload = message;
  if (!delivery.corrupted) return delivery;

  if (last_mangle_ == Mangle::kTruncate) {
    const std::size_t keep = message.empty()
                                 ? 0
                                 : static_cast<std::size_t>(rng_.next_below(
                                       static_cast<std::uint64_t>(message.size())));
    delivery.payload.resize(keep);
  } else {
    if (!delivery.payload.empty()) {
      const int flips = 1 + static_cast<int>(rng_.next_below(4));
      for (int f = 0; f < flips; ++f) {
        const std::size_t pos = static_cast<std::size_t>(rng_.next_below(
            static_cast<std::uint64_t>(delivery.payload.size())));
        delivery.payload[pos] ^=
            static_cast<std::uint8_t>(1 + rng_.next_below(255));
      }
    }
  }
  return delivery;
}

}  // namespace rpol::fault
