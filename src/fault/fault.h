// Deterministic fault injection for the RPoL transport and protocol layers.
//
// The protocol's security argument (PAPER.md Sec. IV-V) only holds if the
// manager reaches a correct accept/reject verdict when pool workers are
// unreliable or actively hostile. This module provides the adversarial
// environment to prove that against:
//
//   * FaultPlan    — per-message-type transport fault probabilities (drop,
//                    corrupt, truncate, duplicate, delay) driven by the
//                    repo's deterministic RNG, plus one scripted byzantine
//                    behavior (stale-commitment replay, forged checkpoint
//                    states, proof withholding, oversized payloads).
//   * FaultInjector — draws per-attempt fault decisions and mangles payload
//                    bytes; same seed => bitwise-identical fault sequence.
//   * FaultyChannel — wraps a byte-counting channel (core::CountingChannel)
//                    WITHOUT disturbing its accounting: every transmission
//                    attempt, retries and duplicates included, passes through
//                    the inner channel, so per-type byte counters reflect
//                    exactly what the sender put on the wire. Dropped,
//                    delayed, and mangled messages still count their full
//                    transmitted size; truncation and corruption happen
//                    in flight.
//   * RetryPolicy  — the bounded timeout/retry/backoff parameters protocol
//                    sessions and pools use to survive the plan.
//
// Layering: this library sits between tensor (RNG, Bytes) and core; it is
// keyed by plain message-type indices so it carries no protocol taxonomy of
// its own (core::MessageType casts in, bounds-checked against
// kMaxMessageTypes). With no plan installed every wrapper below is a strict
// pass-through — no RNG is constructed and no extra work runs — which is
// what keeps fault-free traced/untraced runs bitwise identical
// (tests/runtime_determinism_test.cpp).

#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "tensor/rng.h"
#include "tensor/serialize.h"

namespace rpol::fault {

// Upper bound on distinct message-type indices a plan can profile; the
// protocol currently uses core::kNumMessageTypes == 6 of them.
inline constexpr int kMaxMessageTypes = 8;

// Per-message-type transport fault probabilities, each in [0, 1]. At most
// one fault fires per transmission attempt; they are tested in the fixed
// order drop > delay > truncate > corrupt > duplicate so a plan's draw
// sequence is stable regardless of which probabilities are zero.
struct FaultProfile {
  double drop = 0.0;       // lost in transit, never arrives
  double delay = 0.0;      // arrives after the receiver's timeout (= lost)
  double truncate = 0.0;   // arrives with a random-length suffix cut off
  double corrupt = 0.0;    // arrives with 1-4 random bytes flipped
  double duplicate = 0.0;  // transmitted twice (both counted), one delivered

  bool any() const {
    return drop > 0.0 || delay > 0.0 || truncate > 0.0 || corrupt > 0.0 ||
           duplicate > 0.0;
  }
};

// Scripted protocol-level misbehaviors a worker can follow. Unlike
// transport faults these persist across retries (the peer is hostile, not
// unlucky), so the session must *reject or evict*, never accept.
enum class Byzantine : int {
  kNone = 0,
  kStaleCommitmentReplay,   // commits to a stale checkpoint sequence whose
                            // C_0 no longer matches the distributed state
  kForgedCheckpointState,   // proof responses carry states that do not hash
                            // to the commitment
  kProofWithholding,        // never answers proof requests
  kOversizedPayload,        // uploads a junk payload of absurd size
};

const char* byzantine_name(Byzantine behavior);

struct FaultPlan {
  std::uint64_t seed = 1;  // root of every fault decision this plan makes
  std::array<FaultProfile, kMaxMessageTypes> profiles{};
  Byzantine byzantine = Byzantine::kNone;
  // Payload size a kOversizedPayload worker uploads in place of its
  // commitment; pair with RetryPolicy::max_message_bytes below it to prove
  // the receiver rejects before parsing.
  std::uint64_t oversized_payload_bytes = 4ull << 20;

  FaultProfile& profile(int type) {
    return profiles[static_cast<std::size_t>(type)];
  }
  const FaultProfile& profile(int type) const {
    return profiles[static_cast<std::size_t>(type)];
  }

  bool has_transport_faults() const {
    for (const auto& p : profiles) {
      if (p.any()) return true;
    }
    return false;
  }

  // Uniform transport plan: the same profile on every message type.
  static FaultPlan transport(const FaultProfile& profile, std::uint64_t seed);
  // Pure byzantine plan: perfect transport, scripted misbehavior.
  static FaultPlan adversary(Byzantine behavior, std::uint64_t seed);
};

// Bounded timeout/retry/backoff parameters for one protocol exchange.
struct RetryPolicy {
  int max_attempts = 5;                  // transmissions per message (>= 1)
  std::int64_t backoff_base_ticks = 1;   // retry i waits base << i ticks
  std::int64_t backoff_cap_ticks = 64;   // exponential backoff ceiling
  // Receiver-side size cap, enforced BEFORE decoding: payloads above it are
  // rejected unparsed, bounding the memory a hostile peer can force.
  std::uint64_t max_message_bytes = 1ull << 28;
};

// Simulated ticks the sender waits after failed attempt `retry` (0-based):
// base << retry, clamped to the cap. Deterministic, no wall clock. Saturates
// instead of overflowing: arbitrarily large retry indices, caps up to
// INT64_MAX, and non-positive bases/caps (clamped to 0) are all safe —
// soak-scale retry budgets exercise exactly these corners.
std::int64_t backoff_ticks(const RetryPolicy& policy, int retry);

// Expected transmissions per message under per-attempt failure probability
// p and a budget of `max_attempts`: sum_{i=0}^{a-1} p^i = (1 - p^a)/(1 - p).
// Used by the analytic cost model to price communication under faults.
double expected_transmissions(double failure_probability, int max_attempts);

enum class DeliveryStatus : int {
  kDelivered = 0,  // payload arrived (possibly mangled; check `corrupted`)
  kDropped,        // lost in transit
  kDelayed,        // arrived after the receiver's timeout; discarded
};

struct Delivery {
  DeliveryStatus status = DeliveryStatus::kDelivered;
  bool corrupted = false;   // payload differs from what was sent
  bool duplicated = false;  // transmitted twice on the wire
  Bytes payload;            // delivered bytes (empty unless kDelivered)
};

// Per-message-type fault occurrence counts, filled by FaultInjector.
struct FaultStats {
  std::array<std::uint64_t, kMaxMessageTypes> attempts{};
  std::array<std::uint64_t, kMaxMessageTypes> drops{};
  std::array<std::uint64_t, kMaxMessageTypes> delays{};
  std::array<std::uint64_t, kMaxMessageTypes> truncations{};
  std::array<std::uint64_t, kMaxMessageTypes> corruptions{};
  std::array<std::uint64_t, kMaxMessageTypes> duplicates{};

  std::uint64_t total_faults() const;

  bool operator==(const FaultStats& other) const = default;
};

// Draws fault decisions for successive transmission attempts. One injector
// per independent fault stream: `stream` sub-seeds the plan's root seed so
// e.g. each (epoch, worker) pair in a pool gets statistically independent
// but individually reproducible faults.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan, std::uint64_t stream = 0);

  // Applies the plan to one transmission attempt of `message` on `type`:
  // decides the fault, mangles the payload if corrupt/truncate fired.
  Delivery transmit(int type, const Bytes& message);

  // Byte-free variant for orchestration layers that model traffic
  // analytically (core::MiningPool / AsyncMiningPool): same decision
  // stream, no payload to mangle. A truncated or corrupted attempt reports
  // kDelivered + corrupted=true, which retry loops treat as a failure.
  Delivery attempt(int type);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  enum class Mangle { kNone, kTruncate, kCorrupt };

  Delivery decide(int type);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  Mangle last_mangle_ = Mangle::kNone;
};

// Wraps a byte-counting channel (any type exposing
// `Bytes send_to_worker(MessageTypeT, Bytes)` / `send_to_manager`, e.g.
// core::CountingChannel) with fault injection that never disturbs the
// inner accounting: the ORIGINAL message is pushed through the inner
// channel once per transmission (twice when duplicated), so retransmitted
// bytes are counted under their message type exactly like first sends.
// With a null plan the wrapper forwards directly — zero added state.
template <typename Channel>
class FaultyChannel {
 public:
  FaultyChannel(Channel& inner, const FaultPlan* plan,
                std::uint64_t stream = 0)
      : inner_(inner) {
    if (plan != nullptr) injector_.emplace(*plan, stream);
  }

  template <typename MessageTypeT>
  Delivery send_to_worker(MessageTypeT type, Bytes message) {
    return send(type, std::move(message), /*to_worker=*/true);
  }
  template <typename MessageTypeT>
  Delivery send_to_manager(MessageTypeT type, Bytes message) {
    return send(type, std::move(message), /*to_worker=*/false);
  }

  bool faulty() const { return injector_.has_value(); }
  const FaultStats* stats() const {
    return injector_.has_value() ? &injector_->stats() : nullptr;
  }
  Channel& inner() { return inner_; }
  const Channel& inner() const { return inner_; }

 private:
  template <typename MessageTypeT>
  Delivery send(MessageTypeT type, Bytes message, bool to_worker) {
    if (!injector_.has_value()) {
      Delivery clean;
      clean.payload = to_worker ? inner_.send_to_worker(type, std::move(message))
                                : inner_.send_to_manager(type, std::move(message));
      return clean;
    }
    Delivery delivery = injector_->transmit(static_cast<int>(type), message);
    // Count what the sender transmitted (the original bytes), not what
    // survived transit; a duplicate is two full transmissions.
    const int copies = delivery.duplicated ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      if (to_worker) {
        inner_.send_to_worker(type, message);
      } else {
        inner_.send_to_manager(type, message);
      }
    }
    return delivery;
  }

  Channel& inner_;
  std::optional<FaultInjector> injector_;
};

}  // namespace rpol::fault
