// Version-keyed cache for packed weight forms.
//
// Packing a weight into its blocked/panel form (tensor/layout.h, ops.h) is
// pure data movement, but doing it on every forward would eat most of the
// win. Weights only change when the optimizer steps (or a checkpoint is
// loaded), so each Param carries a monotonically increasing `version`
// (nn/layer.h) that every mutation site bumps, and layers cache the packed
// form keyed on (version, data pointer). The pointer guards against a Param
// being wholesale replaced (tests do this) without a version bump from a
// different tensor that happens to share the version number.
//
// Packing never performs arithmetic, so a cache hit vs rebuild cannot
// change any computed bit — staleness is the only hazard, and versions
// eliminate it.

#pragma once

#include <cstdint>
#include <utility>

#include "obs/mem.h"
#include "obs/obs.h"
#include "tensor/tensor.h"

namespace rpol {

// Memory-accounting hook: each pack type advertises its resident bytes via
// an ADL-found pack_byte_size(const PackT&) overload (layout.h, ops.h
// provide them). The cache charges that many bytes to the "packcache" tag
// while the pack is held.

template <typename PackT>
class PackCache {
 public:
  // Returns the cached pack for `w`, rebuilding via make(w) when the
  // (version, data pointer) key no longer matches.
  template <typename MakeFn>
  const PackT& get(const Tensor& w, std::uint64_t version, MakeFn&& make) {
    if (!valid_ || version != version_ || w.data() != src_) {
      pack_ = make(w);
      version_ = version;
      src_ = w.data();
      valid_ = true;
      mem_.set(pack_byte_size(pack_));
      if (obs::enabled()) obs::count("tensor.pack.rebuild", 1);
    } else if (obs::enabled()) {
      obs::count("tensor.pack.hit", 1);
    }
    return pack_;
  }

  void invalidate() { valid_ = false; }

 private:
  PackT pack_{};
  std::uint64_t version_ = 0;
  const float* src_ = nullptr;
  bool valid_ = false;
  obs::MemScope mem_{obs::MemTag::kPackCache};
};

}  // namespace rpol
