#include "tensor/ops.h"

#include <cmath>
#include <stdexcept>

namespace rpol {

namespace {
void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + " must be rank-2, got " +
                                shape_to_string(t.shape()));
  }
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul lhs");
  check_rank2(b, "matmul rhs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: streams over B and C rows, good locality for row-major.
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0F) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn lhs");
  check_rank2(b, "matmul_tn rhs");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt lhs");
  check_rank2(b, "matmul_nt rhs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
      pc[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  if (input.rank() != 4) throw std::invalid_argument("im2col expects NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col channel mismatch");
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t patch = c * spec.kernel * spec.kernel;
  Tensor cols({patch, n * oh * ow});
  float* pc = cols.data();
  const std::int64_t col_stride = n * oh * ow;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
          const std::int64_t prow = (ch * spec.kernel + kh) * spec.kernel + kw;
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t in_y = y * spec.stride + kh - spec.padding;
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t in_x = x * spec.stride + kw - spec.padding;
              const std::int64_t pcol = (img * oh + y) * ow + x;
              float v = 0.0F;
              if (in_y >= 0 && in_y < h && in_x >= 0 && in_x < w) {
                v = input.at4(img, ch, in_y, in_x);
              }
              pc[prow * col_stride + pcol] = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, const Shape& input_shape) {
  if (input_shape.size() != 4) throw std::invalid_argument("col2im expects NCHW shape");
  const std::int64_t n = input_shape[0], c = input_shape[1];
  const std::int64_t h = input_shape[2], w = input_shape[3];
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t col_stride = n * oh * ow;
  Tensor out(input_shape);
  const float* pc = cols.data();
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
          const std::int64_t prow = (ch * spec.kernel + kh) * spec.kernel + kw;
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t in_y = y * spec.stride + kh - spec.padding;
            if (in_y < 0 || in_y >= h) continue;
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t in_x = x * spec.stride + kw - spec.padding;
              if (in_x < 0 || in_x >= w) continue;
              const std::int64_t pcol = (img * oh + y) * ow + x;
              out.at4(img, ch, in_y, in_x) += pc[prow * col_stride + pcol];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  check_rank2(logits, "softmax_rows input");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    float max_v = logits.at2(r, 0);
    for (std::int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, logits.at2(r, c));
    double sum = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const double e = std::exp(static_cast<double>(logits.at2(r, c)) - max_v);
      out.at2(r, c) = static_cast<float>(e);
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t c = 0; c < cols; ++c) out.at2(r, c) *= inv;
  }
  return out;
}

std::int64_t argmax_row(const Tensor& t, std::int64_t row) {
  const std::int64_t cols = t.dim(1);
  std::int64_t best = 0;
  float best_v = t.at2(row, 0);
  for (std::int64_t c = 1; c < cols; ++c) {
    if (t.at2(row, c) > best_v) {
      best_v = t.at2(row, c);
      best = c;
    }
  }
  return best;
}

}  // namespace rpol
