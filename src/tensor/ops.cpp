#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace rpol {

namespace {

// Sampled kernel timer: records elapsed nanoseconds into a named histogram
// for 1 in 8 invocations while tracing is enabled. The tick counter is
// call-site-owned so concurrent kernels never contend just to decide "not
// this one"; when tracing is off the cost is a single relaxed atomic load.
class KernelTimer {
 public:
  KernelTimer(std::atomic<std::uint64_t>& tick, const char* histogram)
      : sampled_(obs::sample_tick(tick, 8)),
        name_(histogram),
        start_(sampled_ ? obs::now_ns() : 0) {}
  ~KernelTimer() {
    if (sampled_) obs::histogram(name_).record(obs::now_ns() - start_);
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  bool sampled_;
  const char* name_;
  std::uint64_t start_;
};

void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + " must be rank-2, got " +
                                shape_to_string(t.shape()));
  }
}

// ---------------------------------------------------------------------------
// GEMM micro-kernels.
//
// Determinism contract (see ops.h): every C element is accumulated in fp32
// over kk = 0..k-1 in that fixed order, by exactly one thread, one explicit
// madd() per step. The register blocking below only changes which elements
// share loop iterations, never the per-element operation sequence, and
// blocks are aligned to absolute row/column indices, so results are
// bit-identical for any thread count — and bit-identical to the packed and
// direct-convolution kernels (tensor/layout.h) built from the same madd
// chains.

constexpr std::int64_t kRowBlock = 4;   // rows of C per micro-kernel panel
constexpr std::int64_t kColBlock = 16;  // j-unroll width (2 AVX2 vectors)

// Computes C rows [i0, i1) for C = op(A) * B where element (i, kk) of
// op(A) is pa[i * a_rs + kk * a_ks]:
//   matmul    : a_rs = k, a_ks = 1  (A is m x k, row-major)
//   matmul_tn : a_rs = 1, a_ks = m  (A is k x m, C = A^T * B)
// i0 must be kRowBlock-aligned so every row takes the same code path
// regardless of how the caller partitions rows across threads.
void gemm_rows_axpy(const float* pa, std::int64_t a_rs, std::int64_t a_ks,
                    const float* pb, float* pc, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n) {
  std::int64_t i = i0;
  for (; i + kRowBlock <= i1; i += kRowBlock) {
    const float* a0 = pa + (i + 0) * a_rs;
    const float* a1 = pa + (i + 1) * a_rs;
    const float* a2 = pa + (i + 2) * a_rs;
    const float* a3 = pa + (i + 3) * a_rs;
    float* c0 = pc + (i + 0) * n;
    float* c1 = pc + (i + 1) * n;
    float* c2 = pc + (i + 2) * n;
    float* c3 = pc + (i + 3) * n;
    std::int64_t j0 = 0;
    for (; j0 + kColBlock <= n; j0 += kColBlock) {
      float acc0[kColBlock] = {}, acc1[kColBlock] = {};
      float acc2[kColBlock] = {}, acc3[kColBlock] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* brow = pb + kk * n + j0;
        const float av0 = a0[kk * a_ks];
        const float av1 = a1[kk * a_ks];
        const float av2 = a2[kk * a_ks];
        const float av3 = a3[kk * a_ks];
        for (std::int64_t jj = 0; jj < kColBlock; ++jj) {
          const float bv = brow[jj];
          acc0[jj] = madd(av0, bv, acc0[jj]);
          acc1[jj] = madd(av1, bv, acc1[jj]);
          acc2[jj] = madd(av2, bv, acc2[jj]);
          acc3[jj] = madd(av3, bv, acc3[jj]);
        }
      }
      for (std::int64_t jj = 0; jj < kColBlock; ++jj) {
        c0[j0 + jj] = acc0[jj];
        c1[j0 + jj] = acc1[jj];
        c2[j0 + jj] = acc2[jj];
        c3[j0 + jj] = acc3[jj];
      }
    }
    if (j0 < n) {
      const std::int64_t jw = n - j0;
      float acc0[kColBlock] = {}, acc1[kColBlock] = {};
      float acc2[kColBlock] = {}, acc3[kColBlock] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* brow = pb + kk * n + j0;
        const float av0 = a0[kk * a_ks];
        const float av1 = a1[kk * a_ks];
        const float av2 = a2[kk * a_ks];
        const float av3 = a3[kk * a_ks];
        for (std::int64_t jj = 0; jj < jw; ++jj) {
          const float bv = brow[jj];
          acc0[jj] = madd(av0, bv, acc0[jj]);
          acc1[jj] = madd(av1, bv, acc1[jj]);
          acc2[jj] = madd(av2, bv, acc2[jj]);
          acc3[jj] = madd(av3, bv, acc3[jj]);
        }
      }
      for (std::int64_t jj = 0; jj < jw; ++jj) {
        c0[j0 + jj] = acc0[jj];
        c1[j0 + jj] = acc1[jj];
        c2[j0 + jj] = acc2[jj];
        c3[j0 + jj] = acc3[jj];
      }
    }
  }
  for (; i < i1; ++i) {  // row tail (only at the global end of C)
    const float* ar = pa + i * a_rs;
    float* cr = pc + i * n;
    std::int64_t j0 = 0;
    for (; j0 + kColBlock <= n; j0 += kColBlock) {
      float acc[kColBlock] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* brow = pb + kk * n + j0;
        const float av = ar[kk * a_ks];
        for (std::int64_t jj = 0; jj < kColBlock; ++jj)
          acc[jj] = madd(av, brow[jj], acc[jj]);
      }
      for (std::int64_t jj = 0; jj < kColBlock; ++jj) cr[j0 + jj] = acc[jj];
    }
    if (j0 < n) {
      const std::int64_t jw = n - j0;
      float acc[kColBlock] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* brow = pb + kk * n + j0;
        const float av = ar[kk * a_ks];
        for (std::int64_t jj = 0; jj < jw; ++jj)
          acc[jj] = madd(av, brow[jj], acc[jj]);
      }
      for (std::int64_t jj = 0; jj < jw; ++jj) cr[j0 + jj] = acc[jj];
    }
  }
}

// Row-parallel driver: partitions C rows at absolute kRowBlock-aligned
// boundaries so the panel layout is independent of the thread count.
void gemm_rows_parallel(const float* pa, std::int64_t a_rs, std::int64_t a_ks,
                        const float* pb, float* pc, std::int64_t m,
                        std::int64_t k, std::int64_t n) {
  runtime::parallel_for_aligned(
      m, kRowBlock, 1, [&](std::int64_t i0, std::int64_t i1) {
        gemm_rows_axpy(pa, a_rs, a_ks, pb, pc, i0, i1, k, n);
      });
}

// Dot-product panel for C = A * B^T: rows [i0, i1) of C, fp32 accumulation
// over the shared k dimension. i0 must be kRowBlock-aligned (see above).
void gemm_rows_dot_nt(const float* pa, const float* pb, float* pc,
                      std::int64_t i0, std::int64_t i1, std::int64_t k,
                      std::int64_t n) {
  constexpr std::int64_t JB = 4;  // columns of C per register block
  std::int64_t i = i0;
  for (; i + kRowBlock <= i1; i += kRowBlock) {
    const float* a0 = pa + (i + 0) * k;
    const float* a1 = pa + (i + 1) * k;
    const float* a2 = pa + (i + 2) * k;
    const float* a3 = pa + (i + 3) * k;
    std::int64_t j = 0;
    for (; j + JB <= n; j += JB) {
      float acc[kRowBlock][JB] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float b0 = pb[(j + 0) * k + kk];
        const float b1 = pb[(j + 1) * k + kk];
        const float b2 = pb[(j + 2) * k + kk];
        const float b3 = pb[(j + 3) * k + kk];
        const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
        acc[0][0] = madd(av0, b0, acc[0][0]); acc[0][1] = madd(av0, b1, acc[0][1]);
        acc[0][2] = madd(av0, b2, acc[0][2]); acc[0][3] = madd(av0, b3, acc[0][3]);
        acc[1][0] = madd(av1, b0, acc[1][0]); acc[1][1] = madd(av1, b1, acc[1][1]);
        acc[1][2] = madd(av1, b2, acc[1][2]); acc[1][3] = madd(av1, b3, acc[1][3]);
        acc[2][0] = madd(av2, b0, acc[2][0]); acc[2][1] = madd(av2, b1, acc[2][1]);
        acc[2][2] = madd(av2, b2, acc[2][2]); acc[2][3] = madd(av2, b3, acc[2][3]);
        acc[3][0] = madd(av3, b0, acc[3][0]); acc[3][1] = madd(av3, b1, acc[3][1]);
        acc[3][2] = madd(av3, b2, acc[3][2]); acc[3][3] = madd(av3, b3, acc[3][3]);
      }
      for (std::int64_t r = 0; r < kRowBlock; ++r)
        for (std::int64_t jj = 0; jj < JB; ++jj) pc[(i + r) * n + j + jj] = acc[r][jj];
    }
    for (; j < n; ++j) {  // column tail
      const float* br = pb + j * k;
      float s0 = 0.0F, s1 = 0.0F, s2 = 0.0F, s3 = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float bv = br[kk];
        s0 = madd(a0[kk], bv, s0);
        s1 = madd(a1[kk], bv, s1);
        s2 = madd(a2[kk], bv, s2);
        s3 = madd(a3[kk], bv, s3);
      }
      pc[(i + 0) * n + j] = s0;
      pc[(i + 1) * n + j] = s1;
      pc[(i + 2) * n + j] = s2;
      pc[(i + 3) * n + j] = s3;
    }
  }
  for (; i < i1; ++i) {  // row tail (only at the global end of C)
    const float* ar = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* br = pb + j * k;
      float s = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) s = madd(ar[kk], br[kk], s);
      pc[i * n + j] = s;
    }
  }
}

// Packed-B variant of gemm_rows_dot_nt: B^T was pre-packed into 8-row
// panels (see PackedPanels in ops.h), so each k-step reads one contiguous
// 8-float vector instead of 8 strided rows. Per output element the
// accumulation is the identical serial madd chain over kk = 0..k-1, so the
// result is bitwise equal to the unpacked kernel; only the register-block
// width (8 columns here vs 4 there) and the memory access pattern differ —
// neither affects any individual element's operation sequence.
void gemm_rows_dot_nt_packed(const float* pa, const float* pbp, float* pc,
                             std::int64_t i0, std::int64_t i1, std::int64_t k,
                             std::int64_t n) {
  constexpr std::int64_t P = PackedPanels::kPanelRows;
  const std::int64_t panels = (n + P - 1) / P;
  std::int64_t i = i0;
  for (; i + kRowBlock <= i1; i += kRowBlock) {
    const float* a0 = pa + (i + 0) * k;
    const float* a1 = pa + (i + 1) * k;
    const float* a2 = pa + (i + 2) * k;
    const float* a3 = pa + (i + 3) * k;
    for (std::int64_t q = 0; q < panels; ++q) {
      const float* bp = pbp + q * k * P;
      float acc0[P] = {}, acc1[P] = {}, acc2[P] = {}, acc3[P] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* bv = bp + kk * P;
        const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
        for (std::int64_t jj = 0; jj < P; ++jj) {
          acc0[jj] = madd(av0, bv[jj], acc0[jj]);
          acc1[jj] = madd(av1, bv[jj], acc1[jj]);
          acc2[jj] = madd(av2, bv[jj], acc2[jj]);
          acc3[jj] = madd(av3, bv[jj], acc3[jj]);
        }
      }
      const std::int64_t j0 = q * P;
      const std::int64_t jw = std::min(P, n - j0);  // zero-padded lane tail
      for (std::int64_t jj = 0; jj < jw; ++jj) {
        pc[(i + 0) * n + j0 + jj] = acc0[jj];
        pc[(i + 1) * n + j0 + jj] = acc1[jj];
        pc[(i + 2) * n + j0 + jj] = acc2[jj];
        pc[(i + 3) * n + j0 + jj] = acc3[jj];
      }
    }
  }
  for (; i < i1; ++i) {  // row tail (only at the global end of C)
    const float* ar = pa + i * k;
    for (std::int64_t q = 0; q < panels; ++q) {
      const float* bp = pbp + q * k * P;
      float acc[P] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* bv = bp + kk * P;
        const float av = ar[kk];
        for (std::int64_t jj = 0; jj < P; ++jj)
          acc[jj] = madd(av, bv[jj], acc[jj]);
      }
      const std::int64_t j0 = q * P;
      const std::int64_t jw = std::min(P, n - j0);
      for (std::int64_t jj = 0; jj < jw; ++jj) pc[i * n + j0 + jj] = acc[jj];
    }
  }
}

// Valid output-x range for a kernel column kw: the x for which
// in_x = x*stride + kw - padding lies in [0, w). Hoisting this out of the
// inner loops removes all per-element bounds checks from im2col/col2im.
struct XRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
};

XRange valid_x_range(std::int64_t ow, std::int64_t w, std::int64_t kw,
                     std::int64_t stride, std::int64_t padding) {
  XRange r;
  r.lo = kw >= padding ? 0 : (padding - kw + stride - 1) / stride;
  const std::int64_t num = w - 1 - kw + padding;
  r.hi = num < 0 ? 0 : std::min(ow, num / stride + 1);
  r.lo = std::min(r.lo, r.hi);
  return r;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul lhs");
  check_rank2(b, "matmul rhs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul inner-dim mismatch");
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.matmul_ns");
  Tensor c({m, n});
  gemm_rows_parallel(a.data(), /*a_rs=*/k, /*a_ks=*/1, b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn lhs");
  check_rank2(b, "matmul_tn rhs");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn inner-dim mismatch");
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.matmul_tn_ns");
  Tensor c({m, n});
  // Row i of C reads column i of A: element (i, kk) sits at pa[kk * m + i].
  gemm_rows_parallel(a.data(), /*a_rs=*/1, /*a_ks=*/m, b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt lhs");
  check_rank2(b, "matmul_nt rhs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt inner-dim mismatch");
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.matmul_nt_ns");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  runtime::parallel_for_aligned(
      m, kRowBlock, 1, [&](std::int64_t i0, std::int64_t i1) {
        gemm_rows_dot_nt(pa, pb, pc, i0, i1, k, n);
      });
  return c;
}

PackedPanels pack_nt_panels(const Tensor& b) {
  check_rank2(b, "pack_nt_panels input");
  constexpr std::int64_t P = PackedPanels::kPanelRows;
  PackedPanels packed;
  packed.rows = b.dim(0);
  packed.cols = b.dim(1);
  const std::int64_t panels = packed.panels();
  const std::int64_t k = packed.cols;
  packed.data.assign(static_cast<std::size_t>(panels * k * P), 0.0F);
  const float* pb = b.data();
  float* pd = packed.data.data();
  runtime::parallel_for(0, panels, 1, [&](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      float* panel = pd + q * k * P;
      const std::int64_t rows = std::min(P, packed.rows - q * P);
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* src = pb + (q * P + r) * k;
        for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * P + r] = src[kk];
      }
    }
  });
  return packed;
}

Tensor matmul_nt_packed(const Tensor& a, const PackedPanels& pb) {
  check_rank2(a, "matmul_nt_packed lhs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = pb.rows;
  if (pb.cols != k)
    throw std::invalid_argument("matmul_nt_packed inner-dim mismatch");
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.matmul_nt_packed_ns");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pd = pb.data.data();
  float* pc = c.data();
  runtime::parallel_for_aligned(
      m, kRowBlock, 1, [&](std::int64_t i0, std::int64_t i1) {
        gemm_rows_dot_nt_packed(pa, pd, pc, i0, i1, k, n);
      });
  return c;
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  Tensor cols;
  im2col_into(input, spec, cols);
  return cols;
}

void im2col_into(const Tensor& input, const Conv2dSpec& spec, Tensor& cols) {
  if (input.rank() != 4) throw std::invalid_argument("im2col expects NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col channel mismatch");
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t kernel = spec.kernel, stride = spec.stride, pad = spec.padding;
  const std::int64_t patch = c * kernel * kernel;
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.im2col_ns");
  cols.resize_reuse({patch, n * oh * ow});
  const std::int64_t col_stride = n * oh * ow;
  const float* pin = input.data();
  float* pc = cols.data();
  // Each patch row (ch, kh, kw) of the output matrix is written by exactly
  // one thread; it is a pure gather, so any partition yields the same bits.
  runtime::parallel_for(0, patch, 1, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t prow = p0; prow < p1; ++prow) {
      const std::int64_t ch = prow / (kernel * kernel);
      const std::int64_t kh = (prow / kernel) % kernel;
      const std::int64_t kw = prow % kernel;
      const XRange xr = valid_x_range(ow, w, kw, stride, pad);
      float* dst_row = pc + prow * col_stride;
      for (std::int64_t img = 0; img < n; ++img) {
        const float* src_plane = pin + (img * c + ch) * h * w;
        for (std::int64_t y = 0; y < oh; ++y) {
          float* dst = dst_row + (img * oh + y) * ow;
          const std::int64_t in_y = y * stride + kh - pad;
          if (in_y < 0 || in_y >= h) {
            std::fill(dst, dst + ow, 0.0F);
            continue;
          }
          std::fill(dst, dst + xr.lo, 0.0F);
          std::fill(dst + xr.hi, dst + ow, 0.0F);
          const float* src = src_plane + in_y * w + (xr.lo * stride + kw - pad);
          if (stride == 1) {
            std::copy(src, src + (xr.hi - xr.lo), dst + xr.lo);
          } else {
            for (std::int64_t x = xr.lo; x < xr.hi; ++x) {
              dst[x] = src[(x - xr.lo) * stride];
            }
          }
        }
      }
    }
  });
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, const Shape& input_shape) {
  if (input_shape.size() != 4) throw std::invalid_argument("col2im expects NCHW shape");
  const std::int64_t n = input_shape[0], c = input_shape[1];
  const std::int64_t h = input_shape[2], w = input_shape[3];
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t kernel = spec.kernel, stride = spec.stride, pad = spec.padding;
  const std::int64_t col_stride = n * oh * ow;
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.col2im_ns");
  Tensor out(input_shape);
  const float* pc = cols.data();
  float* pout = out.data();
  // Each (img, ch) output plane is accumulated by exactly one thread, in
  // the fixed (kh, kw, y, x) order, so the scatter-add is deterministic
  // for any thread count.
  runtime::parallel_for(0, n * c, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slice = s0; slice < s1; ++slice) {
      const std::int64_t img = slice / c;
      const std::int64_t ch = slice % c;
      float* out_plane = pout + slice * h * w;
      for (std::int64_t kh = 0; kh < kernel; ++kh) {
        for (std::int64_t kw = 0; kw < kernel; ++kw) {
          const std::int64_t prow = (ch * kernel + kh) * kernel + kw;
          const float* col_row = pc + prow * col_stride;
          const XRange xr = valid_x_range(ow, w, kw, stride, pad);
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t in_y = y * stride + kh - pad;
            if (in_y < 0 || in_y >= h) continue;
            const float* src = col_row + (img * oh + y) * ow;
            float* dst = out_plane + in_y * w + (xr.lo * stride + kw - pad);
            if (stride == 1) {
              for (std::int64_t x = xr.lo; x < xr.hi; ++x) dst[x - xr.lo] += src[x];
            } else {
              for (std::int64_t x = xr.lo; x < xr.hi; ++x) {
                dst[(x - xr.lo) * stride] += src[x];
              }
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  check_rank2(logits, "softmax_rows input");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  const float* pin = logits.data();
  float* pout = out.data();
  runtime::parallel_for(0, rows, 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* in_row = pin + r * cols;
      float* out_row = pout + r * cols;
      float max_v = in_row[0];
      for (std::int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in_row[c]);
      double sum = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        const double e = std::exp(static_cast<double>(in_row[c]) - max_v);
        out_row[c] = static_cast<float>(e);
        sum += e;
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (std::int64_t c = 0; c < cols; ++c) out_row[c] *= inv;
    }
  });
  return out;
}

std::int64_t argmax_row(const Tensor& t, std::int64_t row) {
  const std::int64_t cols = t.dim(1);
  std::int64_t best = 0;
  float best_v = t.at2(row, 0);
  for (std::int64_t c = 1; c < cols; ++c) {
    if (t.at2(row, c) > best_v) {
      best_v = t.at2(row, c);
      best = c;
    }
  }
  return best;
}

}  // namespace rpol
