// Dense tensor kernels used by the neural-network layers.
//
// Kernels are register-blocked and parallelized over the runtime's
// deterministic thread pool (src/runtime/thread_pool.h). Convolution is
// implemented via im2col + GEMM, the textbook approach that also makes the
// backward pass (col2im) symmetric and easy to verify by finite differences.
//
// Numeric contract (see DESIGN.md "Compute runtime & determinism contract"):
//   * All three GEMM variants accumulate every output element in fp32, in
//     a fixed k-order, computed entirely by one thread. Uniform fp32
//     accumulation gives the forward and backward GEMMs one numeric policy
//     (the seed implementation mixed fp32 and fp64 between variants, which
//     made gradient precision depend on which transpose variant a layer
//     happened to call).
//   * Parallelism partitions OUTPUT elements only: no atomic float updates,
//     no thread-count-dependent accumulation splits. A 1-thread run and an
//     N-thread run produce bit-identical tensors — the property checkpoint
//     re-execution (src/core/verifier.cpp) depends on.

#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace rpol {

// C = A * B for 2-D tensors: A is (m x k), B is (k x n), C is (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);

// C = A^T * B: A is (k x m), B is (k x n), C is (m x n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

// C = A * B^T: A is (m x k), B is (n x k), C is (m x n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Parameters of a 2-D convolution; square kernels/strides only, which is all
// the ResNet/VGG-style models in src/nn need.
struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;

  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * padding - kernel) / stride + 1;
  }
};

// Unfolds input (N, C, H, W) into columns of shape
// (C*kernel*kernel, N*out_h*out_w). The GEMM weight view is
// (out_channels, C*kernel*kernel).
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

// Folds columns back into an input-shaped gradient; exact adjoint of im2col.
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, const Shape& input_shape);

// Row-wise softmax over a (rows x cols) tensor, numerically stabilized.
Tensor softmax_rows(const Tensor& logits);

// Index of the maximum entry in row `row` of a (rows x cols) tensor.
std::int64_t argmax_row(const Tensor& t, std::int64_t row);

}  // namespace rpol
