// Dense tensor kernels used by the neural-network layers.
//
// Kernels are register-blocked and parallelized over the runtime's
// deterministic thread pool (src/runtime/thread_pool.h). Convolution is
// implemented via im2col + GEMM, the textbook approach that also makes the
// backward pass (col2im) symmetric and easy to verify by finite differences.
//
// Numeric contract (see DESIGN.md "Compute runtime & determinism contract"):
//   * All three GEMM variants accumulate every output element in fp32, in
//     a fixed k-order, computed entirely by one thread. Uniform fp32
//     accumulation gives the forward and backward GEMMs one numeric policy
//     (the seed implementation mixed fp32 and fp64 between variants, which
//     made gradient precision depend on which transpose variant a layer
//     happened to call).
//   * Parallelism partitions OUTPUT elements only: no atomic float updates,
//     no thread-count-dependent accumulation splits. A 1-thread run and an
//     N-thread run produce bit-identical tensors — the property checkpoint
//     re-execution (src/core/verifier.cpp) depends on.

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rpol {

// The one accumulation step every fp32 kernel in this repo is built from:
// a fused multiply-add when the build targets FMA hardware (the pinned
// -mavx2 -mfma ISA), a separate multiply+add otherwise. Making the step
// explicit — instead of writing `c += a * b` and hoping the compiler
// contracts it — is what lets the direct-convolution and packed-GEMM paths
// (tensor/layout.h) guarantee bitwise equality with the im2col+GEMM
// fallback: both sides perform literally the same operation sequence per
// output element, independent of how each loop nest happens to vectorize.
inline float madd(float a, float b, float c) {
#if defined(__FMA__)
  return __builtin_fmaf(a, b, c);
#else
  return a * b + c;
#endif
}

// C = A * B for 2-D tensors: A is (m x k), B is (k x n), C is (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);

// C = A^T * B: A is (k x m), B is (k x n), C is (m x n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

// C = A * B^T: A is (m x k), B is (n x k), C is (m x n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// B^T packed once into cache-friendly 8-row panels for repeated NT GEMMs
// against the same weight matrix (Linear layers re-use the packed form until
// the optimizer bumps the weight version — see nn/packcache.h).
//
// Panel layout: rows of B (n x k) are grouped into panels of kPanelRows
// consecutive rows, each panel stored k-major:
//   data[(panel*k + kk)*kPanelRows + r] = B(panel*kPanelRows + r, kk)
// with missing rows in the final panel zero-filled. A GEMM inner loop then
// reads 8 contiguous floats per k-step — one aligned vector load instead of
// 8 strided row reads.
struct PackedPanels {
  static constexpr std::int64_t kPanelRows = 8;
  std::int64_t rows = 0;  // n: logical rows of B
  std::int64_t cols = 0;  // k: shared inner dimension
  std::vector<float> data;

  std::int64_t panels() const { return (rows + kPanelRows - 1) / kPanelRows; }
};

// Resident bytes of a cached pack, for the PackCache memory accounting
// (tensor/packcache.h finds this by ADL).
inline std::uint64_t pack_byte_size(const PackedPanels& pack) {
  return static_cast<std::uint64_t>(pack.data.capacity()) * sizeof(float);
}

// Packs B (n x k) into PackedPanels. Pure data movement: no arithmetic, so
// packing can never perturb results.
PackedPanels pack_nt_panels(const Tensor& b);

// C = A * B^T using a pre-packed B. Bitwise-identical to matmul_nt(a, b):
// every output element accumulates in the same fixed k-order with the same
// madd() sequence; only the memory access pattern differs.
Tensor matmul_nt_packed(const Tensor& a, const PackedPanels& pb);

// Parameters of a 2-D convolution; square kernels/strides only, which is all
// the ResNet/VGG-style models in src/nn need.
struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;

  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * padding - kernel) / stride + 1;
  }
};

// Unfolds input (N, C, H, W) into columns of shape
// (C*kernel*kernel, N*out_h*out_w). The GEMM weight view is
// (out_channels, C*kernel*kernel).
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

// im2col into a caller-owned buffer (resized as needed, capacity reused
// across calls). Lets Conv2d keep one scratch buffer per layer instead of
// allocating a fresh (C*k*k, N*oh*ow) tensor every forward.
void im2col_into(const Tensor& input, const Conv2dSpec& spec, Tensor& cols);

// Folds columns back into an input-shaped gradient; exact adjoint of im2col.
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, const Shape& input_shape);

// Row-wise softmax over a (rows x cols) tensor, numerically stabilized.
Tensor softmax_rows(const Tensor& logits);

// Index of the maximum entry in row `row` of a (rows x cols) tensor.
std::int64_t argmax_row(const Tensor& t, std::int64_t row);

}  // namespace rpol
