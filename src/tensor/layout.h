// Blocked tensor layouts and direct convolution kernels.
//
// The im2col + GEMM convolution in ops.h is simple and verifiable but pays
// for it twice: it materializes a (C*k*k, N*oh*ow) column matrix on every
// call, and the GEMM then streams that matrix from memory. This header
// provides the cache-friendly alternative the verifier's re-execution loop
// (and the workers it audits) route through by default:
//
//   * nChw8c activations — channels grouped into blocks of 8 with the block
//     innermost: data[(((n*Cb + cb)*H + y)*W + x)*8 + ci]. One AVX2 vector
//     covers 8 channels of one pixel. Channel counts that are not multiples
//     of 8 are zero-padded in the last block.
//   * OIhw8i8o weights — conv weights blocked over both channel axes:
//     data[((((ob*Cb + ib)*k + kh)*k + kw)*8 + ii)*8 + oo], output block
//     innermost so one contiguous vector load yields 8 output-channel taps.
//   * direct convolution kernels (forward, backward-weights, backward-data)
//     that read these layouts and skip im2col entirely.
//
// Determinism / bitwise-parity contract
// -------------------------------------
// Every kernel here is bitwise-identical to its im2col + GEMM counterpart
// in ops.cpp, which is what lets Conv2d switch paths (RPOL_DIRECT_CONV)
// without perturbing checkpoint bytes or Merkle roots. Two facts make that
// possible:
//
//   1. Same per-element madd() chain. Each output element is accumulated
//      serially, by one thread, in exactly the order the fallback uses:
//      forward and backward-weights iterate taps as (ic, kh, kw) — the
//      im2col patch-row order — and backward-data reduces over oc in
//      ascending order (matmul_tn's k-order) before scattering in col2im's
//      fixed (kh, kw, y, x) order. Register blocking only changes which
//      elements share loop iterations, never one element's op sequence.
//
//   2. Skipping a zero tap is exact. The fallback multiplies explicit
//      zeros (im2col's padding entries, the zero-padded channel lanes);
//      the direct kernels skip them. The skipped step would have computed
//      acc' = madd(a, b, acc) with a*b = +/-0. An accumulator that starts
//      at +0 can never become -0 under round-to-nearest: a negative zero
//      sum requires both addends to be -0 (exact cancellation of nonzero
//      terms yields +0), and fma's product term being -0 cannot flip an
//      accumulator that is +0 (+0 + -0 = +0) or nonzero. Hence acc is
//      never -0, adding +/-0 to it is the identity, and the skipped and
//      unskipped chains agree bit for bit.
//
// Shapes with kernel size 1 or 3 (every conv in the ResNet/VGG models
// except ResNet's 7x7 stem) take the direct path; everything else falls
// back to im2col + GEMM. The fallback is also reachable explicitly via
// RPOL_DIRECT_CONV=0 for debugging and A/B benching.

#pragma once

#include <cstdint>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace rpol::layout {

// Channel block width: one AVX2 vector of fp32.
constexpr std::int64_t kBlock = 8;

inline std::int64_t blocks(std::int64_t channels) {
  return (channels + kBlock - 1) / kBlock;
}

// --- Runtime gate -----------------------------------------------------------

// True when Conv2d/Linear should route through the blocked/packed kernels.
// Resolution order (mirrors RPOL_THREADS):
//   1. set_direct_conv_enabled(b)      — explicit API, highest priority
//   2. RPOL_DIRECT_CONV environment var ("0" disables), read once
//   3. enabled by default
bool direct_conv_enabled();
void set_direct_conv_enabled(bool enabled);

// True when `spec` has a direct kernel (1x1 and 3x3 square kernels); other
// shapes always use the im2col + GEMM fallback.
inline bool direct_conv_supports(const Conv2dSpec& spec) {
  return spec.kernel == 1 || spec.kernel == 3;
}

// --- Reorders (pure data movement, never arithmetic) ------------------------

// NCHW -> nChw8c with an optional zeroed spatial padding ring. Output shape
// {n, blocks(C), h + 2*padding, w + 2*padding, 8}; padded channel lanes are
// zeroed. Pre-padding lets the direct conv kernels run every tap branch-free:
// they multiply explicit +0s exactly where the fallback's im2col writes them,
// so the serial per-element chains stay bitwise identical.
Tensor nchw_to_nchw8c(const Tensor& input, std::int64_t padding = 0);

// nChw8c -> NCHW with `channels` real channels (drops padded lanes).
Tensor nchw8c_to_nchw(const Tensor& blocked, std::int64_t channels);

// Conv weight (O, C*k*k) -> OIhw8i8o. Output shape
// {blocks(O), blocks(C), k, k, 8, 8}; padded lanes are zeroed.
Tensor oihw_to_oihw8i8o(const Tensor& weight, const Conv2dSpec& spec);

// OIhw8i8o -> (O, C*k*k) GEMM-view weight (drops padded lanes).
Tensor oihw8i8o_to_oihw(const Tensor& blocked, const Conv2dSpec& spec);

// --- Packed weight forms cached across steps (see tensor/packcache.h) -------

// All packed forms a Conv2d needs, derived from the (O, C*k*k) weight by
// pure data movement. Rebuilt only when the weight version changes.
struct ConvWeightPack {
  Tensor blocked;     // OIhw8i8o, used by the forward kernel
  Tensor transposed;  // (C*k*k, O) row-major W^T, used by backward-data
};

// Resident bytes of a cached pack, for the PackCache memory accounting
// (tensor/packcache.h finds this by ADL).
inline std::uint64_t pack_byte_size(const ConvWeightPack& pack) {
  return static_cast<std::uint64_t>(pack.blocked.numel() +
                                    pack.transposed.numel()) *
         sizeof(float);
}

ConvWeightPack make_conv_weight_pack(const Tensor& weight,
                                     const Conv2dSpec& spec);

// --- Direct convolution kernels ---------------------------------------------
// All three take pre-reordered operands; Conv2d (src/nn/layers.cpp) owns the
// reorder + cache plumbing.

// Forward: blocked input (nChw8c) * blocked weight (OIhw8i8o) -> blocked
// output {n, blocks(O), oh, ow, 8}. `bias` may be empty; when present it is
// added once per output element after the full accumulation, matching the
// fallback's post-GEMM bias add.
Tensor conv2d_direct_forward(const Tensor& input_blocked,
                             const Tensor& weight_blocked, const Tensor& bias,
                             const Conv2dSpec& spec, std::int64_t in_h,
                             std::int64_t in_w);

// Backward-weights: accumulates dW into `weight_grad` (shape (O, C*k*k)),
// bitwise-identical to weight_grad += matmul_nt(dY_gemm, im2col(X)).
// `grad_blocked` is dY in nChw8c over output channels; `input_blocked` is
// the forward input in nChw8c.
void conv2d_direct_backward_weights(const Tensor& grad_blocked,
                                    const Tensor& input_blocked,
                                    const Conv2dSpec& spec, std::int64_t in_h,
                                    std::int64_t in_w, Tensor& weight_grad);

// Backward-data: returns dX in NCHW, bitwise-identical to
// col2im(matmul_tn(W, dY_gemm)). `grad_nchw` is dY in plain NCHW (as handed
// to Conv2d::backward — no reorder needed); `weight_t` is the (C*k*k, O)
// transposed weight from ConvWeightPack.
Tensor conv2d_direct_backward_data(const Tensor& grad_nchw,
                                   const Tensor& weight_t,
                                   const Conv2dSpec& spec,
                                   const Shape& input_shape);

}  // namespace rpol::layout
