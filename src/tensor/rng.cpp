#include "tensor/rng.h"

#include <cmath>

namespace rpol {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed expansion: xoshiro state must not be all-zero; splitmix64 of any
  // seed guarantees that with overwhelming probability, and we force a
  // non-zero word as a belt-and-braces measure.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of `bound` that fits in 64 bits.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24F;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.141592653589793238462643 * u2;
  cached_normal_ = static_cast<float>(radius * std::sin(angle));
  has_cached_normal_ = true;
  return static_cast<float>(radius * std::cos(angle));
}

void Rng::fill_normal(std::vector<float>& out, float mean, float stddev) {
  for (auto& v : out) v = mean + stddev * next_normal();
}

void Rng::fill_uniform(std::vector<float>& out, float lo, float hi) {
  for (auto& v : out) v = lo + (hi - lo) * next_float();
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(next_below(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream_id) {
  // Two rounds of splitmix over a mix of seed and stream id. The golden-ratio
  // multiplier decorrelates adjacent stream ids.
  std::uint64_t state = seed ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x85ebca6bULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

}  // namespace rpol
