// Minimal dense fp32 tensor used throughout the RPoL implementation.
//
// Design notes:
//   * Row-major contiguous storage, shapes up to rank 4 (N, C, H, W) cover
//     every layer in src/nn; rank-1/2 are used for weight vectors and
//     matmul operands.
//   * Value semantics: Tensor is a cheap-to-move std::vector wrapper. The
//     protocol code copies model weights deliberately (checkpoints, proofs),
//     so copies are explicit and meaningful rather than forbidden.
//   * float (fp32) only. The paper's verification operates on fp32 model
//     weights; double appears only in LSH/statistics math (src/lsh).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rpol {

// Shape is a small vector of dimension sizes. An empty shape denotes an
// (invalid) empty tensor; scalars are represented as shape {1}.
using Shape = std::vector<std::int64_t>;

std::int64_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Wraps existing data; data.size() must equal the shape's element count.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor full(const Shape& shape, float value);
  // Standard-normal entries scaled by stddev (He/Xavier init is built on
  // top of this in src/nn).
  static Tensor randn(const Shape& shape, class Rng& rng, float stddev = 1.0F);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  std::int64_t dim(std::size_t axis) const { return shape_.at(axis); }
  std::size_t rank() const { return shape_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float at(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  // 2-D indexed access (rows x cols); bounds are the caller's contract.
  float& at2(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at2(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  // 4-D indexed access (n, c, h, w) for NCHW activations.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  // Returns a tensor with the same data and a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  // In-place fills.
  void fill(float value);
  void zero() { fill(0.0F); }

  // Reshapes this tensor in place, reusing the current heap allocation when
  // its capacity suffices. Retained elements keep their old values — callers
  // are expected to overwrite every element. Used by layer scratch buffers
  // (e.g. Conv2d's im2col workspace) recycled across batches.
  void resize_reuse(Shape new_shape) {
    data_.resize(static_cast<std::size_t>(shape_numel(new_shape)));
    shape_ = std::move(new_shape);
  }

  // Logically empties the tensor (numel() == 0) while keeping the heap
  // allocation for a later resize_reuse(). Lets layers release per-batch
  // state after backward without paying a realloc on the next forward.
  void clear_keep_capacity() {
    shape_.clear();
    data_.clear();
  }

  // Elementwise in-place arithmetic; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  // Accumulate scalar * other into this tensor (axpy).
  void add_scaled(const Tensor& other, float scalar);

  // Euclidean (L2) norm of all entries, accumulated in double.
  double l2_norm() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

// Euclidean distance between two same-shaped tensors (double accumulation).
// This is the distance measure the paper uses for reproduction errors.
double l2_distance(const Tensor& a, const Tensor& b);
double l2_distance(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace rpol
