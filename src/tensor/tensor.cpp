#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/rng.h"

namespace rpol {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  if (static_cast<std::int64_t>(data.size()) != shape_numel(shape_)) {
    throw std::invalid_argument("tensor data size does not match shape " +
                                shape_to_string(shape_));
  }
  data_ = std::move(data);
}

Tensor Tensor::full(const Shape& shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, float stddev) {
  Tensor t(shape);
  rng.fill_normal(t.data_, 0.0F, stddev);
  return t;
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  const std::int64_t idx = ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[static_cast<std::size_t>(idx)];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const {
  const std::int64_t idx = ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[static_cast<std::size_t>(idx)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape element-count mismatch: " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("operator+= shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("operator-= shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scalar) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("add_scaled shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scalar * other.data_[i];
  }
}

double Tensor::l2_norm() const {
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double l2_distance(const Tensor& a, const Tensor& b) {
  return l2_distance(a.vec(), b.vec());
}

double l2_distance(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("l2_distance size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace rpol
