// Deterministic pseudo-random number generation for the whole system.
//
// Everything in RPoL that touches randomness — model initialization, dataset
// synthesis, batch selection, LSH hash families, simulated hardware noise —
// must be reproducible bit-for-bit across runs and platforms, because the
// verification protocol re-executes training steps and compares the results.
// We therefore avoid std::mt19937 / std::normal_distribution (whose outputs
// are implementation-defined for floating point) and implement a fixed
// algorithm stack:
//
//   * splitmix64 for seed expansion,
//   * xoshiro256** as the core generator,
//   * an explicit Box-Muller transform for normal variates.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rpol {

// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

// Deterministic PRNG (xoshiro256**). Copyable value type; copying forks the
// stream, which is occasionally useful in tests but should be avoided in
// protocol code (derive sub-seeds instead, see derive_seed()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias (bias matters: batch selection must be uniform).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform float in [0, 1) with 24 bits of randomness.
  float next_float();

  // Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  // Standard normal variate via Box-Muller. Caches the second variate of
  // each pair so consecutive calls consume uniforms in a fixed pattern.
  float next_normal();

  // Convenience fills.
  void fill_normal(std::vector<float>& out, float mean, float stddev);
  void fill_uniform(std::vector<float>& out, float lo, float hi);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0F;
};

// Derives a statistically independent sub-seed from (seed, stream_id).
// Used to give each worker / device / epoch its own stream without
// correlated outputs.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream_id);

}  // namespace rpol
