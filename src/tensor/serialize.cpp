#include "tensor/serialize.h"

#include <cstring>
#include <stdexcept>

namespace rpol {

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_i64(Bytes& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

void append_f32(Bytes& out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  append_u32(out, bits);
}

namespace {
void check_avail(const Bytes& in, std::size_t offset, std::size_t need) {
  if (offset + need > in.size()) {
    throw std::out_of_range("serialized buffer truncated");
  }
}
}  // namespace

std::uint64_t read_u64(const Bytes& in, std::size_t& offset) {
  check_avail(in, offset, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  offset += 8;
  return v;
}

std::int64_t read_i64(const Bytes& in, std::size_t& offset) {
  return static_cast<std::int64_t>(read_u64(in, offset));
}

float read_f32(const Bytes& in, std::size_t& offset) {
  check_avail(in, offset, 4);
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) bits |= static_cast<std::uint32_t>(in[offset + i]) << (8 * i);
  offset += 4;
  float v = 0.0F;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Bytes serialize_tensor(const Tensor& t) {
  Bytes out;
  out.reserve(8 + 8 * t.rank() + 4 * static_cast<std::size_t>(t.numel()));
  append_i64(out, static_cast<std::int64_t>(t.rank()));
  for (const auto d : t.shape()) append_i64(out, d);
  for (const float v : t.vec()) append_f32(out, v);
  return out;
}

Tensor deserialize_tensor(const Bytes& in, std::size_t& offset) {
  const std::int64_t rank = read_i64(in, offset);
  if (rank < 0 || rank > 8) throw std::invalid_argument("bad tensor rank");
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) d = read_i64(in, offset);
  const std::int64_t n = shape_numel(shape);
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = read_f32(in, offset);
  return Tensor(std::move(shape), std::move(data));
}

Bytes serialize_floats(const std::vector<float>& v) {
  Bytes out;
  out.reserve(8 + 4 * v.size());
  append_u64(out, v.size());
  for (const float f : v) append_f32(out, f);
  return out;
}

std::vector<float> deserialize_floats(const Bytes& in, std::size_t& offset) {
  const std::uint64_t n = read_u64(in, offset);
  check_avail(in, offset, 0);
  if (n > (in.size() - offset) / 4) throw std::invalid_argument("bad float count");
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& f : v) f = read_f32(in, offset);
  return v;
}

}  // namespace rpol
