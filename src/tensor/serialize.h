// Byte-level serialization for tensors and weight vectors.
//
// The protocol hashes and transmits model weights (checkpoints, proofs,
// commitments), so serialization must be canonical: little-endian IEEE-754
// fp32, dimensions as little-endian int64, no padding. Two parties hashing
// the same weights must produce identical bytes.

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rpol {

using Bytes = std::vector<std::uint8_t>;

// Appends primitives in canonical little-endian form.
void append_u32(Bytes& out, std::uint32_t v);
void append_u64(Bytes& out, std::uint64_t v);
void append_i64(Bytes& out, std::int64_t v);
void append_f32(Bytes& out, float v);

std::uint64_t read_u64(const Bytes& in, std::size_t& offset);
std::int64_t read_i64(const Bytes& in, std::size_t& offset);
float read_f32(const Bytes& in, std::size_t& offset);

// Tensor wire format: rank (i64), dims (i64 each), data (f32 each).
Bytes serialize_tensor(const Tensor& t);
Tensor deserialize_tensor(const Bytes& in, std::size_t& offset);

// Flat weight vector wire format: count (u64), data (f32 each).
Bytes serialize_floats(const std::vector<float>& v);
std::vector<float> deserialize_floats(const Bytes& in, std::size_t& offset);

}  // namespace rpol
