#include "tensor/layout.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>
#include <vector>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
// The pinned-ISA (RPOL_SIMD=ON) kernels below use explicit __m256 FMAs.
// vfmadd231ps performs an independent single-rounding fma per lane —
// exactly __builtin_fmaf (ops.h madd) applied to 8 elements — so the
// vector kernels are bitwise equal to the scalar reference loops they
// shadow; the scalar loops remain the RPOL_SIMD=OFF build's kernels.
#define RPOL_LAYOUT_AVX2 1
#endif

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace rpol::layout {

namespace {

// Same sampled kernel timer as tensor/ops.cpp (1-in-8 while tracing).
class KernelTimer {
 public:
  KernelTimer(std::atomic<std::uint64_t>& tick, const char* histogram)
      : sampled_(obs::sample_tick(tick, 8)),
        name_(histogram),
        start_(sampled_ ? obs::now_ns() : 0) {}
  ~KernelTimer() {
    if (sampled_) obs::histogram(name_).record(obs::now_ns() - start_);
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  bool sampled_;
  const char* name_;
  std::uint64_t start_;
};

// Valid output-x range for kernel column kw (same hoisting as ops.cpp):
// the x for which in_x = x*stride + kw - padding lies in [0, w).
struct XRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
};

XRange valid_x_range(std::int64_t ow, std::int64_t w, std::int64_t kw,
                     std::int64_t stride, std::int64_t padding) {
  XRange r;
  r.lo = kw >= padding ? 0 : (padding - kw + stride - 1) / stride;
  const std::int64_t num = w - 1 - kw + padding;
  r.hi = num < 0 ? 0 : std::min(ow, num / stride + 1);
  r.lo = std::min(r.lo, r.hi);
  return r;
}

// -1 = unset (fall through to the environment), 0/1 = forced.
std::atomic<int> g_direct_override{-1};

bool direct_conv_env_default() {
  static const bool enabled = [] {
    const char* env = std::getenv("RPOL_DIRECT_CONV");
    return env == nullptr || !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

}  // namespace

bool direct_conv_enabled() {
  const int forced = g_direct_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced == 1;
  return direct_conv_env_default();
}

void set_direct_conv_enabled(bool enabled) {
  g_direct_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Reorders. Pure gathers/scatters — each destination element is written by
// exactly one thread and no arithmetic is performed, so they cannot perturb
// results regardless of partitioning.

Tensor nchw_to_nchw8c(const Tensor& input, std::int64_t padding) {
  if (input.rank() != 4) {
    throw std::invalid_argument("nchw_to_nchw8c expects NCHW input");
  }
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  const std::int64_t hp = h + 2 * padding, wp = w + 2 * padding;
  const std::int64_t cb = blocks(c);
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.reorder_nchw8c_ns");
  // Zero-init covers the padded lanes AND the spatial padding ring: the
  // conv kernels then multiply explicit +0s exactly where the fallback's
  // im2col writes them, so no tap ever needs a bounds check.
  Tensor out({n, cb, hp, wp, kBlock});
  const float* pin = input.data();
  float* pout = out.data();
  runtime::parallel_for(0, n * cb, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slice = s0; slice < s1; ++slice) {
      const std::int64_t img = slice / cb;
      const std::int64_t b = slice % cb;
      const std::int64_t lanes = std::min(kBlock, c - b * kBlock);
      float* dst = pout + slice * hp * wp * kBlock;
      for (std::int64_t ci = 0; ci < lanes; ++ci) {
        const float* src = pin + (img * c + b * kBlock + ci) * h * w;
        for (std::int64_t y = 0; y < h; ++y) {
          float* drow = dst + ((y + padding) * wp + padding) * kBlock;
          for (std::int64_t x = 0; x < w; ++x) {
            drow[x * kBlock + ci] = src[y * w + x];
          }
        }
      }
    }
  });
  return out;
}

Tensor nchw8c_to_nchw(const Tensor& blocked, std::int64_t channels) {
  if (blocked.rank() != 5 || blocked.dim(4) != kBlock) {
    throw std::invalid_argument("nchw8c_to_nchw expects nChw8c input");
  }
  const std::int64_t n = blocked.dim(0), cb = blocked.dim(1);
  const std::int64_t h = blocked.dim(2), w = blocked.dim(3);
  if (cb != blocks(channels)) {
    throw std::invalid_argument("nchw8c_to_nchw channel-block mismatch");
  }
  const std::int64_t hw = h * w;
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.reorder_nchw_ns");
  Tensor out({n, channels, h, w});
  const float* pin = blocked.data();
  float* pout = out.data();
  runtime::parallel_for(
      0, n * channels, 1, [&](std::int64_t s0, std::int64_t s1) {
        for (std::int64_t slice = s0; slice < s1; ++slice) {
          const std::int64_t img = slice / channels;
          const std::int64_t ch = slice % channels;
          const float* src =
              pin + ((img * cb + ch / kBlock) * hw) * kBlock + ch % kBlock;
          float* dst = pout + slice * hw;
          for (std::int64_t i = 0; i < hw; ++i) dst[i] = src[i * kBlock];
        }
      });
  return out;
}

Tensor oihw_to_oihw8i8o(const Tensor& weight, const Conv2dSpec& spec) {
  const std::int64_t o = spec.out_channels, c = spec.in_channels;
  const std::int64_t k = spec.kernel;
  const std::int64_t ckk = c * k * k;
  if (weight.rank() != 2 || weight.dim(0) != o || weight.dim(1) != ckk) {
    throw std::invalid_argument("oihw_to_oihw8i8o weight shape mismatch");
  }
  const std::int64_t ob = blocks(o), cb = blocks(c);
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.reorder_oihw8i8o_ns");
  Tensor out({ob, cb, k, k, kBlock, kBlock});  // zero-init pads both axes
  const float* pw = weight.data();
  float* po = out.data();
  runtime::parallel_for(0, ob * cb, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slice = s0; slice < s1; ++slice) {
      const std::int64_t obi = slice / cb;
      const std::int64_t ibi = slice % cb;
      const std::int64_t o_lanes = std::min(kBlock, o - obi * kBlock);
      const std::int64_t i_lanes = std::min(kBlock, c - ibi * kBlock);
      float* blk = po + slice * k * k * kBlock * kBlock;
      for (std::int64_t kh = 0; kh < k; ++kh) {
        for (std::int64_t kw = 0; kw < k; ++kw) {
          for (std::int64_t ii = 0; ii < i_lanes; ++ii) {
            const std::int64_t kk =
                ((ibi * kBlock + ii) * k + kh) * k + kw;
            float* dst = blk + ((kh * k + kw) * kBlock + ii) * kBlock;
            for (std::int64_t oo = 0; oo < o_lanes; ++oo) {
              dst[oo] = pw[(obi * kBlock + oo) * ckk + kk];
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor oihw8i8o_to_oihw(const Tensor& blocked, const Conv2dSpec& spec) {
  const std::int64_t o = spec.out_channels, c = spec.in_channels;
  const std::int64_t k = spec.kernel;
  const std::int64_t ob = blocks(o), cb = blocks(c);
  if (blocked.rank() != 6 || blocked.dim(0) != ob || blocked.dim(1) != cb) {
    throw std::invalid_argument("oihw8i8o_to_oihw shape mismatch");
  }
  const std::int64_t ckk = c * k * k;
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.reorder_oihw_ns");
  Tensor out({o, ckk});
  const float* pb = blocked.data();
  float* pw = out.data();
  runtime::parallel_for(0, o, 1, [&](std::int64_t o0, std::int64_t o1) {
    for (std::int64_t oc = o0; oc < o1; ++oc) {
      const std::int64_t obi = oc / kBlock, oo = oc % kBlock;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const std::int64_t ibi = ic / kBlock, ii = ic % kBlock;
        const float* blk =
            pb + (obi * cb + ibi) * k * k * kBlock * kBlock;
        for (std::int64_t kh = 0; kh < k; ++kh) {
          for (std::int64_t kw = 0; kw < k; ++kw) {
            pw[oc * ckk + (ic * k + kh) * k + kw] =
                blk[((kh * k + kw) * kBlock + ii) * kBlock + oo];
          }
        }
      }
    }
  });
  return out;
}

ConvWeightPack make_conv_weight_pack(const Tensor& weight,
                                     const Conv2dSpec& spec) {
  ConvWeightPack pack;
  pack.blocked = oihw_to_oihw8i8o(weight, spec);
  // Times only the W^T transpose below; the blocked reorder above has its
  // own histogram (kernel.reorder_oihw8i8o_ns).
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.weight_pack_ns");
  const std::int64_t o = weight.dim(0), ckk = weight.dim(1);
  pack.transposed = Tensor({ckk, o});
  const float* pw = weight.data();
  float* pt = pack.transposed.data();
  runtime::parallel_for(0, ckk, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t kk = r0; kk < r1; ++kk) {
      for (std::int64_t oc = 0; oc < o; ++oc) pt[kk * o + oc] = pw[oc * ckk + kk];
    }
  });
  return pack;
}

// ---------------------------------------------------------------------------
// Direct forward.
//
// Work item = one (img, ocb-pair) output plane; each plane is owned by one
// thread and every output element accumulates serially over taps in the
// im2col patch-row order (ic, kh, kw), so the result is bitwise equal to
// matmul(W, im2col(X)) for any thread count (see layout.h header).

Tensor conv2d_direct_forward(const Tensor& input_blocked,
                             const Tensor& weight_blocked, const Tensor& bias,
                             const Conv2dSpec& spec, std::int64_t in_h,
                             std::int64_t in_w) {
  const std::int64_t n = input_blocked.dim(0);
  const std::int64_t cb = input_blocked.dim(1);
  const std::int64_t c = spec.in_channels, o = spec.out_channels;
  const std::int64_t ob = blocks(o);
  const std::int64_t kernel = spec.kernel, stride = spec.stride,
                     pad = spec.padding;
  const std::int64_t hp = in_h + 2 * pad, wp = in_w + 2 * pad;
  if (cb != blocks(c) || input_blocked.dim(2) != hp ||
      input_blocked.dim(3) != wp) {
    throw std::invalid_argument(
        "conv2d_direct_forward expects pre-padded blocked input");
  }
  const std::int64_t oh = spec.out_size(in_h), ow = spec.out_size(in_w);
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.conv_direct_fwd_ns");
  Tensor out({n, ob, oh, ow, kBlock});
  const float* px = input_blocked.data();
  const float* pw = weight_blocked.data();
  const float* pbias = bias.empty() ? nullptr : bias.data();
  float* py = out.data();
  constexpr std::int64_t XB = 4;  // max x positions per register tile

  // A work unit is an (img, ocb-pair) output plane. Within a unit the input-
  // channel block loop is OUTERMOST so one (pair, icb) weight sub-panel
  // (2*k*k*64 floats) stays L1-resident across the whole plane — with the x
  // loop outermost, deep-channel shapes re-stream the full weight panel per
  // x-block and go memory-bound. Partial sums live in a per-unit plane
  // buffer; spilling an fp32 accumulator to memory and reloading it is
  // exact, and every output element still sees its taps in the im2col
  // (ic, kh, kw) order, so the result is unchanged bitwise.
  //
  // The pre-padded input makes every tap unconditionally loadable: padding
  // taps multiply the explicit +0s the reorder wrote, the very values the
  // fallback's im2col materializes, so the chains match term for term and
  // no x position needs a slower edge path.
  //
  // The 2xCNT (ocb, x) register tile holds up to eight independent fma
  // chains — enough to hide FMA latency on one core — and halves the
  // weight-vector loads per fma. Chain independence is free bitwise:
  // different output elements never share an accumulator.
  const std::int64_t obp = (ob + 1) / 2;  // ocb pairs; last may be a single

  runtime::parallel_for(0, n * obp, 1, [&](std::int64_t u0, std::int64_t u1) {
#ifdef RPOL_LAYOUT_AVX2
    std::vector<float> accbuf(2 * oh * ow * kBlock);
#endif
    for (std::int64_t unit = u0; unit < u1; ++unit) {
      const std::int64_t pair = unit % obp;
      const std::int64_t img = unit / obp;
      const std::int64_t obi0 = 2 * pair;
      const bool has2 = obi0 + 1 < ob;
      const std::int64_t wblk_sz = cb * kernel * kernel * kBlock * kBlock;

      // Stores acc (+ bias once, matching the fallback's post-GEMM add).
      const auto store = [&](std::int64_t obi, std::int64_t y, std::int64_t x,
                             const float* acc) {
        float* dst = py + (((img * ob + obi) * oh + y) * ow + x) * kBlock;
        const std::int64_t o_lanes = std::min(kBlock, o - obi * kBlock);
        if (pbias != nullptr) {
          for (std::int64_t jj = 0; jj < o_lanes; ++jj) {
            dst[jj] = acc[jj] + pbias[obi * kBlock + jj];
          }
          for (std::int64_t jj = o_lanes; jj < kBlock; ++jj) dst[jj] = acc[jj];
        } else {
          for (std::int64_t jj = 0; jj < kBlock; ++jj) dst[jj] = acc[jj];
        }
      };

#ifdef RPOL_LAYOUT_AVX2
      const float* wbase0 = pw + obi0 * wblk_sz;
      const float* wbase1 = wbase0 + wblk_sz;
      std::fill(accbuf.begin(), accbuf.end(), 0.0F);
      float* abuf0 = accbuf.data();
      float* abuf1 = abuf0 + oh * ow * kBlock;

      for (std::int64_t icb = 0; icb < cb; ++icb) {
        const std::int64_t i_lanes = std::min(kBlock, c - icb * kBlock);
        const float* xplane = px + ((img * cb + icb) * hp) * wp * kBlock;
        const float* wblk0 = wbase0 + icb * kernel * kernel * kBlock * kBlock;
        const float* wblk1 = wbase1 + icb * kernel * kernel * kBlock * kBlock;
        for (std::int64_t y = 0; y < oh; ++y) {
          float* arow0 = abuf0 + y * ow * kBlock;
          float* arow1 = abuf1 + y * ow * kBlock;
          const float* xrow0 = xplane + y * stride * wp * kBlock;

          // Prefetch the next icb's weight sub-panels, a few lines per y
          // row: the fma loop otherwise stalls on L2 at every panel switch.
          // (Prefetching never touches results — purely a timing hint.)
          if (icb + 1 < cb) {
            const std::int64_t pbytes =
                kernel * kernel * kBlock * kBlock *
                static_cast<std::int64_t>(sizeof(float));
            const std::int64_t chunk = (pbytes + oh - 1) / oh;
            const char* p0 = reinterpret_cast<const char*>(wblk0) + pbytes;
            const char* p1 = reinterpret_cast<const char*>(wblk1) + pbytes;
            const std::int64_t b1 = std::min((y + 1) * chunk, pbytes);
            for (std::int64_t b = y * chunk; b < b1; b += 64) {
              _mm_prefetch(p0 + b, _MM_HINT_T0);
              _mm_prefetch(p1 + b, _MM_HINT_T0);
            }
          }

          // One register tile: CNT x positions for two ocb blocks. cnt_c is
          // an integral_constant so each width compiles to a fixed-size
          // register tile (a variable bound would spill the accumulators).
          // sb_c is the x step in floats (stride * kBlock) as a compile-time
          // constant for stride 1, or 0 meaning "read the runtime stride" —
          // a runtime step costs a shift+add per broadcast, which for the
          // stride-1 shapes is a third of the loop's issue slots.
          const auto tile2 = [&](std::int64_t x, auto cnt_c, auto sb_c) {
            constexpr std::int64_t CNT = decltype(cnt_c)::value;
            constexpr std::int64_t SB = decltype(sb_c)::value;
            const std::int64_t sb = SB != 0 ? SB : stride * kBlock;
            __m256 a[CNT], b[CNT];
            #pragma GCC unroll 8
            for (std::int64_t l = 0; l < CNT; ++l) {
              a[l] = _mm256_loadu_ps(arow0 + (x + l) * kBlock);
              b[l] = _mm256_loadu_ps(arow1 + (x + l) * kBlock);
            }
            if (kernel == 3) {
              // 3x3 specialization: the nine taps are spelled out with
              // literal (kh, kw) so the compiler folds every offset and the
              // loop body carries no per-tap address arithmetic — the
              // generic version spends as many issue slots on bookkeeping
              // as on fmas. Tap order per element is unchanged: ici
              // ascending, then (kh, kw) ascending.
              const float* xb0 = xrow0 + x * stride * kBlock;
              for (std::int64_t ici = 0; ici < i_lanes; ++ici) {
                const float* wt0 = wblk0 + ici * kBlock;
                const float* wt1 = wblk1 + ici * kBlock;
                const float* xt = xb0 + ici;
                const auto tap = [&](std::int64_t kh, std::int64_t kw) {
                  const std::int64_t toff = (kh * 3 + kw) * kBlock * kBlock;
                  const __m256 w0 = _mm256_loadu_ps(wt0 + toff);
                  const __m256 w1 = _mm256_loadu_ps(wt1 + toff);
                  const float* xb = xt + (kh * wp + kw) * kBlock;
                  #pragma GCC unroll 8
                  for (std::int64_t l = 0; l < CNT; ++l) {
                    const __m256 xv =
                        _mm256_broadcast_ss(xb + l * sb);
                    a[l] = _mm256_fmadd_ps(xv, w0, a[l]);
                    b[l] = _mm256_fmadd_ps(xv, w1, b[l]);
                  }
                };
                tap(0, 0);
                tap(0, 1);
                tap(0, 2);
                tap(1, 0);
                tap(1, 1);
                tap(1, 2);
                tap(2, 0);
                tap(2, 1);
                tap(2, 2);
              }
            } else {
              for (std::int64_t ici = 0; ici < i_lanes; ++ici) {
                for (std::int64_t kh = 0; kh < kernel; ++kh) {
                  const float* xrow = xrow0 + kh * wp * kBlock + ici;
                  for (std::int64_t kw = 0; kw < kernel; ++kw) {
                    const std::int64_t toff =
                        ((kh * kernel + kw) * kBlock + ici) * kBlock;
                    const __m256 w0 = _mm256_loadu_ps(wblk0 + toff);
                    const __m256 w1 = _mm256_loadu_ps(wblk1 + toff);
                    const float* xb = xrow + (x * stride + kw) * kBlock;
                    #pragma GCC unroll 8
                    for (std::int64_t l = 0; l < CNT; ++l) {
                      const __m256 xv =
                          _mm256_broadcast_ss(xb + l * sb);
                      a[l] = _mm256_fmadd_ps(xv, w0, a[l]);
                      b[l] = _mm256_fmadd_ps(xv, w1, b[l]);
                    }
                  }
                }
              }
            }
            #pragma GCC unroll 8
            for (std::int64_t l = 0; l < CNT; ++l) {
              _mm256_storeu_ps(arow0 + (x + l) * kBlock, a[l]);
              _mm256_storeu_ps(arow1 + (x + l) * kBlock, b[l]);
            }
          };
          const auto tile1 = [&](std::int64_t x, auto cnt_c, auto sb_c) {
            constexpr std::int64_t CNT = decltype(cnt_c)::value;
            constexpr std::int64_t SB = decltype(sb_c)::value;
            const std::int64_t sb = SB != 0 ? SB : stride * kBlock;
            __m256 a[CNT];
            #pragma GCC unroll 8
            for (std::int64_t l = 0; l < CNT; ++l) {
              a[l] = _mm256_loadu_ps(arow0 + (x + l) * kBlock);
            }
            if (kernel == 3) {
              const float* xb0 = xrow0 + x * stride * kBlock;
              for (std::int64_t ici = 0; ici < i_lanes; ++ici) {
                const float* wt0 = wblk0 + ici * kBlock;
                const float* xt = xb0 + ici;
                const auto tap = [&](std::int64_t kh, std::int64_t kw) {
                  const __m256 w0 =
                      _mm256_loadu_ps(wt0 + (kh * 3 + kw) * kBlock * kBlock);
                  const float* xb = xt + (kh * wp + kw) * kBlock;
                  #pragma GCC unroll 8
                  for (std::int64_t l = 0; l < CNT; ++l) {
                    a[l] = _mm256_fmadd_ps(
                        _mm256_broadcast_ss(xb + l * sb), w0,
                        a[l]);
                  }
                };
                tap(0, 0);
                tap(0, 1);
                tap(0, 2);
                tap(1, 0);
                tap(1, 1);
                tap(1, 2);
                tap(2, 0);
                tap(2, 1);
                tap(2, 2);
              }
            } else {
              for (std::int64_t ici = 0; ici < i_lanes; ++ici) {
                for (std::int64_t kh = 0; kh < kernel; ++kh) {
                  const float* xrow = xrow0 + kh * wp * kBlock + ici;
                  for (std::int64_t kw = 0; kw < kernel; ++kw) {
                    const __m256 w0 = _mm256_loadu_ps(
                        wblk0 + ((kh * kernel + kw) * kBlock + ici) * kBlock);
                    const float* xb = xrow + (x * stride + kw) * kBlock;
                    #pragma GCC unroll 8
                    for (std::int64_t l = 0; l < CNT; ++l) {
                      a[l] = _mm256_fmadd_ps(
                          _mm256_broadcast_ss(xb + l * sb), w0,
                          a[l]);
                    }
                  }
                }
              }
            }
            #pragma GCC unroll 8
            for (std::int64_t l = 0; l < CNT; ++l) {
              _mm256_storeu_ps(arow0 + (x + l) * kBlock, a[l]);
            }
          };

          // Adaptive chunk plan: a 1-wide tile carries too few fma chains to
          // hide latency, so rows with ow % 4 == 1 trade the trailing 4+1
          // for 3+2 (6 and 4 chains instead of 8 and 2). Chunk boundaries
          // only regroup which elements share a register tile — each
          // element's own chain is untouched, so the split is bitwise-free.
          const auto row_plan = [&](auto sb_c) {
            constexpr std::integral_constant<std::int64_t, XB> c4{};
            constexpr std::integral_constant<std::int64_t, 3> c3{};
            constexpr std::integral_constant<std::int64_t, 2> c2{};
            constexpr std::integral_constant<std::int64_t, 1> c1{};
            std::int64_t n4 = ow / XB, rem = ow % XB;
            if (rem == 1 && n4 > 0) {
              --n4;
              rem = 5;
            }
            std::int64_t x = 0;
            if (has2) {
              for (std::int64_t i = 0; i < n4; ++i, x += XB) {
                tile2(x, c4, sb_c);
              }
              switch (rem) {
                case 5:
                  tile2(x, c3, sb_c);
                  tile2(x + 3, c2, sb_c);
                  break;
                case 3:
                  tile2(x, c3, sb_c);
                  break;
                case 2:
                  tile2(x, c2, sb_c);
                  break;
                case 1:
                  tile2(x, c1, sb_c);
                  break;
                default:
                  break;
              }
            } else {
              for (std::int64_t i = 0; i < n4; ++i, x += XB) {
                tile1(x, c4, sb_c);
              }
              switch (rem) {
                case 5:
                  tile1(x, c3, sb_c);
                  tile1(x + 3, c2, sb_c);
                  break;
                case 3:
                  tile1(x, c3, sb_c);
                  break;
                case 2:
                  tile1(x, c2, sb_c);
                  break;
                case 1:
                  tile1(x, c1, sb_c);
                  break;
                default:
                  break;
              }
            }
          };
          if (stride == 1) {
            row_plan(std::integral_constant<std::int64_t, kBlock>{});
          } else {
            row_plan(std::integral_constant<std::int64_t, 0>{});
          }
        }
      }
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          store(obi0, y, x, abuf0 + (y * ow + x) * kBlock);
          if (has2) store(obi0 + 1, y, x, abuf1 + (y * ow + x) * kBlock);
        }
      }
#else
      // Scalar reference kernels (RPOL_SIMD=OFF builds): each present block
      // runs independently. Loop nesting differs from the AVX2 path but each
      // element's serial tap chain is the same (ic, kh, kw) order, so both
      // builds round identically per-element (they differ only in ISA
      // pinning, see layout.h).
      for (std::int64_t blk = 0; blk < (has2 ? 2 : 1); ++blk) {
        const std::int64_t obi = obi0 + blk;
        const float* wbase = pw + obi * wblk_sz;
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t x = 0; x < ow; ++x) {
            float acc[kBlock] = {};
            for (std::int64_t icb = 0; icb < cb; ++icb) {
              const std::int64_t i_lanes = std::min(kBlock, c - icb * kBlock);
              const float* xplane = px + ((img * cb + icb) * hp) * wp * kBlock;
              const float* wblk =
                  wbase + icb * kernel * kernel * kBlock * kBlock;
              for (std::int64_t ici = 0; ici < i_lanes; ++ici) {
                for (std::int64_t kh = 0; kh < kernel; ++kh) {
                  const float* xrow =
                      xplane + (y * stride + kh) * wp * kBlock;
                  for (std::int64_t kw = 0; kw < kernel; ++kw) {
                    const float xv = xrow[(x * stride + kw) * kBlock + ici];
                    const float* wv =
                        wblk + ((kh * kernel + kw) * kBlock + ici) * kBlock;
                    for (std::int64_t jj = 0; jj < kBlock; ++jj) {
                      acc[jj] = madd(xv, wv[jj], acc[jj]);
                    }
                  }
                }
              }
            }
            store(obi, y, x, acc);
          }
        }
      }
#endif
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Direct backward-weights.
//
// Work item = one (output-channel block, input channel) pair; it owns the
// kernel*kernel dW elements for its 8 output lanes. Each element accumulates
// serially over j = (img, y, x) ascending — matmul_nt's dot order over the
// im2col columns. The pre-padded input means padding taps multiply the same
// explicit +0s the fallback's im2col materializes, so every j contributes
// the identical term and no tap needs a bounds check.

void conv2d_direct_backward_weights(const Tensor& grad_blocked,
                                    const Tensor& input_blocked,
                                    const Conv2dSpec& spec, std::int64_t in_h,
                                    std::int64_t in_w, Tensor& weight_grad) {
  const std::int64_t n = grad_blocked.dim(0);
  const std::int64_t ob = grad_blocked.dim(1);
  const std::int64_t oh = grad_blocked.dim(2), ow = grad_blocked.dim(3);
  const std::int64_t cb = input_blocked.dim(1);
  const std::int64_t c = spec.in_channels, o = spec.out_channels;
  const std::int64_t kernel = spec.kernel, stride = spec.stride,
                     pad = spec.padding;
  const std::int64_t hp = in_h + 2 * pad, wp = in_w + 2 * pad;
  const std::int64_t ckk = c * kernel * kernel;
  if (ob != blocks(o) || cb != blocks(c) || weight_grad.dim(0) != o ||
      weight_grad.dim(1) != ckk || input_blocked.dim(2) != hp ||
      input_blocked.dim(3) != wp) {
    throw std::invalid_argument("conv2d_direct_backward_weights mismatch");
  }
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.conv_direct_bwd_w_ns");
  const float* pg = grad_blocked.data();
  const float* px = input_blocked.data();
  float* pwg = weight_grad.data();
  constexpr std::int64_t kMaxTaps = 16;  // >= kernel*kernel for k in {1,3}
  if (kernel * kernel > kMaxTaps) {
    throw std::invalid_argument("conv2d_direct_backward_weights kernel too large");
  }

  runtime::parallel_for(0, ob * c, 1, [&](std::int64_t u0, std::int64_t u1) {
    for (std::int64_t unit = u0; unit < u1; ++unit) {
      const std::int64_t obi = unit / c;
      const std::int64_t ic = unit % c;
      const std::int64_t icb = ic / kBlock, ici = ic % kBlock;
      const std::int64_t o_lanes = std::min(kBlock, o - obi * kBlock);
      float acc[kMaxTaps][kBlock] = {};
#ifdef RPOL_LAYOUT_AVX2
      if (kernel == 3) {
        // 3x3 specialization: the nine dW taps are DIFFERENT output
        // elements, so their chains may interleave freely — nine register
        // chains hide the fma latency a per-tap walk cannot, and the dY
        // vector is loaded once per x for all nine taps. Each tap still
        // sees its own j's in ascending (img, y, x) order.
        __m256 av[9];
        for (int t = 0; t < 9; ++t) av[t] = _mm256_setzero_ps();
        // sb is the per-x step in floats; the stride-1 instantiation folds
        // it to a constant so the walk carries no per-x multiplies, and
        // lets the compiler share broadcasts between adjacent x (their tap
        // windows overlap by two columns).
        const auto walk = [&](auto sb_c) {
          constexpr std::int64_t SB = decltype(sb_c)::value;
          const std::int64_t sb = SB != 0 ? SB : stride * kBlock;
          for (std::int64_t img = 0; img < n; ++img) {
            const float* gplane = pg + ((img * ob + obi) * oh) * ow * kBlock;
            const float* xplane =
                px + ((img * cb + icb) * hp) * wp * kBlock + ici;
            for (std::int64_t y = 0; y < oh; ++y) {
              const float* gy_row = gplane + y * ow * kBlock;
              const float* xr0 = xplane + y * stride * wp * kBlock;
              const float* xr1 = xr0 + wp * kBlock;
              const float* xr2 = xr1 + wp * kBlock;
#pragma GCC unroll 2
              for (std::int64_t x = 0; x < ow; ++x) {
                const __m256 dyv = _mm256_loadu_ps(gy_row + x * kBlock);
                const std::int64_t xo = x * sb;
                av[0] = _mm256_fmadd_ps(dyv, _mm256_broadcast_ss(xr0 + xo),
                                        av[0]);
                av[1] = _mm256_fmadd_ps(
                    dyv, _mm256_broadcast_ss(xr0 + xo + kBlock), av[1]);
                av[2] = _mm256_fmadd_ps(
                    dyv, _mm256_broadcast_ss(xr0 + xo + 2 * kBlock), av[2]);
                av[3] = _mm256_fmadd_ps(dyv, _mm256_broadcast_ss(xr1 + xo),
                                        av[3]);
                av[4] = _mm256_fmadd_ps(
                    dyv, _mm256_broadcast_ss(xr1 + xo + kBlock), av[4]);
                av[5] = _mm256_fmadd_ps(
                    dyv, _mm256_broadcast_ss(xr1 + xo + 2 * kBlock), av[5]);
                av[6] = _mm256_fmadd_ps(dyv, _mm256_broadcast_ss(xr2 + xo),
                                        av[6]);
                av[7] = _mm256_fmadd_ps(
                    dyv, _mm256_broadcast_ss(xr2 + xo + kBlock), av[7]);
                av[8] = _mm256_fmadd_ps(
                    dyv, _mm256_broadcast_ss(xr2 + xo + 2 * kBlock), av[8]);
              }
            }
          }
        };
        if (stride == 1) {
          walk(std::integral_constant<std::int64_t, kBlock>{});
        } else {
          walk(std::integral_constant<std::int64_t, 0>{});
        }
        for (int t = 0; t < 9; ++t) _mm256_storeu_ps(acc[t], av[t]);
      } else {
        for (std::int64_t img = 0; img < n; ++img) {
          const float* gplane = pg + ((img * ob + obi) * oh) * ow * kBlock;
          const float* xplane = px + ((img * cb + icb) * hp) * wp * kBlock + ici;
          for (std::int64_t y = 0; y < oh; ++y) {
            const float* gy_row = gplane + y * ow * kBlock;
            for (std::int64_t kh = 0; kh < kernel; ++kh) {
              const float* xrow = xplane + (y * stride + kh) * wp * kBlock;
              for (std::int64_t kw = 0; kw < kernel; ++kw) {
                float* at = acc[kh * kernel + kw];
                __m256 av = _mm256_loadu_ps(at);
                for (std::int64_t x = 0; x < ow; ++x) {
                  av = _mm256_fmadd_ps(
                      _mm256_loadu_ps(gy_row + x * kBlock),
                      _mm256_broadcast_ss(xrow + (x * stride + kw) * kBlock),
                      av);
                }
                _mm256_storeu_ps(at, av);
              }
            }
          }
        }
      }
#else
      for (std::int64_t img = 0; img < n; ++img) {
        const float* gplane = pg + ((img * ob + obi) * oh) * ow * kBlock;
        const float* xplane = px + ((img * cb + icb) * hp) * wp * kBlock + ici;
        for (std::int64_t y = 0; y < oh; ++y) {
          const float* gy_row = gplane + y * ow * kBlock;
          for (std::int64_t kh = 0; kh < kernel; ++kh) {
            const float* xrow = xplane + (y * stride + kh) * wp * kBlock;
            for (std::int64_t kw = 0; kw < kernel; ++kw) {
              float* at = acc[kh * kernel + kw];
              for (std::int64_t x = 0; x < ow; ++x) {
                const float xv = xrow[(x * stride + kw) * kBlock];
                const float* dyv = gy_row + x * kBlock;
                for (std::int64_t jj = 0; jj < kBlock; ++jj) {
                  at[jj] = madd(dyv[jj], xv, at[jj]);
                }
              }
            }
          }
        }
      }
#endif
      // Mirrors the fallback's `weight_.grad += matmul_nt(...)`: the dW
      // value is fully accumulated first, then added to the grad once.
      for (std::int64_t oo = 0; oo < o_lanes; ++oo) {
        float* wg_row = pwg + (obi * kBlock + oo) * ckk;
        for (std::int64_t kh = 0; kh < kernel; ++kh) {
          for (std::int64_t kw = 0; kw < kernel; ++kw) {
            wg_row[(ic * kernel + kh) * kernel + kw] +=
                acc[kh * kernel + kw][oo];
          }
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Direct backward-data.
//
// Work item = one (img, ic) input-gradient plane, fusing matmul_tn with
// col2im: each column value dcols(kk, j) is a serial dot over oc in
// ascending order (matmul_tn's k-order), fully computed before being
// scatter-added in col2im's fixed (kh, kw, y, x) order.

Tensor conv2d_direct_backward_data(const Tensor& grad_nchw,
                                   const Tensor& weight_t,
                                   const Conv2dSpec& spec,
                                   const Shape& input_shape) {
  const std::int64_t n = input_shape[0], c = input_shape[1];
  const std::int64_t h = input_shape[2], w = input_shape[3];
  const std::int64_t o = spec.out_channels;
  const std::int64_t oh = grad_nchw.dim(2), ow = grad_nchw.dim(3);
  const std::int64_t kernel = spec.kernel, stride = spec.stride,
                     pad = spec.padding;
  if (grad_nchw.dim(1) != o || weight_t.dim(0) != c * kernel * kernel ||
      weight_t.dim(1) != o) {
    throw std::invalid_argument("conv2d_direct_backward_data mismatch");
  }
  static std::atomic<std::uint64_t> tick{0};
  KernelTimer timer(tick, "kernel.conv_direct_bwd_d_ns");
  Tensor out(input_shape);
  const float* pg = grad_nchw.data();
  const float* pwt = weight_t.data();
  float* pd = out.data();
  constexpr std::int64_t XB = 8;  // x positions (= independent chains) per step

  constexpr std::int64_t ICB = 4;  // input channels per work unit
  const std::int64_t ngroups = (c + ICB - 1) / ICB;

  runtime::parallel_for(
      0, n * ngroups, 1, [&](std::int64_t s0, std::int64_t s1) {
        for (std::int64_t slice = s0; slice < s1; ++slice) {
          const std::int64_t img = slice / ngroups;
          const std::int64_t ic0 = (slice % ngroups) * ICB;
          const std::int64_t icn = std::min(ICB, c - ic0);
          // dY rows are contiguous over x in NCHW, so each oc step is one
          // broadcast + contiguous vector loads; x lanes are distinct output
          // elements, each keeping the serial ascending-oc dot order. A unit
          // covers ICB input channels so each loaded dY vector feeds ICB
          // dots — with one channel per unit the whole dY block is
          // re-streamed per channel and the kernel is memory-bound.
          const float* gimg = pg + img * o * oh * ow;
          const std::int64_t ohow = oh * ow;
          const std::int64_t kko = kernel * kernel * o;
          for (std::int64_t kh = 0; kh < kernel; ++kh) {
            for (std::int64_t kw = 0; kw < kernel; ++kw) {
              const XRange xr = valid_x_range(ow, w, kw, stride, pad);
              // Same computation gives the valid y range for kh.
              const XRange yr = valid_x_range(oh, h, kh, stride, pad);
              const float* wt0 = pwt + ((ic0 * kernel + kh) * kernel + kw) * o;
#ifdef RPOL_LAYOUT_AVX2
              // YL consecutive y rows x ICN channels run as independent fma
              // chains: a single row is one serial chain (latency-bound on
              // the narrow deep shapes), while rows and channels never share
              // a dst element within a tap, so interleaving is bitwise-free.
              // Row tails shorter than 8 use maskload (masked lanes read 0
              // and are never stored) instead of dropping to scalar.
              const auto rows = [&](std::int64_t y0, auto yl_c, auto icn_c) {
                constexpr std::int64_t YL = decltype(yl_c)::value;
                constexpr std::int64_t ICN = decltype(icn_c)::value;
                for (std::int64_t x0 = xr.lo; x0 < xr.hi; x0 += XB) {
                  const std::int64_t len = std::min(XB, xr.hi - x0);
                  const __m256i mask = _mm256_cmpgt_epi32(
                      _mm256_set1_epi32(static_cast<int>(len)),
                      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
                  __m256 acc[ICN * YL];
#pragma GCC unroll 8
                  for (std::int64_t t = 0; t < ICN * YL; ++t) {
                    acc[t] = _mm256_setzero_ps();
                  }
                  const float* g = gimg + y0 * ow + x0;
                  if (len == XB) {
                    for (std::int64_t oc = 0; oc < o; ++oc, g += ohow) {
                      __m256 gv[YL];
#pragma GCC unroll 4
                      for (std::int64_t l = 0; l < YL; ++l) {
                        gv[l] = _mm256_loadu_ps(g + l * ow);
                      }
#pragma GCC unroll 4
                      for (std::int64_t i = 0; i < ICN; ++i) {
                        const __m256 wv =
                            _mm256_broadcast_ss(wt0 + i * kko + oc);
#pragma GCC unroll 4
                        for (std::int64_t l = 0; l < YL; ++l) {
                          acc[i * YL + l] =
                              _mm256_fmadd_ps(wv, gv[l], acc[i * YL + l]);
                        }
                      }
                    }
                  } else {
                    for (std::int64_t oc = 0; oc < o; ++oc, g += ohow) {
                      __m256 gv[YL];
#pragma GCC unroll 4
                      for (std::int64_t l = 0; l < YL; ++l) {
                        gv[l] = _mm256_maskload_ps(g + l * ow, mask);
                      }
#pragma GCC unroll 4
                      for (std::int64_t i = 0; i < ICN; ++i) {
                        const __m256 wv =
                            _mm256_broadcast_ss(wt0 + i * kko + oc);
#pragma GCC unroll 4
                        for (std::int64_t l = 0; l < YL; ++l) {
                          acc[i * YL + l] =
                              _mm256_fmadd_ps(wv, gv[l], acc[i * YL + l]);
                        }
                      }
                    }
                  }
#pragma GCC unroll 4
                  for (std::int64_t i = 0; i < ICN; ++i) {
                    float* dplane = pd + (img * c + ic0 + i) * h * w;
#pragma GCC unroll 4
                    for (std::int64_t l = 0; l < YL; ++l) {
                      const std::int64_t in_y = (y0 + l) * stride + kh - pad;
                      float* dst_row = dplane + in_y * w + kw - pad;
                      if (stride == 1) {
                        float* d = dst_row + x0;
                        if (len == XB) {
                          _mm256_storeu_ps(
                              d, _mm256_add_ps(_mm256_loadu_ps(d),
                                               acc[i * YL + l]));
                        } else {
                          _mm256_maskstore_ps(
                              d, mask,
                              _mm256_add_ps(_mm256_maskload_ps(d, mask),
                                            acc[i * YL + l]));
                        }
                      } else {
                        float tmp[XB];
                        _mm256_storeu_ps(tmp, acc[i * YL + l]);
                        for (std::int64_t j = 0; j < len; ++j) {
                          dst_row[(x0 + j) * stride] += tmp[j];
                        }
                      }
                    }
                  }
                }
              };
              const auto sweep = [&](auto icn_c) {
                for (std::int64_t y0 = yr.lo; y0 < yr.hi;) {
                  if (yr.hi - y0 >= 2) {
                    rows(y0, std::integral_constant<std::int64_t, 2>{}, icn_c);
                    y0 += 2;
                  } else {
                    rows(y0, std::integral_constant<std::int64_t, 1>{}, icn_c);
                    y0 += 1;
                  }
                }
              };
              switch (icn) {
                case 4:
                  sweep(std::integral_constant<std::int64_t, 4>{});
                  break;
                case 3:
                  sweep(std::integral_constant<std::int64_t, 3>{});
                  break;
                case 2:
                  sweep(std::integral_constant<std::int64_t, 2>{});
                  break;
                default:
                  sweep(std::integral_constant<std::int64_t, 1>{});
                  break;
              }
#else
              for (std::int64_t i = 0; i < icn; ++i) {
                float* dplane = pd + (img * c + ic0 + i) * h * w;
                const float* wtrow = wt0 + i * kko;
                for (std::int64_t y = yr.lo; y < yr.hi; ++y) {
                  const std::int64_t in_y = y * stride + kh - pad;
                  float* dst_row = dplane + in_y * w + kw - pad;
                  const float* gy0 = gimg + y * ow;  // oc stride is oh*ow
                  for (std::int64_t x0 = xr.lo; x0 < xr.hi; x0 += XB) {
                    const std::int64_t len = std::min(XB, xr.hi - x0);
                    float acc[XB] = {};
                    const float* g = gy0 + x0;
                    for (std::int64_t oc = 0; oc < o; ++oc, g += ohow) {
                      const float wv = wtrow[oc];
                      for (std::int64_t l = 0; l < len; ++l) {
                        acc[l] = madd(wv, g[l], acc[l]);
                      }
                    }
                    for (std::int64_t l = 0; l < len; ++l) {
                      dst_row[(x0 + l) * stride] += acc[l];
                    }
                  }
                }
              }
#endif
            }
          }
        }
      });
  return out;
}

}  // namespace rpol::layout
