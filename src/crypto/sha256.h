// SHA-256 (FIPS 180-4). Self-contained implementation used for
// commitments, Merkle trees, the PRF (via HMAC), and blockchain addresses.
//
// The commitment pipeline hashes multi-megabyte checkpoint states, so the
// streaming path is built for throughput: update() compresses full blocks
// directly from the caller's buffer (no staging copy) with an unrolled
// multi-block compression loop, and finish() resets the hasher to a fresh
// state so batch paths (parallel leaf hashing, HMAC) can recycle hasher
// objects without reconstructing them.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/serialize.h"

namespace rpol {

using Digest = std::array<std::uint8_t, 32>;

// Streaming hasher; use sha256() below for one-shot hashing.
class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  // Finishes the hash AND resets the hasher to a fresh state: reuse after
  // finish() is well-defined and hashes a new, independent message. (The
  // reset is an enforced contract, not advisory — pooled hashers recycle
  // these objects.)
  Digest finish();
  // Discards any buffered input and returns to the initial state.
  void reset();

 private:
  void process_blocks(const std::uint8_t* data, std::size_t count);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

Digest sha256(const Bytes& data);
Digest sha256(const std::string& data);

std::string digest_to_hex(const Digest& d);
bool digest_equal(const Digest& a, const Digest& b);

// First 8 bytes of the digest as a little-endian integer; handy for seeding.
std::uint64_t digest_to_u64(const Digest& d);

}  // namespace rpol
