#include "crypto/prf.h"

#include <stdexcept>

namespace rpol {

Prf::Prf(std::uint64_t key) {
  append_u64(key_, key);
}

Digest Prf::eval_wide(std::uint64_t input) const {
  Bytes msg;
  append_u64(msg, input);
  return hmac_sha256(key_, msg);
}

std::uint64_t Prf::eval(std::uint64_t input) const {
  return digest_to_u64(eval_wide(input));
}

std::uint64_t Prf::eval_mod(std::uint64_t input, std::uint64_t modulus) const {
  if (modulus == 0) throw std::invalid_argument("PRF modulus must be positive");
  return eval(input) % modulus;
}

}  // namespace rpol
