#include "crypto/sha256.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define RPOL_SHA256_HW 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace rpol {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

#ifdef RPOL_SHA256_HW

// CPUID probe for the SHA extensions (leaf 7 EBX bit 29) plus the SSSE3 /
// SSE4.1 shuffles the kernel uses. Checked once at startup; the scalar path
// below stays the fallback, and both produce identical digests.
bool detect_sha_ni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool sha = (ebx & (1U << 29)) != 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool ssse3 = (ecx & (1U << 9)) != 0;
  const bool sse41 = (ecx & (1U << 19)) != 0;
  return sha && ssse3 && sse41;
}

const bool kHasShaNi = detect_sha_ni();

// SHA-NI compression: two sha256rnds2 per 4 rounds, message schedule kept in
// four xmm registers via sha256msg1/msg2. Round constants come from the same
// kRoundConstants table as the scalar path (memory order == lane order).
__attribute__((target("sha,sse4.1,ssse3"))) void process_blocks_sha_ni(
    std::uint32_t* state, const std::uint8_t* data, std::size_t count) {
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const auto kvec = [](int i) {
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kRoundConstants.data() + i));
  };

  // Repack {A..D}, {E..H} into the (ABEF, CDGH) layout sha256rnds2 expects.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));  // DCBA
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                                // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);                          // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);                  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);                       // CDGH

  __m128i msg, msg0, msg1, msg2, msg3;

// One schedule-extending 4-round group: cur feeds the rounds, nxt picks up
// sha256msg2, prv picks up sha256msg1.
#define RPOL_SHANI_QROUND(k, cur, nxt, prv)             \
  do {                                                  \
    msg = _mm_add_epi32(cur, kvec(k));                  \
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg); \
    tmp = _mm_alignr_epi8(cur, prv, 4);                 \
    (nxt) = _mm_add_epi32(nxt, tmp);                    \
    (nxt) = _mm_sha256msg2_epu32(nxt, cur);             \
    msg = _mm_shuffle_epi32(msg, 0x0E);                 \
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg); \
    (prv) = _mm_sha256msg1_epu32(prv, cur);             \
  } while (0)

  while (count-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // Rounds 0-3.
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), mask);
    msg = _mm_add_epi32(msg0, kvec(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), mask);
    msg = _mm_add_epi32(msg1, kvec(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), mask);
    msg = _mm_add_epi32(msg2, kvec(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), mask);
    RPOL_SHANI_QROUND(12, msg3, msg0, msg2);
    // Rounds 16-51: schedule keeps extending, registers rotate.
    RPOL_SHANI_QROUND(16, msg0, msg1, msg3);
    RPOL_SHANI_QROUND(20, msg1, msg2, msg0);
    RPOL_SHANI_QROUND(24, msg2, msg3, msg1);
    RPOL_SHANI_QROUND(28, msg3, msg0, msg2);
    RPOL_SHANI_QROUND(32, msg0, msg1, msg3);
    RPOL_SHANI_QROUND(36, msg1, msg2, msg0);
    RPOL_SHANI_QROUND(40, msg2, msg3, msg1);
    RPOL_SHANI_QROUND(44, msg3, msg0, msg2);
    RPOL_SHANI_QROUND(48, msg0, msg1, msg3);

    // Rounds 52-55 (schedule tail: msg2 extension only).
    msg = _mm_add_epi32(msg1, kvec(52));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(msg2, kvec(56));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, kvec(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

#undef RPOL_SHANI_QROUND

  // Repack to the {A..D}, {E..H} memory layout.
  tmp = _mm_shuffle_epi32(state0, 0x1B);         // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);      // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);   // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);      // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#endif  // RPOL_SHA256_HW

}  // namespace

Sha256::Sha256() { state_ = kInitialState; }

void Sha256::reset() {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_len_ = 0;
}

// Unrolled compression over `count` consecutive 64-byte blocks. The message
// schedule lives in a 16-word rolling window and the eight working variables
// stay in registers across rounds (no per-round variable rotation), which is
// where the throughput over the naive formulation comes from.
void Sha256::process_blocks(const std::uint8_t* data, std::size_t count) {
#ifdef RPOL_SHA256_HW
  if (kHasShaNi) {
    process_blocks_sha_ni(state_.data(), data, count);
    return;
  }
#endif
  std::uint32_t s0 = state_[0], s1 = state_[1], s2 = state_[2], s3 = state_[3];
  std::uint32_t s4 = state_[4], s5 = state_[5], s6 = state_[6], s7 = state_[7];
  std::array<std::uint32_t, 16> w;

#define RPOL_SHA256_EXPAND(i)                                              \
  (w[(i) & 15] += (rotr(w[((i) + 14) & 15], 17) ^                          \
                   rotr(w[((i) + 14) & 15], 19) ^ (w[((i) + 14) & 15] >> 10)) + \
                  w[((i) + 9) & 15] +                                      \
                  (rotr(w[((i) + 1) & 15], 7) ^ rotr(w[((i) + 1) & 15], 18) ^ \
                   (w[((i) + 1) & 15] >> 3)))

#define RPOL_SHA256_ROUND(a, b, c, d, e, f, g, h, i, wi)                   \
  do {                                                                     \
    const std::uint32_t t1 =                                               \
        (h) + (rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)) +                   \
        (((e) & (f)) ^ (~(e) & (g))) + kRoundConstants[i] + (wi);          \
    const std::uint32_t t2 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) +    \
                             (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));    \
    (d) += t1;                                                             \
    (h) = t1 + t2;                                                         \
  } while (0)

#define RPOL_SHA256_ROUND8(base, load)                                     \
  RPOL_SHA256_ROUND(a, b, c, d, e, f, g, h, (base) + 0, load((base) + 0)); \
  RPOL_SHA256_ROUND(h, a, b, c, d, e, f, g, (base) + 1, load((base) + 1)); \
  RPOL_SHA256_ROUND(g, h, a, b, c, d, e, f, (base) + 2, load((base) + 2)); \
  RPOL_SHA256_ROUND(f, g, h, a, b, c, d, e, (base) + 3, load((base) + 3)); \
  RPOL_SHA256_ROUND(e, f, g, h, a, b, c, d, (base) + 4, load((base) + 4)); \
  RPOL_SHA256_ROUND(d, e, f, g, h, a, b, c, (base) + 5, load((base) + 5)); \
  RPOL_SHA256_ROUND(c, d, e, f, g, h, a, b, (base) + 6, load((base) + 6)); \
  RPOL_SHA256_ROUND(b, c, d, e, f, g, h, a, (base) + 7, load((base) + 7))

#define RPOL_SHA256_LOAD(i) (w[i] = load_be32(data + 4 * (i)))

  while (count-- > 0) {
    std::uint32_t a = s0, b = s1, c = s2, d = s3;
    std::uint32_t e = s4, f = s5, g = s6, h = s7;
    RPOL_SHA256_ROUND8(0, RPOL_SHA256_LOAD);
    RPOL_SHA256_ROUND8(8, RPOL_SHA256_LOAD);
    RPOL_SHA256_ROUND8(16, RPOL_SHA256_EXPAND);
    RPOL_SHA256_ROUND8(24, RPOL_SHA256_EXPAND);
    RPOL_SHA256_ROUND8(32, RPOL_SHA256_EXPAND);
    RPOL_SHA256_ROUND8(40, RPOL_SHA256_EXPAND);
    RPOL_SHA256_ROUND8(48, RPOL_SHA256_EXPAND);
    RPOL_SHA256_ROUND8(56, RPOL_SHA256_EXPAND);
    s0 += a;
    s1 += b;
    s2 += c;
    s3 += d;
    s4 += e;
    s5 += f;
    s6 += g;
    s7 += h;
    data += 64;
  }

#undef RPOL_SHA256_LOAD
#undef RPOL_SHA256_ROUND8
#undef RPOL_SHA256_ROUND
#undef RPOL_SHA256_EXPAND

  state_ = {s0, s1, s2, s3, s4, s5, s6, s7};
}

void Sha256::update(const std::uint8_t* data, std::size_t len) {
  if (len == 0) return;  // empty vectors hand us data() == nullptr
  total_len_ += len;
  // Top up a partially filled staging buffer first.
  if (buffer_len_ != 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      process_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  // Whole blocks compress straight from the caller's memory — the zero-copy
  // fast path the streaming state hasher relies on.
  const std::size_t blocks = len / 64;
  if (blocks != 0) {
    process_blocks(data, blocks);
    data += blocks * 64;
    len -= blocks * 64;
  }
  if (len != 0) {
    std::memcpy(buffer_.data(), data, len);
    buffer_len_ = len;
  }
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  // update() keeps buffer_len_ < 64, so there is always room for 0x80.
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, buffer_.size() - buffer_len_);
    process_blocks(buffer_.data(), 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  process_blocks(buffer_.data(), 1);

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  reset();
  return out;
}

Digest sha256(const Bytes& data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest sha256(const std::string& data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

std::string digest_to_hex(const Digest& d) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const auto b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xF]);
  }
  return out;
}

bool digest_equal(const Digest& a, const Digest& b) { return a == b; }

std::uint64_t digest_to_u64(const Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return v;
}

}  // namespace rpol
