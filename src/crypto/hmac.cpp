#include "crypto/hmac.h"

namespace rpol {

Digest hmac_sha256(const Bytes& key, const Bytes& message) {
  constexpr std::size_t kBlockSize = 64;
  Bytes k = key;
  if (k.size() > kBlockSize) {
    const Digest d = sha256(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlockSize, 0x00);

  Bytes inner_pad(kBlockSize), outer_pad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(inner_pad);
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

}  // namespace rpol
