// Blockchain addresses.
//
// Consensus nodes (individual miners and pool managers) are identified by
// addresses. We model an address as the hex encoding of the first 20 bytes
// of SHA256(public-seed), mirroring the Ethereum-style derivation. The
// address doubles as the seed of the AMLayer PRF (Sec. V-A), so it must be
// canonical: lowercase hex, fixed 40 characters, "0x" prefix.

#pragma once

#include <cstdint>
#include <string>

#include "crypto/sha256.h"

namespace rpol {

class Address {
 public:
  Address() = default;

  // Derives an address from an account seed (stands in for a keypair).
  static Address from_seed(std::uint64_t seed);

  // Parses a canonical "0x" + 40 lowercase hex chars string; throws on
  // malformed input.
  static Address from_string(const std::string& hex);

  const std::string& str() const { return hex_; }
  bool valid() const { return !hex_.empty(); }

  // Canonical byte encoding, used to key the AMLayer PRF.
  Bytes bytes() const;

  friend bool operator==(const Address& a, const Address& b) {
    return a.hex_ == b.hex_;
  }
  friend bool operator!=(const Address& a, const Address& b) {
    return !(a == b);
  }
  friend bool operator<(const Address& a, const Address& b) {
    return a.hex_ < b.hex_;
  }

 private:
  std::string hex_;  // "0x" + 40 lowercase hex chars, or empty if invalid.
};

}  // namespace rpol
