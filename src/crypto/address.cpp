#include "crypto/address.h"

#include <stdexcept>

namespace rpol {

namespace {
bool is_lower_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}
}  // namespace

Address Address::from_seed(std::uint64_t seed) {
  Bytes seed_bytes;
  append_u64(seed_bytes, seed);
  const Digest d = sha256(seed_bytes);
  static const char* hex = "0123456789abcdef";
  Address a;
  a.hex_ = "0x";
  for (int i = 0; i < 20; ++i) {
    a.hex_.push_back(hex[d[i] >> 4]);
    a.hex_.push_back(hex[d[i] & 0xF]);
  }
  return a;
}

Address Address::from_string(const std::string& hex) {
  if (hex.size() != 42 || hex[0] != '0' || hex[1] != 'x') {
    throw std::invalid_argument("malformed address: " + hex);
  }
  for (std::size_t i = 2; i < hex.size(); ++i) {
    if (!is_lower_hex(hex[i])) {
      throw std::invalid_argument("malformed address: " + hex);
    }
  }
  Address a;
  a.hex_ = hex;
  return a;
}

Bytes Address::bytes() const {
  Bytes out;
  out.reserve(hex_.size());
  for (const char c : hex_) out.push_back(static_cast<std::uint8_t>(c));
  return out;
}

}  // namespace rpol
