// Merkle hash tree over an ordered list of leaf digests.
//
// Sec. V-B allows the training commitment to be either an ordered list of
// checkpoint hashes or a Merkle root over them. We implement both; the
// Merkle form gives logarithmic-size membership proofs, which matters when
// the number of checkpoints per epoch is large.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "crypto/sha256.h"

namespace rpol {

// One sibling digest per tree level, bottom-up, plus the side each sibling
// sits on (true = sibling is the right child).
struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<Digest> siblings;
  std::vector<bool> sibling_is_right;

  // The leaf position actually encoded by the sibling sides. Verifiers
  // that need position binding must compare against THIS, not against the
  // (claimed) leaf_index field.
  std::size_t path_index() const;
};

class MerkleTree {
 public:
  // Builds the tree over the given leaf digests (at least one leaf). Odd
  // nodes at any level are paired with themselves (Bitcoin-style padding).
  explicit MerkleTree(std::vector<Digest> leaves);

  const Digest& root() const { return levels_.back().front(); }
  std::size_t leaf_count() const { return levels_.front().size(); }

  // Digest payload held across every level (~2x the leaf bytes): what the
  // memory accounting charges for a resident tree.
  std::size_t byte_size() const {
    std::size_t nodes = 0;
    for (const auto& level : levels_) nodes += level.size();
    return nodes * sizeof(Digest);
  }

  MerkleProof prove(std::size_t leaf_index) const;

  // Verifies that `leaf` is at `proof.leaf_index` under `root`.
  static bool verify(const Digest& root, const Digest& leaf, const MerkleProof& proof);

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

// Domain-separated internal-node hash: SHA256(0x01 || left || right).
// Leaves are expected to be pre-hashed with their own domain by callers.
Digest merkle_parent(const Digest& left, const Digest& right);

// Same parent hash computed through a caller-owned hasher. Relies on the
// documented finish()-resets-state reuse contract (sha256.h): `h` may carry
// no buffered input when called, and is left reset on return, so streaming
// folds can push many parents through one Sha256 instance.
Digest merkle_parent_reusing(Sha256& h, const Digest& left,
                             const Digest& right);

// Streaming Merkle root: leaves are folded as they arrive, holding only the
// O(log n) frontier of pending subtree roots instead of every level.
// root() reproduces MerkleTree's ragged-edge self-pairing exactly, so for
// any leaf sequence push(l_0..l_{n-1}); root() is bitwise identical to
// MerkleTree({l_0..l_{n-1}}).root() — the equivalence the golden-digest
// suite pins. Proofs still need the full tree; accumulators answer only the
// root (that is what bounded-memory commitment construction uses).
class MerkleAccumulator {
 public:
  // Folds the next leaf into the frontier: O(1) amortized parent hashes.
  void push(const Digest& leaf);

  std::size_t leaf_count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Collapses the frontier into the root (throws std::invalid_argument when
  // no leaf was pushed). Non-destructive: more leaves may be pushed after.
  Digest root() const;

  // Resident frontier bytes — what memory accounting should charge.
  std::size_t byte_size() const { return frontier_.size() * sizeof(Digest); }

 private:
  // frontier_[k] = the pending (unpaired) subtree root at level k; like a
  // binary counter, push() carries through occupied levels.
  std::vector<std::optional<Digest>> frontier_;
  std::size_t count_ = 0;
  // One hasher reused across every parent fold (finish() resets it).
  mutable Sha256 hasher_;
};

}  // namespace rpol
