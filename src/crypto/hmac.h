// HMAC-SHA256 (RFC 2104). The keyed primitive underneath the protocol PRF.

#pragma once

#include "crypto/sha256.h"

namespace rpol {

Digest hmac_sha256(const Bytes& key, const Bytes& message);

}  // namespace rpol
