// Protocol pseudo-random function.
//
// The paper uses PRF(N_t^w * m + n) mod |D_w| for stochastic-yet-
// deterministic batch selection (Sec. V-B): the worker's data selection
// looks random (so training steps differ and replaying an old result is
// detectable) but is exactly reproducible by the manager during
// verification. The same PRF derives AMLayer initialization streams from a
// blockchain address and post-commitment sampling decisions.
//
// Construction: HMAC-SHA256(key, little-endian input), truncated to 64 bits.

#pragma once

#include <cstdint>
#include <string>

#include "crypto/hmac.h"

namespace rpol {

class Prf {
 public:
  // Keyed by arbitrary bytes (e.g. a nonce or an address string).
  explicit Prf(Bytes key) : key_(std::move(key)) {}
  explicit Prf(const std::string& key)
      : key_(key.begin(), key.end()) {}
  explicit Prf(std::uint64_t key);

  // PRF value for a 64-bit input.
  std::uint64_t eval(std::uint64_t input) const;

  // PRF value reduced modulo `modulus` (> 0) without modulo bias beyond
  // 2^-64 (negligible for dataset-sized moduli).
  std::uint64_t eval_mod(std::uint64_t input, std::uint64_t modulus) const;

  // Full 32-byte output, used where a wide seed is needed (AMLayer init).
  Digest eval_wide(std::uint64_t input) const;

 private:
  Bytes key_;
};

}  // namespace rpol
