#include "crypto/merkle.h"

#include <stdexcept>

#include "runtime/thread_pool.h"

namespace rpol {

namespace {

// Pairs below this count are hashed inline; the per-level fan-out only pays
// off once a level has enough independent parent hashes to amortize dispatch.
constexpr std::size_t kParallelPairGrain = 64;

}  // namespace

Digest merkle_parent(const Digest& left, const Digest& right) {
  Sha256 h;
  return merkle_parent_reusing(h, left, right);
}

Digest merkle_parent_reusing(Sha256& h, const Digest& left,
                             const Digest& right) {
  const std::uint8_t domain = 0x01;
  h.update(&domain, 1);
  h.update(left.data(), left.size());
  h.update(right.data(), right.size());
  return h.finish();
}

void MerkleAccumulator::push(const Digest& leaf) {
  Digest carry = leaf;
  std::size_t level = 0;
  while (level < frontier_.size() && frontier_[level].has_value()) {
    carry = merkle_parent_reusing(hasher_, *frontier_[level], carry);
    frontier_[level].reset();
    ++level;
  }
  if (level == frontier_.size()) frontier_.emplace_back();
  frontier_[level] = carry;
  ++count_;
}

Digest MerkleAccumulator::root() const {
  if (count_ == 0) throw std::invalid_argument("Merkle root needs >= 1 leaf");
  // Index of the highest occupied frontier level; everything above a level
  // is "higher" context deciding whether a lone node self-pairs (it is the
  // odd tail of its level) or already IS the root.
  std::size_t top = 0;
  for (std::size_t k = 0; k < frontier_.size(); ++k) {
    if (frontier_[k].has_value()) top = k;
  }
  // Fold bottom-up. `ragged` is the trailing node of the current level that
  // came from the ragged (self-paired) edge below; frontier_[k] is that
  // level's pending complete-subtree root sitting LEFT of it.
  std::optional<Digest> ragged;
  for (std::size_t k = 0; k <= top; ++k) {
    const bool higher = k < top;
    if (frontier_[k].has_value()) {
      if (ragged.has_value()) {
        ragged = merkle_parent_reusing(hasher_, *frontier_[k], *ragged);
      } else if (higher) {
        // Odd tail of this level: Bitcoin-style self-pair, exactly what
        // MerkleTree does for the last node of an odd-sized level.
        ragged = merkle_parent_reusing(hasher_, *frontier_[k], *frontier_[k]);
      } else {
        return *frontier_[k];  // the lone pending subtree is the root
      }
    } else if (ragged.has_value() && higher) {
      ragged = merkle_parent_reusing(hasher_, *ragged, *ragged);
    }
  }
  return *ragged;
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) {
  if (leaves.empty()) throw std::invalid_argument("Merkle tree needs >= 1 leaf");
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    const std::size_t pairs = (prev.size() + 1) / 2;
    std::vector<Digest> next(pairs);
    // Parent hashes within a level are independent, so they fan out across
    // the deterministic pool; each index writes only its own slot, and the
    // static partitioning makes the result thread-count invariant.
    runtime::parallel_for(
        0, static_cast<std::int64_t>(pairs),
        static_cast<std::int64_t>(kParallelPairGrain),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t p = lo; p < hi; ++p) {
            const std::size_t i = static_cast<std::size_t>(p);
            const Digest& left = prev[2 * i];
            const Digest& right =
                (2 * i + 1 < prev.size()) ? prev[2 * i + 1] : prev[2 * i];
            next[i] = merkle_parent(left, right);
          }
        });
    levels_.push_back(std::move(next));
  }
}

std::size_t MerkleProof::path_index() const {
  // sibling_is_right[k] == true means our node was the LEFT child (even
  // index) at level k, so the k-th index bit is 0.
  std::size_t idx = 0;
  for (std::size_t level = sibling_is_right.size(); level-- > 0;) {
    idx = idx * 2 + (sibling_is_right[level] ? 0 : 1);
  }
  return idx;
}

MerkleProof MerkleTree::prove(std::size_t leaf_index) const {
  if (leaf_index >= leaf_count()) {
    throw std::out_of_range("Merkle proof index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = leaf_index;
  std::size_t idx = leaf_index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (idx % 2 == 0) ? idx + 1 : idx - 1;
    const Digest& sib =
        (sibling < nodes.size()) ? nodes[sibling] : nodes[idx];  // self-pair
    proof.siblings.push_back(sib);
    proof.sibling_is_right.push_back(idx % 2 == 0);
    idx /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, const Digest& leaf,
                        const MerkleProof& proof) {
  if (proof.siblings.size() != proof.sibling_is_right.size()) return false;
  Digest acc = leaf;
  for (std::size_t i = 0; i < proof.siblings.size(); ++i) {
    acc = proof.sibling_is_right[i] ? merkle_parent(acc, proof.siblings[i])
                                    : merkle_parent(proof.siblings[i], acc);
  }
  return digest_equal(acc, root);
}

}  // namespace rpol
