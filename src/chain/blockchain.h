// PoUW blockchain substrate (Sec. III-A).
//
// Consensus nodes (individual miners or mining pools) pull a DNN training
// task from the task pool, train a model whose front layer encodes their
// own address, and propose a block within the round's time limit. The test
// dataset is revealed only after proposals close; the block whose model
// generalizes best wins, every node re-derives the proposer's AMLayer from
// the block's address to verify ownership, and the reward is paid to the
// encoded address.
//
// Blocks are hash-chained; a block carries the model state vector (hashed
// into the block header) rather than the raw bytes of a real system, which
// is enough to exercise the consensus logic end to end.

#pragma once

#include <map>
#include <optional>

#include "core/amlayer.h"
#include "core/executor.h"
#include "data/partition.h"

namespace rpol::chain {

// A DNN training task published on chain.
struct TrainingTask {
  std::uint64_t task_id = 0;
  std::string description;
  double target_accuracy = 0.0;   // difficulty knob (Sec. VII-E discussion)
  std::uint64_t reward = 0;       // paid to the winning proposer's address
};

struct BlockHeader {
  std::uint64_t height = 0;
  Digest parent_hash{};
  std::uint64_t task_id = 0;
  Address proposer;
  Digest model_hash{};
  double claimed_accuracy = 0.0;
};

struct Block {
  BlockHeader header;
  std::vector<float> model_state;     // the trained model (state vector)
  core::AmLayerConfig amlayer_config; // how the front layer was built

  Digest hash() const;
};

// Proposal-time model container: the consensus evaluation needs to run the
// model, so proposals carry a factory building the architecture WITHOUT the
// AMLayer; the chain prepends the proposer-derived AMLayer itself. This is
// exactly what makes address-replacing detectable: evaluation always uses
// the AMLayer derived from the claimed address.
struct BlockProposal {
  Address proposer;
  nn::ModelFactory base_factory;       // architecture sans AMLayer
  core::AmLayerConfig amlayer_config;
  std::vector<float> model_state;      // state vector of (AMLayer + base)
};

class Blockchain {
 public:
  Blockchain();

  std::uint64_t publish_task(std::string description, double target_accuracy,
                             std::uint64_t reward);
  std::optional<TrainingTask> task(std::uint64_t task_id) const;

  std::uint64_t height() const { return static_cast<std::uint64_t>(blocks_.size()); }
  const Block& tip() const { return blocks_.back(); }
  const Block& block(std::uint64_t height) const { return blocks_.at(height); }

  // Consensus round: evaluates every proposal on the (late-revealed) test
  // set using an AMLayer re-derived from each proposer's address, rejects
  // proposals whose embedded AMLayer weights do not match their address,
  // appends a block for the best surviving model, and credits the reward.
  // Returns the winning proposal index, or nullopt if none verified.
  std::optional<std::size_t> run_round(std::uint64_t task_id,
                                       std::vector<BlockProposal> proposals,
                                       const data::DatasetView& test_set,
                                       const core::Hyperparams& hp);

  std::uint64_t balance(const Address& address) const;

  // Chain integrity: parent hashes link correctly.
  bool validate_chain() const;

  // Canonical persistence: serializes blocks (headers + model states +
  // AMLayer configs), the task pool, and balances. from_bytes() validates
  // the reconstructed chain's hash links and rejects corrupted input, so a
  // node restarting from disk cannot resume onto a tampered history.
  Bytes to_bytes() const;
  static Blockchain from_bytes(const Bytes& in);

 private:
  std::vector<Block> blocks_;
  std::map<std::uint64_t, TrainingTask> tasks_;
  std::map<std::string, std::uint64_t> balances_;
  std::uint64_t next_task_id_ = 1;
};

// Ownership check used by consensus nodes: rebuilds the AMLayer weights
// from `claimed` and compares them with the AMLayer slice embedded at the
// front of `model_state`. The AMLayer occupies the first
// channels * channels * kernel^2 floats of the state vector because it is
// the first prepended layer.
bool verify_embedded_amlayer(const std::vector<float>& model_state,
                             const Address& claimed,
                             const core::AmLayerConfig& config);

// Evaluation helper: builds AMLayer(address) + base model, loads the state,
// and returns test accuracy.
double evaluate_proposal_accuracy(const BlockProposal& proposal,
                                  const Address& amlayer_address,
                                  const data::DatasetView& test_set,
                                  const core::Hyperparams& hp);

}  // namespace rpol::chain
