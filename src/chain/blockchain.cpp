#include "chain/blockchain.h"

#include <stdexcept>

namespace rpol::chain {

Digest Block::hash() const {
  Sha256 h;
  Bytes header_bytes;
  append_u64(header_bytes, header.height);
  header_bytes.insert(header_bytes.end(), header.parent_hash.begin(),
                      header.parent_hash.end());
  append_u64(header_bytes, header.task_id);
  const Bytes addr = header.proposer.bytes();
  header_bytes.insert(header_bytes.end(), addr.begin(), addr.end());
  header_bytes.insert(header_bytes.end(), header.model_hash.begin(),
                      header.model_hash.end());
  append_f32(header_bytes, static_cast<float>(header.claimed_accuracy));
  h.update(header_bytes);
  return h.finish();
}

Blockchain::Blockchain() {
  // Genesis block.
  Block genesis;
  genesis.header.height = 0;
  genesis.header.proposer = Address::from_seed(0);
  blocks_.push_back(std::move(genesis));
}

std::uint64_t Blockchain::publish_task(std::string description,
                                       double target_accuracy,
                                       std::uint64_t reward) {
  const std::uint64_t id = next_task_id_++;
  tasks_[id] = TrainingTask{id, std::move(description), target_accuracy, reward};
  return id;
}

std::optional<TrainingTask> Blockchain::task(std::uint64_t task_id) const {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return std::nullopt;
  return it->second;
}

bool verify_embedded_amlayer(const std::vector<float>& model_state,
                             const Address& claimed,
                             const core::AmLayerConfig& config) {
  const Tensor expected = core::derive_amlayer_weight(claimed, config);
  const std::size_t n = static_cast<std::size_t>(expected.numel());
  if (model_state.size() < n) return false;
  // The AMLayer is the first prepended layer, so its weights occupy the
  // leading slice of the state vector.
  for (std::size_t i = 0; i < n; ++i) {
    if (model_state[i] != expected.vec()[i]) return false;
  }
  return true;
}

double evaluate_proposal_accuracy(const BlockProposal& proposal,
                                  const Address& amlayer_address,
                                  const data::DatasetView& test_set,
                                  const core::Hyperparams& hp) {
  const nn::ModelFactory base = proposal.base_factory;
  const core::AmLayerConfig am_cfg = proposal.amlayer_config;
  const nn::ModelFactory with_amlayer = [base, am_cfg, amlayer_address]() {
    nn::Model m = base();
    m.prepend(std::make_unique<core::AmLayer>(amlayer_address, am_cfg));
    return m;
  };
  core::StepExecutor executor(with_amlayer, hp);
  nn::Model& model = executor.model();
  // The proposal's state was produced under the PROPOSER's AMLayer. Loading
  // it under `amlayer_address` overwrites the AMLayer slice too, so restore
  // the evaluation address's derived weights afterwards — consensus nodes
  // never trust embedded AMLayer bytes, they re-derive them.
  model.load_state_vector(proposal.model_state);
  const Tensor derived =
      core::derive_amlayer_weight(amlayer_address, am_cfg);
  nn::Param* front = model.params().front();
  front->value = derived;
  return executor.evaluate(test_set);
}

std::optional<std::size_t> Blockchain::run_round(
    std::uint64_t task_id, std::vector<BlockProposal> proposals,
    const data::DatasetView& test_set, const core::Hyperparams& hp) {
  if (tasks_.find(task_id) == tasks_.end()) {
    throw std::invalid_argument("unknown task");
  }
  std::optional<std::size_t> best;
  double best_accuracy = -1.0;
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    const BlockProposal& p = proposals[i];
    // Ownership verification: the embedded AMLayer must derive from the
    // claimed proposer address.
    if (!verify_embedded_amlayer(p.model_state, p.proposer, p.amlayer_config)) {
      continue;
    }
    // A malformed proposal (wrong state size, bad factory output) must not
    // take the whole round down — it is simply discarded.
    double acc = -1.0;
    try {
      acc = evaluate_proposal_accuracy(p, p.proposer, test_set, hp);
    } catch (const std::exception&) {
      continue;
    }
    if (acc > best_accuracy) {
      best_accuracy = acc;
      best = i;
    }
  }
  if (!best.has_value()) return std::nullopt;

  const BlockProposal& winner = proposals[*best];
  Block block;
  block.header.height = height();
  block.header.parent_hash = blocks_.back().hash();
  block.header.task_id = task_id;
  block.header.proposer = winner.proposer;
  block.header.model_hash = sha256(serialize_floats(winner.model_state));
  block.header.claimed_accuracy = best_accuracy;
  block.model_state = winner.model_state;
  block.amlayer_config = winner.amlayer_config;
  blocks_.push_back(std::move(block));

  balances_[winner.proposer.str()] += tasks_.at(task_id).reward;
  return best;
}

std::uint64_t Blockchain::balance(const Address& address) const {
  const auto it = balances_.find(address.str());
  return it == balances_.end() ? 0 : it->second;
}

namespace {

void append_digest_bytes(Bytes& out, const Digest& d) {
  out.insert(out.end(), d.begin(), d.end());
}

Digest read_digest_bytes(const Bytes& in, std::size_t& offset) {
  if (offset + 32 > in.size()) throw std::out_of_range("truncated digest");
  Digest d{};
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
            in.begin() + static_cast<std::ptrdiff_t>(offset + 32), d.begin());
  offset += 32;
  return d;
}

void append_string(Bytes& out, const std::string& s) {
  append_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(const Bytes& in, std::size_t& offset) {
  const std::uint64_t len = read_u64(in, offset);
  if (len > in.size() - offset) throw std::out_of_range("truncated string");
  std::string s(in.begin() + static_cast<std::ptrdiff_t>(offset),
                in.begin() + static_cast<std::ptrdiff_t>(offset + len));
  offset += static_cast<std::size_t>(len);
  return s;
}

}  // namespace

Bytes Blockchain::to_bytes() const {
  Bytes out;
  append_u64(out, 0x52504F4C43484E31ULL);  // "RPOLCHN1" magic/version

  append_u64(out, blocks_.size());
  for (const Block& block : blocks_) {
    append_u64(out, block.header.height);
    append_digest_bytes(out, block.header.parent_hash);
    append_u64(out, block.header.task_id);
    append_string(out, block.header.proposer.valid() ? block.header.proposer.str()
                                                     : std::string());
    append_digest_bytes(out, block.header.model_hash);
    append_f32(out, static_cast<float>(block.header.claimed_accuracy));
    const Bytes model = serialize_floats(block.model_state);
    out.insert(out.end(), model.begin(), model.end());
    append_i64(out, block.amlayer_config.channels);
    append_i64(out, block.amlayer_config.kernel);
    append_f32(out, block.amlayer_config.scaling_c);
    append_i64(out, block.amlayer_config.power_iterations);
  }

  append_u64(out, tasks_.size());
  for (const auto& [id, task] : tasks_) {
    append_u64(out, id);
    append_string(out, task.description);
    append_f32(out, static_cast<float>(task.target_accuracy));
    append_u64(out, task.reward);
  }

  append_u64(out, balances_.size());
  for (const auto& [addr, amount] : balances_) {
    append_string(out, addr);
    append_u64(out, amount);
  }
  append_u64(out, next_task_id_);
  return out;
}

Blockchain Blockchain::from_bytes(const Bytes& in) {
  std::size_t offset = 0;
  if (read_u64(in, offset) != 0x52504F4C43484E31ULL) {
    throw std::invalid_argument("not an RPoL chain snapshot");
  }
  Blockchain chain;
  chain.blocks_.clear();

  const std::uint64_t block_count = read_u64(in, offset);
  if (block_count == 0 || block_count > in.size()) {
    throw std::invalid_argument("bad block count");
  }
  for (std::uint64_t i = 0; i < block_count; ++i) {
    Block block;
    block.header.height = read_u64(in, offset);
    block.header.parent_hash = read_digest_bytes(in, offset);
    block.header.task_id = read_u64(in, offset);
    const std::string proposer = read_string(in, offset);
    if (!proposer.empty()) {
      block.header.proposer = Address::from_string(proposer);
    }
    block.header.model_hash = read_digest_bytes(in, offset);
    block.header.claimed_accuracy = read_f32(in, offset);
    block.model_state = deserialize_floats(in, offset);
    block.amlayer_config.channels = read_i64(in, offset);
    block.amlayer_config.kernel = read_i64(in, offset);
    block.amlayer_config.scaling_c = read_f32(in, offset);
    block.amlayer_config.power_iterations =
        static_cast<int>(read_i64(in, offset));
    chain.blocks_.push_back(std::move(block));
  }

  const std::uint64_t task_count = read_u64(in, offset);
  if (task_count > in.size()) throw std::invalid_argument("bad task count");
  for (std::uint64_t i = 0; i < task_count; ++i) {
    TrainingTask task;
    task.task_id = read_u64(in, offset);
    task.description = read_string(in, offset);
    task.target_accuracy = read_f32(in, offset);
    task.reward = read_u64(in, offset);
    chain.tasks_[task.task_id] = std::move(task);
  }

  const std::uint64_t balance_count = read_u64(in, offset);
  if (balance_count > in.size()) throw std::invalid_argument("bad balance count");
  for (std::uint64_t i = 0; i < balance_count; ++i) {
    const std::string addr = read_string(in, offset);
    chain.balances_[addr] = read_u64(in, offset);
  }
  chain.next_task_id_ = read_u64(in, offset);
  if (offset != in.size()) throw std::invalid_argument("trailing chain bytes");

  if (!chain.validate_chain()) {
    throw std::invalid_argument("restored chain fails hash-link validation");
  }
  return chain;
}

bool Blockchain::validate_chain() const {
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    if (!digest_equal(blocks_[i].header.parent_hash, blocks_[i - 1].hash())) {
      return false;
    }
    if (blocks_[i].header.height != i) return false;
  }
  return true;
}

}  // namespace rpol::chain
