// Fair-exchange escrow between the pool manager and workers — the paper's
// smart-contract future work ("we plan to leverage smart contracts to
// achieve fair exchange between the manager and workers inside the mining
// pool", Sec. IX), modelled as a deterministic on-chain state machine.
//
// Lifecycle:
//   kOpen      -> fund()                -> kFunded
//   kFunded    -> register_commitment() (one per worker, before outcomes)
//   kFunded    -> submit_outcome()      -> kChallenge (acceptance bitmap +
//                                          proposed payouts posted)
//   kChallenge -> dispute(worker, ...)   (a rejected worker appeals with a
//                                          transition proof; the contract
//                                          consults a verification arbiter —
//                                          in a real deployment an optimistic
//                                          fraud-proof game; here a callback
//                                          that re-executes the transition)
//   kChallenge -> settle()              -> kSettled (payouts released; any
//                                          successful dispute flips the
//                                          worker to accepted and re-splits)
//
// The escrow holds the funds the whole time: neither a manager who
// disappears after receiving results nor a worker who never committed can
// walk away with more than the state machine releases.

#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/rewards.h"

namespace rpol::chain {

enum class EscrowState { kOpen, kFunded, kChallenge, kSettled };

// Arbiter: returns true if the disputing worker's appeal is valid (its
// sampled transitions really do re-execute within the agreed threshold).
using DisputeArbiter = std::function<bool(std::size_t worker)>;

class FairExchangeEscrow {
 public:
  FairExchangeEscrow(std::size_t num_workers, core::RewardPolicy policy);

  EscrowState state() const { return state_; }
  std::uint64_t balance() const { return balance_; }

  // Manager deposits the (anticipated) block reward.
  void fund(std::uint64_t amount);

  // Worker publishes its epoch-commitment root before outcomes are known.
  void register_commitment(std::size_t worker, const Digest& root);
  std::optional<Digest> commitment_of(std::size_t worker) const;

  // Manager posts verification outcomes (per-worker verified-epoch counts;
  // workers without a registered commitment are forced to zero).
  void submit_outcome(const std::vector<std::int64_t>& verified_epochs);

  // A worker contests a zero outcome. Returns true if the arbiter upholds
  // the appeal, in which case the worker is credited `restored_epochs`.
  bool dispute(std::size_t worker, std::int64_t restored_epochs,
               const DisputeArbiter& arbiter);

  // Releases payouts and returns the final distribution.
  core::RewardDistribution settle();

 private:
  std::size_t num_workers_;
  core::RewardPolicy policy_;
  EscrowState state_ = EscrowState::kOpen;
  std::uint64_t balance_ = 0;
  std::map<std::size_t, Digest> commitments_;
  std::vector<std::int64_t> outcome_;

  void require_state(EscrowState expected, const char* action) const;
};

}  // namespace rpol::chain
