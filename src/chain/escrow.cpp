#include "chain/escrow.h"

#include <stdexcept>

namespace rpol::chain {

FairExchangeEscrow::FairExchangeEscrow(std::size_t num_workers,
                                       core::RewardPolicy policy)
    : num_workers_(num_workers), policy_(policy) {
  if (num_workers_ == 0) throw std::invalid_argument("escrow needs workers");
}

void FairExchangeEscrow::require_state(EscrowState expected,
                                       const char* action) const {
  if (state_ != expected) {
    throw std::logic_error(std::string("escrow: invalid state for ") + action);
  }
}

void FairExchangeEscrow::fund(std::uint64_t amount) {
  require_state(EscrowState::kOpen, "fund");
  if (amount == 0) throw std::invalid_argument("escrow funding must be positive");
  balance_ = amount;
  state_ = EscrowState::kFunded;
}

void FairExchangeEscrow::register_commitment(std::size_t worker,
                                             const Digest& root) {
  require_state(EscrowState::kFunded, "register_commitment");
  if (worker >= num_workers_) throw std::out_of_range("unknown worker");
  if (commitments_.contains(worker)) {
    throw std::logic_error("escrow: commitment already registered");
  }
  commitments_[worker] = root;
}

std::optional<Digest> FairExchangeEscrow::commitment_of(std::size_t worker) const {
  const auto it = commitments_.find(worker);
  if (it == commitments_.end()) return std::nullopt;
  return it->second;
}

void FairExchangeEscrow::submit_outcome(
    const std::vector<std::int64_t>& verified_epochs) {
  require_state(EscrowState::kFunded, "submit_outcome");
  if (verified_epochs.size() != num_workers_) {
    throw std::invalid_argument("outcome size mismatch");
  }
  outcome_ = verified_epochs;
  // A worker who never committed cannot be paid, whatever the manager says.
  for (std::size_t w = 0; w < num_workers_; ++w) {
    if (!commitments_.contains(w)) outcome_[w] = 0;
  }
  state_ = EscrowState::kChallenge;
}

bool FairExchangeEscrow::dispute(std::size_t worker, std::int64_t restored_epochs,
                                 const DisputeArbiter& arbiter) {
  require_state(EscrowState::kChallenge, "dispute");
  if (worker >= num_workers_) throw std::out_of_range("unknown worker");
  if (restored_epochs <= 0) throw std::invalid_argument("nothing to restore");
  if (!commitments_.contains(worker)) return false;  // never committed
  if (outcome_[worker] > 0) return false;            // already credited
  if (!arbiter || !arbiter(worker)) return false;
  outcome_[worker] = restored_epochs;
  return true;
}

core::RewardDistribution FairExchangeEscrow::settle() {
  require_state(EscrowState::kChallenge, "settle");
  core::RewardDistribution dist =
      core::distribute_rewards(balance_, outcome_, policy_);
  balance_ = 0;
  state_ = EscrowState::kSettled;
  return dist;
}

}  // namespace rpol::chain
