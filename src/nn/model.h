// Model: a named layer stack with flat state-vector access.
//
// RPoL's protocol deals in *weight vectors*: checkpoints, proofs, LSH
// digests and reproduction distances all operate on the flattened training
// state. Model therefore exposes
//   * state_vector()        — every parameter AND buffer, in a fixed order,
//   * load_state_vector()   — the exact inverse,
// so that "save checkpoint" and "restore checkpoint for re-execution" are
// lossless. (Optimizer slots are serialized separately by the optimizer;
// see nn/optim.h.)
//
// Models are move-only. To duplicate a model (e.g. the manager re-executing
// a worker's step), rebuild it from the same deterministic factory and call
// load_state_vector() — structure is a pure function of (config, seed).

#pragma once

#include <functional>

#include "nn/blocks.h"

namespace rpol::nn {

class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)), root_(name_) {}

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const std::string& name() const { return name_; }

  void add(LayerPtr layer);
  // Inserts a layer in front of the current stack — used to attach the
  // AMLayer after the base model is built (Sec. V-A).
  void prepend(LayerPtr layer);

  Tensor forward(const Tensor& input, bool training);
  Tensor backward(const Tensor& grad_output);
  Shape output_shape(const Shape& input_shape) const;

  // Parameter pointers in deterministic traversal order (cached).
  const std::vector<Param*>& params();
  // Trainable subset, same relative order.
  std::vector<Param*> trainable_params();

  std::int64_t num_parameters();          // all values incl. buffers
  std::int64_t num_trainable_parameters();

  // Flat state vector (parameters + buffers, fixed order).
  std::vector<float> state_vector();
  void load_state_vector(const std::vector<float>& state);

  // Per-element mask over the state vector: true where the element belongs
  // to a trainable parameter, false for buffers (BatchNorm running stats,
  // frozen AMLayer weights). Verification distances and LSH digests operate
  // on the trainable subset — buffer divergence scales with activation
  // magnitudes rather than step size and is covered by exact hashes instead.
  const std::vector<bool>& trainable_mask();

  void zero_grads();

 private:
  std::string name_ = "model";
  Sequential root_{"model"};
  std::vector<LayerPtr> prepended_;  // storage for prepended layers
  std::vector<Param*> param_cache_;
  std::vector<bool> trainable_mask_;
  bool cache_valid_ = false;

  void refresh_cache();
};

// A deterministic model constructor; calling it twice yields structurally
// identical models with identical initial weights.
using ModelFactory = std::function<Model()>;

}  // namespace rpol::nn
