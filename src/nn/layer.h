// Layer abstraction for the explicit-backprop neural-network library.
//
// Unlike a tape-based autograd, every layer implements its own backward
// pass and caches whatever it needs from the forward pass. This keeps the
// training step function fully deterministic and easy to re-execute — the
// property RPoL's verification depends on.
//
// Parameters and buffers are both represented as Param:
//   * trainable == true  → updated by the optimizer, e.g. conv weights;
//   * trainable == false → part of the model state but not optimized, e.g.
//     BatchNorm running statistics and the frozen AMLayer weights.
// Both kinds are included in the flattened training state so checkpoints
// capture everything needed for exact step re-execution.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace rpol::nn {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;        // same shape as value; zeroed by Optimizer::zero_grad.
  bool trainable = true;
  // Monotonic mutation counter for `value`. Layers cache packed weight
  // forms (tensor/packcache.h) keyed on this; EVERY site that writes
  // `value` after construction must call mark_updated() or packed-path
  // forwards will read stale weights. Current writers: optimizer steps,
  // Model::load_state_vector, BatchNorm running stats (unpacked, bumps
  // anyway for uniformity is unnecessary), and test perturbation helpers.
  std::uint64_t version = 0;

  Param() = default;
  Param(std::string n, Tensor v, bool train = true)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()),
        trainable(train) {}

  void mark_updated() { ++version; }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output. `training` selects batch-vs-running
  // statistics in BatchNorm and may be used by future stochastic layers.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  // Computes the gradient w.r.t. the layer input given the gradient w.r.t.
  // the output of the most recent forward() call, accumulating parameter
  // gradients along the way.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Appends raw pointers to this layer's parameters (and buffers) in a
  // deterministic order. Pointers remain valid for the layer's lifetime.
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  virtual std::string name() const = 0;

  // Output spatial/feature shape given an input shape; used by model
  // builders to chain layers without running data through them.
  virtual Shape output_shape(const Shape& input_shape) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace rpol::nn
