#include "nn/optim.h"

#include <cmath>
#include <stdexcept>

namespace rpol::nn {

Optimizer::Optimizer(std::vector<Param*> params) : all_params_(std::move(params)) {
  for (Param* p : all_params_) {
    if (p->trainable) params_.push_back(p);
  }
}

void Optimizer::apply_weight_decay(float weight_decay) {
  if (weight_decay == 0.0F) return;
  for (Param* p : params_) {
    p->grad.add_scaled(p->value, weight_decay);
  }
}

void Optimizer::zero_grad() {
  for (Param* p : all_params_) p->grad.zero();
}

void Optimizer::init_slots(bool second_bank) {
  slots_.clear();
  slots2_.clear();
  for (Param* p : params_) {
    slots_.emplace_back(p->value.shape());
    if (second_bank) slots2_.emplace_back(p->value.shape());
  }
}

std::vector<float> Optimizer::state_vector() const {
  std::vector<float> out;
  out.push_back(static_cast<float>(step_count_));
  for (const Tensor& t : slots_) {
    out.insert(out.end(), t.vec().begin(), t.vec().end());
  }
  for (const Tensor& t : slots2_) {
    out.insert(out.end(), t.vec().begin(), t.vec().end());
  }
  return out;
}

void Optimizer::load_state_vector(const std::vector<float>& state) {
  std::size_t offset = 0;
  if (state.empty()) throw std::invalid_argument("optimizer state empty");
  step_count_ = static_cast<std::int64_t>(state[offset++]);
  auto load_bank = [&](std::vector<Tensor>& bank) {
    for (Tensor& t : bank) {
      const std::size_t n = static_cast<std::size_t>(t.numel());
      if (offset + n > state.size()) {
        throw std::invalid_argument("optimizer state too short");
      }
      std::copy(state.begin() + static_cast<std::ptrdiff_t>(offset),
                state.begin() + static_cast<std::ptrdiff_t>(offset + n),
                t.vec().begin());
      offset += n;
    }
  };
  load_bank(slots_);
  load_bank(slots2_);
  if (offset != state.size()) {
    throw std::invalid_argument("optimizer state too long");
  }
}

// ---------------------------------------------------------------------------

Sgd::Sgd(std::vector<Param*> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::step() {
  ++step_count_;
  for (Param* p : params_) {
    p->value.add_scaled(p->grad, -lr_);
    p->mark_updated();
  }
}

SgdMomentum::SgdMomentum(std::vector<Param*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  init_slots(/*second_bank=*/false);
}

void SgdMomentum::step() {
  ++step_count_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& v = slots_[i];
    Param* p = params_[i];
    v *= momentum_;
    v += p->grad;
    p->value.add_scaled(v, -lr_);
    p->mark_updated();
  }
}

RmsProp::RmsProp(std::vector<Param*> params, float lr, float rho, float eps)
    : Optimizer(std::move(params)), lr_(lr), rho_(rho), eps_(eps) {
  init_slots(/*second_bank=*/false);
}

void RmsProp::step() {
  ++step_count_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& s = slots_[i];
    Param* p = params_[i];
    float* ps = s.data();
    const float* pg = p->grad.data();
    float* pv = p->value.data();
    const std::int64_t n = s.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      ps[j] = rho_ * ps[j] + (1.0F - rho_) * pg[j] * pg[j];
      pv[j] -= lr_ * pg[j] / (std::sqrt(ps[j]) + eps_);
    }
    p->mark_updated();
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  init_slots(/*second_bank=*/true);
}

void Adam::step() {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float corrected_lr =
      static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& m = slots_[i];
    Tensor& v = slots2_[i];
    Param* p = params_[i];
    float* pm = m.data();
    float* pv = v.data();
    const float* pg = p->grad.data();
    float* pw = p->value.data();
    const std::int64_t n = m.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      pm[j] = beta1_ * pm[j] + (1.0F - beta1_) * pg[j];
      pv[j] = beta2_ * pv[j] + (1.0F - beta2_) * pg[j] * pg[j];
      pw[j] -= corrected_lr * pm[j] / (std::sqrt(pv[j]) + eps_);
    }
    p->mark_updated();
  }
}

std::string optimizer_kind_name(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kSgdMomentum: return "sgdm";
    case OptimizerKind::kRmsProp: return "rmsprop";
    case OptimizerKind::kAdam: return "adam";
  }
  return "unknown";
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<Param*> params, float lr) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<Sgd>(std::move(params), lr);
    case OptimizerKind::kSgdMomentum:
      return std::make_unique<SgdMomentum>(std::move(params), lr);
    case OptimizerKind::kRmsProp:
      return std::make_unique<RmsProp>(std::move(params), lr);
    case OptimizerKind::kAdam:
      return std::make_unique<Adam>(std::move(params), lr);
  }
  throw std::invalid_argument("unknown optimizer kind");
}

}  // namespace rpol::nn
