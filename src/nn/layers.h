// Primitive layers: convolution, linear, batch norm, activations, pooling.

#pragma once

#include "nn/layer.h"
#include "tensor/layout.h"
#include "tensor/ops.h"
#include "tensor/packcache.h"

namespace rpol::nn {

// 2-D convolution (square kernel/stride). Weight layout:
// (out_channels, in_channels * kernel * kernel); He init.
//
// Two bitwise-identical execution paths (see tensor/layout.h):
//   * direct (default for 1x1/3x3): input reordered to nChw8c once per
//     call, weights packed to OIhw8i8o + W^T cached across steps keyed by
//     the weight version, forward/backward run blocked direct kernels and
//     never materialize im2col columns;
//   * fallback (RPOL_DIRECT_CONV=0, or kernel sizes without a direct
//     kernel): classic im2col + GEMM, with the column buffer's capacity
//     reused across batches and released after backward.
class Conv2d : public Layer {
 public:
  Conv2d(Conv2dSpec spec, Rng& rng, bool bias = true, std::string name = "conv");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

  const Conv2dSpec& spec() const { return spec_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  Conv2dSpec spec_;
  Param weight_;
  Param bias_;
  bool has_bias_;
  std::string name_;
  // Forward cache. Exactly one of the two buffers is live per step —
  // cached_cols_ on the fallback path, cached_input_blocked_ on the direct
  // path — and backward releases it (keeping capacity for the next batch).
  Tensor cached_cols_;
  Tensor cached_input_blocked_;
  Shape cached_input_shape_;
  bool used_direct_ = false;
  // Packed weight forms, rebuilt only when weight_.version changes.
  PackCache<layout::ConvWeightPack> pack_cache_;
  // Charges the retained capacity of the two scratch buffers above to the
  // "scratch" memory tag (obs/mem.h); refreshed after forward/backward.
  obs::MemScope scratch_mem_{obs::MemTag::kScratch};
  void account_scratch() {
    scratch_mem_.set(static_cast<std::uint64_t>(
                         cached_cols_.vec().capacity() +
                         cached_input_blocked_.vec().capacity()) *
                     sizeof(float));
  }
};

// Fully connected layer: y = x W^T + b, W is (out_features, in_features).
// The forward GEMM runs against a panel-packed W (ops.h PackedPanels)
// cached across steps keyed by the weight version; bitwise-identical to
// the unpacked matmul_nt, which remains reachable via RPOL_DIRECT_CONV=0.
class Linear : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         std::string name = "linear");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Param weight_;
  Param bias_;
  std::string name_;
  Tensor cached_input_;
  PackCache<PackedPanels> pack_cache_;
};

// Spatial batch normalization over (N, H, W) per channel, with running
// statistics kept as non-trainable params so they travel with checkpoints.
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1F,
                       float eps = 1e-5F, std::string name = "bn");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override { return input_shape; }

 private:
  std::int64_t channels_;
  float momentum_;
  float eps_;
  Param gamma_;
  Param beta_;
  Param running_mean_;  // non-trainable buffer
  Param running_var_;   // non-trainable buffer
  std::string name_;
  // Forward cache (training mode).
  Tensor cached_input_;
  std::vector<float> cached_mean_;
  std::vector<float> cached_inv_std_;
};

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override { return input_shape; }

 private:
  std::string name_;
  Tensor cached_mask_;
};

// 2x2 max pooling with stride 2 (the only configuration VGG needs).
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::string name = "maxpool") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> cached_argmax_;
};

// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
};

// Deterministic inverted dropout.
//
// Stochastic layers are a hazard for replay-based verification: if the
// dropout masks were drawn from hidden RNG state, the manager could never
// re-execute a training step exactly. This implementation derives each
// step's mask from PRF-style seeding of (layer seed, step counter), and the
// counter itself is a non-trainable parameter — checkpointed with the rest
// of the training state — so re-execution from any checkpoint resumes the
// exact mask sequence.
class Dropout : public Layer {
 public:
  Dropout(float rate, std::uint64_t seed, std::string name = "dropout");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override { return input_shape; }

  float rate() const { return rate_; }
  // Forward passes executed in training mode so far (fp32 storage caps the
  // faithful range at 2^24 steps — far beyond any simulated epoch).
  std::int64_t counter() const {
    return static_cast<std::int64_t>(counter_.value.at(0));
  }

 private:
  float rate_;
  std::uint64_t seed_;
  std::string name_;
  Param counter_;        // non-trainable, 1 element
  Tensor cached_mask_;   // scaled keep-mask of the last training forward
};

// Reshapes (N, C, H, W) -> (N, C*H*W); identity on rank-2 input.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
};

}  // namespace rpol::nn
