// Model zoo: scaled-down but topologically faithful versions of the
// architectures the paper trains (ResNet18, ResNet50, VGG16), plus an MLP
// for protocol-heavy experiments where the architecture is irrelevant.
//
// "Mini" means reduced width/depth and input size so a single CPU core can
// train them; the residual structure (required by the AMLayer analysis) and
// the block types (basic vs bottleneck) match the originals. The *real*
// parameter counts of the paper's models live in src/sim/model_specs.h and
// drive the communication/storage cost model.

#pragma once

#include <array>

#include "nn/model.h"

namespace rpol::nn {

struct ModelConfig {
  std::int64_t in_channels = 3;
  std::int64_t image_size = 8;     // square inputs
  std::int64_t num_classes = 10;
  std::int64_t width = 4;          // base channel count of the first stage
  std::uint64_t seed = 1;          // weight-init seed (deterministic build)
};

// ResNet18 family: stem conv3x3 + 4 stages x {blocks_per_stage} BasicBlocks
// (widths w, 2w, 4w, 8w; strides 1,2,2,2) + GAP + FC.
Model make_mini_resnet18(const ModelConfig& cfg, int blocks_per_stage = 2);

// ResNet50 family: stem conv3x3 + 4 stages of BottleneckBlocks
// (mid widths w, 2w, 4w, 8w; strides 1,2,2,2) + GAP + FC.
// stage_depths defaults to {1, 2, 2, 1}; pass {3, 4, 6, 3} for the full
// ResNet50 stage layout.
Model make_mini_resnet50(const ModelConfig& cfg,
                         std::array<int, 4> stage_depths = {1, 2, 2, 1});

// VGG16 family: conv3x3 stacks with maxpool between stages + FC head.
// Stage widths w, 2w, 4w, 8w with depths 2,2,3,3 (a 10-conv VGG; the real
// VGG16's 13 convs need 224px inputs to make sense).
Model make_mini_vgg16(const ModelConfig& cfg);

// Plain MLP over flattened input: hidden ReLU layers + linear head.
Model make_mlp(std::int64_t in_features, std::vector<std::int64_t> hidden,
               std::int64_t num_classes, std::uint64_t seed);

// Deterministic factory helpers: calling the returned function twice yields
// bit-identical models.
ModelFactory mini_resnet18_factory(ModelConfig cfg, int blocks_per_stage = 2);
ModelFactory mini_resnet50_factory(ModelConfig cfg,
                                   std::array<int, 4> stage_depths = {1, 2, 2, 1});
ModelFactory mini_vgg16_factory(ModelConfig cfg);
ModelFactory mlp_factory(std::int64_t in_features, std::vector<std::int64_t> hidden,
                         std::int64_t num_classes, std::uint64_t seed);

}  // namespace rpol::nn
