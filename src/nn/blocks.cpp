#include "nn/blocks.h"

namespace rpol::nn {

// ---------------------------------------------------------------------------
// Sequential

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

Shape Sequential::output_shape(const Shape& input_shape) const {
  Shape s = input_shape;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

// ---------------------------------------------------------------------------
// BasicBlock

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Rng& rng, std::string name)
    : name_(std::move(name)), main_(name_ + ".main"), skip_(name_ + ".skip"),
      out_relu_(name_ + ".out_relu"),
      identity_skip_(stride == 1 && in_channels == out_channels) {
  main_.add(std::make_unique<Conv2d>(
      Conv2dSpec{in_channels, out_channels, 3, stride, 1}, rng, /*bias=*/false,
      name_ + ".conv1"));
  main_.add(std::make_unique<BatchNorm2d>(out_channels, 0.1F, 1e-5F, name_ + ".bn1"));
  main_.add(std::make_unique<ReLU>(name_ + ".relu1"));
  main_.add(std::make_unique<Conv2d>(
      Conv2dSpec{out_channels, out_channels, 3, 1, 1}, rng, /*bias=*/false,
      name_ + ".conv2"));
  main_.add(std::make_unique<BatchNorm2d>(out_channels, 0.1F, 1e-5F, name_ + ".bn2"));
  if (!identity_skip_) {
    skip_.add(std::make_unique<Conv2d>(
        Conv2dSpec{in_channels, out_channels, 1, stride, 0}, rng, /*bias=*/false,
        name_ + ".proj"));
    skip_.add(std::make_unique<BatchNorm2d>(out_channels, 0.1F, 1e-5F,
                                            name_ + ".proj_bn"));
  }
}

Tensor BasicBlock::forward(const Tensor& input, bool training) {
  Tensor main_out = main_.forward(input, training);
  if (identity_skip_) {
    main_out += input;
  } else {
    main_out += skip_.forward(input, training);
  }
  return out_relu_.forward(main_out, training);
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  const Tensor g_sum = out_relu_.backward(grad_output);
  Tensor dx = main_.backward(g_sum);
  if (identity_skip_) {
    dx += g_sum;
  } else {
    dx += skip_.backward(g_sum);
  }
  return dx;
}

void BasicBlock::collect_params(std::vector<Param*>& out) {
  main_.collect_params(out);
  skip_.collect_params(out);
}

Shape BasicBlock::output_shape(const Shape& input_shape) const {
  return main_.output_shape(input_shape);
}

// ---------------------------------------------------------------------------
// BottleneckBlock

BottleneckBlock::BottleneckBlock(std::int64_t in_channels, std::int64_t mid_channels,
                                 std::int64_t stride, Rng& rng, std::string name)
    : name_(std::move(name)), main_(name_ + ".main"), skip_(name_ + ".skip"),
      out_relu_(name_ + ".out_relu"),
      identity_skip_(stride == 1 && in_channels == mid_channels * kExpansion) {
  const std::int64_t out_channels = mid_channels * kExpansion;
  main_.add(std::make_unique<Conv2d>(
      Conv2dSpec{in_channels, mid_channels, 1, 1, 0}, rng, /*bias=*/false,
      name_ + ".conv1"));
  main_.add(std::make_unique<BatchNorm2d>(mid_channels, 0.1F, 1e-5F, name_ + ".bn1"));
  main_.add(std::make_unique<ReLU>(name_ + ".relu1"));
  main_.add(std::make_unique<Conv2d>(
      Conv2dSpec{mid_channels, mid_channels, 3, stride, 1}, rng, /*bias=*/false,
      name_ + ".conv2"));
  main_.add(std::make_unique<BatchNorm2d>(mid_channels, 0.1F, 1e-5F, name_ + ".bn2"));
  main_.add(std::make_unique<ReLU>(name_ + ".relu2"));
  main_.add(std::make_unique<Conv2d>(
      Conv2dSpec{mid_channels, out_channels, 1, 1, 0}, rng, /*bias=*/false,
      name_ + ".conv3"));
  main_.add(std::make_unique<BatchNorm2d>(out_channels, 0.1F, 1e-5F, name_ + ".bn3"));
  if (!identity_skip_) {
    skip_.add(std::make_unique<Conv2d>(
        Conv2dSpec{in_channels, out_channels, 1, stride, 0}, rng, /*bias=*/false,
        name_ + ".proj"));
    skip_.add(std::make_unique<BatchNorm2d>(out_channels, 0.1F, 1e-5F,
                                            name_ + ".proj_bn"));
  }
}

Tensor BottleneckBlock::forward(const Tensor& input, bool training) {
  Tensor main_out = main_.forward(input, training);
  if (identity_skip_) {
    main_out += input;
  } else {
    main_out += skip_.forward(input, training);
  }
  return out_relu_.forward(main_out, training);
}

Tensor BottleneckBlock::backward(const Tensor& grad_output) {
  const Tensor g_sum = out_relu_.backward(grad_output);
  Tensor dx = main_.backward(g_sum);
  if (identity_skip_) {
    dx += g_sum;
  } else {
    dx += skip_.backward(g_sum);
  }
  return dx;
}

void BottleneckBlock::collect_params(std::vector<Param*>& out) {
  main_.collect_params(out);
  skip_.collect_params(out);
}

Shape BottleneckBlock::output_shape(const Shape& input_shape) const {
  return main_.output_shape(input_shape);
}

}  // namespace rpol::nn
