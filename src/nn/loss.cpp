#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace rpol::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels) {
  if (logits.rank() != 2 ||
      logits.dim(0) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("SoftmaxCrossEntropy shape mismatch");
  }
  cached_probs_ = softmax_rows(logits);
  cached_labels_ = labels;
  const std::int64_t n = logits.dim(0);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float p = cached_probs_.at2(i, labels[static_cast<std::size_t>(i)]);
    loss -= std::log(std::max(p, 1e-12F));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
  Tensor grad = cached_probs_;
  const std::int64_t n = grad.dim(0);
  const std::int64_t cols = grad.dim(1);
  const float inv_n = 1.0F / static_cast<float>(n);
  float* pg = grad.data();
  // Row-parallel (p - 1[label]) * inv_n; elementwise, so any partition of
  // the rows produces identical bits.
  runtime::parallel_for(0, n, 8, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* row = pg + i * cols;
      row[cached_labels_[static_cast<std::size_t>(i)]] -= 1.0F;
      for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv_n;
    }
  });
  return grad;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  const std::int64_t n = logits.dim(0);
  if (n == 0) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (argmax_row(logits, i) == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace rpol::nn
