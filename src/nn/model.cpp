#include "nn/model.h"

#include <stdexcept>

namespace rpol::nn {

void Model::add(LayerPtr layer) {
  root_.add(std::move(layer));
  cache_valid_ = false;
}

void Model::prepend(LayerPtr layer) {
  prepended_.insert(prepended_.begin(), std::move(layer));
  cache_valid_ = false;
}

Tensor Model::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : prepended_) x = layer->forward(x, training);
  return root_.forward(x, training);
}

Tensor Model::backward(const Tensor& grad_output) {
  Tensor g = root_.backward(grad_output);
  for (auto it = prepended_.rbegin(); it != prepended_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

Shape Model::output_shape(const Shape& input_shape) const {
  Shape s = input_shape;
  for (const auto& layer : prepended_) s = layer->output_shape(s);
  return root_.output_shape(s);
}

void Model::refresh_cache() {
  param_cache_.clear();
  for (auto& layer : prepended_) layer->collect_params(param_cache_);
  root_.collect_params(param_cache_);
  trainable_mask_.clear();
  for (Param* p : param_cache_) {
    trainable_mask_.insert(trainable_mask_.end(),
                           static_cast<std::size_t>(p->value.numel()),
                           p->trainable);
  }
  cache_valid_ = true;
}

const std::vector<bool>& Model::trainable_mask() {
  if (!cache_valid_) refresh_cache();
  return trainable_mask_;
}

const std::vector<Param*>& Model::params() {
  if (!cache_valid_) refresh_cache();
  return param_cache_;
}

std::vector<Param*> Model::trainable_params() {
  std::vector<Param*> out;
  for (Param* p : params()) {
    if (p->trainable) out.push_back(p);
  }
  return out;
}

std::int64_t Model::num_parameters() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

std::int64_t Model::num_trainable_parameters() {
  std::int64_t n = 0;
  for (Param* p : params()) {
    if (p->trainable) n += p->value.numel();
  }
  return n;
}

std::vector<float> Model::state_vector() {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(num_parameters()));
  for (Param* p : params()) {
    out.insert(out.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return out;
}

void Model::load_state_vector(const std::vector<float>& state) {
  std::size_t offset = 0;
  for (Param* p : params()) {
    const std::size_t n = static_cast<std::size_t>(p->value.numel());
    if (offset + n > state.size()) {
      throw std::invalid_argument("state vector too short for model " + name_);
    }
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(offset),
              state.begin() + static_cast<std::ptrdiff_t>(offset + n),
              p->value.vec().begin());
    p->mark_updated();  // invalidate packed-weight caches (tensor/packcache.h)
    offset += n;
  }
  if (offset != state.size()) {
    throw std::invalid_argument("state vector too long for model " + name_);
  }
}

void Model::zero_grads() {
  for (Param* p : params()) p->grad.zero();
}

}  // namespace rpol::nn
