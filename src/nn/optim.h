// First-order optimizers: SGD, SGD with momentum, RMSprop, Adam.
//
// The paper evaluates reproduction errors under SGDM (the default training
// optimizer, lr 0.1 / momentum 0.9), RMSprop, and Adam (Sec. VII-C).
//
// For RPoL's verification, the optimizer *state* (momentum / second-moment
// slots, Adam's step counter) is part of the training state: re-executing a
// checkpointed step must start from the exact same slots. Optimizers
// therefore expose state_vector()/load_state_vector() mirroring Model.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace rpol::nn {

class Optimizer {
 public:
  // Binds to a parameter set; pointers must outlive the optimizer.
  explicit Optimizer(std::vector<Param*> params);
  virtual ~Optimizer() = default;

  // Applies one update using the parameters' current gradients. Only
  // trainable parameters are touched.
  virtual void step() = 0;

  virtual std::string name() const = 0;

  // Adjusts the learning rate for subsequent steps (schedules are driven by
  // the caller; the rate is NOT part of the serialized optimizer state
  // because it is a pure function of the step index and the hyperparams).
  virtual void set_learning_rate(float lr) = 0;

  // Adds weight_decay * w to every trainable gradient (decoupled so every
  // optimizer kind shares the same L2 semantics). Call before step().
  void apply_weight_decay(float weight_decay);

  void zero_grad();

  // Flattened optimizer state (slot tensors + counters); empty for plain SGD.
  virtual std::vector<float> state_vector() const;
  virtual void load_state_vector(const std::vector<float>& state);

 protected:
  std::vector<Param*> params_;           // trainable only
  std::vector<Param*> all_params_;       // as given (for zero_grad)
  std::vector<Tensor> slots_;            // per-parameter state tensors
  std::vector<Tensor> slots2_;           // second slot bank (Adam)
  std::int64_t step_count_ = 0;

  void init_slots(bool second_bank);
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr);
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  std::string name() const override { return "sgd"; }

 private:
  float lr_;
};

// SGD with (heavy-ball) momentum: v = mu*v + g; w -= lr*v.
class SgdMomentum : public Optimizer {
 public:
  SgdMomentum(std::vector<Param*> params, float lr, float momentum = 0.9F);
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  std::string name() const override { return "sgdm"; }

 private:
  float lr_;
  float momentum_;
};

class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Param*> params, float lr, float rho = 0.99F,
          float eps = 1e-8F);
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  std::string name() const override { return "rmsprop"; }

 private:
  float lr_;
  float rho_;
  float eps_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9F,
       float beta2 = 0.999F, float eps = 1e-8F);
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  std::string name() const override { return "adam"; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
};

// Optimizer kinds, for configuration sweeps (Sec. VII-C).
enum class OptimizerKind { kSgd, kSgdMomentum, kRmsProp, kAdam };

std::string optimizer_kind_name(OptimizerKind kind);

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<Param*> params, float lr);

}  // namespace rpol::nn
