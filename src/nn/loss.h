// Softmax cross-entropy loss and classification metrics.

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ops.h"

namespace rpol::nn {

// Combined softmax + cross-entropy: numerically stable and with the simple
// gradient (softmax(logits) - onehot) / batch_size.
class SoftmaxCrossEntropy {
 public:
  // logits: (N, K); labels: N class indices in [0, K). Returns mean loss.
  float forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  // Gradient w.r.t. logits of the most recent forward() call.
  Tensor backward() const;

 private:
  Tensor cached_probs_;
  std::vector<std::int64_t> cached_labels_;
};

// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace rpol::nn
