#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace rpol::nn {

namespace {

// Parallel loops in this file partition disjoint output slices (a channel,
// an (img, ch) plane, or an element range) across the deterministic thread
// pool; per-element accumulation stays serial and fixed-order, so results
// are bit-identical for any RPOL_THREADS setting.

// Rearranges a GEMM output of shape (C, N*H*W) — column index ordered as
// (img*H + y)*W + x — into NCHW.
Tensor gemm_out_to_nchw(const Tensor& gemm_out, std::int64_t n, std::int64_t c,
                        std::int64_t h, std::int64_t w) {
  Tensor out({n, c, h, w});
  const std::int64_t hw = h * w;
  const std::int64_t cols = n * hw;
  const float* src = gemm_out.data();
  float* dst = out.data();
  runtime::parallel_for(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      for (std::int64_t img = 0; img < n; ++img) {
        const float* s = src + ch * cols + img * hw;
        float* d = dst + (img * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) d[i] = s[i];
      }
    }
  });
  return out;
}

// Inverse of gemm_out_to_nchw.
Tensor nchw_to_gemm_out(const Tensor& nchw) {
  const std::int64_t n = nchw.dim(0), c = nchw.dim(1);
  const std::int64_t h = nchw.dim(2), w = nchw.dim(3);
  const std::int64_t hw = h * w;
  const std::int64_t cols = n * hw;
  Tensor out({c, cols});
  const float* src = nchw.data();
  float* dst = out.data();
  runtime::parallel_for(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      for (std::int64_t img = 0; img < n; ++img) {
        const float* s = src + (img * c + ch) * hw;
        float* d = dst + ch * cols + img * hw;
        for (std::int64_t i = 0; i < hw; ++i) d[i] = s[i];
      }
    }
  });
  return out;
}

// Bias gradient: db[oc] += sum over (img, y, x) of dY, accumulated in
// double in exactly the j = (img*oh + y)*ow + x order the gemm-layout
// version of this loop used, so both conv paths produce identical bits.
void conv_bias_grad_nchw(const Tensor& grad_output, std::int64_t out_channels,
                         Tensor& bias_grad) {
  const std::int64_t n = grad_output.dim(0);
  const std::int64_t hw = grad_output.dim(2) * grad_output.dim(3);
  const float* pg = grad_output.data();
  float* pbg = bias_grad.data();
  runtime::parallel_for(
      0, out_channels, 1, [&](std::int64_t oc0, std::int64_t oc1) {
        for (std::int64_t oc = oc0; oc < oc1; ++oc) {
          double acc = 0.0;
          for (std::int64_t img = 0; img < n; ++img) {
            const float* plane = pg + (img * out_channels + oc) * hw;
            for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
          }
          pbg[oc] += static_cast<float>(acc);
        }
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(Conv2dSpec spec, Rng& rng, bool bias, std::string name)
    : spec_(spec), has_bias_(bias), name_(std::move(name)) {
  const std::int64_t fan_in = spec_.in_channels * spec_.kernel * spec_.kernel;
  const float he_std = std::sqrt(2.0F / static_cast<float>(fan_in));
  weight_ = Param(name_ + ".weight",
                  Tensor::randn({spec_.out_channels, fan_in}, rng, he_std));
  if (has_bias_) {
    bias_ = Param(name_ + ".bias", Tensor::zeros({spec_.out_channels}));
  }
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 4) throw std::invalid_argument("Conv2d expects NCHW");
  return {input_shape[0], spec_.out_channels, spec_.out_size(input_shape[2]),
          spec_.out_size(input_shape[3])};
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  used_direct_ =
      layout::direct_conv_enabled() && layout::direct_conv_supports(spec_);
  if (used_direct_) {
    cached_cols_.clear_keep_capacity();
    const layout::ConvWeightPack& pack = pack_cache_.get(
        weight_.value, weight_.version, [this](const Tensor& w) {
          return layout::make_conv_weight_pack(w, spec_);
        });
    cached_input_blocked_ = layout::nchw_to_nchw8c(input, spec_.padding);
    account_scratch();
    Tensor out_blocked = layout::conv2d_direct_forward(
        cached_input_blocked_, pack.blocked,
        has_bias_ ? bias_.value : Tensor(), spec_, input.dim(2), input.dim(3));
    return layout::nchw8c_to_nchw(out_blocked, spec_.out_channels);
  }
  cached_input_blocked_.clear_keep_capacity();
  im2col_into(input, spec_, cached_cols_);
  account_scratch();
  Tensor gemm = matmul(weight_.value, cached_cols_);
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = spec_.out_size(input.dim(2));
  const std::int64_t ow = spec_.out_size(input.dim(3));
  if (has_bias_) {
    const std::int64_t cols = n * oh * ow;
    float* p = gemm.data();
    const float* pb = bias_.value.data();
    runtime::parallel_for(
        0, spec_.out_channels, 1, [&](std::int64_t oc0, std::int64_t oc1) {
          for (std::int64_t oc = oc0; oc < oc1; ++oc) {
            const float b = pb[oc];
            for (std::int64_t j = 0; j < cols; ++j) p[oc * cols + j] += b;
          }
        });
  }
  return gemm_out_to_nchw(gemm, n, spec_.out_channels, oh, ow);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (used_direct_) {
    const layout::ConvWeightPack& pack = pack_cache_.get(
        weight_.value, weight_.version, [this](const Tensor& w) {
          return layout::make_conv_weight_pack(w, spec_);
        });
    const std::int64_t in_h = cached_input_shape_[2];
    const std::int64_t in_w = cached_input_shape_[3];
    const Tensor grad_blocked = layout::nchw_to_nchw8c(grad_output);
    layout::conv2d_direct_backward_weights(grad_blocked, cached_input_blocked_,
                                           spec_, in_h, in_w, weight_.grad);
    if (has_bias_) {
      conv_bias_grad_nchw(grad_output, spec_.out_channels, bias_.grad);
    }
    Tensor dx = layout::conv2d_direct_backward_data(
        grad_output, pack.transposed, spec_, cached_input_shape_);
    cached_input_blocked_.clear_keep_capacity();
    account_scratch();
    return dx;
  }
  const Tensor grad_gemm = nchw_to_gemm_out(grad_output);
  // dW += dY * cols^T
  const Tensor dw = matmul_nt(grad_gemm, cached_cols_);
  weight_.grad += dw;
  if (has_bias_) {
    conv_bias_grad_nchw(grad_output, spec_.out_channels, bias_.grad);
  }
  // dX = col2im(W^T * dY)
  const Tensor dcols = matmul_tn(weight_.value, grad_gemm);
  cached_cols_.clear_keep_capacity();
  return col2im(dcols, spec_, cached_input_shape_);
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

// ---------------------------------------------------------------------------
// Linear

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               std::string name)
    : in_features_(in_features), out_features_(out_features),
      name_(std::move(name)) {
  const float he_std = std::sqrt(2.0F / static_cast<float>(in_features));
  weight_ = Param(name_ + ".weight",
                  Tensor::randn({out_features_, in_features_}, rng, he_std));
  bias_ = Param(name_ + ".bias", Tensor::zeros({out_features_}));
}

Shape Linear::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 2) throw std::invalid_argument("Linear expects (N, F)");
  return {input_shape[0], out_features_};
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Linear input shape mismatch: " +
                                shape_to_string(input.shape()));
  }
  cached_input_ = input;
  Tensor out;
  if (layout::direct_conv_enabled()) {
    const PackedPanels& panels = pack_cache_.get(
        weight_.value, weight_.version,
        [](const Tensor& w) { return pack_nt_panels(w); });
    out = matmul_nt_packed(input, panels);
  } else {
    out = matmul_nt(input, weight_.value);
  }
  const std::int64_t n = out.dim(0);
  float* po = out.data();
  const float* pb = bias_.value.data();
  runtime::parallel_for(0, n, 8, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* row = po + i * out_features_;
      for (std::int64_t j = 0; j < out_features_; ++j) row[j] += pb[j];
    }
  });
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  // dW += dY^T X ; db += colsum(dY) ; dX = dY W
  weight_.grad += matmul_tn(grad_output, cached_input_);
  const std::int64_t n = grad_output.dim(0);
  const float* pg = grad_output.data();
  float* pbg = bias_.grad.data();
  runtime::parallel_for(0, out_features_, 4, [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t j = j0; j < j1; ++j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) acc += pg[i * out_features_ + j];
      pbg[j] += static_cast<float>(acc);
    }
  });
  return matmul(grad_output, weight_.value);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// ---------------------------------------------------------------------------
// BatchNorm2d

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps,
                         std::string name)
    : channels_(channels), momentum_(momentum), eps_(eps), name_(std::move(name)) {
  gamma_ = Param(name_ + ".gamma", Tensor::full({channels_}, 1.0F));
  beta_ = Param(name_ + ".beta", Tensor::zeros({channels_}));
  running_mean_ = Param(name_ + ".running_mean", Tensor::zeros({channels_}),
                        /*train=*/false);
  running_var_ = Param(name_ + ".running_var", Tensor::full({channels_}, 1.0F),
                       /*train=*/false);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d input shape mismatch");
  }
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t count = n * h * w;
  Tensor out(input.shape());

  cached_mean_.assign(static_cast<std::size_t>(channels_), 0.0F);
  cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0F);

  const std::int64_t hw = h * w;
  const float* pin = input.data();
  float* pout = out.data();
  // Per-channel statistics and normalization: each channel is owned by one
  // thread, with serial fixed-order (img, y, x) accumulation — bitwise
  // deterministic for any thread count.
  runtime::parallel_for(0, channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      float mean = 0.0F, var = 0.0F;
      if (training) {
        double sum = 0.0;
        for (std::int64_t img = 0; img < n; ++img) {
          const float* plane = pin + (img * channels_ + c) * hw;
          for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
        }
        mean = static_cast<float>(sum / static_cast<double>(count));
        double sq = 0.0;
        for (std::int64_t img = 0; img < n; ++img) {
          const float* plane = pin + (img * channels_ + c) * hw;
          for (std::int64_t i = 0; i < hw; ++i) {
            const double d = plane[i] - mean;
            sq += d * d;
          }
        }
        var = static_cast<float>(sq / static_cast<double>(count));
        running_mean_.value.at(c) =
            (1.0F - momentum_) * running_mean_.value.at(c) + momentum_ * mean;
        running_var_.value.at(c) =
            (1.0F - momentum_) * running_var_.value.at(c) + momentum_ * var;
      } else {
        mean = running_mean_.value.at(c);
        var = running_var_.value.at(c);
      }
      const float inv_std = 1.0F / std::sqrt(var + eps_);
      cached_mean_[static_cast<std::size_t>(c)] = mean;
      cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
      const float g = gamma_.value.at(c), b = beta_.value.at(c);
      for (std::int64_t img = 0; img < n; ++img) {
        const float* plane = pin + (img * channels_ + c) * hw;
        float* out_plane = pout + (img * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          out_plane[i] = g * (plane[i] - mean) * inv_std + b;
        }
      }
    }
  });
  cached_input_ = input;
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  const Tensor& x = cached_input_;
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t count = n * h * w;
  Tensor dx(x.shape());

  const std::int64_t hw = h * w;
  const float* px = x.data();
  const float* pg = grad_output.data();
  float* pdx = dx.data();
  runtime::parallel_for(0, channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const float mean = cached_mean_[static_cast<std::size_t>(c)];
      const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
      const float g = gamma_.value.at(c);
      double sum_dy = 0.0, sum_dy_xhat = 0.0;
      for (std::int64_t img = 0; img < n; ++img) {
        const std::int64_t base = (img * channels_ + c) * hw;
        const float* gp = pg + base;
        const float* xp = px + base;
        for (std::int64_t i = 0; i < hw; ++i) {
          const float dy = gp[i];
          const float xhat = (xp[i] - mean) * inv_std;
          sum_dy += dy;
          sum_dy_xhat += static_cast<double>(dy) * xhat;
        }
      }
      gamma_.grad.at(c) += static_cast<float>(sum_dy_xhat);
      beta_.grad.at(c) += static_cast<float>(sum_dy);

      const float inv_count = 1.0F / static_cast<float>(count);
      for (std::int64_t img = 0; img < n; ++img) {
        const std::int64_t base = (img * channels_ + c) * hw;
        const float* gp = pg + base;
        const float* xp = px + base;
        float* dp = pdx + base;
        for (std::int64_t i = 0; i < hw; ++i) {
          const float dy = gp[i];
          const float xhat = (xp[i] - mean) * inv_std;
          dp[i] = g * inv_std *
                  (dy - static_cast<float>(sum_dy) * inv_count -
                   xhat * static_cast<float>(sum_dy_xhat) * inv_count);
        }
      }
    }
  });
  return dx;
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

// ---------------------------------------------------------------------------
// ReLU

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  cached_mask_ = Tensor(input.shape());
  float* po = out.data();
  float* pm = cached_mask_.data();
  const std::int64_t n = input.numel();
  runtime::parallel_for(0, n, 4096, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (po[i] > 0.0F) {
        pm[i] = 1.0F;
      } else {
        po[i] = 0.0F;
      }
    }
  });
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor dx = grad_output;
  const float* pm = cached_mask_.data();
  float* pd = dx.data();
  const std::int64_t n = dx.numel();
  runtime::parallel_for(0, n, 4096, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) pd[i] *= pm[i];
  });
  return dx;
}

// ---------------------------------------------------------------------------
// MaxPool2d (2x2, stride 2)

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
  return {input_shape[0], input_shape[1], input_shape[2] / 2, input_shape[3] / 2};
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("MaxPool2d expects even spatial dims");
  }
  const std::int64_t oh = h / 2, ow = w / 2;
  cached_input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  cached_argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  const float* pin = input.data();
  float* pout = out.data();
  std::int64_t* pargmax = cached_argmax_.data();
  // One (img, ch) plane per thread; the output index is computed directly
  // from (img, ch, y, x) so partitioning cannot reorder writes.
  runtime::parallel_for(0, n * c, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slice = s0; slice < s1; ++slice) {
      const float* in_plane = pin + slice * h * w;
      float* out_plane = pout + slice * oh * ow;
      std::int64_t* arg_plane = pargmax + slice * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -1e30F;
          std::int64_t best_idx = 0;
          for (std::int64_t dy = 0; dy < 2; ++dy) {
            for (std::int64_t dx = 0; dx < 2; ++dx) {
              const std::int64_t yy = 2 * y + dy, xx = 2 * x + dx;
              const float v = in_plane[yy * w + xx];
              if (v > best) {
                best = v;
                best_idx = slice * h * w + yy * w + xx;
              }
            }
          }
          out_plane[y * ow + x] = best;
          arg_plane[y * ow + x] = best_idx;
        }
      }
    }
  });
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor dx(cached_input_shape_);
  const float* pg = grad_output.data();
  float* pd = dx.data();
  const std::int64_t n = cached_input_shape_[0], c = cached_input_shape_[1];
  const std::int64_t total = static_cast<std::int64_t>(cached_argmax_.size());
  const std::int64_t per_slice = total / (n * c);
  const std::int64_t* pargmax = cached_argmax_.data();
  // Argmax indices recorded for a slice always point into that slice's
  // input plane, so the scatter-add partitions cleanly by (img, ch).
  runtime::parallel_for(0, n * c, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t i = s0 * per_slice; i < s1 * per_slice; ++i) {
      pd[pargmax[i]] += pg[i];
    }
  });
  return dx;
}

// ---------------------------------------------------------------------------
// GlobalAvgPool

Shape GlobalAvgPool::output_shape(const Shape& input_shape) const {
  return {input_shape[0], input_shape[1]};
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t h = input.dim(2), w = input.dim(3);
  cached_input_shape_ = input.shape();
  Tensor out({n, c});
  const float inv = 1.0F / static_cast<float>(h * w);
  const std::int64_t hw = h * w;
  const float* pin = input.data();
  float* pout = out.data();
  runtime::parallel_for(0, n * c, 4, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slice = s0; slice < s1; ++slice) {
      const float* plane = pin + slice * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      pout[slice] = static_cast<float>(acc) * inv;
    }
  });
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const std::int64_t n = cached_input_shape_[0], c = cached_input_shape_[1];
  const std::int64_t h = cached_input_shape_[2], w = cached_input_shape_[3];
  Tensor dx(cached_input_shape_);
  const float inv = 1.0F / static_cast<float>(h * w);
  const std::int64_t hw = h * w;
  const float* pg = grad_output.data();
  float* pd = dx.data();
  runtime::parallel_for(0, n * c, 4, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slice = s0; slice < s1; ++slice) {
      const float g = pg[slice] * inv;
      float* plane = pd + slice * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  });
  return dx;
}

// ---------------------------------------------------------------------------
// Dropout

Dropout::Dropout(float rate, std::uint64_t seed, std::string name)
    : rate_(rate), seed_(seed), name_(std::move(name)),
      counter_(name_ + ".counter", Tensor::zeros({1}), /*train=*/false) {
  if (rate_ < 0.0F || rate_ >= 1.0F) {
    throw std::invalid_argument("dropout rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || rate_ == 0.0F) {
    cached_mask_ = Tensor();  // marks "identity" for backward
    return input;
  }
  const std::int64_t step = static_cast<std::int64_t>(counter_.value.at(0));
  counter_.value.at(0) = static_cast<float>(step + 1);

  Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(step)));
  cached_mask_ = Tensor(input.shape());
  const float keep_scale = 1.0F / (1.0F - rate_);
  float* pm = cached_mask_.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    pm[i] = rng.next_float() < rate_ ? 0.0F : keep_scale;
  }
  Tensor out = input;
  float* po = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) po[i] *= pm[i];
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_mask_.empty()) return grad_output;  // eval / rate 0 pass-through
  Tensor dx = grad_output;
  const float* pm = cached_mask_.data();
  float* pd = dx.data();
  for (std::int64_t i = 0; i < dx.numel(); ++i) pd[i] *= pm[i];
  return dx;
}

void Dropout::collect_params(std::vector<Param*>& out) {
  out.push_back(&counter_);
}

// ---------------------------------------------------------------------------
// Flatten

Shape Flatten::output_shape(const Shape& input_shape) const {
  if (input_shape.size() == 2) return input_shape;
  std::int64_t features = 1;
  for (std::size_t i = 1; i < input_shape.size(); ++i) features *= input_shape[i];
  return {input_shape[0], features};
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_input_shape_);
}

}  // namespace rpol::nn
