#include "nn/models.h"

#include <array>

namespace rpol::nn {

Model make_mini_resnet18(const ModelConfig& cfg, int blocks_per_stage) {
  Rng rng(derive_seed(cfg.seed, /*stream=*/18));
  Model m("mini_resnet18");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{cfg.in_channels, cfg.width, 3, 1, 1},
                                 rng, /*bias=*/false, "stem.conv"));
  m.add(std::make_unique<BatchNorm2d>(cfg.width, 0.1F, 1e-5F, "stem.bn"));
  m.add(std::make_unique<ReLU>("stem.relu"));

  std::int64_t in_ch = cfg.width;
  const std::array<std::int64_t, 4> widths = {cfg.width, 2 * cfg.width,
                                              4 * cfg.width, 8 * cfg.width};
  const std::array<std::int64_t, 4> strides = {1, 2, 2, 2};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < blocks_per_stage; ++block) {
      const std::int64_t stride = (block == 0) ? strides[stage] : 1;
      const std::string name =
          "stage" + std::to_string(stage) + ".block" + std::to_string(block);
      m.add(std::make_unique<BasicBlock>(in_ch, widths[stage], stride, rng, name));
      in_ch = widths[stage];
    }
  }
  m.add(std::make_unique<GlobalAvgPool>("gap"));
  m.add(std::make_unique<Linear>(in_ch, cfg.num_classes, rng, "fc"));
  return m;
}

Model make_mini_resnet50(const ModelConfig& cfg, std::array<int, 4> stage_depths) {
  Rng rng(derive_seed(cfg.seed, /*stream=*/50));
  Model m("mini_resnet50");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{cfg.in_channels, cfg.width, 3, 1, 1},
                                 rng, /*bias=*/false, "stem.conv"));
  m.add(std::make_unique<BatchNorm2d>(cfg.width, 0.1F, 1e-5F, "stem.bn"));
  m.add(std::make_unique<ReLU>("stem.relu"));

  std::int64_t in_ch = cfg.width;
  const std::array<std::int64_t, 4> mids = {cfg.width, 2 * cfg.width,
                                            4 * cfg.width, 8 * cfg.width};
  const std::array<std::int64_t, 4> strides = {1, 2, 2, 2};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < stage_depths[static_cast<std::size_t>(stage)];
         ++block) {
      const std::int64_t stride = (block == 0) ? strides[stage] : 1;
      const std::string name =
          "stage" + std::to_string(stage) + ".bneck" + std::to_string(block);
      m.add(std::make_unique<BottleneckBlock>(in_ch, mids[stage], stride, rng, name));
      in_ch = mids[stage] * BottleneckBlock::kExpansion;
    }
  }
  m.add(std::make_unique<GlobalAvgPool>("gap"));
  m.add(std::make_unique<Linear>(in_ch, cfg.num_classes, rng, "fc"));
  return m;
}

Model make_mini_vgg16(const ModelConfig& cfg) {
  Rng rng(derive_seed(cfg.seed, /*stream=*/16));
  Model m("mini_vgg16");
  std::int64_t in_ch = cfg.in_channels;
  const std::array<std::int64_t, 4> widths = {cfg.width, 2 * cfg.width,
                                              4 * cfg.width, 8 * cfg.width};
  const std::array<int, 4> depths = {2, 2, 3, 3};
  std::int64_t spatial = cfg.image_size;
  for (int stage = 0; stage < 4; ++stage) {
    for (int conv = 0; conv < depths[static_cast<std::size_t>(stage)]; ++conv) {
      const std::string name =
          "stage" + std::to_string(stage) + ".conv" + std::to_string(conv);
      m.add(std::make_unique<Conv2d>(Conv2dSpec{in_ch, widths[stage], 3, 1, 1},
                                     rng, /*bias=*/true, name));
      m.add(std::make_unique<ReLU>(name + ".relu"));
      in_ch = widths[stage];
    }
    // Only pool while the spatial size stays even and > 1.
    if (spatial % 2 == 0 && spatial > 1) {
      m.add(std::make_unique<MaxPool2d>("stage" + std::to_string(stage) + ".pool"));
      spatial /= 2;
    }
  }
  m.add(std::make_unique<Flatten>("flatten"));
  m.add(std::make_unique<Linear>(in_ch * spatial * spatial, cfg.num_classes, rng,
                                 "fc"));
  return m;
}

Model make_mlp(std::int64_t in_features, std::vector<std::int64_t> hidden,
               std::int64_t num_classes, std::uint64_t seed) {
  Rng rng(derive_seed(seed, /*stream=*/3));
  Model m("mlp");
  std::int64_t in = in_features;
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    m.add(std::make_unique<Linear>(in, hidden[i], rng, "fc" + std::to_string(i)));
    m.add(std::make_unique<ReLU>("relu" + std::to_string(i)));
    in = hidden[i];
  }
  m.add(std::make_unique<Linear>(in, num_classes, rng, "head"));
  return m;
}

ModelFactory mini_resnet18_factory(ModelConfig cfg, int blocks_per_stage) {
  return [cfg, blocks_per_stage] { return make_mini_resnet18(cfg, blocks_per_stage); };
}

ModelFactory mini_resnet50_factory(ModelConfig cfg, std::array<int, 4> stage_depths) {
  return [cfg, stage_depths] { return make_mini_resnet50(cfg, stage_depths); };
}

ModelFactory mini_vgg16_factory(ModelConfig cfg) {
  return [cfg] { return make_mini_vgg16(cfg); };
}

ModelFactory mlp_factory(std::int64_t in_features, std::vector<std::int64_t> hidden,
                         std::int64_t num_classes, std::uint64_t seed) {
  return [=] { return make_mlp(in_features, hidden, num_classes, seed); };
}

}  // namespace rpol::nn
