// Composite layers: sequential container and ResNet-style residual blocks.

#pragma once

#include "nn/layers.h"

namespace rpol::nn {

// Runs child layers in order; backward in reverse order.
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  void add(LayerPtr layer) { layers_.push_back(std::move(layer)); }
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

// ResNet basic block:
//   main:  conv3x3(in->out, stride) -> BN -> ReLU -> conv3x3(out->out) -> BN
//   skip:  identity, or conv1x1(in->out, stride) -> BN when shape changes
//   out:   ReLU(main + skip)
class BasicBlock : public Layer {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Rng& rng, std::string name = "basic");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Sequential main_;
  Sequential skip_;   // empty => identity skip
  ReLU out_relu_;
  bool identity_skip_;
};

// ResNet bottleneck block (expansion 4):
//   main: conv1x1(in->mid) BN ReLU, conv3x3(mid->mid, stride) BN ReLU,
//         conv1x1(mid->4*mid) BN
//   skip: identity or conv1x1(in->4*mid, stride) BN
class BottleneckBlock : public Layer {
 public:
  static constexpr std::int64_t kExpansion = 4;

  BottleneckBlock(std::int64_t in_channels, std::int64_t mid_channels,
                  std::int64_t stride, Rng& rng, std::string name = "bottleneck");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Sequential main_;
  Sequential skip_;
  ReLU out_relu_;
  bool identity_skip_;
};

}  // namespace rpol::nn
