#include "lsh/tuning.h"

#include <cmath>
#include <stdexcept>

namespace rpol::lsh {

TuningResult optimize_lsh(double alpha, double beta, int k_lsh_budget,
                          const TuningObjective& objective) {
  if (!(alpha > 0.0) || !(beta > alpha)) {
    throw std::invalid_argument("require 0 < alpha < beta");
  }
  if (k_lsh_budget < 1) throw std::invalid_argument("K_lsh budget must be >= 1");

  const double r_lo = alpha / objective.grid_span;
  const double r_hi = beta * objective.grid_span;
  const double log_lo = std::log(r_lo);
  const double log_hi = std::log(r_hi);

  TuningResult best;
  best.objective = 1e300;
  for (int k = 1; k <= k_lsh_budget; ++k) {
    for (int l = 1; k * l <= k_lsh_budget; ++l) {
      for (int gi = 0; gi < objective.r_grid_points; ++gi) {
        const double t =
            static_cast<double>(gi) / (objective.r_grid_points - 1);
        const double r = std::exp(log_lo + t * (log_hi - log_lo));
        const LshParams params{r, k, l};
        const double pr_a = match_probability(alpha, params);
        const double pr_b = match_probability(beta, params);
        const double obj =
            objective.weight_fn * (1.0 - pr_a) + objective.weight_fp * pr_b;
        if (obj < best.objective) {
          best.objective = obj;
          best.params = params;
          best.pr_alpha = pr_a;
          best.pr_beta = pr_b;
        }
      }
    }
  }
  return best;
}

}  // namespace rpol::lsh
