#include "lsh/pstable.h"

#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace rpol::lsh {

bool lsh_match(const LshDigest& a, const LshDigest& b) {
  if (a.groups.size() != b.groups.size()) return false;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    if (digest_equal(a.groups[g], b.groups[g])) return true;
  }
  return false;
}

Bytes serialize_lsh_digest(const LshDigest& digest) {
  Bytes out;
  append_u64(out, digest.groups.size());
  for (const auto& g : digest.groups) out.insert(out.end(), g.begin(), g.end());
  return out;
}

PStableLsh::PStableLsh(const LshConfig& config) : config_(config) {
  if (config_.dim <= 0) throw std::invalid_argument("LSH dim must be positive");
  if (config_.params.k < 1 || config_.params.l < 1 || config_.params.r <= 0.0) {
    throw std::invalid_argument("invalid LSH parameters");
  }
  const std::int64_t rows =
      static_cast<std::int64_t>(config_.params.k) * config_.params.l;
  Rng rng(derive_seed(config_.seed, /*stream=*/0x15A));
  projections_.resize(static_cast<std::size_t>(rows * config_.dim));
  rng.fill_normal(projections_, 0.0F, 1.0F);
  offsets_.resize(static_cast<std::size_t>(rows));
  for (auto& b : offsets_) b = rng.next_double() * config_.params.r;
}

std::vector<std::vector<std::int64_t>> PStableLsh::buckets(
    const std::vector<float>& x) const {
  if (static_cast<std::int64_t>(x.size()) != config_.dim) {
    throw std::invalid_argument("LSH input dimension mismatch");
  }
  const int k = config_.params.k, l = config_.params.l;
  const double r = config_.params.r;
  std::vector<std::vector<std::int64_t>> out(static_cast<std::size_t>(l));
  for (int g = 0; g < l; ++g) {
    auto& group = out[static_cast<std::size_t>(g)];
    group.resize(static_cast<std::size_t>(k));
    for (int f = 0; f < k; ++f) {
      const std::int64_t row = static_cast<std::int64_t>(g) * k + f;
      const float* proj =
          projections_.data() + static_cast<std::size_t>(row * config_.dim);
      double dot = 0.0;
      for (std::int64_t d = 0; d < config_.dim; ++d) {
        dot += static_cast<double>(proj[d]) * x[static_cast<std::size_t>(d)];
      }
      group[static_cast<std::size_t>(f)] = static_cast<std::int64_t>(
          std::floor((dot + offsets_[static_cast<std::size_t>(row)]) / r));
    }
  }
  return out;
}

LshDigest PStableLsh::hash(const std::vector<float>& x) const {
  const auto bucket_values = buckets(x);
  LshDigest digest;
  digest.groups.reserve(bucket_values.size());
  for (const auto& group : bucket_values) {
    Bytes encoded;
    for (const auto v : group) append_i64(encoded, v);
    digest.groups.push_back(sha256(encoded));
  }
  return digest;
}

}  // namespace rpol::lsh
