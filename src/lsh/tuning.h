// LSH parameter selection (Sec. V-C, Eq. 6).
//
// Given the distance bounds alpha (tolerate: reproduction errors) and beta
// (reject: spoofed weights) and the compute budget K_lsh >= k*l, find
// {r, k, l} minimizing the two objectives
//     1 - Pr_lsh(alpha)   (miss honest results)
//     Pr_lsh(beta)        (pass spoofed results)
// combined by simple additive weighting. The search enumerates every (k, l)
// pair within budget and sweeps r over a geometric grid spanning
// [alpha / grid_span, beta * grid_span].

#pragma once

#include "lsh/probability.h"

namespace rpol::lsh {

struct TuningObjective {
  double weight_fn = 0.5;  // weight on 1 - Pr(alpha)
  double weight_fp = 0.5;  // weight on Pr(beta)
  int r_grid_points = 96;
  double grid_span = 8.0;
};

struct TuningResult {
  LshParams params;
  double pr_alpha = 0.0;   // achieved Pr_lsh(alpha) — want high (>= ~0.95)
  double pr_beta = 0.0;    // achieved Pr_lsh(beta)  — want low  (<= ~0.05)
  double objective = 0.0;  // weighted SAW objective at the optimum
};

// alpha < beta required; k_lsh_budget >= 1.
TuningResult optimize_lsh(double alpha, double beta, int k_lsh_budget,
                          const TuningObjective& objective = {});

}  // namespace rpol::lsh
