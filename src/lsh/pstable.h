// p-stable LSH over weight vectors.
//
// The manager broadcasts an LshConfig per epoch (parameters + seed); workers
// hash each checkpoint's output weights into an LshDigest that goes into the
// commitment. During verification the manager hashes its re-executed weights
// under the same config and fuzzy-matches: two digests match if ANY of the
// l groups is identical (all k bucket values in the group agree).
//
// Digests are compact — l SHA-256 hashes instead of k*l raw buckets — so the
// commitment stays small and bucket values don't leak coarse information
// about the weights.

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "lsh/probability.h"

namespace rpol::lsh {

struct LshConfig {
  LshParams params;
  std::int64_t dim = 0;       // weight-vector length this family hashes
  std::uint64_t seed = 1;     // seeds the projection directions and offsets
};

struct LshDigest {
  std::vector<Digest> groups;  // one digest per group (size l)

  bool operator==(const LshDigest& other) const { return groups == other.groups; }
};

// True if at least one group digest agrees (the OR over l AND-groups).
bool lsh_match(const LshDigest& a, const LshDigest& b);

// Canonical byte encoding (for inclusion in commitments).
Bytes serialize_lsh_digest(const LshDigest& digest);

class PStableLsh {
 public:
  explicit PStableLsh(const LshConfig& config);

  const LshConfig& config() const { return config_; }

  // Raw bucket values: l groups of k integers. Exposed for tests and for
  // empirical collision-rate measurement.
  std::vector<std::vector<std::int64_t>> buckets(const std::vector<float>& x) const;

  // Group digests of the bucket values.
  LshDigest hash(const std::vector<float>& x) const;

 private:
  LshConfig config_;
  std::vector<float> projections_;  // (l*k) x dim, row-major
  std::vector<double> offsets_;     // l*k, uniform in [0, r)
};

}  // namespace rpol::lsh
