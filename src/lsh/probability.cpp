#include "lsh/probability.h"

#include <cmath>
#include <stdexcept>

namespace rpol::lsh {

double norm_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double collision_probability(double c, double r) {
  if (r <= 0.0) throw std::invalid_argument("LSH width r must be positive");
  if (c < 0.0) throw std::invalid_argument("distance must be non-negative");
  if (c == 0.0) return 1.0;
  const double ratio = r / c;
  const double term1 = 2.0 * norm_cdf(-ratio);
  const double term2 = (2.0 / (std::sqrt(2.0 * 3.14159265358979323846) * ratio)) *
                       (1.0 - std::exp(-0.5 * ratio * ratio));
  const double p = 1.0 - term1 - term2;
  // Clamp tiny negative round-off for extreme c/r ratios.
  return std::min(1.0, std::max(0.0, p));
}

double match_probability(double c, const LshParams& params) {
  if (params.k < 1 || params.l < 1) {
    throw std::invalid_argument("LSH k and l must be >= 1");
  }
  const double p = collision_probability(c, params.r);
  const double group = std::pow(p, params.k);
  return 1.0 - std::pow(1.0 - group, params.l);
}

double expected_fnr(const std::function<double(double)>& repr_pdf, double beta,
                    const LshParams& params, int quadrature_steps) {
  if (beta <= 0.0) throw std::invalid_argument("beta must be positive");
  const double h = beta / quadrature_steps;
  double acc = 0.0;
  // Midpoint rule; the integrand is smooth.
  for (int i = 0; i < quadrature_steps; ++i) {
    const double c = (i + 0.5) * h;
    acc += repr_pdf(c) * (1.0 - match_probability(c, params));
  }
  return acc * h;
}

double expected_fpr(const std::function<double(double)>& spoof_pdf, double beta,
                    double upper, const LshParams& params, int quadrature_steps) {
  if (upper <= beta) throw std::invalid_argument("upper must exceed beta");
  const double h = (upper - beta) / quadrature_steps;
  double acc = 0.0;
  for (int i = 0; i < quadrature_steps; ++i) {
    const double c = beta + (i + 0.5) * h;
    acc += spoof_pdf(c) * match_probability(c, params);
  }
  return acc * h;
}

std::function<double(double)> normal_pdf(double mean, double stddev) {
  if (stddev <= 0.0) throw std::invalid_argument("stddev must be positive");
  const double inv = 1.0 / (stddev * std::sqrt(2.0 * 3.14159265358979323846));
  return [mean, stddev, inv](double x) {
    const double z = (x - mean) / stddev;
    return inv * std::exp(-0.5 * z * z);
  };
}

}  // namespace rpol::lsh
