// Analytic probability model of p-stable (Gaussian, p=2) LSH.
//
// One hash function h_{a,b}(x) = floor((a.x + b) / r) with a ~ N(0, I),
// b ~ U[0, r) collides for two vectors at Euclidean distance c with
// probability (Datar et al. 2004):
//
//   p(c, r) = 1 - 2 Phi(-r/c) - (2 c / (sqrt(2 pi) r)) (1 - exp(-r^2 / 2c^2))
//
// With l groups of k functions, two vectors match if ANY group agrees on
// all k values (Sec. II-C):
//
//   Pr_lsh(c, r, k, l) = 1 - (1 - p(c,r)^k)^l
//
// This file also provides the FNR/FPR functionals of Eq. (5), evaluated by
// numeric quadrature over arbitrary distance densities.

#pragma once

#include <functional>

namespace rpol::lsh {

struct LshParams {
  double r = 1.0;  // bucket width
  int k = 4;       // hash functions per group (AND)
  int l = 4;       // groups (OR)
};

// Standard normal CDF.
double norm_cdf(double x);

// Single-function collision probability p(c, r); c >= 0, r > 0.
// p(0, r) == 1 by continuity.
double collision_probability(double c, double r);

// Full-scheme matching probability Pr_lsh(c, r, k, l).
double match_probability(double c, const LshParams& params);

// Expected false-negative rate of LSH matching for honest results whose
// reproduction distance has density `repr_pdf` supported on [0, beta):
//   FNR = integral_0^beta repr_pdf(c) (1 - Pr_lsh(c)) dc          (Eq. 5)
double expected_fnr(const std::function<double(double)>& repr_pdf, double beta,
                    const LshParams& params, int quadrature_steps = 2000);

// Expected false-positive rate for spoofed results whose distance density
// `spoof_pdf` is supported on [beta, upper):
//   FPR = integral_beta^upper spoof_pdf(c) Pr_lsh(c) dc           (Eq. 5)
double expected_fpr(const std::function<double(double)>& spoof_pdf, double beta,
                    double upper, const LshParams& params,
                    int quadrature_steps = 2000);

// Normal density restricted to x >= 0 (unnormalized tail mass is fine for
// the near-worst-case analyses in Sec. V-C).
std::function<double(double)> normal_pdf(double mean, double stddev);

}  // namespace rpol::lsh
