#include "core/pool.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/ckptstore.h"
#include "data/partition.h"
#include "obs/alerts.h"
#include "obs/live.h"
#include "obs/obs.h"

namespace rpol::core {
namespace {

// Message-type indices for the pool's analytically modeled legs; values
// match core::MessageType (session.h) so fault plans configured per type
// apply identically to sessions and pools. pool.h cannot include session.h
// (session.h includes pool.h), hence the plain ints the fault layer keys on.
enum : int {
  kLegState = 1,
  kLegCommitment = 2,
  kLegUpdate = 3,
  kLegProofResponse = 5,
};

}  // namespace

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline: return "Baseline";
    case Scheme::kRPoLv1: return "RPoLv1";
    case Scheme::kRPoLv2: return "RPoLv2";
  }
  return "unknown";
}

MiningPool::MiningPool(PoolConfig config, nn::ModelFactory factory,
                       const data::Dataset& train, data::DatasetView test,
                       std::vector<WorkerSpec> workers)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      test_(std::move(test)),
      workers_(std::move(workers)),
      manager_executor_(factory_, config_.hp),
      network_(config_.network, std::max<std::size_t>(workers_.size(), 1)),
      health_(static_cast<int>(config_.eviction_threshold), workers_.size()) {
  if (workers_.empty()) throw std::invalid_argument("pool needs >= 1 worker");
  if (config_.streaming && config_.decentralized_verification) {
    throw std::invalid_argument(
        "streaming pools cannot use decentralized verification");
  }
  // n+1 i.i.d. parts: the manager keeps part 0 for calibration (Sec. V-C).
  partitions_ = data::shuffle_and_partition(
      train, static_cast<std::int64_t>(workers_.size()) + 1,
      derive_seed(config_.seed, 0xDA7A));

  for (std::size_t w = 0; w < workers_.size(); ++w) {
    worker_executors_.push_back(std::make_unique<StepExecutor>(factory_, config_.hp));
  }

  VerifierConfig vcfg;
  vcfg.samples_q = config_.samples_q;
  vcfg.use_lsh = config_.scheme == Scheme::kRPoLv2;
  vcfg.sampling_seed = derive_seed(config_.seed, 0x5A3B1E);
  verifier_ = std::make_unique<Verifier>(factory_, config_.hp, vcfg);

  const TrainState pristine = manager_executor_.save_state();
  global_model_ = pristine.model;
  fresh_optimizer_ = pristine.optimizer;
  // Checkpoint-class memory resident for the pool's lifetime: one
  // model+optimizer image per executor (manager + verifier + one per
  // worker) plus the global vectors themselves.
  state_mem_.set(pristine.byte_size() *
                 static_cast<std::uint64_t>(workers_.size() + 3));
}

TrainState MiningPool::initial_state() const {
  return {global_model_, fresh_optimizer_};
}

std::uint64_t MiningPool::worker_nonce(std::int64_t epoch,
                                       std::size_t worker) const {
  return derive_seed(config_.seed,
                     0xA0000000ULL + static_cast<std::uint64_t>(epoch) * 4096ULL +
                         static_cast<std::uint64_t>(worker));
}

std::pair<sim::DeviceProfile, sim::DeviceProfile> MiningPool::top_two_devices()
    const {
  // Workers register their hardware with the pool; the manager calibrates on
  // the two fastest profiles to observe worst-case reproduction errors.
  std::vector<sim::DeviceProfile> devices;
  devices.reserve(workers_.size());
  for (const auto& w : workers_) devices.push_back(w.device);
  std::sort(devices.begin(), devices.end(),
            [](const sim::DeviceProfile& a, const sim::DeviceProfile& b) {
              return a.tflops_fp32 > b.tflops_fp32;
            });
  const sim::DeviceProfile top = devices.front();
  const sim::DeviceProfile second = devices.size() > 1 ? devices[1] : devices[0];
  return {top, second};
}

double MiningPool::evaluate_global() {
  manager_executor_.load_state(initial_state());
  return manager_executor_.evaluate(test_);
}

EpochReport MiningPool::run_epoch(std::int64_t epoch) {
  // Roots this epoch's causal tree: every span below (manager or worker
  // side) carries epoch_span.id() as its trace id.
  obs::Span epoch_span("epoch", obs::TraceContext{}, /*worker=*/-1, epoch);
  obs::flight_record(obs::FlightKind::kMark, "epoch.begin", -1, epoch);
  EpochReport report;
  report.epoch = epoch;
  report.participated.assign(workers_.size(), true);
  report.accepted.assign(workers_.size(), true);
  network_.reset_counters();

  // Health-report inputs (all write-only telemetry except the protocol
  // facts already in `report`): wire retries per worker, and wall-clock
  // session latency from first leg to final verdict. Latency never feeds a
  // decision — obs/health.h folds it into the score only.
  std::vector<std::uint64_t> worker_retrans(workers_.size(), 0);
  std::vector<std::uint64_t> worker_start_ns(workers_.size(), 0);
  std::vector<std::uint64_t> worker_end_ns(workers_.size(), 0);
  // Per-epoch byte balances for the big transient owners: checkpoint traces
  // and commitments live until the epoch ends, so scoping the charge to
  // run_epoch makes tag peaks track the true per-epoch footprint.
  obs::MemScope checkpoint_mem(obs::MemTag::kCheckpoint);
  obs::MemScope merkle_mem(obs::MemTag::kMerkle);

  // One fault stream per (epoch, worker) link: individually reproducible,
  // statistically independent. No plan => no injectors, and every deliver()
  // below is the exact single-transmission legacy path.
  std::vector<std::optional<fault::FaultInjector>> injectors(workers_.size());
  if (config_.fault_plan != nullptr) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      injectors[w].emplace(*config_.fault_plan,
                           static_cast<std::uint64_t>(epoch) * 4096ULL + w);
    }
  }

  // One protocol leg under the fault environment. Every transmission
  // attempt — retransmissions and duplicates included — puts the full leg
  // on the WAN and its byte counter: that is what the sender actually
  // transmitted. Returns false when the retry budget is spent.
  const auto deliver = [&](std::size_t w, int leg, const char* counter,
                           std::uint64_t bytes, bool upload,
                           std::size_t fanout) -> bool {
    const bool faulty = injectors[w].has_value();
    const int attempts = faulty ? config_.retry.max_attempts : 1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++report.retransmissions;
        ++worker_retrans[w];
        obs::count("pool.retransmission", 1);
      }
      if (upload) {
        network_.upload(w, bytes, fanout);
      } else {
        network_.download(w, bytes, fanout);
      }
      obs::count(counter, bytes);
      if (!faulty) return true;
      const fault::Delivery d = injectors[w]->attempt(leg);
      if (d.duplicated) {
        if (upload) {
          network_.upload(w, bytes, fanout);
        } else {
          network_.download(w, bytes, fanout);
        }
        obs::count(counter, bytes);
      }
      if (d.status == fault::DeliveryStatus::kDelivered && !d.corrupted) {
        return true;
      }
    }
    ++report.session_failures;
    obs::count("pool.session_failure", 1);
    obs::flight_record(obs::FlightKind::kFault, "pool.session_failure",
                       static_cast<std::int64_t>(w), epoch);
    return false;
  };

  const TrainState initial = initial_state();
  checkpoint_mem.add(initial.byte_size());
  const Digest initial_hash = hash_state(initial);
  const std::uint64_t model_bytes =
      static_cast<std::uint64_t>(global_model_.size()) * sizeof(float);

  // Step 0: adaptive calibration (RPoL schemes only).
  const bool needs_rpol = config_.scheme != Scheme::kBaseline;
  if (needs_rpol && (config_.calibrate_every_epoch || !calibrated_)) {
    obs::Span s("calibrate", epoch_span, /*worker=*/-1, epoch);
    EpochContext manager_ctx;
    manager_ctx.epoch = epoch;
    manager_ctx.nonce = derive_seed(config_.seed,
                                    0xB0000000ULL + static_cast<std::uint64_t>(epoch));
    manager_ctx.initial = initial;
    manager_ctx.dataset = &partitions_[0];
    const auto [top, second] = top_two_devices();
    last_calibration_ = calibrate_epoch(
        factory_, config_.hp, manager_ctx, top, second,
        derive_seed(config_.seed, 0xC0000000ULL + static_cast<std::uint64_t>(epoch)),
        config_.calibration);
    calibrated_ = true;
  }

  lsh::LshConfig lsh_config;
  if (needs_rpol) {
    report.alpha = last_calibration_.alpha;
    report.beta = last_calibration_.beta;
    report.lsh_params = last_calibration_.lsh.params;
    verifier_->set_beta(last_calibration_.beta);
    if (config_.scheme == Scheme::kRPoLv2) {
      lsh_config.params = last_calibration_.lsh.params;
      lsh_config.dim = manager_executor_.model().num_trainable_parameters();
      lsh_config.seed = derive_seed(
          config_.seed, 0xD0000000ULL + static_cast<std::uint64_t>(epoch));
      verifier_->set_lsh_config(lsh_config);
    }
  }
  std::optional<lsh::PStableLsh> worker_hasher;
  if (config_.scheme == Scheme::kRPoLv2) worker_hasher.emplace(lsh_config);
  const std::vector<bool>& trainable_mask = manager_executor_.trainable_mask();

  // Steps 1-2: workers train locally and commit. In streaming mode the
  // traces stay empty: each worker's checkpoints flow straight into a
  // CommitmentBuilder and a spill-backed CheckpointStore, and later phases
  // fetch from the store instead of indexing a trace.
  std::vector<EpochTrace> traces(workers_.size());
  std::vector<StreamedEpoch> streamed(config_.streaming ? workers_.size() : 0);
  std::vector<Commitment> commitments(workers_.size());
  // Compact-mode Merkle roots, collapsed once per worker at upload time and
  // reused by verification (rebuilding the trees per phase doubles the
  // manager's hashing bill for nothing).
  std::vector<std::optional<CompactCommitment>> compacts(workers_.size());
  std::vector<EpochContext> contexts(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (health_.evicted(w)) {
      // Evicted workers sit the epoch out; the pool degrades gracefully to
      // the survivors.
      report.participated[w] = false;
      report.accepted[w] = false;
      continue;
    }
    worker_start_ns[w] = obs::now_ns();
    EpochContext ctx;
    ctx.epoch = epoch;
    ctx.nonce = worker_nonce(epoch, w);
    ctx.initial = initial;
    ctx.dataset = &partitions_[w + 1];
    contexts[w] = ctx;
    // Each context keeps its own copy of the initial state until the
    // epoch's verification phase is done.
    checkpoint_mem.add(ctx.initial.byte_size());

    // Global model out to the worker.
    if (!deliver(w, kLegState, "bytes.state", model_bytes, /*upload=*/false,
                 workers_.size())) {
      report.participated[w] = false;
      report.accepted[w] = false;
      worker_end_ns[w] = obs::now_ns();
      continue;
    }

    sim::DeviceExecution device(
        workers_[w].device,
        derive_seed(config_.seed, 0xE0000000ULL +
                                      static_cast<std::uint64_t>(epoch) * 4096ULL +
                                      static_cast<std::uint64_t>(w)));
    if (config_.streaming) {
      // Train + commit fused: the sink hashes each checkpoint into the
      // commitment and spills it the moment it exists, so worker residency
      // is one state + the store's hot cache (charged to the ckptstore
      // tag by the store itself, never to the checkpoint tag).
      obs::Span s("train", epoch_span, static_cast<int>(w), epoch);
      CkptStoreConfig scfg;
      scfg.budget_bytes = config_.ckpt_budget_bytes;
      streamed[w] = run_streamed_epoch(
          *workers_[w].policy, *worker_executors_[w], ctx, device,
          config_.scheme == Scheme::kRPoLv2 ? CommitmentVersion::kV2
                                            : CommitmentVersion::kV1,
          worker_hasher ? &*worker_hasher : nullptr,
          config_.scheme == Scheme::kRPoLv2 ? &trainable_mask : nullptr, scfg);
      s.attr("storage_bytes", streamed[w].store->total_bytes());
      commitments[w] = std::move(streamed[w].commitment);
      merkle_mem.add(commitments[w].byte_size());
    } else {
      {
        obs::Span s("train", epoch_span, static_cast<int>(w), epoch);
        traces[w] = workers_[w].policy->produce_trace(*worker_executors_[w],
                                                      ctx, device);
        s.attr("storage_bytes", traces[w].storage_bytes());
        checkpoint_mem.add(traces[w].storage_bytes());
      }
      {
        obs::Span s("commit", epoch_span, static_cast<int>(w), epoch);
        commitments[w] =
            config_.scheme == Scheme::kRPoLv2
                ? commit_v2(traces[w], *worker_hasher, &trainable_mask)
                : commit_v1(traces[w]);
        merkle_mem.add(commitments[w].byte_size());
      }
    }

    // Upload: final model update + commitment (compact mode uploads only
    // the Merkle roots). The streamed compact roots are identical to
    // compact_commitment's (CommitmentBuilder contract).
    if (config_.compact_commitments) {
      compacts[w] = config_.streaming ? streamed[w].compact
                                      : compact_commitment(commitments[w]);
    }
    const std::uint64_t commitment_bytes = config_.compact_commitments
                                               ? compacts[w]->byte_size()
                                               : commitments[w].byte_size();
    const bool uploaded =
        deliver(w, kLegUpdate, "bytes.update", model_bytes, /*upload=*/true,
                workers_.size()) &&
        deliver(w, kLegCommitment, "bytes.commitment", commitment_bytes,
                /*upload=*/true, workers_.size());
    if (!uploaded) {
      report.participated[w] = false;
      report.accepted[w] = false;
      worker_end_ns[w] = obs::now_ns();
      continue;
    }
    worker_end_ns[w] = obs::now_ns();  // refined to the verdict time below
    report.worker_storage_bytes =
        std::max(report.worker_storage_bytes,
                 config_.streaming ? streamed[w].store->total_bytes()
                                   : traces[w].storage_bytes());
  }

  // Step 3: verification (RPoL schemes).
  if (needs_rpol && config_.decentralized_verification) {
    // Peer-committee verification: each worker is checked by a committee of
    // the OTHER workers (it never votes on itself).
    DecentralizedConfig dcfg;
    dcfg.samples_q = config_.samples_q;
    dcfg.verifiers_per_sample = config_.verifiers_per_sample;
    dcfg.beta = last_calibration_.beta;
    dcfg.assignment_seed = derive_seed(config_.seed, 0x9E0000ULL +
                                                         static_cast<std::uint64_t>(epoch));
    DecentralizedVerifier dec(factory_, config_.hp, dcfg);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!report.participated[w]) continue;
      std::vector<VerifierNode> committee;
      for (std::size_t v = 0; v < workers_.size(); ++v) {
        if (v == w) continue;
        VerifierNode node;
        node.device = workers_[v].device;
        node.run_seed = derive_seed(
            config_.seed, 0x9F0000ULL + static_cast<std::uint64_t>(epoch) * 4096ULL +
                              static_cast<std::uint64_t>(v));
        committee.push_back(node);
      }
      obs::Span s("verify", epoch_span, static_cast<int>(w), epoch);
      const DecentralizedResult dr = dec.verify(commitments[w], traces[w],
                                                contexts[w], initial_hash,
                                                committee);
      s.attr("accepted", dr.accepted);
      report.accepted[w] = dr.accepted;
      report.manager_reexecuted_steps += dr.critical_path_steps;  // wall time
      if (!dr.accepted) ++report.rejected_count;
      worker_end_ns[w] = obs::now_ns();
    }
  } else if (needs_rpol) {
    const auto [top, second] = top_two_devices();
    (void)second;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!report.participated[w]) continue;
      sim::DeviceExecution manager_device(
          top, derive_seed(config_.seed,
                           0xF0000000ULL + static_cast<std::uint64_t>(epoch) * 4096ULL +
                               static_cast<std::uint64_t>(w)));
      obs::Span s("verify", epoch_span, static_cast<int>(w), epoch);
      VerifyResult vr;
      if (config_.streaming) {
        // Sampled checkpoints are fetched back through the spill-backed
        // store; decisions are bitwise identical to the trace overloads.
        vr = config_.compact_commitments
                 ? verifier_->verify_compact(
                       *compacts[w], commitments[w], *streamed[w].store,
                       streamed[w].step_of, contexts[w], initial_hash,
                       manager_device, s.context())
                 : verifier_->verify(commitments[w], *streamed[w].store,
                                     streamed[w].step_of, contexts[w],
                                     initial_hash, manager_device, s.context());
      } else {
        vr = config_.compact_commitments
                 ? verifier_->verify_compact(*compacts[w], commitments[w],
                                             traces[w], contexts[w],
                                             initial_hash, manager_device,
                                             s.context())
                 : verifier_->verify(commitments[w], traces[w], contexts[w],
                                     initial_hash, manager_device, s.context());
      }
      s.attr("accepted", vr.accepted);
      s.attr("double_checks", vr.double_checks);
      s.attr("lsh_mismatches", vr.lsh_mismatches);
      s.attr("reexecuted_steps", vr.reexecuted_steps);
      report.lsh_mismatches += vr.lsh_mismatches;
      report.double_checks += vr.double_checks;
      report.manager_reexecuted_steps += vr.reexecuted_steps;
      // Proofs fetched on demand; losing them means the manager cannot
      // reach a verdict, which fails the session rather than rejecting it.
      if (!deliver(w, kLegProofResponse, "bytes.proof_response",
                   vr.proof_bytes, /*upload=*/true, 1)) {
        report.participated[w] = false;
        report.accepted[w] = false;
        worker_end_ns[w] = obs::now_ns();
        continue;
      }
      report.accepted[w] = vr.accepted;
      if (!vr.accepted) ++report.rejected_count;
      worker_end_ns[w] = obs::now_ns();
    }
  }

  // Graceful degradation, now routed through the health registry: a worker
  // whose session failed this epoch (lost legs or a rejected verdict)
  // accrues a strike; eviction_threshold consecutive strikes retire it and
  // subsequent epochs run with the survivors. One accepted session clears
  // the record. The registry folds the same outcomes into the windowed
  // 0-100 score exported as rpol.health.v1.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (health_.evicted(w)) continue;
    obs::HealthOutcome outcome;
    outcome.participated = report.participated[w];
    outcome.accepted = report.accepted[w];
    outcome.retransmissions = worker_retrans[w];
    if (worker_end_ns[w] > worker_start_ns[w] && worker_start_ns[w] != 0) {
      outcome.latency_ns = worker_end_ns[w] - worker_start_ns[w];
      obs::observe("pool.session_latency_ns", outcome.latency_ns);
    }
    if (health_.record(w, outcome)) {
      obs::count("pool.eviction", 1);
      // An eviction is exactly the forensic moment the flight recorder
      // exists for: mark it, then persist the ring.
      obs::flight_record(obs::FlightKind::kEviction, "pool.eviction",
                         static_cast<std::int64_t>(w), epoch);
      obs::dump_flight_record();
    }
  }
  // Publish a by-value copy of the health rows for the live flusher (a
  // deterministic safe point: the registry is quiescent between epochs).
  obs::live_publish_health(health_);
  report.evicted.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    report.evicted[w] = health_.evicted(w);
    report.evicted_count += health_.evicted(w) ? 1 : 0;
  }

  // Aggregation, Eq. (1) with equal |D_w| weights renormalized over the
  // accepted set (FedAvg convention): rejected submissions are excluded
  // entirely, so detecting a free-riding worker restores the full step size
  // instead of diluting the update — the mechanism behind Fig. 6's gap
  // between verified and unverified pools.
  std::size_t accepted_count = 0;
  for (const bool a : report.accepted) accepted_count += a ? 1 : 0;
  if (accepted_count > 0) {
    obs::Span s("aggregate", epoch_span, /*worker=*/-1, epoch);
    s.attr("accepted_count", static_cast<std::int64_t>(accepted_count));
    const float weight = static_cast<float>(config_.global_learning_rate) /
                         static_cast<float>(accepted_count);
    std::vector<float> next = global_model_;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!report.accepted[w]) continue;
      // Streaming: the final checkpoint comes back through the store,
      // bitwise identical to the state the worker saved (round-trip
      // contract), so aggregation output matches the in-memory path.
      std::vector<float> fetched;
      if (config_.streaming) {
        const CheckpointStore& store = *streamed[w].store;
        fetched = store.fetch(store.num_checkpoints() - 1).model;
      }
      const std::vector<float>& worker_final =
          config_.streaming ? fetched : traces[w].checkpoints.back().model;
      for (std::size_t d = 0; d < next.size(); ++d) {
        next[d] += weight * (worker_final[d] - global_model_[d]);
      }
    }
    global_model_ = std::move(next);
  }

  {
    obs::Span s("evaluate", epoch_span, /*worker=*/-1, epoch);
    report.test_accuracy = evaluate_global();
    s.attr("accuracy", report.test_accuracy);
  }
  report.bytes_this_epoch = network_.total_bytes();
  epoch_span.attr("session_failures", report.session_failures);
  epoch_span.attr("evicted", report.evicted_count);
  obs::flight_record(obs::FlightKind::kMark, "epoch.end", -1, epoch,
                     report.bytes_this_epoch);
  return report;
}

PoolRunReport MiningPool::run() {
  PoolRunReport report;
  for (std::int64_t t = 0; t < config_.epochs; ++t) {
    report.epochs.push_back(run_epoch(t));
    report.total_bytes += report.epochs.back().bytes_this_epoch;
    report.total_session_failures += report.epochs.back().session_failures;
    report.total_retransmissions += report.epochs.back().retransmissions;
  }
  report.final_accuracy =
      report.epochs.empty() ? 0.0 : report.epochs.back().test_accuracy;
  return report;
}

}  // namespace rpol::core
