#include "core/pool.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "data/partition.h"
#include "obs/alerts.h"
#include "obs/live.h"
#include "obs/obs.h"

namespace rpol::core {
namespace {

// Message-type indices for the pool's analytically modeled legs; values
// match core::MessageType (session.h) so fault plans configured per type
// apply identically to sessions and pools. pool.h cannot include session.h
// (session.h includes pool.h), hence the plain ints the fault layer keys on.
enum : int {
  kLegState = 1,
  kLegCommitment = 2,
  kLegUpdate = 3,
  kLegProofResponse = 5,
};

}  // namespace

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline: return "Baseline";
    case Scheme::kRPoLv1: return "RPoLv1";
    case Scheme::kRPoLv2: return "RPoLv2";
  }
  return "unknown";
}

const char* session_status_name(SessionStatus status) {
  switch (status) {
    case SessionStatus::kAccepted: return "accepted";
    case SessionStatus::kVerdictRejected: return "verdict_rejected";
    case SessionStatus::kDecodeRejected: return "decode_rejected";
    case SessionStatus::kTimeout: return "timeout";
    case SessionStatus::kAdmissionRejected: return "admission_rejected";
    case SessionStatus::kRequeued: return "requeued";
  }
  return "unknown";
}

EpochWorkspace::~EpochWorkspace() {
  // Release every byte the epoch's phases charged to the transient tags.
  // Phases charge through the atomic obs::mem_add (a MemScope shared across
  // shard threads would race); the workspace settles the balance when the
  // epoch's artifacts actually die.
  std::uint64_t checkpoint = mem_checkpoint;
  std::uint64_t merkle = 0;
  for (const WorkerSlot& slot : slots) {
    checkpoint += slot.mem_checkpoint;
    merkle += slot.mem_merkle;
  }
  if (checkpoint > 0) obs::mem_sub(obs::MemTag::kCheckpoint, checkpoint);
  if (merkle > 0) obs::mem_sub(obs::MemTag::kMerkle, merkle);
}

MiningPool::MiningPool(PoolConfig config, nn::ModelFactory factory,
                       const data::Dataset& train, data::DatasetView test,
                       std::vector<WorkerSpec> workers)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      test_(std::move(test)),
      workers_(std::move(workers)),
      manager_executor_(factory_, config_.hp),
      network_(config_.network, std::max<std::size_t>(workers_.size(), 1)),
      health_(static_cast<int>(config_.eviction_threshold), workers_.size()) {
  if (workers_.empty()) throw std::invalid_argument("pool needs >= 1 worker");
  if (config_.streaming && config_.decentralized_verification) {
    throw std::invalid_argument(
        "streaming pools cannot use decentralized verification");
  }
  // n+1 i.i.d. parts: the manager keeps part 0 for calibration (Sec. V-C).
  partitions_ = data::shuffle_and_partition(
      train, static_cast<std::int64_t>(workers_.size()) + 1,
      derive_seed(config_.seed, 0xDA7A));

  for (std::size_t w = 0; w < workers_.size(); ++w) {
    worker_executors_.push_back(std::make_unique<StepExecutor>(factory_, config_.hp));
  }

  verifier_ = make_verifier();

  const TrainState pristine = manager_executor_.save_state();
  global_model_ = pristine.model;
  fresh_optimizer_ = pristine.optimizer;
  // Checkpoint-class memory resident for the pool's lifetime: one
  // model+optimizer image per executor (manager + verifier + one per
  // worker) plus the global vectors themselves.
  state_mem_.set(pristine.byte_size() *
                 static_cast<std::uint64_t>(workers_.size() + 3));
}

std::unique_ptr<Verifier> MiningPool::make_verifier() const {
  VerifierConfig vcfg;
  vcfg.samples_q = config_.samples_q;
  vcfg.use_lsh = config_.scheme == Scheme::kRPoLv2;
  vcfg.sampling_seed = derive_seed(config_.seed, 0x5A3B1E);
  return std::make_unique<Verifier>(factory_, config_.hp, vcfg);
}

void MiningPool::configure_epoch_verifier(EpochWorkspace& ws,
                                          Verifier& verifier) const {
  if (!ws.needs_rpol) return;
  verifier.set_beta(ws.beta);
  if (ws.lsh_config.has_value()) verifier.set_lsh_config(*ws.lsh_config);
}

TrainState MiningPool::initial_state() const {
  return {global_model_, fresh_optimizer_};
}

std::uint64_t MiningPool::worker_nonce(std::int64_t epoch,
                                       std::size_t worker) const {
  return derive_seed(config_.seed,
                     0xA0000000ULL + static_cast<std::uint64_t>(epoch) * 4096ULL +
                         static_cast<std::uint64_t>(worker));
}

std::pair<sim::DeviceProfile, sim::DeviceProfile> MiningPool::top_two_devices()
    const {
  // Workers register their hardware with the pool; the manager calibrates on
  // the two fastest profiles to observe worst-case reproduction errors.
  std::vector<sim::DeviceProfile> devices;
  devices.reserve(workers_.size());
  for (const auto& w : workers_) devices.push_back(w.device);
  std::sort(devices.begin(), devices.end(),
            [](const sim::DeviceProfile& a, const sim::DeviceProfile& b) {
              return a.tflops_fp32 > b.tflops_fp32;
            });
  const sim::DeviceProfile top = devices.front();
  const sim::DeviceProfile second = devices.size() > 1 ? devices[1] : devices[0];
  return {top, second};
}

double MiningPool::evaluate_global() {
  manager_executor_.load_state(initial_state());
  return manager_executor_.evaluate(test_);
}

bool MiningPool::deliver_leg(EpochWorkspace& ws, std::size_t w, int leg,
                             const char* counter, std::uint64_t bytes,
                             bool upload, std::size_t fanout) {
  // One protocol leg under the fault environment. Every transmission
  // attempt — retransmissions and duplicates included — counts the full leg
  // toward the worker's byte tally: that is what the sender actually
  // transmitted. The tallies replay into sim::Network in worker order at
  // finish_epoch (its counters are shared, so shard threads must not touch
  // them mid-epoch); `fanout` only ever shaped the unused timing estimate.
  (void)fanout;
  EpochWorkspace::WorkerSlot& slot = ws.slots[w];
  const bool faulty = slot.injector.has_value();
  const int attempts = faulty ? config_.retry.max_attempts : 1;
  std::uint64_t& tally = upload ? slot.uploaded_bytes : slot.downloaded_bytes;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++slot.retransmissions;
      obs::count("pool.retransmission", 1);
    }
    tally += bytes;
    obs::count(counter, bytes);
    if (!faulty) return true;
    const fault::Delivery d = slot.injector->attempt(leg);
    if (d.duplicated) {
      tally += bytes;
      obs::count(counter, bytes);
    }
    if (d.status == fault::DeliveryStatus::kDelivered && !d.corrupted) {
      return true;
    }
  }
  ++slot.session_failures;
  obs::count("pool.session_failure", 1);
  obs::flight_record(obs::FlightKind::kFault, "pool.session_failure",
                     static_cast<std::int64_t>(w), ws.epoch);
  return false;
}

std::unique_ptr<EpochWorkspace> MiningPool::prepare_epoch(std::int64_t epoch) {
  auto ws = std::make_unique<EpochWorkspace>();
  ws->epoch = epoch;
  // Roots this epoch's causal tree: every span below (manager or worker
  // side) carries epoch_span.id() as its trace id.
  ws->epoch_span.emplace("epoch", obs::TraceContext{}, /*worker=*/-1, epoch);
  obs::flight_record(obs::FlightKind::kMark, "epoch.begin", -1, epoch);
  ws->slots.resize(workers_.size());

  // One fault stream per (epoch, worker) link: individually reproducible,
  // statistically independent. No plan => no injectors, and every
  // deliver_leg is the exact single-transmission legacy path.
  if (config_.fault_plan != nullptr) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      ws->slots[w].injector.emplace(
          *config_.fault_plan, static_cast<std::uint64_t>(epoch) * 4096ULL + w);
    }
  }

  ws->initial = initial_state();
  ws->mem_checkpoint = ws->initial.byte_size();
  obs::mem_add(obs::MemTag::kCheckpoint, ws->mem_checkpoint);
  ws->initial_hash = hash_state(ws->initial);
  ws->model_bytes =
      static_cast<std::uint64_t>(global_model_.size()) * sizeof(float);

  // Step 0: adaptive calibration (RPoL schemes only).
  ws->needs_rpol = config_.scheme != Scheme::kBaseline;
  if (ws->needs_rpol && (config_.calibrate_every_epoch || !calibrated_)) {
    obs::Span s("calibrate", *ws->epoch_span, /*worker=*/-1, epoch);
    EpochContext manager_ctx;
    manager_ctx.epoch = epoch;
    manager_ctx.nonce = derive_seed(config_.seed,
                                    0xB0000000ULL + static_cast<std::uint64_t>(epoch));
    manager_ctx.initial = ws->initial;
    manager_ctx.dataset = &partitions_[0];
    const auto [top, second] = top_two_devices();
    last_calibration_ = calibrate_epoch(
        factory_, config_.hp, manager_ctx, top, second,
        derive_seed(config_.seed, 0xC0000000ULL + static_cast<std::uint64_t>(epoch)),
        config_.calibration);
    calibrated_ = true;
  }

  if (ws->needs_rpol) {
    ws->alpha = last_calibration_.alpha;
    ws->beta = last_calibration_.beta;
    ws->lsh_params = last_calibration_.lsh.params;
    verifier_->set_beta(ws->beta);
    if (config_.scheme == Scheme::kRPoLv2) {
      lsh::LshConfig lsh_config;
      lsh_config.params = last_calibration_.lsh.params;
      lsh_config.dim = manager_executor_.model().num_trainable_parameters();
      lsh_config.seed = derive_seed(
          config_.seed, 0xD0000000ULL + static_cast<std::uint64_t>(epoch));
      verifier_->set_lsh_config(lsh_config);
      ws->lsh_config = lsh_config;
    }
  }
  if (config_.scheme == Scheme::kRPoLv2) {
    ws->worker_hasher.emplace(*ws->lsh_config);
  }
  ws->trainable_mask = &manager_executor_.trainable_mask();
  ws->verify_device = top_two_devices().first;
  return ws;
}

void MiningPool::train_commit_worker(EpochWorkspace& ws, std::size_t w) {
  EpochWorkspace::WorkerSlot& slot = ws.slots[w];
  if (health_.evicted(w)) {
    // Evicted workers sit the epoch out; the pool degrades gracefully to
    // the survivors.
    slot.participated = false;
    slot.accepted = false;
    slot.status = SessionStatus::kTimeout;
    return;
  }
  slot.start_ns = obs::now_ns();
  EpochContext ctx;
  ctx.epoch = ws.epoch;
  ctx.nonce = worker_nonce(ws.epoch, w);
  ctx.initial = ws.initial;
  ctx.dataset = &partitions_[w + 1];
  slot.context = ctx;
  // Each context keeps its own copy of the initial state until the
  // epoch's verification phase is done.
  slot.mem_checkpoint += ctx.initial.byte_size();
  obs::mem_add(obs::MemTag::kCheckpoint, ctx.initial.byte_size());

  // Global model out to the worker.
  if (!deliver_leg(ws, w, kLegState, "bytes.state", ws.model_bytes,
                   /*upload=*/false, workers_.size())) {
    slot.participated = false;
    slot.accepted = false;
    slot.status = SessionStatus::kTimeout;
    slot.end_ns = obs::now_ns();
    return;
  }

  sim::DeviceExecution device(
      workers_[w].device,
      derive_seed(config_.seed, 0xE0000000ULL +
                                    static_cast<std::uint64_t>(ws.epoch) * 4096ULL +
                                    static_cast<std::uint64_t>(w)));
  if (config_.streaming) {
    // Train + commit fused: the sink hashes each checkpoint into the
    // commitment and spills it the moment it exists, so worker residency
    // is one state + the store's hot cache (charged to the ckptstore
    // tag by the store itself, never to the checkpoint tag).
    obs::Span s("train", *ws.epoch_span, static_cast<int>(w), ws.epoch);
    CkptStoreConfig scfg;
    scfg.budget_bytes = config_.ckpt_budget_bytes;
    slot.streamed = run_streamed_epoch(
        *workers_[w].policy, *worker_executors_[w], ctx, device,
        config_.scheme == Scheme::kRPoLv2 ? CommitmentVersion::kV2
                                          : CommitmentVersion::kV1,
        ws.worker_hasher ? &*ws.worker_hasher : nullptr,
        config_.scheme == Scheme::kRPoLv2 ? ws.trainable_mask : nullptr, scfg);
    s.attr("storage_bytes", slot.streamed.store->total_bytes());
    slot.commitment = std::move(slot.streamed.commitment);
    slot.mem_merkle += slot.commitment.byte_size();
    obs::mem_add(obs::MemTag::kMerkle, slot.commitment.byte_size());
  } else {
    {
      obs::Span s("train", *ws.epoch_span, static_cast<int>(w), ws.epoch);
      slot.trace = workers_[w].policy->produce_trace(*worker_executors_[w],
                                                     ctx, device);
      s.attr("storage_bytes", slot.trace.storage_bytes());
      slot.mem_checkpoint += slot.trace.storage_bytes();
      obs::mem_add(obs::MemTag::kCheckpoint, slot.trace.storage_bytes());
    }
    {
      obs::Span s("commit", *ws.epoch_span, static_cast<int>(w), ws.epoch);
      slot.commitment =
          config_.scheme == Scheme::kRPoLv2
              ? commit_v2(slot.trace, *ws.worker_hasher, ws.trainable_mask)
              : commit_v1(slot.trace);
      slot.mem_merkle += slot.commitment.byte_size();
      obs::mem_add(obs::MemTag::kMerkle, slot.commitment.byte_size());
    }
  }

  // Upload: final model update + commitment (compact mode uploads only
  // the Merkle roots). The streamed compact roots are identical to
  // compact_commitment's (CommitmentBuilder contract).
  if (config_.compact_commitments) {
    slot.compact = config_.streaming ? slot.streamed.compact
                                     : compact_commitment(slot.commitment);
  }
  const std::uint64_t commitment_bytes = config_.compact_commitments
                                             ? slot.compact->byte_size()
                                             : slot.commitment.byte_size();
  const bool uploaded =
      deliver_leg(ws, w, kLegUpdate, "bytes.update", ws.model_bytes,
                  /*upload=*/true, workers_.size()) &&
      deliver_leg(ws, w, kLegCommitment, "bytes.commitment", commitment_bytes,
                  /*upload=*/true, workers_.size());
  if (!uploaded) {
    slot.participated = false;
    slot.accepted = false;
    slot.status = SessionStatus::kTimeout;
    slot.end_ns = obs::now_ns();
    return;
  }
  slot.end_ns = obs::now_ns();  // refined to the verdict time by verify
  slot.storage_bytes = config_.streaming ? slot.streamed.store->total_bytes()
                                         : slot.trace.storage_bytes();
}

void MiningPool::verify_worker(EpochWorkspace& ws, std::size_t w,
                               Verifier& verifier) {
  if (!ws.needs_rpol) return;  // kBaseline skips step 3 entirely
  EpochWorkspace::WorkerSlot& slot = ws.slots[w];
  if (!slot.participated) return;
  sim::DeviceExecution manager_device(
      ws.verify_device,
      derive_seed(config_.seed,
                  0xF0000000ULL + static_cast<std::uint64_t>(ws.epoch) * 4096ULL +
                      static_cast<std::uint64_t>(w)));
  obs::Span s("verify", *ws.epoch_span, static_cast<int>(w), ws.epoch);
  VerifyResult vr;
  if (config_.streaming) {
    // Sampled checkpoints are fetched back through the spill-backed
    // store; decisions are bitwise identical to the trace overloads.
    vr = config_.compact_commitments
             ? verifier.verify_compact(
                   *slot.compact, slot.commitment, *slot.streamed.store,
                   slot.streamed.step_of, slot.context, ws.initial_hash,
                   manager_device, s.context())
             : verifier.verify(slot.commitment, *slot.streamed.store,
                               slot.streamed.step_of, slot.context,
                               ws.initial_hash, manager_device, s.context());
  } else {
    vr = config_.compact_commitments
             ? verifier.verify_compact(*slot.compact, slot.commitment,
                                       slot.trace, slot.context,
                                       ws.initial_hash, manager_device,
                                       s.context())
             : verifier.verify(slot.commitment, slot.trace, slot.context,
                               ws.initial_hash, manager_device, s.context());
  }
  s.attr("accepted", vr.accepted);
  s.attr("double_checks", vr.double_checks);
  s.attr("lsh_mismatches", vr.lsh_mismatches);
  s.attr("reexecuted_steps", vr.reexecuted_steps);
  slot.lsh_mismatches += vr.lsh_mismatches;
  slot.double_checks += vr.double_checks;
  slot.reexecuted_steps += vr.reexecuted_steps;
  // Proofs fetched on demand; losing them means the manager cannot
  // reach a verdict, which fails the session rather than rejecting it.
  if (!deliver_leg(ws, w, kLegProofResponse, "bytes.proof_response",
                   vr.proof_bytes, /*upload=*/true, 1)) {
    slot.participated = false;
    slot.accepted = false;
    slot.status = SessionStatus::kTimeout;
    slot.end_ns = obs::now_ns();
    return;
  }
  slot.accepted = vr.accepted;
  slot.status = vr.accepted ? SessionStatus::kAccepted
                            : SessionStatus::kVerdictRejected;
  if (!vr.accepted) slot.rejected = 1;
  slot.end_ns = obs::now_ns();
}

EpochReport MiningPool::finish_epoch(EpochWorkspace& ws) {
  EpochReport report;
  report.epoch = ws.epoch;
  const std::size_t n = workers_.size();
  report.participated.resize(n);
  report.accepted.resize(n);
  report.status.resize(n);
  if (ws.needs_rpol) {
    report.alpha = ws.alpha;
    report.beta = ws.beta;
    report.lsh_params = ws.lsh_params;
  }
  // Slot merge in worker-index order: the one ordering every schedule
  // (sequential, sharded lockstep, pipelined) funnels through, which is
  // what makes reports bitwise comparable across them.
  for (std::size_t w = 0; w < n; ++w) {
    const EpochWorkspace::WorkerSlot& slot = ws.slots[w];
    report.participated[w] = slot.participated;
    report.accepted[w] = slot.accepted;
    report.status[w] = slot.status;
    report.session_failures += slot.session_failures;
    report.retransmissions += slot.retransmissions;
    report.rejected_count += slot.rejected;
    report.lsh_mismatches += slot.lsh_mismatches;
    report.double_checks += slot.double_checks;
    report.manager_reexecuted_steps += slot.reexecuted_steps;
    report.worker_storage_bytes =
        std::max(report.worker_storage_bytes, slot.storage_bytes);
  }
  report.admission_enqueued = ws.admission_enqueued;
  report.admission_requeued = ws.admission_requeued;
  report.admission_rejected = ws.admission_rejected;
  report.max_queue_depth = ws.max_queue_depth;

  // Graceful degradation, routed through the health registry: loss and
  // rejection strikes accrue on SEPARATE consecutive counters (obs/health.h
  // splits the kinds so a lossy link is not byzantine evidence);
  // eviction_threshold consecutive strikes of either kind retire the worker
  // and subsequent epochs run with the survivors. One accepted session
  // clears the record. Admission-rejected submissions (a sharded manager
  // shedding load) are neither a strike nor a success: the pool never
  // judged them, so they must not move the worker's record at all.
  for (std::size_t w = 0; w < n; ++w) {
    if (health_.evicted(w)) continue;
    const EpochWorkspace::WorkerSlot& slot = ws.slots[w];
    if (slot.status == SessionStatus::kAdmissionRejected) continue;
    obs::HealthOutcome outcome;
    outcome.participated = slot.participated;
    outcome.accepted = slot.accepted;
    outcome.retransmissions = static_cast<std::uint64_t>(slot.retransmissions);
    if (slot.end_ns > slot.start_ns && slot.start_ns != 0) {
      outcome.latency_ns = slot.end_ns - slot.start_ns;
      obs::observe("pool.session_latency_ns", outcome.latency_ns);
    }
    if (health_.record(w, outcome)) {
      obs::count("pool.eviction", 1);
      // An eviction is exactly the forensic moment the flight recorder
      // exists for: mark it, then persist the ring.
      obs::flight_record(obs::FlightKind::kEviction, "pool.eviction",
                         static_cast<std::int64_t>(w), ws.epoch);
      obs::dump_flight_record();
    }
  }
  // Publish a by-value copy of the health rows for the live flusher (a
  // deterministic safe point: the registry is quiescent between epochs).
  obs::live_publish_health(health_);
  report.evicted.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    report.evicted[w] = health_.evicted(w);
    report.evicted_count += health_.evicted(w) ? 1 : 0;
  }

  // Aggregation, Eq. (1) with equal |D_w| weights renormalized over the
  // accepted set (FedAvg convention): rejected submissions are excluded
  // entirely, so detecting a free-riding worker restores the full step size
  // instead of diluting the update — the mechanism behind Fig. 6's gap
  // between verified and unverified pools.
  std::size_t accepted_count = 0;
  for (const bool a : report.accepted) accepted_count += a ? 1 : 0;
  if (accepted_count > 0) {
    obs::Span s("aggregate", *ws.epoch_span, /*worker=*/-1, ws.epoch);
    s.attr("accepted_count", static_cast<std::int64_t>(accepted_count));
    const float weight = static_cast<float>(config_.global_learning_rate) /
                         static_cast<float>(accepted_count);
    std::vector<float> next = global_model_;
    for (std::size_t w = 0; w < n; ++w) {
      if (!report.accepted[w]) continue;
      const EpochWorkspace::WorkerSlot& slot = ws.slots[w];
      // Streaming: the final checkpoint comes back through the store,
      // bitwise identical to the state the worker saved (round-trip
      // contract), so aggregation output matches the in-memory path.
      std::vector<float> fetched;
      if (config_.streaming) {
        const CheckpointStore& store = *slot.streamed.store;
        fetched = store.fetch(store.num_checkpoints() - 1).model;
      }
      const std::vector<float>& worker_final =
          config_.streaming ? fetched : slot.trace.checkpoints.back().model;
      for (std::size_t d = 0; d < next.size(); ++d) {
        next[d] += weight * (worker_final[d] - global_model_[d]);
      }
    }
    global_model_ = std::move(next);
  }

  {
    obs::Span s("evaluate", *ws.epoch_span, /*worker=*/-1, ws.epoch);
    report.test_accuracy = evaluate_global();
    s.attr("accuracy", report.test_accuracy);
  }
  // Replay the deferred per-worker WAN tallies into the (shared,
  // single-threaded) network counters, in worker order. Totals are integer
  // sums of exactly the legacy per-attempt charges, so bytes_this_epoch is
  // bitwise identical to the inline-counting path.
  network_.reset_counters();
  for (std::size_t w = 0; w < n; ++w) {
    const EpochWorkspace::WorkerSlot& slot = ws.slots[w];
    if (slot.downloaded_bytes > 0) {
      network_.download(w, slot.downloaded_bytes, 1);
    }
    if (slot.uploaded_bytes > 0) network_.upload(w, slot.uploaded_bytes, 1);
  }
  report.bytes_this_epoch = network_.total_bytes();
  ws.epoch_span->attr("session_failures", report.session_failures);
  ws.epoch_span->attr("evicted", report.evicted_count);
  obs::flight_record(obs::FlightKind::kMark, "epoch.end", -1, ws.epoch,
                     report.bytes_this_epoch);
  return report;
}

EpochReport MiningPool::run_epoch(std::int64_t epoch) {
  std::unique_ptr<EpochWorkspace> ws = prepare_epoch(epoch);

  // Steps 1-2: workers train locally and commit, in index order.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    train_commit_worker(*ws, w);
  }

  // Step 3: verification (RPoL schemes).
  if (ws->needs_rpol && config_.decentralized_verification) {
    // Peer-committee verification: each worker is checked by a committee of
    // the OTHER workers (it never votes on itself). Legacy-only branch: the
    // sharded manager rejects this mode (committees replay whole traces
    // across worker boundaries, which defeats shard isolation).
    DecentralizedConfig dcfg;
    dcfg.samples_q = config_.samples_q;
    dcfg.verifiers_per_sample = config_.verifiers_per_sample;
    dcfg.beta = last_calibration_.beta;
    dcfg.assignment_seed = derive_seed(config_.seed, 0x9E0000ULL +
                                                         static_cast<std::uint64_t>(epoch));
    DecentralizedVerifier dec(factory_, config_.hp, dcfg);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      EpochWorkspace::WorkerSlot& slot = ws->slots[w];
      if (!slot.participated) continue;
      std::vector<VerifierNode> committee;
      for (std::size_t v = 0; v < workers_.size(); ++v) {
        if (v == w) continue;
        VerifierNode node;
        node.device = workers_[v].device;
        node.run_seed = derive_seed(
            config_.seed, 0x9F0000ULL + static_cast<std::uint64_t>(epoch) * 4096ULL +
                              static_cast<std::uint64_t>(v));
        committee.push_back(node);
      }
      obs::Span s("verify", *ws->epoch_span, static_cast<int>(w), epoch);
      const DecentralizedResult dr = dec.verify(slot.commitment, slot.trace,
                                                slot.context, ws->initial_hash,
                                                committee);
      s.attr("accepted", dr.accepted);
      slot.accepted = dr.accepted;
      slot.status = dr.accepted ? SessionStatus::kAccepted
                                : SessionStatus::kVerdictRejected;
      slot.reexecuted_steps += dr.critical_path_steps;  // wall time
      if (!dr.accepted) slot.rejected = 1;
      slot.end_ns = obs::now_ns();
    }
  } else if (ws->needs_rpol) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      verify_worker(*ws, w, *verifier_);
    }
  }

  return finish_epoch(*ws);
}

PoolRunReport MiningPool::run() {
  PoolRunReport report;
  for (std::int64_t t = 0; t < config_.epochs; ++t) {
    report.epochs.push_back(run_epoch(t));
    report.total_bytes += report.epochs.back().bytes_this_epoch;
    report.total_session_failures += report.epochs.back().session_failures;
    report.total_retransmissions += report.epochs.back().retransmissions;
  }
  report.final_accuracy =
      report.epochs.empty() ? 0.0 : report.epochs.back().test_accuracy;
  return report;
}

}  // namespace rpol::core
