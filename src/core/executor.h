// Deterministic training-step execution.
//
// StepExecutor is the single implementation of "run training steps
// [first, first+count) from a given state" used by BOTH sides of the
// protocol: workers training an epoch (src/core/worker.h) and the manager
// re-executing sampled checkpoints (src/core/verifier.h). Sharing the code
// path guarantees the only divergence between the two executions is the
// simulated device nondeterminism — exactly the reproduction error the
// protocol must tolerate.
//
// A TrainState snapshot contains everything re-execution needs: the model
// state vector (weights + BatchNorm buffers) and the optimizer state
// (momentum slots, step counters).

#pragma once

#include <memory>

#include "core/detsel.h"
#include "core/task.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "sim/device.h"

namespace rpol::core {

struct TrainState {
  std::vector<float> model;      // Model::state_vector()
  std::vector<float> optimizer;  // Optimizer::state_vector()

  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(model.size() + optimizer.size()) *
           sizeof(float);
  }
};

// Read-only random access to an ordered checkpoint sequence. Two
// realizations: the in-memory EpochTrace (adapter in core/verifier.cpp) and
// the spill-to-disk CheckpointStore (core/ckptstore.h). fetch() returns a
// COPY so a spill-backed source can serve evicted checkpoints from disk;
// callers hold at most the checkpoints they are actively re-executing,
// which is what makes verification memory-bounded (ROADMAP item 5).
class CheckpointSource {
 public:
  virtual ~CheckpointSource() = default;
  virtual std::int64_t num_checkpoints() const = 0;
  // Checkpoint `index` in [0, num_checkpoints()); throws std::out_of_range
  // outside that window.
  virtual TrainState fetch(std::int64_t index) const = 0;
};

// Extracts the trainable-weight subvector of a model state (mask from
// Model::trainable_mask()). Verification distances and LSH digests operate
// on this subset: buffer (BatchNorm statistics) divergence scales with
// activation magnitudes rather than with the training step and is covered
// by the exact SHA hashes instead.
std::vector<float> extract_trainable(const std::vector<float>& model_state,
                                     const std::vector<bool>& mask);

// Euclidean distance between two model states restricted to the trainable
// subset — the paper's reproduction-error measure over model weights.
double trainable_distance(const std::vector<float>& a,
                          const std::vector<float>& b,
                          const std::vector<bool>& mask);

class StepExecutor {
 public:
  StepExecutor(const nn::ModelFactory& factory, const Hyperparams& hp);

  const Hyperparams& hyperparams() const { return hp_; }
  nn::Model& model() { return model_; }
  const std::vector<bool>& trainable_mask() { return model_.trainable_mask(); }

  TrainState save_state();
  void load_state(const TrainState& state);

  // Runs steps m = first_step .. first_step+count-1 with batches selected by
  // `selector` over `dataset`. `device` injects simulated hardware noise
  // into the gradients (may be null for an idealized deterministic run).
  // Returns the mean training loss across the executed steps.
  float run_steps(std::int64_t first_step, std::int64_t count,
                  const data::DatasetView& dataset,
                  const DeterministicSelector& selector,
                  sim::DeviceExecution* device);

  // Accuracy of the current model over a dataset view (eval mode).
  double evaluate(const data::DatasetView& dataset, std::int64_t batch_size = 64);

 private:
  Hyperparams hp_;
  nn::Model model_;
  std::unique_ptr<nn::Optimizer> optimizer_;
};

}  // namespace rpol::core
