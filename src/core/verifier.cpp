#include "core/verifier.h"

#include <algorithm>
#include <stdexcept>

#include "obs/alerts.h"
#include "obs/obs.h"

namespace rpol::core {

namespace {

// Shared verdict accounting for both verification paths. The registry is
// write-only from here: nothing read back, so tracing cannot perturb the
// accept/reject decision.
void record_verdict(const VerifyResult& result) {
  obs::count(result.accepted ? "verify.accept" : "verify.reject", 1);
  obs::flight_record(obs::FlightKind::kMark,
                     result.accepted ? "verify.accept" : "verify.reject");
  if (!result.accepted) {
    obs::count(std::string("verify.reject.") +
                   verify_failure_name(result.failure),
               1);
  }
  if (result.lsh_mismatches > 0) {
    obs::count("verify.lsh_mismatch",
               static_cast<std::uint64_t>(result.lsh_mismatches));
  }
  if (result.double_checks > 0) {
    obs::count("verify.double_check",
               static_cast<std::uint64_t>(result.double_checks));
  }
}

// First-failure classification of one failed transition check.
VerifyFailure classify_check(const TransitionCheck& check) {
  if (!check.hash_ok) return VerifyFailure::kHashMismatch;
  if (check.double_checked) return VerifyFailure::kLshMismatch;
  return VerifyFailure::kDistance;
}

void note_failure(VerifyResult& result, VerifyFailure failure) {
  if (result.failure == VerifyFailure::kNone) result.failure = failure;
}

// In-memory adapter: lets the EpochTrace overloads delegate to the
// streaming implementations, so both paths share one decision procedure
// (bitwise-identical verdicts by construction).
class TraceSource final : public CheckpointSource {
 public:
  explicit TraceSource(const EpochTrace& trace) : trace_(&trace) {}
  std::int64_t num_checkpoints() const override {
    return static_cast<std::int64_t>(trace_->checkpoints.size());
  }
  TrainState fetch(std::int64_t index) const override {
    if (index < 0 || index >= num_checkpoints()) {
      throw std::out_of_range("checkpoint index out of range");
    }
    return trace_->checkpoints[static_cast<std::size_t>(index)];
  }

 private:
  const EpochTrace* trace_;
};

}  // namespace

const char* verify_failure_name(VerifyFailure failure) {
  switch (failure) {
    case VerifyFailure::kNone: return "none";
    case VerifyFailure::kMalformed: return "malformed";
    case VerifyFailure::kInitialBinding: return "initial_binding";
    case VerifyFailure::kHashMismatch: return "hash_mismatch";
    case VerifyFailure::kDistance: return "distance";
    case VerifyFailure::kLshMismatch: return "lsh_mismatch";
  }
  return "unknown";
}

std::vector<std::int64_t> sample_transitions(std::uint64_t seed,
                                             const Digest& commitment_root,
                                             std::int64_t transitions,
                                             std::int64_t q) {
  if (transitions <= 0) throw std::invalid_argument("no transitions to sample");
  q = std::min(q, transitions);
  // Key the PRF with both the manager's secret and the commitment root so
  // the worker cannot predict samples before committing.
  Bytes key;
  append_u64(key, seed);
  key.insert(key.end(), commitment_root.begin(), commitment_root.end());
  const Prf prf{key};

  // Fisher-Yates over [0, transitions) driven by the PRF, take the first q.
  std::vector<std::int64_t> pool(static_cast<std::size_t>(transitions));
  for (std::int64_t i = 0; i < transitions; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (std::int64_t i = 0; i < q; ++i) {
    const std::uint64_t j =
        prf.eval_mod(static_cast<std::uint64_t>(i),
                     static_cast<std::uint64_t>(transitions - i)) +
        static_cast<std::uint64_t>(i);
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(q));
  std::sort(pool.begin(), pool.end());
  return pool;
}

Verifier::Verifier(const nn::ModelFactory& factory, const Hyperparams& hp,
                   VerifierConfig config)
    : hp_(hp), config_(std::move(config)), executor_(factory, hp) {}

const lsh::PStableLsh& Verifier::hasher() {
  if (!config_.lsh_config.has_value()) {
    throw std::logic_error("RPoLv2 verification requires an LSH config");
  }
  if (!hasher_.has_value() || hasher_seed_ != config_.lsh_config->seed ||
      hasher_->config().params.r != config_.lsh_config->params.r ||
      hasher_->config().params.k != config_.lsh_config->params.k ||
      hasher_->config().params.l != config_.lsh_config->params.l) {
    hasher_.emplace(*config_.lsh_config);
    hasher_seed_ = config_.lsh_config->seed;
  }
  return *hasher_;
}

Digest compact_commitment_binding(const CompactCommitment& compact) {
  Bytes b;
  b.push_back(compact.version == CommitmentVersion::kV1 ? 1 : 2);
  append_i64(b, compact.num_checkpoints);
  b.insert(b.end(), compact.state_root.begin(), compact.state_root.end());
  b.insert(b.end(), compact.lsh_root.begin(), compact.lsh_root.end());
  return sha256(b);
}

VerifyResult Verifier::verify_compact(const CompactCommitment& compact,
                                      const Commitment& full,
                                      const EpochTrace& trace,
                                      const EpochContext& context,
                                      const Digest& expected_initial_hash,
                                      sim::DeviceExecution& device,
                                      const obs::TraceContext& trace_parent) {
  return verify_compact(compact, full, TraceSource(trace), trace.step_of,
                        context, expected_initial_hash, device, trace_parent);
}

VerifyResult Verifier::verify_compact(const CompactCommitment& compact,
                                      const Commitment& full,
                                      const CheckpointSource& source,
                                      const std::vector<std::int64_t>& step_of,
                                      const EpochContext& context,
                                      const Digest& expected_initial_hash,
                                      sim::DeviceExecution& device,
                                      const obs::TraceContext& trace_parent) {
  VerifyResult result;
  const std::int64_t transitions = source.num_checkpoints() - 1;
  if (transitions <= 0 || compact.num_checkpoints != source.num_checkpoints() ||
      compact.version != full.version ||
      step_of != hp_.checkpoint_boundaries()) {
    result.failure = VerifyFailure::kMalformed;
    record_verdict(result);
    return result;
  }
  const bool use_lsh = compact.version == CommitmentVersion::kV2;
  if (use_lsh != config_.use_lsh) {
    result.failure = VerifyFailure::kMalformed;
    record_verdict(result);
    return result;
  }

  // One memoized tree build covers the leaf-0 binding AND every sampled
  // transition below: proof generation drops from O(n) hashing per sample
  // to O(log n) lookups against these trees.
  const CommitmentIndex index(full);

  // Initial-state binding: the worker proves leaf 0 under state_root is the
  // distributed state's hash.
  {
    const TransitionProof leaf0 = index.prove_transition(0);
    result.proof_bytes += leaf0.byte_size();
    if (!digest_equal(leaf0.in_hash, expected_initial_hash) ||
        leaf0.in_membership.path_index() != 0 ||
        !MerkleTree::verify(compact.state_root, leaf0.in_hash,
                            leaf0.in_membership)) {
      result.failure = VerifyFailure::kInitialBinding;
      record_verdict(result);
      return result;
    }
  }

  const auto samples =
      sample_transitions(config_.sampling_seed,
                         compact_commitment_binding(compact), transitions,
                         config_.samples_q);
  const DeterministicSelector selector(context.nonce);
  const std::vector<bool>& mask = executor_.trainable_mask();

  bool all_passed = true;
  for (const std::int64_t j : samples) {
    TransitionCheck check;
    check.transition = j;

    // Membership proofs for this transition, generated worker-side.
    const TransitionProof proof = index.prove_transition(j);
    result.proof_bytes += proof.byte_size();
    check.hash_ok = verify_transition_proof(compact, proof);
    if (!check.hash_ok) {
      note_failure(result, VerifyFailure::kHashMismatch);
      all_passed = false;
      result.checks.push_back(check);
      continue;
    }

    // Fetch and hash-check the input state against the proven leaf. The
    // fetch is a copy (possibly reloaded from a spill file); it dies with
    // this block so at most one non-replay checkpoint is resident at once.
    {
      const TrainState proof_in = source.fetch(j);
      result.proof_bytes += proof_in.byte_size();
      if (!digest_equal(hash_state(proof_in), proof.in_hash)) {
        note_failure(result, VerifyFailure::kHashMismatch);
        check.hash_ok = false;
        all_passed = false;
        result.checks.push_back(check);
        continue;
      }

      const std::int64_t first = step_of[static_cast<std::size_t>(j)];
      const std::int64_t count =
          step_of[static_cast<std::size_t>(j + 1)] - first;
      {
        obs::Span reexec("reexecute", trace_parent);
        reexec.attr("transition", j);
        reexec.attr("steps", count);
        executor_.load_state(proof_in);
        executor_.run_steps(first, count, *context.dataset, selector, &device);
      }
      result.reexecuted_steps += count;
    }
    const TrainState replay = executor_.save_state();

    if (!use_lsh) {
      const TrainState claimed = source.fetch(j + 1);
      result.proof_bytes += claimed.byte_size();
      if (digest_equal(hash_state(claimed), proof.out_hash)) {
        check.distance = trainable_distance(replay.model, claimed.model, mask);
        check.passed = check.distance <= config_.beta;
      } else {
        check.hash_ok = false;
      }
    } else {
      const lsh::LshDigest replay_digest =
          hasher().hash(extract_trainable(replay.model, mask));
      check.lsh_matched = lsh::lsh_match(replay_digest, proof.out_lsh);
      if (check.lsh_matched) {
        check.passed = true;
      } else {
        ++result.lsh_mismatches;
        ++result.double_checks;
        check.double_checked = true;
        // Double-check fetches the raw output state on demand only.
        const TrainState claimed = source.fetch(j + 1);
        result.proof_bytes += claimed.byte_size();
        if (digest_equal(hash_state(claimed), proof.out_hash)) {
          check.distance = trainable_distance(replay.model, claimed.model, mask);
          check.passed = check.distance <= config_.beta;
        } else {
          check.hash_ok = false;
        }
      }
    }
    if (!check.passed) note_failure(result, classify_check(check));
    all_passed = all_passed && check.passed;
    result.checks.push_back(check);
  }
  result.accepted = all_passed;
  record_verdict(result);
  return result;
}

VerifyResult Verifier::verify(const Commitment& commitment,
                              const EpochTrace& trace,
                              const EpochContext& context,
                              const Digest& expected_initial_hash,
                              sim::DeviceExecution& device,
                              const obs::TraceContext& trace_parent) {
  return verify(commitment, TraceSource(trace), trace.step_of, context,
                expected_initial_hash, device, trace_parent);
}

VerifyResult Verifier::verify(const Commitment& commitment,
                              const CheckpointSource& source,
                              const std::vector<std::int64_t>& step_of,
                              const EpochContext& context,
                              const Digest& expected_initial_hash,
                              sim::DeviceExecution& device,
                              const obs::TraceContext& trace_parent) {
  VerifyResult result;
  const std::int64_t transitions = source.num_checkpoints() - 1;
  // The step boundaries are derived from the agreed hyper-parameters, never
  // trusted from the prover: malformed step_of vectors (zero-length
  // intervals, wrong counts) are rejected outright.
  if (transitions <= 0 ||
      static_cast<std::int64_t>(commitment.state_hashes.size()) !=
          source.num_checkpoints() ||
      step_of != hp_.checkpoint_boundaries()) {
    result.failure = VerifyFailure::kMalformed;
    record_verdict(result);
    return result;  // malformed => reject
  }
  if (!commitment_consistent(commitment)) {
    result.failure = VerifyFailure::kMalformed;
    record_verdict(result);
    return result;
  }

  // The first checkpoint must be exactly the state the manager handed out.
  if (!digest_equal(commitment.state_hashes.front(), expected_initial_hash)) {
    result.failure = VerifyFailure::kInitialBinding;
    record_verdict(result);
    return result;
  }

  const auto samples = sample_transitions(config_.sampling_seed, commitment.root,
                                          transitions, config_.samples_q);
  const DeterministicSelector selector(context.nonce);

  bool all_passed = true;
  for (const std::int64_t j : samples) {
    TransitionCheck check;
    check.transition = j;

    // Fetch proof_in = C_j and hash-check it against the commitment. The
    // fetched copy dies with this block (the executor holds the loaded
    // weights), bounding residency to the states actively in use.
    {
      const TrainState proof_in = source.fetch(j);
      result.proof_bytes += proof_in.byte_size();
      check.hash_ok =
          digest_equal(hash_state(proof_in),
                       commitment.state_hashes[static_cast<std::size_t>(j)]);
      if (!check.hash_ok) {
        note_failure(result, VerifyFailure::kHashMismatch);
        all_passed = false;
        result.checks.push_back(check);
        continue;
      }

      // Re-execute the transition on the manager's device.
      const std::int64_t first = step_of[static_cast<std::size_t>(j)];
      const std::int64_t count =
          step_of[static_cast<std::size_t>(j + 1)] - first;
      {
        obs::Span reexec("reexecute", trace_parent);
        reexec.attr("transition", j);
        reexec.attr("steps", count);
        executor_.load_state(proof_in);
        executor_.run_steps(first, count, *context.dataset, selector, &device);
      }
      result.reexecuted_steps += count;
    }
    const TrainState replay = executor_.save_state();

    const std::vector<bool>& mask = executor_.trainable_mask();
    if (!config_.use_lsh) {
      // RPoLv1: fetch the claimed output too and distance-test it.
      const TrainState claimed = source.fetch(j + 1);
      result.proof_bytes += claimed.byte_size();
      const bool out_hash_ok =
          digest_equal(hash_state(claimed),
                       commitment.state_hashes[static_cast<std::size_t>(j + 1)]);
      check.hash_ok = check.hash_ok && out_hash_ok;
      if (out_hash_ok) {
        check.distance = trainable_distance(replay.model, claimed.model, mask);
        check.passed = check.distance <= config_.beta;
      }
    } else {
      // RPoLv2: fuzzy-match the replayed weights against the committed LSH
      // digest of C_{j+1}; fall back to the double-check on mismatch.
      const lsh::LshDigest replay_digest =
          hasher().hash(extract_trainable(replay.model, mask));
      check.lsh_matched = lsh::lsh_match(
          replay_digest, commitment.lsh_digests[static_cast<std::size_t>(j + 1)]);
      if (check.lsh_matched) {
        check.passed = true;
      } else {
        ++result.lsh_mismatches;
        ++result.double_checks;
        check.double_checked = true;
        // Double-check: only now is the raw output state pulled in.
        const TrainState claimed = source.fetch(j + 1);
        result.proof_bytes += claimed.byte_size();
        const bool out_hash_ok = digest_equal(
            hash_state(claimed),
            commitment.state_hashes[static_cast<std::size_t>(j + 1)]);
        if (out_hash_ok) {
          check.distance = trainable_distance(replay.model, claimed.model, mask);
          check.passed = check.distance <= config_.beta;
        }
      }
    }
    if (!check.passed) note_failure(result, classify_check(check));
    all_passed = all_passed && check.passed;
    result.checks.push_back(check);
  }
  result.accepted = all_passed;
  record_verdict(result);
  return result;
}

}  // namespace rpol::core
