// Soundness and economic analysis (Sec. VI, Theorems 2-3).
//
// An attacker with honesty ratio h passes ONE sampled transition with
// probability at most h + (1-h) Pr_lsh(beta); across q independent samples
// the evasion probability (soundness error) is that to the power q. The
// economic view (Theorem 3) asks instead for the q making the attacker's
// expected net gain G_A non-positive, using the paper's cost constants
// (reward 1, honest training cost C_train = 0.88, spoof cost C_spoof ~ 0).

#pragma once

#include <cstdint>

namespace rpol::core {

struct EconomicParams {
  double reward = 1.0;      // reward for one verified submission
  double c_train = 0.88;    // compute cost of a fully honest submission
  double c_spoof = 0.0;     // compute cost of the spoofing strategy
  double c_transfer = 0.0;  // communication cost per weight-set transfer
  double pr_lsh_alpha = 0.95;  // Pr_lsh(alpha): honest LSH match rate
  double pr_lsh_beta = 0.05;   // Pr_lsh(beta): spoof LSH pass rate
};

// Per-sample evasion probability: h + (1-h) * pr_lsh_beta.
double per_sample_evasion(double honesty_ratio, double pr_lsh_beta);

// Soundness error Pr_err = per_sample_evasion^q (Theorem 2).
double soundness_error(double honesty_ratio, double pr_lsh_beta, std::int64_t q);

// Minimum q for a target soundness error (Eq. 8). Returns at least 1.
std::int64_t required_samples(double target_pr_err, double honesty_ratio,
                              double pr_lsh_beta);

// Expected net gain G_A of an attacker for one submission (Eq. 9).
double expected_net_gain(double honesty_ratio, std::int64_t q,
                         const EconomicParams& params);

// Minimum q making max(G_A) <= 0 (Eq. 11). Returns at least 1.
std::int64_t economic_samples(double honesty_ratio, const EconomicParams& params);

}  // namespace rpol::core
