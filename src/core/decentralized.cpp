#include "core/decentralized.h"

#include <algorithm>
#include <stdexcept>

namespace rpol::core {

std::vector<std::vector<std::size_t>> assign_verifiers(
    std::uint64_t seed, const Digest& commitment_root,
    const std::vector<std::int64_t>& samples, std::size_t num_verifiers,
    std::int64_t verifiers_per_sample) {
  if (num_verifiers < static_cast<std::size_t>(verifiers_per_sample)) {
    throw std::invalid_argument("not enough verifiers for the replication level");
  }
  Bytes key;
  append_u64(key, seed);
  key.insert(key.end(), commitment_root.begin(), commitment_root.end());
  const Prf prf{key};

  std::vector<std::vector<std::size_t>> assignment;
  assignment.reserve(samples.size());
  for (std::size_t s = 0; s < samples.size(); ++s) {
    // PRF-driven partial Fisher-Yates over verifier indices.
    std::vector<std::size_t> pool(num_verifiers);
    for (std::size_t i = 0; i < num_verifiers; ++i) pool[i] = i;
    std::vector<std::size_t> chosen;
    for (std::int64_t r = 0; r < verifiers_per_sample; ++r) {
      const std::uint64_t j = prf.eval_mod(
          (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint64_t>(r),
          pool.size() - static_cast<std::size_t>(r));
      std::swap(pool[static_cast<std::size_t>(r)],
                pool[static_cast<std::size_t>(r) + j]);
      chosen.push_back(pool[static_cast<std::size_t>(r)]);
    }
    std::sort(chosen.begin(), chosen.end());
    assignment.push_back(std::move(chosen));
  }
  return assignment;
}

DecentralizedVerifier::DecentralizedVerifier(const nn::ModelFactory& factory,
                                             const Hyperparams& hp,
                                             DecentralizedConfig config)
    : hp_(hp), config_(config), executor_(factory, hp) {}

DecentralizedResult DecentralizedVerifier::verify(
    const Commitment& commitment, const EpochTrace& trace,
    const EpochContext& context, const Digest& expected_initial_hash,
    const std::vector<VerifierNode>& verifiers) {
  DecentralizedResult result;
  const std::int64_t transitions = trace.num_transitions();
  if (transitions <= 0 ||
      commitment.state_hashes.size() != trace.checkpoints.size() ||
      trace.step_of != hp_.checkpoint_boundaries() ||
      !commitment_consistent(commitment) ||
      !digest_equal(commitment.state_hashes.front(), expected_initial_hash)) {
    return result;
  }

  result.samples = sample_transitions(config_.assignment_seed, commitment.root,
                                      transitions, config_.samples_q);
  const auto assignment =
      assign_verifiers(config_.assignment_seed, commitment.root, result.samples,
                       verifiers.size(), config_.verifiers_per_sample);
  const DeterministicSelector selector(context.nonce);
  const std::vector<bool>& mask = executor_.trainable_mask();

  std::vector<std::int64_t> per_verifier_steps(verifiers.size(), 0);
  bool all_passed = true;
  for (std::size_t s = 0; s < result.samples.size(); ++s) {
    const std::int64_t j = result.samples[s];
    const TrainState& proof_in = trace.checkpoints[static_cast<std::size_t>(j)];
    const TrainState& claimed =
        trace.checkpoints[static_cast<std::size_t>(j + 1)];
    const bool hashes_ok =
        digest_equal(hash_state(proof_in),
                     commitment.state_hashes[static_cast<std::size_t>(j)]) &&
        digest_equal(hash_state(claimed),
                     commitment.state_hashes[static_cast<std::size_t>(j + 1)]);

    std::vector<VerifierVote> votes;
    int pass_votes = 0;
    for (const std::size_t v : assignment[s]) {
      VerifierVote vote;
      vote.verifier = v;
      const VerifierNode& node = verifiers[v];
      switch (node.behavior) {
        case VerifierBehavior::kColludeAccept:
          vote.pass = true;
          break;
        case VerifierBehavior::kSlandererReject:
          vote.pass = false;
          break;
        case VerifierBehavior::kHonest: {
          if (!hashes_ok) {
            vote.pass = false;
            break;
          }
          const std::int64_t first = trace.step_of[static_cast<std::size_t>(j)];
          const std::int64_t count =
              trace.step_of[static_cast<std::size_t>(j + 1)] - first;
          sim::DeviceExecution device(
              node.device,
              derive_seed(node.run_seed,
                          (static_cast<std::uint64_t>(s) << 20) |
                              static_cast<std::uint64_t>(j)));
          executor_.load_state(proof_in);
          executor_.run_steps(first, count, *context.dataset, selector, &device);
          result.total_reexecuted_steps += count;
          per_verifier_steps[v] += count;
          vote.distance = trainable_distance(executor_.save_state().model,
                                             claimed.model, mask);
          vote.pass = vote.distance <= config_.beta;
          break;
        }
      }
      pass_votes += vote.pass ? 1 : 0;
      votes.push_back(vote);
    }
    const bool sample_passed =
        2 * pass_votes > static_cast<int>(assignment[s].size());
    all_passed = all_passed && sample_passed;
    result.votes.push_back(std::move(votes));
  }
  result.accepted = all_passed;
  result.critical_path_steps =
      *std::max_element(per_verifier_steps.begin(), per_verifier_steps.end());
  return result;
}

}  // namespace rpol::core
