#include "core/detsel.h"

#include <stdexcept>

namespace rpol::core {

std::vector<std::int64_t> DeterministicSelector::batch_indices(
    std::int64_t step, std::int64_t batch_size, std::int64_t dataset_size) const {
  if (batch_size <= 0 || static_cast<std::uint64_t>(batch_size) > kMaxBatch) {
    throw std::invalid_argument("bad batch size");
  }
  if (dataset_size <= 0) throw std::invalid_argument("empty dataset");
  std::vector<std::int64_t> out(static_cast<std::size_t>(batch_size));
  const std::uint64_t base = static_cast<std::uint64_t>(step) * kMaxBatch;
  for (std::int64_t n = 0; n < batch_size; ++n) {
    out[static_cast<std::size_t>(n)] = static_cast<std::int64_t>(
        prf_.eval_mod(base + static_cast<std::uint64_t>(n),
                      static_cast<std::uint64_t>(dataset_size)));
  }
  return out;
}

bool DeterministicSelector::augment_flip(std::int64_t step,
                                         std::int64_t n) const {
  // High bit set = augmentation domain, disjoint from batch selection.
  const std::uint64_t input = (1ULL << 63) |
                              (static_cast<std::uint64_t>(step) * kMaxBatch +
                               static_cast<std::uint64_t>(n));
  return (prf_.eval(input) & 1ULL) != 0;
}

}  // namespace rpol::core
