// Analytic real-scale cost model for Tables II and III.
//
// The Mini* models validate protocol *logic*; epoch wall-times and GB
// figures for "ResNet50/VGG16 on ImageNet with 10/100 workers" come from
// this model, which combines
//   * the protocol's exact message structure (what RPoLv1/v2 transfer and
//     store, including the measured double-check rate),
//   * real model/dataset descriptors (src/sim/model_specs.h),
//   * the device throughput model and the WAN bandwidth model.
//
// Conventions matching the paper's Table III accounting:
//   * communication counts worker->manager transfers (global-model
//     downloads are symmetric and reported separately in the breakdown);
//   * proof states count model weights only (optimizer slots are a
//     small-scale implementation detail the paper does not transfer);
//   * v2 calibration compute is charged to the manager; v1 is assumed to be
//     given its threshold (the paper attributes the 2x local sub-task to
//     RPoLv2 only);
//   * v2 worker storage includes the LSH projection matrix
//     (k*l x model_dim floats) alongside the checkpoints.

#pragma once

#include "core/pool.h"
#include "sim/cost.h"
#include "sim/model_specs.h"

namespace rpol::core {

struct CostScenario {
  Scheme scheme = Scheme::kRPoLv2;
  sim::RealModelSpec model;
  sim::RealDatasetSpec dataset;
  std::size_t num_workers = 100;
  std::int64_t batch_size = 128;
  std::int64_t checkpoint_interval = 5;
  std::int64_t samples_q = 3;
  int k_lsh = 16;
  double double_check_rate = 0.0;  // measured fraction of samples double-checked
  // Manager-side verification parallelism for the WALL-time estimate (the
  // paper notes "performance can be further boosted with parallel processing
  // on the manager side"; its Table II/III numbers imply ~8-way overlap at
  // 100 workers). 0 = auto: max(1, num_workers / 12). Capital cost always
  // charges the full GPU-seconds regardless.
  std::size_t manager_verify_parallelism = 0;
  sim::DeviceProfile worker_device;   // defaults set in estimate_epoch_cost
  sim::DeviceProfile manager_device;
  sim::NetworkSpec network;
  sim::CostModel prices;
};

struct EpochCostReport {
  // Compute (simulated seconds).
  double worker_train_s = 0.0;
  double worker_lsh_s = 0.0;
  double manager_verify_s = 0.0;
  double manager_calibrate_s = 0.0;

  // Communication (bytes).
  std::uint64_t upload_bytes_total = 0;     // worker -> manager, all workers
  std::uint64_t download_bytes_total = 0;   // manager -> worker, all workers
  std::uint64_t proof_bytes_total = 0;      // subset of uploads

  // Storage (bytes, per worker).
  std::uint64_t storage_bytes_per_worker = 0;

  // Wall-clock estimate of one epoch (training + transfers + verification).
  double epoch_wall_s = 0.0;

  // Capital cost (USD) for the epoch across the whole pool.
  sim::CostBreakdown capital;

  double manager_compute_s() const {
    return manager_verify_s + manager_calibrate_s;
  }
};

// Steps per worker per epoch (one pass over the worker's shard).
std::int64_t steps_per_worker_epoch(const CostScenario& scenario);

// Checkpoints stored per worker per epoch (including the initial state).
std::int64_t checkpoints_per_epoch(const CostScenario& scenario);

EpochCostReport estimate_epoch_cost(const CostScenario& scenario);

}  // namespace rpol::core
