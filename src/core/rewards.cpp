#include "core/rewards.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rpol::core {

std::uint64_t RewardDistribution::total() const {
  std::uint64_t t = manager_fee + undistributed;
  for (const auto p : worker_payouts) t += p;
  return t;
}

std::vector<std::int64_t> verified_epoch_counts(const PoolRunReport& report) {
  if (report.epochs.empty()) return {};
  std::vector<std::int64_t> counts(report.epochs.front().accepted.size(), 0);
  for (const auto& epoch : report.epochs) {
    for (std::size_t w = 0; w < epoch.accepted.size() && w < counts.size(); ++w) {
      if (epoch.accepted[w]) ++counts[w];
    }
  }
  return counts;
}

RewardDistribution distribute_rewards(std::uint64_t total_reward,
                                      const std::vector<std::int64_t>& contributions,
                                      const RewardPolicy& policy) {
  if (policy.manager_fee_basis_points > 10'000) {
    throw std::invalid_argument("manager fee exceeds 100%");
  }
  for (const auto c : contributions) {
    if (c < 0) throw std::invalid_argument("negative contribution");
  }

  RewardDistribution dist;
  dist.worker_payouts.assign(contributions.size(), 0);
  dist.manager_fee =
      total_reward * policy.manager_fee_basis_points / 10'000ULL;
  const std::uint64_t pool = total_reward - dist.manager_fee;

  const std::uint64_t total_contrib = static_cast<std::uint64_t>(
      std::accumulate(contributions.begin(), contributions.end(),
                      static_cast<std::int64_t>(0)));
  if (total_contrib == 0) {
    dist.undistributed = pool;
    return dist;
  }

  // Largest-remainder allocation: floor shares first, then hand out the
  // remaining units to the largest fractional remainders (ties broken by
  // worker index for determinism).
  std::uint64_t allocated = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> remainders;
  for (std::size_t w = 0; w < contributions.size(); ++w) {
    const std::uint64_t numerator =
        pool * static_cast<std::uint64_t>(contributions[w]);
    dist.worker_payouts[w] = numerator / total_contrib;
    allocated += dist.worker_payouts[w];
    remainders.emplace_back(numerator % total_contrib, w);
  }
  std::uint64_t leftover = pool - allocated;
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < remainders.size() && leftover > 0; ++i) {
    if (remainders[i].first == 0) break;  // exact division, nothing owed
    ++dist.worker_payouts[remainders[i].second];
    --leftover;
  }
  dist.undistributed = leftover;
  return dist;
}

}  // namespace rpol::core
