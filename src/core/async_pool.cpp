#include "core/async_pool.h"

#include <cmath>
#include <stdexcept>

#include "data/partition.h"
#include "obs/alerts.h"
#include "obs/live.h"
#include "obs/obs.h"

namespace rpol::core {

AsyncMiningPool::AsyncMiningPool(AsyncPoolConfig config, nn::ModelFactory factory,
                                 const data::Dataset& train,
                                 data::DatasetView test,
                                 std::vector<AsyncWorkerSpec> workers)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      test_(std::move(test)),
      workers_(std::move(workers)),
      manager_executor_(factory_, config_.hp),
      health_(static_cast<int>(config_.eviction_threshold), workers_.size()) {
  if (workers_.empty()) throw std::invalid_argument("async pool needs workers");
  for (const auto& w : workers_) {
    if (w.period < 1) throw std::invalid_argument("worker period must be >= 1");
  }
  partitions_ = data::shuffle_and_partition(
      train, static_cast<std::int64_t>(workers_.size()),
      derive_seed(config_.seed, 0xA57A));

  VerifierConfig vcfg;
  vcfg.samples_q = config_.samples_q;
  vcfg.beta = config_.beta;
  vcfg.sampling_seed = derive_seed(config_.seed, 0xA57B);
  verifier_ = std::make_unique<Verifier>(factory_, config_.hp, vcfg);

  const TrainState pristine = manager_executor_.save_state();
  global_model_ = pristine.model;
  fresh_optimizer_ = pristine.optimizer;

  // Every worker grabs the initial state at tick 0.
  in_flight_.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    in_flight_[w].base = current_state();
    in_flight_[w].nonce = derive_seed(config_.seed, 0xB000ULL + w);
    in_flight_[w].started_at_version = 0;
    in_flight_[w].finish_tick = workers_[w].period;
  }
}

TrainState AsyncMiningPool::current_state() const {
  return {global_model_, fresh_optimizer_};
}

AsyncRunReport AsyncMiningPool::run() {
  AsyncRunReport report;
  for (std::int64_t tick = 1; tick <= config_.ticks; ++tick) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      InFlight& job = in_flight_[w];
      if (health_.evicted(w) || job.finish_tick != tick) continue;

      // Each submission roots its own causal tree (async epochs have no
      // shared root); the verifier's re-execution spans link under it.
      obs::Span submission_span("submission", obs::TraceContext{},
                                static_cast<int>(w), tick);
      const std::uint64_t submission_start_ns = obs::now_ns();
      std::uint64_t submission_retrans = 0;

      // Submission transport under the fault plan: the worker retransmits
      // its trained update up to the retry budget; exhausting it loses this
      // cadence slot entirely (the manager never sees the trace).
      bool delivered = true;
      if (config_.fault_plan != nullptr) {
        fault::FaultInjector injector(
            *config_.fault_plan,
            static_cast<std::uint64_t>(tick) * 256ULL + w);
        delivered = false;
        for (int attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
          if (attempt > 0) {
            ++report.retransmissions;
            ++submission_retrans;
            obs::count("async.retransmission", 1);
          }
          const fault::Delivery d = injector.attempt(/*kCommitment*/ 2);
          if (d.status == fault::DeliveryStatus::kDelivered && !d.corrupted) {
            delivered = true;
            break;
          }
        }
      }

      // The worker finishes its local epoch (trained from its grabbed base).
      EpochContext ctx;
      ctx.epoch = tick;
      ctx.nonce = job.nonce;
      ctx.initial = job.base;
      ctx.dataset = &partitions_[w];
      StepExecutor worker_executor(factory_, config_.hp);
      sim::DeviceExecution device(
          workers_[w].device,
          derive_seed(config_.seed,
                      0xC000ULL + static_cast<std::uint64_t>(tick) * 256ULL + w));
      const EpochTrace trace =
          workers_[w].policy->produce_trace(worker_executor, ctx, device);
      // Checkpoint store lives until this submission is resolved; the
      // session's working state (grabbed base copy + the transient
      // executor's model+optimizer image) rides along with it.
      obs::MemScope trace_mem(obs::MemTag::kCheckpoint,
                              trace.storage_bytes() +
                                  ctx.initial.byte_size() * 2);

      AsyncSubmission submission;
      submission.tick = tick;
      submission.worker = w;
      submission.staleness = global_version_ - job.started_at_version;

      bool accepted = delivered;
      if (delivered && config_.verify) {
        sim::DeviceExecution manager_device(
            sim::device_g3090(),
            derive_seed(config_.seed,
                        0xD000ULL + static_cast<std::uint64_t>(tick) * 256ULL + w));
        accepted = verifier_
                       ->verify(commit_v1(trace), trace, ctx,
                                hash_state(job.base), manager_device,
                                submission_span.context())
                       .accepted;
      }
      submission.accepted = accepted;
      submission.delivered = delivered;
      report.submissions.push_back(submission);
      submission_span.attr("staleness", submission.staleness);
      submission_span.attr("accepted", accepted);
      submission_span.attr("delivered", delivered);
      obs::count(!delivered ? "async.lost"
                            : (accepted ? "async.applied" : "async.rejected"),
                 1);
      if (!delivered) {
        obs::flight_record(obs::FlightKind::kFault, "async.lost",
                           static_cast<std::int64_t>(w), tick);
      }

      if (accepted) {
        const double discount = config_.eta *
                                std::pow(config_.staleness_discount,
                                         static_cast<double>(submission.staleness));
        const std::vector<float>& final_model = trace.checkpoints.back().model;
        for (std::size_t d = 0; d < global_model_.size(); ++d) {
          global_model_[d] += static_cast<float>(discount) *
                              (final_model[d] - job.base.model[d]);
        }
        ++global_version_;
        ++report.applied;
      } else if (delivered) {
        ++report.rejected;
      } else {
        ++report.lost;
      }

      // Graceful degradation via the health registry. Lost submissions
      // (delivered == false, never verified) and verify-rejected ones burn
      // SEPARATE consecutive-strike budgets — obs/health.h splits the
      // accounting so a lossy link is not mistaken for a byzantine worker;
      // eviction needs threshold consecutive strikes of one kind. The same
      // outcome feeds the windowed per-worker score (latency and retries
      // are report-only).
      obs::HealthOutcome outcome;
      outcome.participated = delivered;
      outcome.accepted = accepted;
      outcome.retransmissions = submission_retrans;
      outcome.latency_ns = obs::now_ns() - submission_start_ns;
      obs::observe("async.submission_latency_ns", outcome.latency_ns);
      if (health_.record(w, outcome)) {
        obs::count("async.eviction", 1);
        obs::flight_record(obs::FlightKind::kEviction, "async.eviction",
                           static_cast<std::int64_t>(w), tick);
        obs::dump_flight_record();
        obs::live_publish_health(health_);
        continue;  // never re-arms; finish_tick stays in the past
      }

      // The worker immediately grabs the fresh state and starts over.
      job.base = current_state();
      job.nonce = derive_seed(config_.seed,
                              0xE000ULL + static_cast<std::uint64_t>(tick) * 256ULL + w);
      job.started_at_version = global_version_;
      job.finish_tick = tick + workers_[w].period;
    }
    obs::Span eval_span("evaluate", obs::TraceContext{}, /*worker=*/-1, tick);
    manager_executor_.load_state(current_state());
    report.accuracy_curve.push_back(manager_executor_.evaluate(test_));
    // End of a scheduler tick is the async pool's deterministic safe point
    // for publishing health rows to the live flusher.
    obs::live_publish_health(health_);
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    report.evicted_workers += health_.evicted(w) ? 1 : 0;
  }
  report.final_accuracy =
      report.accuracy_curve.empty() ? 0.0 : report.accuracy_curve.back();
  return report;
}

}  // namespace rpol::core
