// In-pool reward distribution (Fig. 2 step "distributes mining rewards
// proportionally to workers' contributions").
//
// Contribution of a worker = number of epochs whose submission passed
// verification (sub-datasets are equal-sized, so verified epochs are the
// natural unit of useful work). The manager takes a configurable fee;
// the rest is split proportionally using exact integer arithmetic
// (largest-remainder method) so payouts always sum to the distributed
// amount — nothing is silently minted or burnt.

#pragma once

#include <cstdint>
#include <vector>

#include "core/pool.h"

namespace rpol::core {

struct RewardPolicy {
  // Fraction of the block reward kept by the manager (pool fee), in basis
  // points to keep the arithmetic exact (250 = 2.5%).
  std::uint32_t manager_fee_basis_points = 250;
};

struct RewardDistribution {
  std::uint64_t manager_fee = 0;
  std::vector<std::uint64_t> worker_payouts;
  // Reward that could not be attributed (e.g. no verified contributions);
  // stays with the manager's float rather than vanishing.
  std::uint64_t undistributed = 0;

  std::uint64_t total() const;
};

// Verified-epoch counts per worker from a pool run report.
std::vector<std::int64_t> verified_epoch_counts(const PoolRunReport& report);

// Splits `total_reward` according to `contributions` (one entry per worker).
RewardDistribution distribute_rewards(std::uint64_t total_reward,
                                      const std::vector<std::int64_t>& contributions,
                                      const RewardPolicy& policy = {});

}  // namespace rpol::core
