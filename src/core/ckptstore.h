// Spill-to-disk checkpoint store: bounded-memory custody of an epoch's
// checkpoint sequence (ROADMAP item 5).
//
// The paper's worker keeps every checkpoint of the epoch around so the
// manager can later sample any transition. Materializing that chain in RAM
// makes worker memory grow linearly with checkpoint count — the exact
// failure mode this store removes. Design:
//
//   * WRITE-THROUGH SPILL. Every append()ed state is serialized canonically
//     (serialize_state) and written to an append-only spill file before it
//     is cached. The disk copy is the source of truth from the first byte,
//     so eviction is "forget the hot entry" — no dirty tracking, no
//     write-back window, and a cold read can never observe a torn state.
//   * HOT LRU CACHE. Decoded TrainStates are kept hot up to a byte budget
//     (RPOL_CKPT_BUDGET env or CkptStoreConfig::budget_bytes); the
//     least-recently-used entry is dropped first. Eviction runs BEFORE
//     insertion, so resident cache bytes never exceed
//     max(budget, one checkpoint).
//   * ACCOUNTED. Hot bytes are charged to obs::MemTag::kCkptStore through a
//     MemScope, so tests and the health report can assert the budget holds
//     (tests/core_ckptstore_test.cpp does exactly that at 10x checkpoint
//     count).
//
// Determinism contract (§6): fetch() returns the bitwise-exact state that
// was appended — serialization round-trips fp32 through raw little-endian
// bits — so verification over a spill-backed source is bitwise identical to
// verification over the in-memory trace. Thread-safe: concurrent fetch()
// calls (and fetch during append) serialize on an internal mutex.

#pragma once

#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/policy.h"

namespace rpol::core {

struct CkptStoreConfig {
  // Hot-cache budget in bytes. 0 resolves RPOL_CKPT_BUDGET from the
  // environment, falling back to 256 MiB when unset/unparsable.
  std::uint64_t budget_bytes = 0;
  // Directory for the spill file; empty uses the system temp directory.
  std::string spill_dir;
};

struct CkptStoreStats {
  std::int64_t checkpoints = 0;    // states appended so far
  std::int64_t hot_count = 0;      // states currently decoded in the LRU
  std::uint64_t hot_bytes = 0;     // logical bytes of the hot states
  std::uint64_t spill_bytes = 0;   // bytes written to the spill file
  std::uint64_t evictions = 0;     // hot entries dropped to respect budget
  std::uint64_t reloads = 0;       // cold fetches served from disk
  std::uint64_t budget_bytes = 0;  // resolved budget
};

// Resolves the effective hot-cache budget: explicit config value if
// non-zero, else RPOL_CKPT_BUDGET, else the 256 MiB default.
std::uint64_t resolve_ckpt_budget(std::uint64_t configured);

class CheckpointStore final : public CheckpointSource, public CheckpointSink {
 public:
  explicit CheckpointStore(CkptStoreConfig config = {});
  ~CheckpointStore() override;
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // CheckpointSink: serializes the state to the spill file, then caches it
  // hot (evicting LRU entries first so the budget is never exceeded).
  void append(const TrainState& state) override;

  // CheckpointSource.
  std::int64_t num_checkpoints() const override;
  // Hot hit: copies the cached state (and refreshes its LRU position).
  // Cold: reads the record back from the spill file, re-caches it, and
  // returns it — bitwise identical to what was appended.
  TrainState fetch(std::int64_t index) const override;

  // Whether checkpoint `index` currently sits in the hot cache (tests).
  bool is_hot(std::int64_t index) const;

  // Sum of TrainState::byte_size() over every appended checkpoint — the
  // logical storage the worker is custodian of, matching
  // EpochTrace::storage_bytes() for the same sequence.
  std::uint64_t total_bytes() const;

  CkptStoreStats stats() const;
  const std::string& spill_path() const { return path_; }

 private:
  struct Record {
    std::uint64_t offset = 0;       // into the spill file
    std::uint64_t length = 0;       // serialized byte count
    std::uint64_t state_bytes = 0;  // TrainState::byte_size()
  };
  struct HotEntry {
    TrainState state;
    std::list<std::int64_t>::iterator lru_pos;
  };

  // All private helpers assume mu_ is held.
  void evict_for(std::uint64_t incoming_bytes) const;
  void cache_locked(std::int64_t index, TrainState state) const;
  TrainState read_record(const Record& rec) const;

  std::uint64_t budget_ = 0;
  std::string path_;
  mutable std::mutex mu_;
  mutable std::fstream file_;
  std::vector<Record> records_;
  std::uint64_t logical_bytes_ = 0;
  std::uint64_t spill_bytes_ = 0;
  // Hot cache (mutable: fetch() is const but refreshes recency).
  mutable std::list<std::int64_t> lru_;  // front = most recent
  mutable std::unordered_map<std::int64_t, HotEntry> hot_;
  mutable std::uint64_t hot_bytes_ = 0;
  mutable std::uint64_t evictions_ = 0;
  mutable std::uint64_t reloads_ = 0;
  // Hot-cache residency charged to the ckptstore tag.
  mutable obs::MemScope mem_{obs::MemTag::kCkptStore};
};

// ---------------------------------------------------------------------------
// Streamed worker epoch: drives WorkerPolicy::stream_trace with a sink that
// forwards each fresh checkpoint to BOTH a CommitmentBuilder (hash + fold,
// then forget) and a CheckpointStore (spill + bounded hot cache). The result
// carries everything the pool's commit/verify/aggregate phases need without
// an EpochTrace ever existing.

struct StreamedEpoch {
  std::unique_ptr<CheckpointStore> store;  // plays the worker's proof store
  std::vector<std::int64_t> step_of;
  float mean_loss = 0.0F;
  Commitment commitment;       // identical to commit_v1/v2 over the sequence
  CompactCommitment compact;   // identical to CommitmentIndex::compact()
};

// `version`/`hasher`/`mask` follow the CommitmentBuilder contract (hasher
// required for v2). Throws what the policy or builder throws.
StreamedEpoch run_streamed_epoch(WorkerPolicy& policy, StepExecutor& executor,
                                 const EpochContext& context,
                                 sim::DeviceExecution& device,
                                 CommitmentVersion version,
                                 const lsh::PStableLsh* hasher = nullptr,
                                 const std::vector<bool>* mask = nullptr,
                                 CkptStoreConfig store_config = {});

}  // namespace rpol::core
