// Sharded, epoch-pipelined mining-pool manager with admission control.
//
// MiningPool verifies its workers one after another on the manager thread;
// at mining-pool scale (10^3..10^4 workers, Sec. II) the manager becomes the
// bottleneck long before the workers do. ShardedPool keeps the protocol —
// and, by construction, the bits — of the sequential pool while spreading
// the manager's work across S shards:
//
//   * PARTITIONING  Workers are split into S contiguous shards; each shard
//     owns a private Verifier (same sampling seed as the pool's — sampled
//     indices depend only on (epoch, worker), never on shard layout) and
//     drives the per-worker phases of core/pool.h's phase API through
//     runtime::parallel_for. All cross-worker state (health, aggregation,
//     network counters) stays in MiningPool::finish_epoch, which merges
//     per-worker slots in worker-index order — so a sharded epoch is
//     bitwise identical to the sequential pool at ANY shard count (§6;
//     pinned by tests/runtime_determinism_test.cpp).
//
//   * ADMISSION CONTROL  Each shard fronts its verifier with a bounded
//     submission queue (queue_capacity; 0 = unbounded). Submissions arrive
//     in one burst per epoch (lockstep protocol) in worker order; overflow
//     is governed by AdmissionPolicy:
//       kRequeue  the excess waits in a backlog and re-enters as the
//                 verifier drains — every submission is still verified in
//                 worker order, so verdicts match the unbounded run bitwise
//                 and only the admission counters record the pressure;
//       kReject   the excess is shed with SessionStatus::kAdmissionRejected.
//                 Shed submissions are excluded from aggregation but do NOT
//                 strike the worker's health record (manager overload is
//                 not worker misbehavior — finish_epoch skips them).
//     The verifier drains the queue in waves of verify_batch (0 = drain
//     everything). Counters surface as EpochReport::admission_* and the
//     pool.admission.* metrics (docs/observability.md).
//
//   * EPOCH PIPELINING  (pipeline = true) Epoch N+1's training overlaps
//     epoch N's verification: prepare_epoch(N+1) snapshots the global model
//     BEFORE finish_epoch(N) aggregates, so trained updates land one epoch
//     late. This is a deterministic one-epoch staleness (the async-SGD
//     regime of core/async_pool.h, with a fixed lag of 1), NOT a §6
//     violation: two same-seed pipelined runs are bitwise identical at any
//     thread count, because train(N+1) and verify(N) touch disjoint
//     workspaces and all aggregation stays sequential. Pipelined results
//     legitimately differ from non-pipelined ones.
//
// Decentralized verification is rejected: peer committees replay whole
// traces across worker boundaries, which defeats shard isolation.

#pragma once

#include "core/pool.h"

namespace rpol::core {

// What a shard does with a submission that arrives while its queue is full.
enum class AdmissionPolicy : int {
  kRequeue = 0,  // hold in a backlog; verify once capacity frees (lossless)
  kReject,       // shed with kAdmissionRejected (load shedding)
};

struct ShardedPoolConfig {
  PoolConfig base;
  // Manager shard count. 0 resolves RPOL_SHARDS from the environment
  // (default 1); always clamped to [1, num_workers].
  int shards = 0;
  // Overlap epoch N's verification with epoch N+1's training.
  bool pipeline = false;
  // Per-shard submission-queue capacity; 0 = unbounded.
  std::size_t queue_capacity = 0;
  AdmissionPolicy overflow = AdmissionPolicy::kRequeue;
  // Verifier wave size when draining a queue; 0 = drain everything.
  std::size_t verify_batch = 0;
};

// Shard-count resolution used by the constructor, exposed for tests and
// harnesses: `configured` wins when positive, else RPOL_SHARDS, else 1;
// the result is clamped to [1, workers].
int resolve_shards(int configured, std::size_t workers);

// Contiguous half-open worker range [begin, end) owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

class ShardedPool {
 public:
  ShardedPool(ShardedPoolConfig config, nn::ModelFactory factory,
              const data::Dataset& train, data::DatasetView test,
              std::vector<WorkerSpec> workers);

  // Lockstep (pipeline=false) or pipelined full run.
  PoolRunReport run();

  // One lockstep epoch: prepare -> sharded train -> sharded admit+verify ->
  // finish. Bitwise identical to MiningPool::run_epoch for any shard count.
  EpochReport run_epoch(std::int64_t epoch);

  int shards() const { return static_cast<int>(verifiers_.size()); }
  // Balanced contiguous partition: the first (workers % shards) shards get
  // one extra worker.
  ShardRange shard_range(int shard) const;

  // The underlying sequential pool (health, global model, config).
  MiningPool& pool() { return pool_; }
  const MiningPool& pool() const { return pool_; }

 private:
  // Per-shard admission tallies, merged into the workspace (and from there
  // into the EpochReport) in shard order after the parallel region — shard
  // threads never write shared counters.
  struct ShardTally {
    std::int64_t enqueued = 0;
    std::int64_t requeued = 0;
    std::int64_t rejected = 0;
    std::int64_t max_depth = 0;
  };

  ShardedPoolConfig cfg_;
  MiningPool pool_;
  std::vector<std::unique_ptr<Verifier>> verifiers_;  // one per shard
  std::vector<ShardTally> tallies_;

  void train_shard(EpochWorkspace& ws, int shard);
  // Admission control + verification for one shard (runs on the shard's
  // thread; touches only this shard's slots, verifier, and tally).
  void admit_and_verify_shard(EpochWorkspace& ws, int shard);
  void configure_verifiers(EpochWorkspace& ws);
  void merge_tallies(EpochWorkspace& ws);
  void publish_admission_metrics(const EpochWorkspace& ws) const;
};

}  // namespace rpol::core
