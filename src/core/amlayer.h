// Address-encoded mapping layer (AMLayer, Sec. V-A).
//
// The pool manager prepends a frozen residual layer whose weights are a
// deterministic function of its blockchain address:
//
//   AMLayer(x) = x + g(x),   g = conv3x3 with PRF(address)-seeded weights,
//
// spectrally normalized so that Lip(g) <= c < 1 (Eq. 3-4). This makes the
// layer an invertible 1-1 mapping (Behrmann et al., invertible residual
// networks): information is preserved, so prepending it costs only a
// marginal accuracy delta — while any consensus node can recompute g from
// the proposer's address and check that the submitted model embeds it.
// Replacing the AMLayer with one encoding a different address feeds the
// trained upper layers through a *different* random invertible map, which
// wrecks accuracy (the address-replacing attack of Sec. VII-B).
//
// Implementation note: the paper describes the layer with input channels 3
// and output channels 64; a channel-changing residual needs a projection
// shortcut, which breaks the exact invertibility argument. We keep channels
// equal (in_ch -> in_ch), the construction of the paper's reference [31]
// that its Lipschitz analysis actually relies on. DESIGN.md records this.

#pragma once

#include "crypto/address.h"
#include "nn/layers.h"

namespace rpol::core {

struct AmLayerConfig {
  std::int64_t channels = 3;
  std::int64_t kernel = 3;
  float scaling_c = 0.5F;      // Lipschitz bound c of Eq. (3)
  int power_iterations = 30;   // spectral-norm estimation iterations
};

class AmLayer : public nn::Layer {
 public:
  // Deterministically derives the frozen weights from `address`.
  AmLayer(const Address& address, const AmLayerConfig& config);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<nn::Param*>& out) override;
  std::string name() const override { return "amlayer"; }
  Shape output_shape(const Shape& input_shape) const override {
    return input_shape;
  }

  const Address& address() const { return address_; }
  const AmLayerConfig& config() const { return config_; }
  const Tensor& weight() const { return weight_.value; }

  // Estimated spectral norm of the *normalized* weight (<= scaling_c).
  float spectral_norm() const { return spectral_norm_; }

 private:
  Address address_;
  AmLayerConfig config_;
  nn::Param weight_;   // (channels, channels*kernel*kernel), non-trainable
  Conv2dSpec spec_;
  float spectral_norm_ = 0.0F;
  // Forward cache for the residual-branch backward pass.
  Tensor cached_cols_;
  Shape cached_input_shape_;
};

// Recomputes the AMLayer weights for `address` and checks they match the
// weights embedded in `layer` — what consensus nodes do before paying out
// mining rewards (Sec. V-A).
bool verify_amlayer_owner(const AmLayer& layer, const Address& address);

// Raw weight derivation, exposed for ownership verification against weights
// extracted from a submitted model (src/chain) and for tests.
Tensor derive_amlayer_weight(const Address& address, const AmLayerConfig& config,
                             float* spectral_norm_out = nullptr);

}  // namespace rpol::core
