#include "core/policy.h"

#include <cmath>
#include <stdexcept>

namespace rpol::core {

namespace {
std::vector<std::int64_t> checkpoint_steps(const Hyperparams& hp) {
  return hp.checkpoint_boundaries();
}
}  // namespace

EpochTrace run_honest_transitions(StepExecutor& executor,
                                  const EpochContext& context,
                                  sim::DeviceExecution& device,
                                  std::int64_t transitions_to_run) {
  if (context.dataset == nullptr) throw std::invalid_argument("missing dataset");
  const auto steps = checkpoint_steps(executor.hyperparams());
  const auto total_transitions = static_cast<std::int64_t>(steps.size()) - 1;
  if (transitions_to_run < 0 || transitions_to_run > total_transitions) {
    throw std::invalid_argument("bad transition count");
  }
  const DeterministicSelector selector(context.nonce);

  EpochTrace trace;
  trace.step_of = steps;
  executor.load_state(context.initial);
  trace.checkpoints.push_back(context.initial);

  double loss_acc = 0.0;
  for (std::int64_t j = 0; j < transitions_to_run; ++j) {
    const std::int64_t first = steps[static_cast<std::size_t>(j)];
    const std::int64_t count = steps[static_cast<std::size_t>(j + 1)] - first;
    loss_acc += executor.run_steps(first, count, *context.dataset, selector,
                                   &device);
    trace.checkpoints.push_back(executor.save_state());
  }
  trace.mean_loss =
      transitions_to_run > 0
          ? static_cast<float>(loss_acc / static_cast<double>(transitions_to_run))
          : 0.0F;
  return trace;
}

StreamedTraceInfo WorkerPolicy::stream_trace(StepExecutor& executor,
                                             const EpochContext& context,
                                             sim::DeviceExecution& device,
                                             CheckpointSink& sink) {
  // Generic fallback: materialize, then replay through the sink. Bitwise
  // identical to produce_trace by construction, but NOT bounded-memory —
  // policies with a sequential structure override this.
  EpochTrace trace = produce_trace(executor, context, device);
  for (const TrainState& state : trace.checkpoints) sink.append(state);
  StreamedTraceInfo info;
  info.step_of = std::move(trace.step_of);
  info.mean_loss = trace.mean_loss;
  return info;
}

EpochTrace HonestPolicy::produce_trace(StepExecutor& executor,
                                       const EpochContext& context,
                                       sim::DeviceExecution& device) {
  const auto steps = checkpoint_steps(executor.hyperparams());
  return run_honest_transitions(executor, context, device,
                                static_cast<std::int64_t>(steps.size()) - 1);
}

StreamedTraceInfo HonestPolicy::stream_trace(StepExecutor& executor,
                                             const EpochContext& context,
                                             sim::DeviceExecution& device,
                                             CheckpointSink& sink) {
  // Mirrors run_honest_transitions step for step — same load_state /
  // run_steps / save_state sequence, so the emitted checkpoints are bitwise
  // identical (§6) — but each checkpoint leaves the policy immediately.
  if (context.dataset == nullptr) throw std::invalid_argument("missing dataset");
  const auto steps = checkpoint_steps(executor.hyperparams());
  const auto transitions = static_cast<std::int64_t>(steps.size()) - 1;
  const DeterministicSelector selector(context.nonce);

  StreamedTraceInfo info;
  info.step_of = steps;
  executor.load_state(context.initial);
  sink.append(context.initial);

  double loss_acc = 0.0;
  for (std::int64_t j = 0; j < transitions; ++j) {
    const std::int64_t first = steps[static_cast<std::size_t>(j)];
    const std::int64_t count = steps[static_cast<std::size_t>(j + 1)] - first;
    loss_acc += executor.run_steps(first, count, *context.dataset, selector,
                                   &device);
    sink.append(executor.save_state());
  }
  info.mean_loss =
      transitions > 0
          ? static_cast<float>(loss_acc / static_cast<double>(transitions))
          : 0.0F;
  return info;
}

EpochTrace ReplayPolicy::produce_trace(StepExecutor& executor,
                                       const EpochContext& context,
                                       sim::DeviceExecution& /*device*/) {
  // No training at all: every checkpoint is the initial global state, and
  // the "update" the manager would aggregate is zero.
  const auto steps = checkpoint_steps(executor.hyperparams());
  EpochTrace trace;
  trace.step_of = steps;
  trace.checkpoints.assign(steps.size(), context.initial);
  return trace;
}

EpochTrace FabricationPolicy::produce_trace(StepExecutor& executor,
                                            const EpochContext& context,
                                            sim::DeviceExecution& /*device*/) {
  const auto steps = checkpoint_steps(executor.hyperparams());

  EpochTrace trace;
  trace.step_of = steps;
  trace.checkpoints.push_back(context.initial);
  Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(context.epoch)));
  for (std::size_t j = 1; j < steps.size(); ++j) {
    TrainState fake = trace.checkpoints.back();
    for (auto& w : fake.model) w += step_scale_ * rng.next_normal();
    trace.checkpoints.push_back(std::move(fake));
  }
  return trace;
}

EpochTrace StaleReplayPolicy::produce_trace(StepExecutor& executor,
                                            const EpochContext& context,
                                            sim::DeviceExecution& device) {
  if (!recorded_.has_value()) {
    HonestPolicy honest;
    recorded_ = honest.produce_trace(executor, context, device);
  }
  return *recorded_;
}

std::vector<float> spoof_next_weights(
    const std::vector<const std::vector<float>*>& history, double lambda) {
  if (history.empty()) throw std::invalid_argument("spoof needs history");
  const std::vector<float>& latest = *history.back();
  std::vector<float> next = latest;
  if (history.size() < 2) return next;

  // Weighted sum of recent checkpoint differences, newest first (Eq. 12).
  const std::size_t diffs = history.size() - 1;
  double weight_sum = 0.0;
  std::vector<double> weights(diffs);
  for (std::size_t j = 0; j < diffs; ++j) {
    weights[j] = std::pow(lambda, static_cast<double>(j));
    weight_sum += weights[j];
  }
  for (std::size_t j = 0; j < diffs; ++j) {
    const std::vector<float>& newer = *history[history.size() - 1 - j];
    const std::vector<float>& older = *history[history.size() - 2 - j];
    const float scale = static_cast<float>(weights[j] / weight_sum);
    for (std::size_t d = 0; d < next.size(); ++d) {
      next[d] += scale * (newer[d] - older[d]);
    }
  }
  return next;
}

EpochTrace SpoofPolicy::produce_trace(StepExecutor& executor,
                                      const EpochContext& context,
                                      sim::DeviceExecution& device) {
  const auto steps = checkpoint_steps(executor.hyperparams());
  const auto total = static_cast<std::int64_t>(steps.size()) - 1;
  const auto honest = static_cast<std::int64_t>(
      std::ceil(honest_fraction_ * static_cast<double>(total)));
  EpochTrace trace = run_honest_transitions(executor, context, device, honest);

  // Fabricate the remaining checkpoints by trajectory extrapolation. The
  // optimizer state is carried over unchanged — the attacker does not spend
  // compute on it, and it is hash-covered, so it stays self-consistent.
  for (std::int64_t j = honest; j < total; ++j) {
    std::vector<const std::vector<float>*> history;
    history.reserve(trace.checkpoints.size());
    for (const auto& c : trace.checkpoints) history.push_back(&c.model);
    TrainState fake;
    fake.model = spoof_next_weights(history, lambda_);
    fake.optimizer = trace.checkpoints.back().optimizer;
    trace.checkpoints.push_back(std::move(fake));
  }
  return trace;
}

}  // namespace rpol::core
