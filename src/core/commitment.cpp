#include "core/commitment.h"

#include <bit>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace rpol::core {

namespace {

// Checkpoint states are megabytes each, so one leaf per slice is the right
// granularity for the deterministic pool; each index writes only its own
// pre-sized slot, preserving bitwise thread-count invariance.
constexpr std::int64_t kLeafGrain = 1;

void hash_state_range(const EpochTrace& trace, std::vector<Digest>& out,
                      std::int64_t lo, std::int64_t hi) {
  for (std::int64_t j = lo; j < hi; ++j) {
    out[static_cast<std::size_t>(j)] =
        hash_state(trace.checkpoints[static_cast<std::size_t>(j)]);
  }
}

// Hashes every LSH digest into its domain-separated Merkle leaf, in parallel.
std::vector<Digest> hash_lsh_leaves(const std::vector<lsh::LshDigest>& digests) {
  std::vector<Digest> leaves(digests.size());
  runtime::parallel_for(
      0, static_cast<std::int64_t>(digests.size()), kLeafGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j) {
          leaves[static_cast<std::size_t>(j)] =
              lsh_leaf_digest(digests[static_cast<std::size_t>(j)]);
        }
      });
  return leaves;
}

const std::vector<Digest>& checked_state_hashes(const Commitment& full) {
  if (full.state_hashes.empty()) {
    throw std::invalid_argument("empty commitment");
  }
  return full.state_hashes;
}

std::optional<MerkleTree> make_lsh_tree(const Commitment& full) {
  if (full.version != CommitmentVersion::kV2) return std::nullopt;
  return MerkleTree(hash_lsh_leaves(full.lsh_digests));
}

}  // namespace

std::uint64_t EpochTrace::storage_bytes() const {
  std::uint64_t total = 0;
  for (const auto& c : checkpoints) total += c.byte_size();
  return total;
}

Bytes serialize_state(const TrainState& state) {
  Bytes out;
  out.reserve(16 + 4 * (state.model.size() + state.optimizer.size()));
  Bytes model_bytes = serialize_floats(state.model);
  Bytes opt_bytes = serialize_floats(state.optimizer);
  out.insert(out.end(), model_bytes.begin(), model_bytes.end());
  out.insert(out.end(), opt_bytes.begin(), opt_bytes.end());
  return out;
}

void update_with_floats(Sha256& h, const std::vector<float>& v) {
  std::uint8_t prefix[8];
  const std::uint64_t count = v.size();
  for (int i = 0; i < 8; ++i) {
    prefix[i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  h.update(prefix, sizeof prefix);
  static_assert(sizeof(float) == 4, "canonical encoding assumes fp32");
  if constexpr (std::endian::native == std::endian::little) {
    // The canonical payload (LE IEEE-754 fp32) IS the vector's raw memory.
    h.update(reinterpret_cast<const std::uint8_t*>(v.data()), 4 * v.size());
  } else {
    // Byte-swapping fallback; chunked so the staging buffer stays small.
    std::uint8_t chunk[4 * 256];
    std::size_t fill = 0;
    for (const float f : v) {
      std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
      for (int i = 0; i < 4; ++i) {
        chunk[fill++] = static_cast<std::uint8_t>(bits >> (8 * i));
      }
      if (fill == sizeof chunk) {
        h.update(chunk, fill);
        fill = 0;
      }
    }
    if (fill != 0) h.update(chunk, fill);
  }
}

Digest hash_state(const TrainState& state) {
  Sha256 h;
  update_with_floats(h, state.model);
  update_with_floats(h, state.optimizer);
  return h.finish();
}

std::uint64_t Commitment::byte_size() const {
  std::uint64_t total = 32;  // root
  total += 32ULL * state_hashes.size();
  for (const auto& d : lsh_digests) total += 32ULL * d.groups.size() + 8;
  return total;
}

Commitment commit_v1(const EpochTrace& trace) {
  if (trace.checkpoints.empty()) throw std::invalid_argument("empty trace");
  Commitment c;
  c.version = CommitmentVersion::kV1;
  c.state_hashes.resize(trace.checkpoints.size());
  runtime::parallel_for(0, static_cast<std::int64_t>(trace.checkpoints.size()),
                        kLeafGrain, [&](std::int64_t lo, std::int64_t hi) {
                          hash_state_range(trace, c.state_hashes, lo, hi);
                        });
  c.root = commitment_root(c);
  return c;
}

Commitment commit_v2(const EpochTrace& trace, const lsh::PStableLsh& hasher,
                     const std::vector<bool>* mask) {
  if (trace.checkpoints.empty()) throw std::invalid_argument("empty trace");
  Commitment c;
  c.version = CommitmentVersion::kV2;
  const auto n = static_cast<std::int64_t>(trace.checkpoints.size());
  c.state_hashes.resize(trace.checkpoints.size());
  c.lsh_digests.resize(trace.checkpoints.size());
  // PStableLsh::hash is const and stateless per call, so fanning both the
  // SHA and LSH leaf work across checkpoints is safe and deterministic.
  runtime::parallel_for(0, n, kLeafGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t j = lo; j < hi; ++j) {
      const auto& state = trace.checkpoints[static_cast<std::size_t>(j)];
      c.state_hashes[static_cast<std::size_t>(j)] = hash_state(state);
      c.lsh_digests[static_cast<std::size_t>(j)] = hasher.hash(
          mask != nullptr ? extract_trainable(state.model, *mask) : state.model);
    }
  });
  c.root = commitment_root(c);
  return c;
}

Digest commitment_root(const Commitment& commitment) {
  Sha256 h;
  const std::uint8_t version_byte =
      commitment.version == CommitmentVersion::kV1 ? 0x01 : 0x02;
  h.update(&version_byte, 1);
  for (const auto& d : commitment.state_hashes) h.update(d.data(), d.size());
  for (const auto& lsh_digest : commitment.lsh_digests) {
    const Bytes encoded = lsh::serialize_lsh_digest(lsh_digest);
    h.update(encoded);
  }
  return h.finish();
}

Digest commitment_merkle_root(const Commitment& commitment) {
  MerkleTree tree(commitment.state_hashes);
  return tree.root();
}

Digest lsh_leaf_digest(const lsh::LshDigest& digest) {
  Sha256 h;
  const std::uint8_t domain = 0x4C;  // 'L'
  h.update(&domain, 1);
  h.update(lsh::serialize_lsh_digest(digest));
  return h.finish();
}

CommitmentIndex::CommitmentIndex(const Commitment& full)
    : full_(&full),
      state_tree_(checked_state_hashes(full)),
      lsh_tree_(make_lsh_tree(full)) {
  mem_.set(state_tree_.byte_size() +
           (lsh_tree_.has_value() ? lsh_tree_->byte_size() : 0));
}

CompactCommitment CommitmentIndex::compact() const {
  CompactCommitment compact;
  compact.version = full_->version;
  compact.num_checkpoints =
      static_cast<std::int64_t>(full_->state_hashes.size());
  compact.state_root = state_tree_.root();
  if (lsh_tree_.has_value()) compact.lsh_root = lsh_tree_->root();
  return compact;
}

TransitionProof CommitmentIndex::prove_transition(
    std::int64_t transition) const {
  const auto count = static_cast<std::int64_t>(full_->state_hashes.size());
  if (transition < 0 || transition + 1 >= count) {
    throw std::out_of_range("transition index out of range");
  }
  TransitionProof proof;
  proof.transition = transition;
  proof.in_hash = full_->state_hashes[static_cast<std::size_t>(transition)];
  proof.in_membership = state_tree_.prove(static_cast<std::size_t>(transition));
  proof.out_hash = full_->state_hashes[static_cast<std::size_t>(transition + 1)];
  proof.out_membership =
      state_tree_.prove(static_cast<std::size_t>(transition + 1));
  if (lsh_tree_.has_value()) {
    proof.out_lsh = full_->lsh_digests[static_cast<std::size_t>(transition + 1)];
    proof.out_lsh_membership =
        lsh_tree_->prove(static_cast<std::size_t>(transition + 1));
  }
  return proof;
}

CompactCommitment compact_commitment(const Commitment& full) {
  return CommitmentIndex(full).compact();
}

CommitmentBuilder::CommitmentBuilder(CommitmentVersion version,
                                     const lsh::PStableLsh* hasher,
                                     const std::vector<bool>* mask)
    : version_(version), hasher_(hasher), mask_(mask) {
  if (version_ == CommitmentVersion::kV2 && hasher_ == nullptr) {
    throw std::invalid_argument("v2 commitment builder needs an LSH hasher");
  }
  acc_.version = version_;
}

void CommitmentBuilder::add_checkpoint(const TrainState& state) {
  const Digest state_hash = hash_state(state);
  acc_.state_hashes.push_back(state_hash);
  state_acc_.push(state_hash);
  if (version_ == CommitmentVersion::kV2) {
    lsh::LshDigest digest = hasher_->hash(
        mask_ != nullptr ? extract_trainable(state.model, *mask_)
                         : state.model);
    lsh_acc_.push(lsh_leaf_digest(digest));
    acc_.lsh_digests.push_back(std::move(digest));
  }
  mem_.set(acc_.byte_size() + state_acc_.byte_size() + lsh_acc_.byte_size());
}

Commitment CommitmentBuilder::finish() const {
  if (acc_.state_hashes.empty()) {
    throw std::invalid_argument("empty trace");
  }
  Commitment out = acc_;
  out.root = commitment_root(out);
  return out;
}

CompactCommitment CommitmentBuilder::compact() const {
  if (acc_.state_hashes.empty()) {
    throw std::invalid_argument("empty commitment");
  }
  CompactCommitment compact;
  compact.version = version_;
  compact.num_checkpoints = count();
  compact.state_root = state_acc_.root();
  if (version_ == CommitmentVersion::kV2) compact.lsh_root = lsh_acc_.root();
  return compact;
}

std::uint64_t TransitionProof::byte_size() const {
  std::uint64_t total = 8 + 32 + 32;  // index + two hashes
  total += 33ULL * (in_membership.siblings.size() +
                    out_membership.siblings.size() +
                    out_lsh_membership.siblings.size());
  total += 32ULL * out_lsh.groups.size();
  return total;
}

TransitionProof make_transition_proof(const Commitment& full,
                                      std::int64_t transition) {
  const auto count = static_cast<std::int64_t>(full.state_hashes.size());
  if (transition < 0 || transition + 1 >= count) {
    throw std::out_of_range("transition index out of range");
  }
  return CommitmentIndex(full).prove_transition(transition);
}

bool verify_transition_proof(const CompactCommitment& compact,
                             const TransitionProof& proof) {
  if (proof.transition < 0 || proof.transition + 1 >= compact.num_checkpoints) {
    return false;
  }
  // Positions must match the claimed transition. path_index() is derived
  // from the proof's sibling sides, so a valid proof for the wrong leaf
  // cannot be relabelled.
  if (proof.in_membership.path_index() !=
          static_cast<std::size_t>(proof.transition) ||
      proof.out_membership.path_index() !=
          static_cast<std::size_t>(proof.transition + 1)) {
    return false;
  }
  if (!MerkleTree::verify(compact.state_root, proof.in_hash,
                          proof.in_membership) ||
      !MerkleTree::verify(compact.state_root, proof.out_hash,
                          proof.out_membership)) {
    return false;
  }
  if (compact.version == CommitmentVersion::kV2) {
    if (proof.out_lsh_membership.path_index() !=
        static_cast<std::size_t>(proof.transition + 1)) {
      return false;
    }
    if (!MerkleTree::verify(compact.lsh_root, lsh_leaf_digest(proof.out_lsh),
                            proof.out_lsh_membership)) {
      return false;
    }
  }
  return true;
}

bool commitment_consistent(const Commitment& commitment) {
  if (commitment.state_hashes.empty()) return false;
  if (commitment.version == CommitmentVersion::kV2 &&
      commitment.lsh_digests.size() != commitment.state_hashes.size()) {
    return false;
  }
  return digest_equal(commitment.root, commitment_root(commitment));
}

}  // namespace rpol::core
