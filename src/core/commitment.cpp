#include "core/commitment.h"

#include <stdexcept>

namespace rpol::core {

std::uint64_t EpochTrace::storage_bytes() const {
  std::uint64_t total = 0;
  for (const auto& c : checkpoints) total += c.byte_size();
  return total;
}

Bytes serialize_state(const TrainState& state) {
  Bytes out;
  out.reserve(16 + 4 * (state.model.size() + state.optimizer.size()));
  Bytes model_bytes = serialize_floats(state.model);
  Bytes opt_bytes = serialize_floats(state.optimizer);
  out.insert(out.end(), model_bytes.begin(), model_bytes.end());
  out.insert(out.end(), opt_bytes.begin(), opt_bytes.end());
  return out;
}

Digest hash_state(const TrainState& state) {
  return sha256(serialize_state(state));
}

std::uint64_t Commitment::byte_size() const {
  std::uint64_t total = 32;  // root
  total += 32ULL * state_hashes.size();
  for (const auto& d : lsh_digests) total += 32ULL * d.groups.size() + 8;
  return total;
}

Commitment commit_v1(const EpochTrace& trace) {
  if (trace.checkpoints.empty()) throw std::invalid_argument("empty trace");
  Commitment c;
  c.version = CommitmentVersion::kV1;
  c.state_hashes.reserve(trace.checkpoints.size());
  for (const auto& state : trace.checkpoints) {
    c.state_hashes.push_back(hash_state(state));
  }
  c.root = commitment_root(c);
  return c;
}

Commitment commit_v2(const EpochTrace& trace, const lsh::PStableLsh& hasher,
                     const std::vector<bool>* mask) {
  if (trace.checkpoints.empty()) throw std::invalid_argument("empty trace");
  Commitment c;
  c.version = CommitmentVersion::kV2;
  c.state_hashes.reserve(trace.checkpoints.size());
  c.lsh_digests.reserve(trace.checkpoints.size());
  for (const auto& state : trace.checkpoints) {
    c.state_hashes.push_back(hash_state(state));
    c.lsh_digests.push_back(hasher.hash(
        mask != nullptr ? extract_trainable(state.model, *mask) : state.model));
  }
  c.root = commitment_root(c);
  return c;
}

Digest commitment_root(const Commitment& commitment) {
  Sha256 h;
  const std::uint8_t version_byte =
      commitment.version == CommitmentVersion::kV1 ? 0x01 : 0x02;
  h.update(&version_byte, 1);
  for (const auto& d : commitment.state_hashes) h.update(d.data(), d.size());
  for (const auto& lsh_digest : commitment.lsh_digests) {
    const Bytes encoded = lsh::serialize_lsh_digest(lsh_digest);
    h.update(encoded);
  }
  return h.finish();
}

Digest commitment_merkle_root(const Commitment& commitment) {
  MerkleTree tree(commitment.state_hashes);
  return tree.root();
}

Digest lsh_leaf_digest(const lsh::LshDigest& digest) {
  Sha256 h;
  const std::uint8_t domain = 0x4C;  // 'L'
  h.update(&domain, 1);
  h.update(lsh::serialize_lsh_digest(digest));
  return h.finish();
}

CompactCommitment compact_commitment(const Commitment& full) {
  if (full.state_hashes.empty()) throw std::invalid_argument("empty commitment");
  CompactCommitment compact;
  compact.version = full.version;
  compact.num_checkpoints = static_cast<std::int64_t>(full.state_hashes.size());
  compact.state_root = MerkleTree(full.state_hashes).root();
  if (full.version == CommitmentVersion::kV2) {
    std::vector<Digest> lsh_leaves;
    lsh_leaves.reserve(full.lsh_digests.size());
    for (const auto& d : full.lsh_digests) lsh_leaves.push_back(lsh_leaf_digest(d));
    compact.lsh_root = MerkleTree(lsh_leaves).root();
  }
  return compact;
}

std::uint64_t TransitionProof::byte_size() const {
  std::uint64_t total = 8 + 32 + 32;  // index + two hashes
  total += 33ULL * (in_membership.siblings.size() +
                    out_membership.siblings.size() +
                    out_lsh_membership.siblings.size());
  total += 32ULL * out_lsh.groups.size();
  return total;
}

TransitionProof make_transition_proof(const Commitment& full,
                                      std::int64_t transition) {
  const auto count = static_cast<std::int64_t>(full.state_hashes.size());
  if (transition < 0 || transition + 1 >= count) {
    throw std::out_of_range("transition index out of range");
  }
  const MerkleTree state_tree(full.state_hashes);
  TransitionProof proof;
  proof.transition = transition;
  proof.in_hash = full.state_hashes[static_cast<std::size_t>(transition)];
  proof.in_membership = state_tree.prove(static_cast<std::size_t>(transition));
  proof.out_hash = full.state_hashes[static_cast<std::size_t>(transition + 1)];
  proof.out_membership = state_tree.prove(static_cast<std::size_t>(transition + 1));
  if (full.version == CommitmentVersion::kV2) {
    std::vector<Digest> lsh_leaves;
    lsh_leaves.reserve(full.lsh_digests.size());
    for (const auto& d : full.lsh_digests) lsh_leaves.push_back(lsh_leaf_digest(d));
    const MerkleTree lsh_tree(std::move(lsh_leaves));
    proof.out_lsh = full.lsh_digests[static_cast<std::size_t>(transition + 1)];
    proof.out_lsh_membership =
        lsh_tree.prove(static_cast<std::size_t>(transition + 1));
  }
  return proof;
}

bool verify_transition_proof(const CompactCommitment& compact,
                             const TransitionProof& proof) {
  if (proof.transition < 0 || proof.transition + 1 >= compact.num_checkpoints) {
    return false;
  }
  // Positions must match the claimed transition. path_index() is derived
  // from the proof's sibling sides, so a valid proof for the wrong leaf
  // cannot be relabelled.
  if (proof.in_membership.path_index() !=
          static_cast<std::size_t>(proof.transition) ||
      proof.out_membership.path_index() !=
          static_cast<std::size_t>(proof.transition + 1)) {
    return false;
  }
  if (!MerkleTree::verify(compact.state_root, proof.in_hash,
                          proof.in_membership) ||
      !MerkleTree::verify(compact.state_root, proof.out_hash,
                          proof.out_membership)) {
    return false;
  }
  if (compact.version == CommitmentVersion::kV2) {
    if (proof.out_lsh_membership.path_index() !=
        static_cast<std::size_t>(proof.transition + 1)) {
      return false;
    }
    if (!MerkleTree::verify(compact.lsh_root, lsh_leaf_digest(proof.out_lsh),
                            proof.out_lsh_membership)) {
      return false;
    }
  }
  return true;
}

bool commitment_consistent(const Commitment& commitment) {
  if (commitment.state_hashes.empty()) return false;
  if (commitment.version == CommitmentVersion::kV2 &&
      commitment.lsh_digests.size() != commitment.state_hashes.size()) {
    return false;
  }
  return digest_equal(commitment.root, commitment_root(commitment));
}

}  // namespace rpol::core
