// Stochastic-yet-deterministic mini-batch selection (Sec. V-B).
//
// In epoch t, worker w receives a nonce N_t^w from the manager. For
// training step m, the n-th batch element is data index
//     PRF(N_t^w * m + n) mod |D_w|.
// The selection looks random (steps are pairwise different, defeating
// replay), but the manager can recompute it exactly during verification.
//
// The multiplier stride keeps (m, n) pairs from colliding for batch sizes
// up to kMaxBatch.

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prf.h"

namespace rpol::core {

class DeterministicSelector {
 public:
  static constexpr std::uint64_t kMaxBatch = 1ULL << 20;

  explicit DeterministicSelector(std::uint64_t nonce)
      : nonce_(nonce), prf_(nonce) {}

  std::uint64_t nonce() const { return nonce_; }

  // Batch indices for training step `step` over a dataset of `dataset_size`.
  std::vector<std::int64_t> batch_indices(std::int64_t step,
                                          std::int64_t batch_size,
                                          std::int64_t dataset_size) const;

  // Deterministic data-augmentation coin for batch element `n` of `step`
  // (domain-separated from batch selection). Augmentation randomness must be
  // PRF-derived for the same reason batch selection is: the manager has to
  // re-execute the exact same augmented batch during verification.
  bool augment_flip(std::int64_t step, std::int64_t n) const;

 private:
  std::uint64_t nonce_;
  Prf prf_;
};

}  // namespace rpol::core
