#include "core/wire.h"

#include <limits>
#include <stdexcept>

namespace rpol::core {

namespace {

void append_digest(Bytes& out, const Digest& d) {
  out.insert(out.end(), d.begin(), d.end());
}

Digest read_digest(const Bytes& in, std::size_t& offset) {
  if (offset + 32 > in.size()) throw std::out_of_range("truncated digest");
  Digest d{};
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
            in.begin() + static_cast<std::ptrdiff_t>(offset + 32), d.begin());
  offset += 32;
  return d;
}

void expect_tag(const Bytes& in, std::size_t& offset, std::uint8_t tag) {
  if (offset >= in.size() || in[offset] != tag) {
    throw std::invalid_argument("unexpected message tag");
  }
  ++offset;
}

void check_consumed(const Bytes& in, std::size_t offset) {
  if (offset != in.size()) {
    throw std::invalid_argument("trailing bytes in message");
  }
}

void append_hyperparams(Bytes& out, const Hyperparams& hp) {
  append_u64(out, static_cast<std::uint64_t>(hp.optimizer));
  append_f32(out, hp.learning_rate);
  append_f32(out, hp.momentum);
  append_i64(out, hp.batch_size);
  append_i64(out, hp.steps_per_epoch);
  append_i64(out, hp.checkpoint_interval);
}

Hyperparams read_hyperparams(const Bytes& in, std::size_t& offset) {
  Hyperparams hp;
  const std::uint64_t opt = read_u64(in, offset);
  if (opt > static_cast<std::uint64_t>(nn::OptimizerKind::kAdam)) {
    throw std::invalid_argument("bad optimizer kind");
  }
  hp.optimizer = static_cast<nn::OptimizerKind>(opt);
  hp.learning_rate = read_f32(in, offset);
  hp.momentum = read_f32(in, offset);
  hp.batch_size = read_i64(in, offset);
  hp.steps_per_epoch = read_i64(in, offset);
  hp.checkpoint_interval = read_i64(in, offset);
  if (hp.batch_size <= 0 || hp.steps_per_epoch <= 0 ||
      hp.checkpoint_interval <= 0) {
    throw std::invalid_argument("bad hyperparameters");
  }
  return hp;
}

}  // namespace

bool TaskAnnouncement::operator==(const TaskAnnouncement& other) const {
  const bool lsh_equal =
      lsh.has_value() == other.lsh.has_value() &&
      (!lsh.has_value() ||
       (lsh->params.r == other.lsh->params.r && lsh->params.k == other.lsh->params.k &&
        lsh->params.l == other.lsh->params.l && lsh->dim == other.lsh->dim &&
        lsh->seed == other.lsh->seed));
  return epoch == other.epoch && nonce == other.nonce &&
         hp.optimizer == other.hp.optimizer &&
         hp.learning_rate == other.hp.learning_rate &&
         hp.momentum == other.hp.momentum && hp.batch_size == other.hp.batch_size &&
         hp.steps_per_epoch == other.hp.steps_per_epoch &&
         hp.checkpoint_interval == other.hp.checkpoint_interval &&
         digest_equal(initial_state_hash, other.initial_state_hash) && lsh_equal;
}

Bytes encode_task_announcement(const TaskAnnouncement& msg) {
  Bytes out;
  out.push_back(kTagTask);
  append_i64(out, msg.epoch);
  append_u64(out, msg.nonce);
  append_hyperparams(out, msg.hp);
  append_digest(out, msg.initial_state_hash);
  out.push_back(msg.lsh.has_value() ? 1 : 0);
  if (msg.lsh.has_value()) {
    Bytes r_bits;
    append_f32(r_bits, static_cast<float>(msg.lsh->params.r));
    out.insert(out.end(), r_bits.begin(), r_bits.end());
    append_i64(out, msg.lsh->params.k);
    append_i64(out, msg.lsh->params.l);
    append_i64(out, msg.lsh->dim);
    append_u64(out, msg.lsh->seed);
  }
  return out;
}

TaskAnnouncement decode_task_announcement(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagTask);
  TaskAnnouncement msg;
  msg.epoch = read_i64(in, offset);
  msg.nonce = read_u64(in, offset);
  msg.hp = read_hyperparams(in, offset);
  msg.initial_state_hash = read_digest(in, offset);
  if (offset >= in.size()) throw std::out_of_range("truncated announcement");
  // Only 0/1 are canonical: any other flag byte would decode to a message
  // that re-encodes differently, breaking encode(decode(x)) == x.
  const std::uint8_t lsh_flag = in[offset++];
  if (lsh_flag > 1) throw std::invalid_argument("bad lsh flag");
  if (lsh_flag == 1) {
    lsh::LshConfig cfg;
    cfg.params.r = read_f32(in, offset);
    // k and l travel as i64 but live in int fields: values beyond int range
    // would truncate on decode and re-encode differently, so they are
    // rejected to keep the encoding canonical.
    const std::int64_t k = read_i64(in, offset);
    const std::int64_t l = read_i64(in, offset);
    cfg.dim = read_i64(in, offset);
    cfg.seed = read_u64(in, offset);
    constexpr std::int64_t kMaxHashes = std::numeric_limits<int>::max();
    if (cfg.params.r <= 0.0 || k < 1 || k > kMaxHashes || l < 1 ||
        l > kMaxHashes || cfg.dim <= 0) {
      throw std::invalid_argument("bad LSH config");
    }
    cfg.params.k = static_cast<int>(k);
    cfg.params.l = static_cast<int>(l);
    msg.lsh = cfg;
  }
  check_consumed(in, offset);
  return msg;
}

Bytes encode_commitment(const Commitment& commitment) {
  Bytes out;
  out.push_back(kTagCommitment);
  out.push_back(commitment.version == CommitmentVersion::kV1 ? 1 : 2);
  append_u64(out, commitment.state_hashes.size());
  for (const auto& d : commitment.state_hashes) append_digest(out, d);
  append_u64(out, commitment.lsh_digests.size());
  for (const auto& lsh_digest : commitment.lsh_digests) {
    append_u64(out, lsh_digest.groups.size());
    for (const auto& g : lsh_digest.groups) append_digest(out, g);
  }
  append_digest(out, commitment.root);
  return out;
}

Commitment decode_commitment(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagCommitment);
  if (offset >= in.size()) throw std::out_of_range("truncated commitment");
  const std::uint8_t version = in[offset++];
  if (version != 1 && version != 2) {
    throw std::invalid_argument("bad commitment version");
  }
  Commitment c;
  c.version = version == 1 ? CommitmentVersion::kV1 : CommitmentVersion::kV2;
  const std::uint64_t hash_count = read_u64(in, offset);
  if (hash_count > (in.size() - offset) / 32) {
    throw std::invalid_argument("bad hash count");
  }
  c.state_hashes.reserve(static_cast<std::size_t>(hash_count));
  for (std::uint64_t i = 0; i < hash_count; ++i) {
    c.state_hashes.push_back(read_digest(in, offset));
  }
  const std::uint64_t lsh_count = read_u64(in, offset);
  if (lsh_count > in.size()) throw std::invalid_argument("bad lsh count");
  c.lsh_digests.reserve(static_cast<std::size_t>(lsh_count));
  for (std::uint64_t i = 0; i < lsh_count; ++i) {
    const std::uint64_t groups = read_u64(in, offset);
    if (groups > (in.size() - offset) / 32) {
      throw std::invalid_argument("bad group count");
    }
    lsh::LshDigest d;
    d.groups.reserve(static_cast<std::size_t>(groups));
    for (std::uint64_t g = 0; g < groups; ++g) {
      d.groups.push_back(read_digest(in, offset));
    }
    c.lsh_digests.push_back(std::move(d));
  }
  c.root = read_digest(in, offset);
  check_consumed(in, offset);
  if (!commitment_consistent(c)) {
    throw std::invalid_argument("inconsistent commitment");
  }
  return c;
}

Bytes encode_proof_request(const ProofRequest& msg) {
  Bytes out;
  out.push_back(kTagProofRequest);
  append_u64(out, msg.transitions.size());
  for (const auto t : msg.transitions) append_i64(out, t);
  return out;
}

ProofRequest decode_proof_request(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagProofRequest);
  const std::uint64_t count = read_u64(in, offset);
  if (count > (in.size() - offset) / 8) throw std::invalid_argument("bad count");
  ProofRequest msg;
  msg.transitions.reserve(static_cast<std::size_t>(count));
  std::int64_t prev = -1;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t t = read_i64(in, offset);
    if (t < 0 || t <= prev) {
      throw std::invalid_argument("proof request indices must ascend");
    }
    msg.transitions.push_back(t);
    prev = t;
  }
  check_consumed(in, offset);
  return msg;
}

Bytes encode_train_state(const TrainState& state) {
  return serialize_state(state);
}

TrainState decode_train_state(const Bytes& in, std::size_t& offset) {
  TrainState state;
  state.model = deserialize_floats(in, offset);
  state.optimizer = deserialize_floats(in, offset);
  return state;
}

Bytes encode_proof_response(const ProofResponse& msg) {
  Bytes out;
  out.push_back(kTagProofResponse);
  append_u64(out, msg.input_states.size());
  for (const auto& s : msg.input_states) {
    const Bytes encoded = encode_train_state(s);
    append_u64(out, encoded.size());
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  append_u64(out, msg.output_states.size());
  for (const auto& s : msg.output_states) {
    const Bytes encoded = encode_train_state(s);
    append_u64(out, encoded.size());
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

Bytes wrap_trace_envelope(std::uint64_t trace_id, std::uint64_t span_id,
                          const Bytes& payload) {
  Bytes out;
  out.reserve(kTraceEnvelopeBytes + payload.size());
  out.push_back(kTagTraceEnvelope);
  append_u64(out, trace_id);
  append_u64(out, span_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes strip_trace_envelope(const Bytes& in, std::uint64_t* trace_id,
                           std::uint64_t* span_id) {
  if (in.empty() || in[0] != kTagTraceEnvelope) {
    if (trace_id != nullptr) *trace_id = 0;
    if (span_id != nullptr) *span_id = 0;
    return in;
  }
  if (in.size() < kTraceEnvelopeBytes) {
    throw std::invalid_argument("truncated trace envelope");
  }
  std::size_t offset = 1;
  const std::uint64_t tid = read_u64(in, offset);
  const std::uint64_t sid = read_u64(in, offset);
  if (trace_id != nullptr) *trace_id = tid;
  if (span_id != nullptr) *span_id = sid;
  return Bytes(in.begin() + static_cast<std::ptrdiff_t>(kTraceEnvelopeBytes),
               in.end());
}

ProofResponse decode_proof_response(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagProofResponse);
  ProofResponse msg;
  auto read_states = [&](std::vector<TrainState>& states) {
    const std::uint64_t count = read_u64(in, offset);
    if (count > in.size()) throw std::invalid_argument("bad state count");
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t len = read_u64(in, offset);
      if (len > in.size() - offset) throw std::invalid_argument("bad state len");
      const std::size_t end = offset + static_cast<std::size_t>(len);
      states.push_back(decode_train_state(in, offset));
      if (offset != end) throw std::invalid_argument("state length mismatch");
    }
  };
  read_states(msg.input_states);
  read_states(msg.output_states);
  check_consumed(in, offset);
  return msg;
}

}  // namespace rpol::core
