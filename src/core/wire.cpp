#include "core/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace rpol::core {

namespace {

void append_digest(Bytes& out, const Digest& d) {
  out.insert(out.end(), d.begin(), d.end());
}

Digest read_digest(const Bytes& in, std::size_t& offset) {
  if (offset + 32 > in.size()) throw std::out_of_range("truncated digest");
  Digest d{};
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
            in.begin() + static_cast<std::ptrdiff_t>(offset + 32), d.begin());
  offset += 32;
  return d;
}

void expect_tag(const Bytes& in, std::size_t& offset, std::uint8_t tag) {
  if (offset >= in.size() || in[offset] != tag) {
    throw std::invalid_argument("unexpected message tag");
  }
  ++offset;
}

void check_consumed(const Bytes& in, std::size_t offset) {
  if (offset != in.size()) {
    throw std::invalid_argument("trailing bytes in message");
  }
}

void append_hyperparams(Bytes& out, const Hyperparams& hp) {
  append_u64(out, static_cast<std::uint64_t>(hp.optimizer));
  append_f32(out, hp.learning_rate);
  append_f32(out, hp.momentum);
  append_i64(out, hp.batch_size);
  append_i64(out, hp.steps_per_epoch);
  append_i64(out, hp.checkpoint_interval);
}

Hyperparams read_hyperparams(const Bytes& in, std::size_t& offset) {
  Hyperparams hp;
  const std::uint64_t opt = read_u64(in, offset);
  if (opt > static_cast<std::uint64_t>(nn::OptimizerKind::kAdam)) {
    throw std::invalid_argument("bad optimizer kind");
  }
  hp.optimizer = static_cast<nn::OptimizerKind>(opt);
  hp.learning_rate = read_f32(in, offset);
  hp.momentum = read_f32(in, offset);
  hp.batch_size = read_i64(in, offset);
  hp.steps_per_epoch = read_i64(in, offset);
  hp.checkpoint_interval = read_i64(in, offset);
  if (hp.batch_size <= 0 || hp.steps_per_epoch <= 0 ||
      hp.checkpoint_interval <= 0) {
    throw std::invalid_argument("bad hyperparameters");
  }
  return hp;
}

}  // namespace

bool TaskAnnouncement::operator==(const TaskAnnouncement& other) const {
  const bool lsh_equal =
      lsh.has_value() == other.lsh.has_value() &&
      (!lsh.has_value() ||
       (lsh->params.r == other.lsh->params.r && lsh->params.k == other.lsh->params.k &&
        lsh->params.l == other.lsh->params.l && lsh->dim == other.lsh->dim &&
        lsh->seed == other.lsh->seed));
  return epoch == other.epoch && nonce == other.nonce &&
         hp.optimizer == other.hp.optimizer &&
         hp.learning_rate == other.hp.learning_rate &&
         hp.momentum == other.hp.momentum && hp.batch_size == other.hp.batch_size &&
         hp.steps_per_epoch == other.hp.steps_per_epoch &&
         hp.checkpoint_interval == other.hp.checkpoint_interval &&
         digest_equal(initial_state_hash, other.initial_state_hash) && lsh_equal;
}

Bytes encode_task_announcement(const TaskAnnouncement& msg) {
  Bytes out;
  out.push_back(kTagTask);
  append_i64(out, msg.epoch);
  append_u64(out, msg.nonce);
  append_hyperparams(out, msg.hp);
  append_digest(out, msg.initial_state_hash);
  out.push_back(msg.lsh.has_value() ? 1 : 0);
  if (msg.lsh.has_value()) {
    Bytes r_bits;
    append_f32(r_bits, static_cast<float>(msg.lsh->params.r));
    out.insert(out.end(), r_bits.begin(), r_bits.end());
    append_i64(out, msg.lsh->params.k);
    append_i64(out, msg.lsh->params.l);
    append_i64(out, msg.lsh->dim);
    append_u64(out, msg.lsh->seed);
  }
  return out;
}

TaskAnnouncement decode_task_announcement(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagTask);
  TaskAnnouncement msg;
  msg.epoch = read_i64(in, offset);
  msg.nonce = read_u64(in, offset);
  msg.hp = read_hyperparams(in, offset);
  msg.initial_state_hash = read_digest(in, offset);
  if (offset >= in.size()) throw std::out_of_range("truncated announcement");
  // Only 0/1 are canonical: any other flag byte would decode to a message
  // that re-encodes differently, breaking encode(decode(x)) == x.
  const std::uint8_t lsh_flag = in[offset++];
  if (lsh_flag > 1) throw std::invalid_argument("bad lsh flag");
  if (lsh_flag == 1) {
    lsh::LshConfig cfg;
    cfg.params.r = read_f32(in, offset);
    // k and l travel as i64 but live in int fields: values beyond int range
    // would truncate on decode and re-encode differently, so they are
    // rejected to keep the encoding canonical.
    const std::int64_t k = read_i64(in, offset);
    const std::int64_t l = read_i64(in, offset);
    cfg.dim = read_i64(in, offset);
    cfg.seed = read_u64(in, offset);
    constexpr std::int64_t kMaxHashes = std::numeric_limits<int>::max();
    if (cfg.params.r <= 0.0 || k < 1 || k > kMaxHashes || l < 1 ||
        l > kMaxHashes || cfg.dim <= 0) {
      throw std::invalid_argument("bad LSH config");
    }
    cfg.params.k = static_cast<int>(k);
    cfg.params.l = static_cast<int>(l);
    msg.lsh = cfg;
  }
  check_consumed(in, offset);
  return msg;
}

Bytes encode_commitment(const Commitment& commitment) {
  Bytes out;
  out.push_back(kTagCommitment);
  out.push_back(commitment.version == CommitmentVersion::kV1 ? 1 : 2);
  append_u64(out, commitment.state_hashes.size());
  for (const auto& d : commitment.state_hashes) append_digest(out, d);
  append_u64(out, commitment.lsh_digests.size());
  for (const auto& lsh_digest : commitment.lsh_digests) {
    append_u64(out, lsh_digest.groups.size());
    for (const auto& g : lsh_digest.groups) append_digest(out, g);
  }
  append_digest(out, commitment.root);
  return out;
}

Commitment decode_commitment(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagCommitment);
  if (offset >= in.size()) throw std::out_of_range("truncated commitment");
  const std::uint8_t version = in[offset++];
  if (version != 1 && version != 2) {
    throw std::invalid_argument("bad commitment version");
  }
  Commitment c;
  c.version = version == 1 ? CommitmentVersion::kV1 : CommitmentVersion::kV2;
  const std::uint64_t hash_count = read_u64(in, offset);
  if (hash_count > (in.size() - offset) / 32) {
    throw std::invalid_argument("bad hash count");
  }
  c.state_hashes.reserve(static_cast<std::size_t>(hash_count));
  for (std::uint64_t i = 0; i < hash_count; ++i) {
    c.state_hashes.push_back(read_digest(in, offset));
  }
  const std::uint64_t lsh_count = read_u64(in, offset);
  if (lsh_count > in.size()) throw std::invalid_argument("bad lsh count");
  c.lsh_digests.reserve(static_cast<std::size_t>(lsh_count));
  for (std::uint64_t i = 0; i < lsh_count; ++i) {
    const std::uint64_t groups = read_u64(in, offset);
    if (groups > (in.size() - offset) / 32) {
      throw std::invalid_argument("bad group count");
    }
    lsh::LshDigest d;
    d.groups.reserve(static_cast<std::size_t>(groups));
    for (std::uint64_t g = 0; g < groups; ++g) {
      d.groups.push_back(read_digest(in, offset));
    }
    c.lsh_digests.push_back(std::move(d));
  }
  c.root = read_digest(in, offset);
  check_consumed(in, offset);
  if (!commitment_consistent(c)) {
    throw std::invalid_argument("inconsistent commitment");
  }
  return c;
}

Bytes encode_proof_request(const ProofRequest& msg) {
  Bytes out;
  out.push_back(kTagProofRequest);
  append_u64(out, msg.transitions.size());
  for (const auto t : msg.transitions) append_i64(out, t);
  return out;
}

ProofRequest decode_proof_request(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagProofRequest);
  const std::uint64_t count = read_u64(in, offset);
  if (count > (in.size() - offset) / 8) throw std::invalid_argument("bad count");
  ProofRequest msg;
  msg.transitions.reserve(static_cast<std::size_t>(count));
  std::int64_t prev = -1;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t t = read_i64(in, offset);
    if (t < 0 || t <= prev) {
      throw std::invalid_argument("proof request indices must ascend");
    }
    msg.transitions.push_back(t);
    prev = t;
  }
  check_consumed(in, offset);
  return msg;
}

Bytes encode_train_state(const TrainState& state) {
  return serialize_state(state);
}

Bytes encode_state_chunk(const StateChunk& chunk) {
  Bytes out;
  out.reserve(1 + 8 + 8 + 8 + chunk.payload.size() + 32);
  out.push_back(kTagStateChunk);
  append_u64(out, chunk.total_bytes);
  append_u64(out, chunk.offset);
  append_u64(out, chunk.payload.size());
  out.insert(out.end(), chunk.payload.begin(), chunk.payload.end());
  append_digest(out, chunk.payload_hash);
  return out;
}

StateChunk decode_state_chunk(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagStateChunk);
  StateChunk chunk;
  chunk.total_bytes = read_u64(in, offset);
  chunk.offset = read_u64(in, offset);
  const std::uint64_t len = read_u64(in, offset);
  if (len == 0) throw std::invalid_argument("empty state chunk");
  if (len > in.size() - offset) throw std::invalid_argument("bad chunk length");
  if (chunk.offset > chunk.total_bytes ||
      len > chunk.total_bytes - chunk.offset) {
    throw std::invalid_argument("chunk window outside announced total");
  }
  chunk.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(offset),
                       in.begin() + static_cast<std::ptrdiff_t>(offset + len));
  offset += static_cast<std::size_t>(len);
  chunk.payload_hash = read_digest(in, offset);
  check_consumed(in, offset);
  // Per-chunk integrity: transport corruption of any payload byte fails
  // here, turning into a NACK the per-chunk retry budget can heal.
  if (sha256(chunk.payload) != chunk.payload_hash) {
    throw std::invalid_argument("state chunk payload hash mismatch");
  }
  return chunk;
}

ChunkedStateEncoder::ChunkedStateEncoder(const TrainState& state,
                                         std::size_t chunk_payload_bytes)
    : state_(&state), chunk_bytes_(chunk_payload_bytes) {
  if (chunk_payload_bytes == 0) {
    throw std::invalid_argument("chunk payload size must be >= 1");
  }
  total_ = 16 + 4 * (static_cast<std::uint64_t>(state.model.size()) +
                     static_cast<std::uint64_t>(state.optimizer.size()));
}

std::int64_t ChunkedStateEncoder::num_chunks() const {
  return static_cast<std::int64_t>((total_ + chunk_bytes_ - 1) / chunk_bytes_);
}

namespace {

// Copies bytes [pos, pos+n) of serialize_floats(v)'s PAYLOAD section (the
// 4*|v| little-endian fp32 bytes, counts excluded) into `out`.
void copy_float_bytes(const std::vector<float>& v, std::uint64_t pos,
                      std::size_t n, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t byte = pos + i;
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v[static_cast<std::size_t>(byte / 4)], sizeof bits);
    out[i] = static_cast<std::uint8_t>(bits >> (8 * (byte % 4)));
  }
}

}  // namespace

void ChunkedStateEncoder::copy_window(std::uint64_t pos, std::size_t n,
                                      std::uint8_t* out) const {
  // Logical stream (== encode_train_state):
  //   [u64 model_count][4*m model][u64 opt_count][4*o optimizer]
  const std::uint64_t m = state_->model.size();
  const std::uint64_t o = state_->optimizer.size();
  const std::uint64_t seg_bounds[4] = {8, 8 + 4 * m, 16 + 4 * m,
                                       16 + 4 * m + 4 * o};
  std::uint64_t seg_start = 0;
  for (int seg = 0; seg < 4 && n > 0; ++seg) {
    const std::uint64_t seg_end = seg_bounds[seg];
    if (pos < seg_end) {
      const std::uint64_t local = pos - seg_start;
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(n, seg_end - pos));
      switch (seg) {
        case 0:
          for (std::size_t i = 0; i < take; ++i) {
            out[i] = static_cast<std::uint8_t>(m >> (8 * (local + i)));
          }
          break;
        case 1:
          copy_float_bytes(state_->model, local, take, out);
          break;
        case 2:
          for (std::size_t i = 0; i < take; ++i) {
            out[i] = static_cast<std::uint8_t>(o >> (8 * (local + i)));
          }
          break;
        default:
          copy_float_bytes(state_->optimizer, local, take, out);
          break;
      }
      out += take;
      pos += take;
      n -= take;
    }
    seg_start = seg_end;
  }
}

StateChunk ChunkedStateEncoder::chunk(std::int64_t index) const {
  if (index < 0 || index >= num_chunks()) {
    throw std::out_of_range("state chunk index out of range");
  }
  StateChunk out;
  out.total_bytes = total_;
  out.offset = static_cast<std::uint64_t>(index) * chunk_bytes_;
  const std::size_t len = static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_bytes_, total_ - out.offset));
  out.payload.resize(len);
  copy_window(out.offset, len, out.payload.data());
  out.payload_hash = sha256(out.payload);
  return out;
}

ChunkedStateAssembler::ChunkedStateAssembler(std::uint64_t max_total_bytes)
    : max_total_(max_total_bytes) {}

void ChunkedStateAssembler::feed_byte(std::uint8_t b) {
  scalar_ |= static_cast<std::uint64_t>(b) << (8 * scalar_fill_);
  ++scalar_fill_;
  switch (phase_) {
    case Phase::kModelCount:
    case Phase::kOptCount: {
      if (scalar_fill_ < 8) return;
      const std::uint64_t count = scalar_;
      const bool model = phase_ == Phase::kModelCount;
      // A lying count is rejected the moment it completes, not at
      // end-of-stream: the model vector must leave room for the optimizer
      // count behind it, and the optimizer vector must land EXACTLY on the
      // announced total (total_ >= 16 was enforced at accept()).
      if (model) {
        if (count > (total_ - 16) / 4) {
          throw std::invalid_argument("state chunk float count exceeds total");
        }
      } else {
        const std::uint64_t room =
            total_ - 16 - 4 * static_cast<std::uint64_t>(state_.model.size());
        if (count != room / 4) {
          throw std::invalid_argument("state chunk float count exceeds total");
        }
      }
      auto& vec = model ? state_.model : state_.optimizer;
      vec.reserve(static_cast<std::size_t>(count));
      floats_left_ = count;
      scalar_ = 0;
      scalar_fill_ = 0;
      phase_ = model ? (count > 0 ? Phase::kModelData : Phase::kOptCount)
                     : (count > 0 ? Phase::kOptData : Phase::kDone);
      return;
    }
    case Phase::kModelData:
    case Phase::kOptData: {
      if (scalar_fill_ < 4) return;
      float f = 0.0F;
      const std::uint32_t bits = static_cast<std::uint32_t>(scalar_);
      std::memcpy(&f, &bits, sizeof f);
      auto& vec =
          phase_ == Phase::kModelData ? state_.model : state_.optimizer;
      vec.push_back(f);
      scalar_ = 0;
      scalar_fill_ = 0;
      if (--floats_left_ == 0) {
        phase_ = phase_ == Phase::kModelData ? Phase::kOptCount : Phase::kDone;
      }
      return;
    }
    case Phase::kDone:
      throw std::invalid_argument("trailing bytes after state stream");
  }
}

void ChunkedStateAssembler::feed(const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) feed_byte(data[i]);
}

void ChunkedStateAssembler::accept(const StateChunk& chunk) {
  if (taken_) throw std::logic_error("assembler already consumed");
  // Validate everything BEFORE mutating so a thrown (NACKed) chunk can be
  // retried against unchanged assembler state.
  if (chunk.payload.empty()) throw std::invalid_argument("empty state chunk");
  if (total_ == 0 && received_ == 0) {
    if (chunk.total_bytes < 16) {
      throw std::invalid_argument("state stream shorter than its counts");
    }
    if (chunk.total_bytes > max_total_) {
      throw std::invalid_argument("state stream exceeds receiver cap");
    }
  } else if (chunk.total_bytes != total_) {
    throw std::invalid_argument("chunk disagrees on total size");
  }
  if (chunk.offset != received_) {
    throw std::invalid_argument("chunk out of order");
  }
  const std::uint64_t cap = total_ == 0 ? chunk.total_bytes : total_;
  if (chunk.payload.size() > cap - received_) {
    throw std::invalid_argument("chunk overruns announced total");
  }
  // The phase machine can still reject content (a lying float count). Its
  // scalar state is snapshotted and the vectors trimmed back on throw, so
  // failure leaves the assembler exactly as it was.
  const Phase phase0 = phase_;
  const std::uint64_t scalar0 = scalar_;
  const int fill0 = scalar_fill_;
  const std::uint64_t left0 = floats_left_;
  const std::size_t model0 = state_.model.size();
  const std::size_t opt0 = state_.optimizer.size();
  total_ = cap;
  try {
    feed(chunk.payload.data(), chunk.payload.size());
  } catch (...) {
    phase_ = phase0;
    scalar_ = scalar0;
    scalar_fill_ = fill0;
    floats_left_ = left0;
    state_.model.resize(model0);
    state_.optimizer.resize(opt0);
    if (received_ == 0) total_ = 0;
    throw;
  }
  received_ += chunk.payload.size();
}

bool ChunkedStateAssembler::complete() const {
  return !taken_ && received_ > 0 && received_ == total_ &&
         phase_ == Phase::kDone;
}

const TrainState& ChunkedStateAssembler::peek() const {
  if (!complete()) throw std::logic_error("state stream incomplete");
  return state_;
}

TrainState ChunkedStateAssembler::take() {
  if (!complete()) throw std::logic_error("state stream incomplete");
  taken_ = true;
  return std::move(state_);
}

TrainState decode_train_state(const Bytes& in, std::size_t& offset) {
  TrainState state;
  state.model = deserialize_floats(in, offset);
  state.optimizer = deserialize_floats(in, offset);
  return state;
}

Bytes encode_proof_response(const ProofResponse& msg) {
  Bytes out;
  out.push_back(kTagProofResponse);
  append_u64(out, msg.input_states.size());
  for (const auto& s : msg.input_states) {
    const Bytes encoded = encode_train_state(s);
    append_u64(out, encoded.size());
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  append_u64(out, msg.output_states.size());
  for (const auto& s : msg.output_states) {
    const Bytes encoded = encode_train_state(s);
    append_u64(out, encoded.size());
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

Bytes wrap_trace_envelope(std::uint64_t trace_id, std::uint64_t span_id,
                          const Bytes& payload) {
  Bytes out;
  out.reserve(kTraceEnvelopeBytes + payload.size());
  out.push_back(kTagTraceEnvelope);
  append_u64(out, trace_id);
  append_u64(out, span_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes strip_trace_envelope(const Bytes& in, std::uint64_t* trace_id,
                           std::uint64_t* span_id) {
  if (in.empty() || in[0] != kTagTraceEnvelope) {
    if (trace_id != nullptr) *trace_id = 0;
    if (span_id != nullptr) *span_id = 0;
    return in;
  }
  if (in.size() < kTraceEnvelopeBytes) {
    throw std::invalid_argument("truncated trace envelope");
  }
  std::size_t offset = 1;
  const std::uint64_t tid = read_u64(in, offset);
  const std::uint64_t sid = read_u64(in, offset);
  if (trace_id != nullptr) *trace_id = tid;
  if (span_id != nullptr) *span_id = sid;
  return Bytes(in.begin() + static_cast<std::ptrdiff_t>(kTraceEnvelopeBytes),
               in.end());
}

ProofResponse decode_proof_response(const Bytes& in) {
  std::size_t offset = 0;
  expect_tag(in, offset, kTagProofResponse);
  ProofResponse msg;
  auto read_states = [&](std::vector<TrainState>& states) {
    const std::uint64_t count = read_u64(in, offset);
    if (count > in.size()) throw std::invalid_argument("bad state count");
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t len = read_u64(in, offset);
      if (len > in.size() - offset) throw std::invalid_argument("bad state len");
      const std::size_t end = offset + static_cast<std::size_t>(len);
      states.push_back(decode_train_state(in, offset));
      if (offset != end) throw std::invalid_argument("state length mismatch");
    }
  };
  read_states(msg.input_states);
  read_states(msg.output_states);
  check_consumed(in, offset);
  return msg;
}

}  // namespace rpol::core
