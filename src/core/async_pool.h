// Asynchronous pooled learning — the paper's remaining future-work item
// ("this work focuses on data-parallelism-based distributed learning with
// synchronous model updating ... how to support other learning paradigms
// will be studied in the future", Sec. II-A).
//
// Workers run at their own cadence: a worker grabs the current global state,
// trains a full local epoch (its speed determines how many scheduler ticks
// that takes), and submits whenever it finishes. The manager verifies each
// submission with the standard RPoL machinery — nothing about commitments,
// sampling, or re-execution changes, because each submission is
// self-contained (base state + nonce + trace) — and applies accepted
// updates immediately with staleness-discounted weights:
//
//   theta <- theta + eta * gamma^staleness * (theta_w - base_w)
//
// where staleness counts how many global updates landed while the worker
// was training. This is the classic async-SGD staleness discount; gamma = 1
// recovers undiscounted Hogwild-style application.

#pragma once

#include "core/verifier.h"
#include "fault/fault.h"
#include "obs/health.h"

namespace rpol::core {

struct AsyncWorkerSpec {
  std::unique_ptr<WorkerPolicy> policy;
  sim::DeviceProfile device;
  // Scheduler ticks one local epoch takes on this worker (>= 1): slower
  // hardware => larger period => staler submissions.
  std::int64_t period = 1;
};

struct AsyncPoolConfig {
  Hyperparams hp;
  std::int64_t ticks = 20;             // total scheduler ticks to simulate
  std::int64_t samples_q = 3;
  double beta = 1e-3;                  // verification distance threshold
  double eta = 1.0;                    // global learning rate
  double staleness_discount = 0.6;     // gamma
  std::uint64_t seed = 7;
  bool verify = true;                  // false = insecure async baseline
  // Fault environment on the submission path (nullptr = lossless). A
  // submission that exhausts the retry budget is lost for that cadence slot;
  // eviction_threshold consecutive failed submissions OF ONE KIND (all lost
  // to transport, or all verify-rejected — obs/health.h keeps the two strike
  // budgets separate) retire the worker and the pool keeps ticking with the
  // survivors.
  const fault::FaultPlan* fault_plan = nullptr;
  fault::RetryPolicy retry;
  std::int64_t eviction_threshold = 3;
};

struct AsyncSubmission {
  std::int64_t tick = 0;        // when it was applied
  std::size_t worker = 0;
  std::int64_t staleness = 0;   // global updates since the worker's base
  bool accepted = false;
  bool delivered = true;        // false: lost to transport, never verified
};

struct AsyncRunReport {
  std::vector<AsyncSubmission> submissions;
  std::vector<double> accuracy_curve;  // test accuracy after each tick
  double final_accuracy = 0.0;
  std::int64_t rejected = 0;
  std::int64_t applied = 0;
  std::int64_t lost = 0;               // submissions lost to transport
  std::int64_t retransmissions = 0;
  std::int64_t evicted_workers = 0;    // evicted by the end of the run
};

class AsyncMiningPool {
 public:
  AsyncMiningPool(AsyncPoolConfig config, nn::ModelFactory factory,
                  const data::Dataset& train, data::DatasetView test,
                  std::vector<AsyncWorkerSpec> workers);

  AsyncRunReport run();

  const std::vector<float>& global_model() const { return global_model_; }
  bool worker_evicted(std::size_t worker) const {
    return health_.evicted(worker);
  }
  // Per-worker health scores and windowed submission stats (obs/health.h);
  // the eviction strike counters live here too.
  const obs::HealthRegistry& health() const { return health_; }

 private:
  struct InFlight {
    TrainState base;
    std::uint64_t nonce = 0;
    std::int64_t started_at_version = 0;
    std::int64_t finish_tick = 0;
  };

  AsyncPoolConfig config_;
  nn::ModelFactory factory_;
  data::DatasetView test_;
  std::vector<data::DatasetView> partitions_;
  std::vector<AsyncWorkerSpec> workers_;
  std::vector<InFlight> in_flight_;

  StepExecutor manager_executor_;
  std::unique_ptr<Verifier> verifier_;
  std::vector<float> global_model_;
  std::vector<float> fresh_optimizer_;
  std::int64_t global_version_ = 0;
  obs::HealthRegistry health_;

  TrainState current_state() const;
};

}  // namespace rpol::core
