#include "core/amlayer.h"

#include <cmath>
#include <stdexcept>

#include "crypto/prf.h"
#include "tensor/ops.h"

namespace rpol::core {

namespace {

// Power iteration on W W^T: estimates the largest singular value of the
// (out x in) weight matrix. Deterministic: the start vector comes from the
// same PRF stream as the weights.
float estimate_spectral_norm(const Tensor& w, Rng& rng, int iterations) {
  const std::int64_t rows = w.dim(0), cols = w.dim(1);
  std::vector<float> u(static_cast<std::size_t>(rows));
  rng.fill_normal(u, 0.0F, 1.0F);
  std::vector<float> v(static_cast<std::size_t>(cols));

  auto normalize = [](std::vector<float>& x) {
    double n = 0.0;
    for (const float e : x) n += static_cast<double>(e) * e;
    n = std::sqrt(std::max(n, 1e-24));
    const float inv = static_cast<float>(1.0 / n);
    for (auto& e : x) e *= inv;
    return static_cast<float>(n);
  };

  normalize(u);
  float sigma = 0.0F;
  for (int it = 0; it < iterations; ++it) {
    // v = W^T u
    for (std::int64_t j = 0; j < cols; ++j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        acc += static_cast<double>(w.at2(i, j)) * u[static_cast<std::size_t>(i)];
      }
      v[static_cast<std::size_t>(j)] = static_cast<float>(acc);
    }
    normalize(v);
    // u = W v
    for (std::int64_t i = 0; i < rows; ++i) {
      double acc = 0.0;
      for (std::int64_t j = 0; j < cols; ++j) {
        acc += static_cast<double>(w.at2(i, j)) * v[static_cast<std::size_t>(j)];
      }
      u[static_cast<std::size_t>(i)] = static_cast<float>(acc);
    }
    sigma = normalize(u);
  }
  return sigma;
}

}  // namespace

Tensor derive_amlayer_weight(const Address& address, const AmLayerConfig& config,
                             float* spectral_norm_out) {
  if (!address.valid()) throw std::invalid_argument("AMLayer needs a valid address");
  // Seed the weight stream from PRF(address): HMAC keyed by the canonical
  // address bytes, evaluated at a fixed domain-separation point.
  const Prf prf(address.bytes());
  Rng rng(prf.eval(/*input=*/0xA31A7E5ULL));

  const std::int64_t patch = config.channels * config.kernel * config.kernel;
  Tensor w = Tensor::randn({config.channels, patch}, rng,
                           1.0F / std::sqrt(static_cast<float>(patch)));

  // Spectral normalization, Eq. (4): scale to sigma <= c when needed.
  const float sigma = estimate_spectral_norm(w, rng, config.power_iterations);
  float final_sigma = sigma;
  if (config.scaling_c / sigma < 1.0F) {
    w *= config.scaling_c / sigma;
    final_sigma = config.scaling_c;
  }
  if (spectral_norm_out != nullptr) *spectral_norm_out = final_sigma;
  return w;
}

AmLayer::AmLayer(const Address& address, const AmLayerConfig& config)
    : address_(address), config_(config) {
  spec_ = Conv2dSpec{config_.channels, config_.channels, config_.kernel, 1,
                     (config_.kernel - 1) / 2};
  Tensor w = derive_amlayer_weight(address_, config_, &spectral_norm_);
  weight_ = nn::Param("amlayer.weight", std::move(w), /*train=*/false);
}

Tensor AmLayer::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 4 || input.dim(1) != config_.channels) {
    throw std::invalid_argument("AmLayer input shape mismatch");
  }
  cached_input_shape_ = input.shape();
  cached_cols_ = im2col(input, spec_);
  const Tensor gemm = matmul(weight_.value, cached_cols_);
  // Rearrange (C, N*H*W) GEMM output into NCHW and add the skip connection.
  const std::int64_t n = input.dim(0), c = config_.channels;
  const std::int64_t h = input.dim(2), w = input.dim(3);
  Tensor out = input;
  const std::int64_t hw = h * w;
  const float* src = gemm.data();
  float* dst = out.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t img = 0; img < n; ++img) {
      const float* s = src + ch * (n * hw) + img * hw;
      float* d = dst + (img * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) d[i] += s[i];
    }
  }
  return out;
}

Tensor AmLayer::backward(const Tensor& grad_output) {
  // y = x + g(x) with frozen weights: dx = dy + conv-backward(dy).
  const std::int64_t n = grad_output.dim(0), c = config_.channels;
  const std::int64_t h = grad_output.dim(2), w = grad_output.dim(3);
  const std::int64_t hw = h * w;
  Tensor grad_gemm({c, n * hw});
  const float* src = grad_output.data();
  float* dst = grad_gemm.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t img = 0; img < n; ++img) {
      const float* s = src + (img * c + ch) * hw;
      float* d = dst + ch * (n * hw) + img * hw;
      for (std::int64_t i = 0; i < hw; ++i) d[i] = s[i];
    }
  }
  const Tensor dcols = matmul_tn(weight_.value, grad_gemm);
  Tensor dx = col2im(dcols, spec_, cached_input_shape_);
  dx += grad_output;
  return dx;
}

void AmLayer::collect_params(std::vector<nn::Param*>& out) {
  out.push_back(&weight_);
}

bool verify_amlayer_owner(const AmLayer& layer, const Address& address) {
  const Tensor expected = derive_amlayer_weight(address, layer.config());
  if (expected.shape() != layer.weight().shape()) return false;
  const auto& a = expected.vec();
  const auto& b = layer.weight().vec();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace rpol::core
