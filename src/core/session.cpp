#include "core/session.h"

#include <functional>
#include <limits>
#include <stdexcept>

#include "obs/alerts.h"
#include "obs/mem.h"
#include "obs/obs.h"

namespace rpol::core {

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kAnnouncement: return "announcement";
    case MessageType::kGlobalState: return "state";
    case MessageType::kCommitment: return "commitment";
    case MessageType::kUpdate: return "update";
    case MessageType::kProofRequest: return "proof_request";
    case MessageType::kProofResponse: return "proof_response";
  }
  return "unknown";
}

static_assert(kNumMessageTypes <= fault::kMaxMessageTypes,
              "fault plans must be able to profile every message type");

namespace {

void mirror_to_registry(MessageType type, std::uint64_t bytes) {
  if (!obs::telemetry_enabled()) return;
  obs::counter(std::string("bytes.") + message_type_name(type)).add(bytes);
}

// One message exchange under the session's retry state machine: transmit
// through the (possibly faulty) channel, decode-and-validate on the
// receiving side, retry with exponential backoff on loss or mangling, and
// classify the failure when the budget runs out. `decode` must throw on any
// payload the receiver cannot accept; its return value is the exchange's
// result. `withheld` scripts a byzantine peer that never transmits at all
// (the sender's timeouts still burn the retry budget).
struct ExchangeDriver {
  fault::FaultyChannel<CountingChannel>& channel;
  const SessionConfig& config;
  SessionOutcome& outcome;
  bool failed = false;
  // Trace context that rode the envelope of the last successfully decoded
  // message — what the receiving side's spans adopt as their remote parent.
  obs::TraceContext last_rx{};

  // `sender` is the transmitting span's trace context. The envelope is
  // attached AFTER fault delivery and stripped before decode: fault
  // injection, size caps, and byte accounting all see only the canonical
  // inner message, so a traced run takes byte-identical protocol decisions
  // to an untraced one (the determinism contract). On a real network the
  // envelope would wrap the whole frame; the strip-before-decode point is
  // the same either way.
  template <typename DecodeFn>
  auto run(MessageType type, const Bytes& encoded, bool to_worker,
           DecodeFn&& decode, const obs::TraceContext& sender = {},
           bool withheld = false)
      -> std::optional<decltype(decode(encoded))> {
    const auto type_index = static_cast<std::size_t>(type);
    bool last_failure_was_decode = false;
    // The encoded message is buffered for the whole exchange (every retry
    // retransmits it); received payloads are charged per attempt below.
    obs::MemScope wire_mem(obs::MemTag::kWire, encoded.size());
    for (int attempt = 0; attempt < config.retry.max_attempts; ++attempt) {
      if (attempt > 0) {
        ++outcome.retries_by_type[type_index];
        ++outcome.total_retries;
        // Saturating accumulate: per-retry waits can themselves sit at the
        // cap (fault::backoff_ticks saturates), so a long exchange under a
        // huge cap must not overflow the session total either.
        const std::int64_t wait =
            fault::backoff_ticks(config.retry, attempt - 1);
        outcome.backoff_ticks =
            outcome.backoff_ticks >
                    std::numeric_limits<std::int64_t>::max() - wait
                ? std::numeric_limits<std::int64_t>::max()
                : outcome.backoff_ticks + wait;
        obs::count("session.retry", 1);
      }
      if (withheld) {
        // The peer stays silent: nothing crosses the wire, the sender's
        // timer expires, and the retry loop spins down to a timeout.
        last_failure_was_decode = false;
        continue;
      }
      fault::Delivery delivery =
          to_worker ? channel.send_to_worker(type, encoded)
                    : channel.send_to_manager(type, encoded);
      if (delivery.status != fault::DeliveryStatus::kDelivered) {
        last_failure_was_decode = false;
        continue;
      }
      // Receive-side buffer, live until this attempt decodes or rejects.
      obs::MemScope rx_mem(obs::MemTag::kWire, delivery.payload.size());
      if (delivery.payload.size() > config.retry.max_message_bytes) {
        // Size cap enforced before parsing: a hostile peer cannot force
        // the receiver to buffer or decode unbounded payloads.
        obs::count("session.oversize_rejected", 1);
        last_failure_was_decode = true;
        continue;
      }
      try {
        if (obs::enabled()) {
          const Bytes framed = core::wrap_trace_envelope(
              sender.trace_id, sender.span_id, delivery.payload);
          obs::TraceContext rx;
          const Bytes inner =
              strip_trace_envelope(framed, &rx.trace_id, &rx.span_id);
          auto result = decode(inner);
          last_rx = rx;
          return result;
        }
        return decode(delivery.payload);
      } catch (const std::exception&) {
        obs::count("session.decode_reject", 1);
        last_failure_was_decode = true;
        continue;
      }
    }
    failed = true;
    outcome.status = last_failure_was_decode ? SessionStatus::kDecodeRejected
                                             : SessionStatus::kTimeout;
    obs::count(std::string("session.fail.") +
                   session_status_name(outcome.status),
               1);
    // A hard-failed exchange is a forensic moment: record it and persist
    // the flight ring so the tail of events that led here survives.
    obs::flight_record(obs::FlightKind::kFault,
                       session_status_name(outcome.status));
    obs::dump_flight_record();
    return std::nullopt;
  }
};

// Deterministic checkpoint mutation for the scripted byzantine behaviors;
// large enough that no honest threshold can absorb it.
void perturb_state(TrainState& state, float delta) {
  if (!state.model.empty()) state.model[0] += delta;
}

// Transfers one TrainState as a sequence of integrity-checked chunks, each
// chunk a full exchange (timeout/retry/backoff, fault injection, byte
// accounting) under the logical `type`. `validate` (may be empty) runs once
// over the fully assembled state; a throw NACKs the final chunk, and since
// the assembler has already consumed that offset, the retransmits exhaust
// the budget into kDecodeRejected — a state that fails validation is never
// taken, so a torn or forged transfer cannot be accepted.
std::optional<TrainState> exchange_state_chunked(
    ExchangeDriver& exchange, MessageType type, const TrainState& state,
    bool to_worker, const SessionConfig& config,
    const std::function<void(const TrainState&)>& validate,
    const obs::TraceContext& sender) {
  ChunkedStateEncoder encoder(state, config.chunk_bytes);
  ChunkedStateAssembler assembler(config.max_state_bytes);
  const std::int64_t n = encoder.num_chunks();
  for (std::int64_t i = 0; i < n; ++i) {
    // Materialized per iteration: the sender's resident wire footprint is
    // one encoded chunk, never the full state encoding.
    const Bytes frame = encode_state_chunk(encoder.chunk(i));
    const auto ok = exchange.run(
        type, frame, to_worker,
        [&](const Bytes& b) {
          assembler.accept(decode_state_chunk(b));
          if (assembler.complete() && validate) validate(assembler.peek());
          return true;
        },
        sender);
    if (!ok.has_value()) return std::nullopt;
  }
  if (!assembler.complete()) {
    // Unreachable with the local encoder (chunk totals add up by
    // construction), kept as a typed failure rather than a crash.
    exchange.failed = true;
    exchange.outcome.status = SessionStatus::kDecodeRejected;
    return std::nullopt;
  }
  return assembler.take();
}

}  // namespace

Bytes CountingChannel::send_to_worker(MessageType type, Bytes message) {
  to_worker_ += message.size();
  by_type_[static_cast<std::size_t>(type)] += message.size();
  mirror_to_registry(type, message.size());
  return message;
}

Bytes CountingChannel::send_to_manager(MessageType type, Bytes message) {
  to_manager_ += message.size();
  by_type_[static_cast<std::size_t>(type)] += message.size();
  mirror_to_registry(type, message.size());
  return message;
}

SessionOutcome run_protocol_session(
    const nn::ModelFactory& factory, const Hyperparams& hp,
    const SessionConfig& config, const TrainState& global_state,
    std::uint64_t nonce, const data::DatasetView& worker_data,
    WorkerPolicy& policy, const sim::DeviceProfile& worker_device,
    std::uint64_t worker_run_seed, const sim::DeviceProfile& manager_device,
    std::uint64_t manager_run_seed) {
  if (config.scheme == Scheme::kBaseline) {
    throw std::invalid_argument("protocol session requires an RPoL scheme");
  }
  if (config.scheme == Scheme::kRPoLv2 && !config.lsh.has_value()) {
    throw std::invalid_argument("RPoLv2 session needs an LSH config");
  }
  if (config.retry.max_attempts < 1) {
    throw std::invalid_argument("retry budget needs >= 1 attempt");
  }

  obs::Span session_span("session", config.trace_parent);
  CountingChannel counting;
  fault::FaultyChannel<CountingChannel> channel(counting, config.fault_plan);
  SessionOutcome outcome;
  ExchangeDriver exchange{channel, config, outcome};
  const fault::Byzantine byzantine =
      config.fault_plan ? config.fault_plan->byzantine
                        : fault::Byzantine::kNone;

  // Fills transport accounting before any return; keeps every exit path
  // consistent with the "typed bytes sum to the totals" invariant.
  const auto finish = [&](SessionOutcome&& out) {
    out.bytes_to_worker = counting.bytes_to_worker();
    out.bytes_to_manager = counting.bytes_to_manager();
    out.bytes_by_type = counting.bytes_by_type();
    if (const fault::FaultStats* stats = channel.stats()) out.faults = *stats;
    session_span.attr("status", session_status_name(out.status));
    session_span.attr("retries", out.total_retries);
    session_span.attr("backoff_ticks", out.backoff_ticks);
    return std::move(out);
  };

  // --- Manager -> worker: task announcement + global state. ---------------
  TaskAnnouncement announcement;
  announcement.nonce = nonce;
  announcement.hp = hp;
  announcement.initial_state_hash = hash_state(global_state);
  announcement.lsh = config.lsh;
  std::optional<TaskAnnouncement> worker_view;
  std::optional<TrainState> worker_initial;
  {
    obs::Span s("announce", session_span);
    worker_view = exchange.run(
        MessageType::kAnnouncement, encode_task_announcement(announcement),
        /*to_worker=*/true,
        [](const Bytes& b) { return decode_task_announcement(b); },
        s.context());
    if (!worker_view.has_value()) return finish(std::move(outcome));

    // The worker validates the transfer against the announced hash; a
    // mismatch (in-flight corruption that still decodes) is indistinct from
    // a decode failure at the protocol level, so it NACKs and the manager
    // retransmits. Chunked mode applies the same check once the stream
    // assembles; per-chunk digests catch transport corruption earlier.
    const auto validate_initial = [&](const TrainState& state) {
      if (!digest_equal(hash_state(state), worker_view->initial_state_hash)) {
        throw std::runtime_error("state transfer corrupted");
      }
    };
    if (config.chunk_bytes > 0) {
      worker_initial = exchange_state_chunked(
          exchange, MessageType::kGlobalState, global_state,
          /*to_worker=*/true, config, validate_initial, s.context());
    } else {
      worker_initial = exchange.run(
          MessageType::kGlobalState, encode_train_state(global_state),
          /*to_worker=*/true, [&](const Bytes& b) {
            std::size_t offset = 0;
            TrainState state = decode_train_state(b, offset);
            if (offset != b.size()) {
              throw std::invalid_argument("trailing bytes in state");
            }
            validate_initial(state);
            return state;
          },
          s.context());
    }
    if (!worker_initial.has_value()) return finish(std::move(outcome));
  }

  // --- Worker side: decode, train, commit. --------------------------------
  StepExecutor worker_executor(factory, worker_view->hp);
  EpochContext ctx;
  ctx.nonce = worker_view->nonce;
  ctx.initial = std::move(*worker_initial);
  ctx.dataset = &worker_data;
  sim::DeviceExecution worker_gpu(worker_device, worker_run_seed);
  EpochTrace trace;
  Commitment commitment;
  Bytes commit_wire;
  std::optional<Commitment> manager_commitment;
  std::optional<TrainState> manager_update;
  {
    // The worker agent's spans hang off the context that arrived with the
    // announcement, stitching both sides of the wire into one causal tree.
    obs::Span worker_span("worker_epoch", exchange.last_rx, /*worker=*/0);
    {
      obs::Span s("train", worker_span, /*worker=*/0);
      trace = policy.produce_trace(worker_executor, ctx, worker_gpu);
      s.attr("storage_bytes", trace.storage_bytes());
    }

    // Scripted byzantine mutations of what the worker is about to commit.
    if (byzantine == fault::Byzantine::kStaleCommitmentReplay) {
      // Replay of a commitment built for an older global state: internally
      // consistent (hashes match its own checkpoints) but C_0 no longer
      // matches the state the manager distributed this epoch.
      for (auto& checkpoint : trace.checkpoints) {
        perturb_state(checkpoint, 0.5F);
      }
    }

    {
      obs::Span s("commit", worker_span, /*worker=*/0);
      if (config.scheme == Scheme::kRPoLv2) {
        const lsh::PStableLsh hasher(*worker_view->lsh);
        commitment =
            commit_v2(trace, hasher, &worker_executor.trainable_mask());
      } else {
        commitment = commit_v1(trace);
      }
      commit_wire = encode_commitment(commitment);
      if (byzantine == fault::Byzantine::kOversizedPayload) {
        commit_wire.assign(
            static_cast<std::size_t>(
                config.fault_plan->oversized_payload_bytes),
            0xEE);
      }
    }

    {
      obs::Span s("submit", worker_span, /*worker=*/0);
      manager_commitment = exchange.run(
          MessageType::kCommitment, commit_wire, /*to_worker=*/false,
          [](const Bytes& b) { return decode_commitment(b); }, s.context());
      if (!manager_commitment.has_value()) return finish(std::move(outcome));

      // The model update itself (final weights) travels with the commitment.
      TrainState update;
      update.model = trace.checkpoints.back().model;
      if (config.chunk_bytes > 0) {
        manager_update = exchange_state_chunked(
            exchange, MessageType::kUpdate, update, /*to_worker=*/false,
            config, /*validate=*/nullptr, s.context());
      } else {
        manager_update = exchange.run(
            MessageType::kUpdate, encode_train_state(update),
            /*to_worker=*/false,
            [](const Bytes& b) {
              std::size_t offset = 0;
              TrainState state = decode_train_state(b, offset);
              if (offset != b.size()) {
                throw std::invalid_argument("trailing bytes in update");
              }
              return state;
            },
            s.context());
      }
      if (!manager_update.has_value()) return finish(std::move(outcome));
    }
  }

  // Worker-side proof store: what proof responses are served from. A forger
  // keeps an honest commitment but answers requests with doctored states.
  const auto serve_checkpoint = [&](std::int64_t j) {
    TrainState state = trace.checkpoints[static_cast<std::size_t>(j)];
    if (byzantine == fault::Byzantine::kForgedCheckpointState) {
      perturb_state(state, 1.0e-2F);
    }
    return state;
  };
  const bool withholds_proofs =
      byzantine == fault::Byzantine::kProofWithholding;

  // --- Manager: sample post-commitment, request proofs. -------------------
  ProofRequest request;
  request.transitions =
      sample_transitions(config.sampling_seed, manager_commitment->root,
                         trace.num_transitions(), config.samples_q);
  std::optional<ProofResponse> manager_response;
  {
    obs::Span s("proof_exchange", session_span);
    const auto worker_request = exchange.run(
        MessageType::kProofRequest, encode_proof_request(request),
        /*to_worker=*/true,
        [&](const Bytes& b) {
          ProofRequest decoded = decode_proof_request(b);
          for (const auto j : decoded.transitions) {
            if (j < 0 || j >= trace.num_transitions()) {
              throw std::runtime_error("proof request out of range");
            }
          }
          return decoded;
        },
        s.context());
    if (!worker_request.has_value()) return finish(std::move(outcome));

    // --- Worker: answer the proof request (or withhold it). ---------------
    obs::Span serve_span("serve_proof", exchange.last_rx, /*worker=*/0);
    ProofResponse response;
    for (const auto j : worker_request->transitions) {
      response.input_states.push_back(serve_checkpoint(j));
      if (config.scheme == Scheme::kRPoLv1) {
        response.output_states.push_back(serve_checkpoint(j + 1));
      }
    }
    // The manager validates received proof states against the commitment at
    // decode time: transport corruption of a proof is indistinguishable from
    // any other mangled payload, so it NACKs and refetches instead of
    // blaming the worker. A peer that persistently serves states that do
    // not hash to its own commitment (forgery) exhausts the budget and is
    // rejected with kDecodeRejected.
    manager_response = exchange.run(
        MessageType::kProofResponse, encode_proof_response(response),
        /*to_worker=*/false,
        [&](const Bytes& b) {
          ProofResponse decoded = decode_proof_response(b);
          const bool wants_outputs = config.scheme == Scheme::kRPoLv1;
          if (decoded.input_states.size() != request.transitions.size() ||
              decoded.output_states.size() !=
                  (wants_outputs ? request.transitions.size() : 0u)) {
            throw std::invalid_argument("proof response shape mismatch");
          }
          for (std::size_t s = 0; s < request.transitions.size(); ++s) {
            const auto j = static_cast<std::size_t>(request.transitions[s]);
            if (j + 1 >= manager_commitment->state_hashes.size()) {
              throw std::out_of_range("proof transition beyond commitment");
            }
            if (!digest_equal(hash_state(decoded.input_states[s]),
                              manager_commitment->state_hashes[j]) ||
                (wants_outputs &&
                 !digest_equal(hash_state(decoded.output_states[s]),
                               manager_commitment->state_hashes[j + 1]))) {
              throw std::runtime_error("proof state does not match commitment");
            }
          }
          return decoded;
        },
        serve_span.context(), withholds_proofs);
    if (!manager_response.has_value()) return finish(std::move(outcome));
  }

  // --- Manager: re-execute and decide. -------------------------------------
  obs::Span verify_span("verify", session_span, /*worker=*/0);
  StepExecutor manager_executor(factory, hp);
  const std::vector<bool>& mask = manager_executor.trainable_mask();
  std::optional<lsh::PStableLsh> manager_hasher;
  if (config.scheme == Scheme::kRPoLv2) manager_hasher.emplace(*config.lsh);
  const DeterministicSelector selector(nonce);
  sim::DeviceExecution manager_gpu(manager_device, manager_run_seed);

  bool all_passed =
      digest_equal(manager_commitment->state_hashes.front(),
                   announcement.initial_state_hash) &&
      manager_response->input_states.size() == request.transitions.size() &&
      (config.scheme != Scheme::kRPoLv1 ||
       manager_response->output_states.size() == request.transitions.size());
  for (std::size_t s = 0; all_passed && s < request.transitions.size(); ++s) {
    const std::int64_t j = request.transitions[s];
    // Every state in manager_response already hash-matched the commitment in
    // the decode validator above (mismatches NACK and exhaust the retry
    // budget before reaching this loop), so the states are bound without
    // re-hashing multi-megabyte checkpoints here.
    const TrainState& proof_in = manager_response->input_states[s];
    // Re-execute. The checkpoint boundaries are reconstructable from hp.
    const std::int64_t first = j * hp.checkpoint_interval;
    const std::int64_t count =
        std::min(hp.checkpoint_interval, hp.steps_per_epoch - first);
    {
      obs::Span reexec("reexecute", verify_span, /*worker=*/0);
      reexec.attr("transition", j);
      reexec.attr("steps", count);
      manager_executor.load_state(proof_in);
      manager_executor.run_steps(first, count, worker_data, selector,
                                 &manager_gpu);
    }
    const TrainState replay = manager_executor.save_state();

    if (config.scheme == Scheme::kRPoLv1) {
      const TrainState& claimed = manager_response->output_states[s];
      all_passed =
          trainable_distance(replay.model, claimed.model, mask) <= config.beta;
    } else {
      const lsh::LshDigest replay_digest =
          manager_hasher->hash(extract_trainable(replay.model, mask));
      if (!lsh::lsh_match(replay_digest,
                          manager_commitment
                              ->lsh_digests[static_cast<std::size_t>(j + 1)])) {
        // Double-check round trip: one more request/response pair, under
        // the same retry machinery as every other exchange.
        ++outcome.double_checks;
        obs::count("verify.lsh_mismatch", 1);
        obs::count("verify.double_check", 1);
        ProofRequest dc_request;
        dc_request.transitions = {j};  // re-request: raw output this time
        const auto dc_seen = exchange.run(
            MessageType::kProofRequest, encode_proof_request(dc_request),
            /*to_worker=*/true,
            [](const Bytes& b) { return decode_proof_request(b); },
            verify_span.context());
        if (!dc_seen.has_value()) return finish(std::move(outcome));
        std::optional<ProofResponse> dc_decoded;
        {
          obs::Span dc_serve("serve_proof", exchange.last_rx, /*worker=*/0);
          ProofResponse dc_response;
          dc_response.output_states.push_back(serve_checkpoint(j + 1));
          dc_decoded = exchange.run(
              MessageType::kProofResponse, encode_proof_response(dc_response),
              /*to_worker=*/false,
              [&](const Bytes& b) {
                ProofResponse decoded = decode_proof_response(b);
                if (decoded.output_states.size() != 1) {
                  throw std::invalid_argument("double-check shape mismatch");
                }
                if (!digest_equal(hash_state(decoded.output_states.front()),
                                  manager_commitment->state_hashes
                                      [static_cast<std::size_t>(j + 1)])) {
                  throw std::runtime_error(
                      "proof state does not match commitment");
                }
                return decoded;
              },
              dc_serve.context(), withholds_proofs);
        }
        if (!dc_decoded.has_value()) return finish(std::move(outcome));
        const TrainState& claimed = dc_decoded->output_states.front();
        all_passed = trainable_distance(replay.model, claimed.model, mask) <=
                     config.beta;
      }
    }
  }

  outcome.accepted = all_passed;
  outcome.status =
      all_passed ? SessionStatus::kAccepted : SessionStatus::kVerdictRejected;
  outcome.final_model = manager_update->model;
  verify_span.attr("accepted", outcome.accepted);
  verify_span.attr("double_checks", outcome.double_checks);
  obs::count(all_passed ? "verify.accept" : "verify.reject", 1);
  return finish(std::move(outcome));
}

}  // namespace rpol::core
