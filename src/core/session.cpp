#include "core/session.h"

#include <stdexcept>

namespace rpol::core {

Bytes CountingChannel::send_to_worker(Bytes message) {
  to_worker_ += message.size();
  return message;
}

Bytes CountingChannel::send_to_manager(Bytes message) {
  to_manager_ += message.size();
  return message;
}

SessionOutcome run_protocol_session(
    const nn::ModelFactory& factory, const Hyperparams& hp,
    const SessionConfig& config, const TrainState& global_state,
    std::uint64_t nonce, const data::DatasetView& worker_data,
    WorkerPolicy& policy, const sim::DeviceProfile& worker_device,
    std::uint64_t worker_run_seed, const sim::DeviceProfile& manager_device,
    std::uint64_t manager_run_seed) {
  if (config.scheme == Scheme::kBaseline) {
    throw std::invalid_argument("protocol session requires an RPoL scheme");
  }
  if (config.scheme == Scheme::kRPoLv2 && !config.lsh.has_value()) {
    throw std::invalid_argument("RPoLv2 session needs an LSH config");
  }

  CountingChannel channel;
  SessionOutcome outcome;

  // --- Manager -> worker: task announcement + global state. ---------------
  TaskAnnouncement announcement;
  announcement.nonce = nonce;
  announcement.hp = hp;
  announcement.initial_state_hash = hash_state(global_state);
  announcement.lsh = config.lsh;
  const Bytes announce_wire =
      channel.send_to_worker(encode_task_announcement(announcement));
  const Bytes state_wire =
      channel.send_to_worker(encode_train_state(global_state));

  // --- Worker side: decode, train, commit. --------------------------------
  const TaskAnnouncement worker_view = decode_task_announcement(announce_wire);
  std::size_t state_offset = 0;
  TrainState worker_initial = decode_train_state(state_wire, state_offset);
  if (!digest_equal(hash_state(worker_initial),
                    worker_view.initial_state_hash)) {
    throw std::runtime_error("state transfer corrupted");
  }

  StepExecutor worker_executor(factory, worker_view.hp);
  EpochContext ctx;
  ctx.nonce = worker_view.nonce;
  ctx.initial = std::move(worker_initial);
  ctx.dataset = &worker_data;
  sim::DeviceExecution worker_gpu(worker_device, worker_run_seed);
  const EpochTrace trace = policy.produce_trace(worker_executor, ctx, worker_gpu);

  Commitment commitment;
  if (config.scheme == Scheme::kRPoLv2) {
    const lsh::PStableLsh hasher(*worker_view.lsh);
    commitment = commit_v2(trace, hasher, &worker_executor.trainable_mask());
  } else {
    commitment = commit_v1(trace);
  }
  const Bytes commit_wire =
      channel.send_to_manager(encode_commitment(commitment));
  // The model update itself (final weights) travels with the commitment.
  TrainState update;
  update.model = trace.checkpoints.back().model;
  channel.send_to_manager(encode_train_state(update));

  // --- Manager: sample post-commitment, request proofs. -------------------
  const Commitment manager_commitment = decode_commitment(commit_wire);
  ProofRequest request;
  request.transitions =
      sample_transitions(config.sampling_seed, manager_commitment.root,
                         trace.num_transitions(), config.samples_q);
  const Bytes request_wire =
      channel.send_to_worker(encode_proof_request(request));

  // --- Worker: answer the proof request. ----------------------------------
  const ProofRequest worker_request = decode_proof_request(request_wire);
  ProofResponse response;
  for (const auto j : worker_request.transitions) {
    if (j < 0 || j >= trace.num_transitions()) {
      throw std::runtime_error("proof request out of range");
    }
    response.input_states.push_back(
        trace.checkpoints[static_cast<std::size_t>(j)]);
    if (config.scheme == Scheme::kRPoLv1) {
      response.output_states.push_back(
          trace.checkpoints[static_cast<std::size_t>(j + 1)]);
    }
  }
  Bytes response_wire =
      channel.send_to_manager(encode_proof_response(response));

  // --- Manager: re-execute and decide. -------------------------------------
  StepExecutor manager_executor(factory, hp);
  const std::vector<bool>& mask = manager_executor.trainable_mask();
  std::optional<lsh::PStableLsh> manager_hasher;
  if (config.scheme == Scheme::kRPoLv2) manager_hasher.emplace(*config.lsh);
  const ProofResponse manager_response = decode_proof_response(response_wire);
  const DeterministicSelector selector(nonce);
  sim::DeviceExecution manager_gpu(manager_device, manager_run_seed);

  bool all_passed =
      digest_equal(manager_commitment.state_hashes.front(),
                   announcement.initial_state_hash) &&
      manager_response.input_states.size() == request.transitions.size() &&
      (config.scheme != Scheme::kRPoLv1 ||
       manager_response.output_states.size() == request.transitions.size());
  for (std::size_t s = 0; all_passed && s < request.transitions.size(); ++s) {
    const std::int64_t j = request.transitions[s];
    const TrainState& proof_in = manager_response.input_states[s];
    if (!digest_equal(
            hash_state(proof_in),
            manager_commitment.state_hashes[static_cast<std::size_t>(j)])) {
      all_passed = false;
      break;
    }
    // Re-execute. The checkpoint boundaries are reconstructable from hp.
    const std::int64_t first = j * hp.checkpoint_interval;
    const std::int64_t count =
        std::min(hp.checkpoint_interval, hp.steps_per_epoch - first);
    manager_executor.load_state(proof_in);
    manager_executor.run_steps(first, count, worker_data, selector, &manager_gpu);
    const TrainState replay = manager_executor.save_state();

    if (config.scheme == Scheme::kRPoLv1) {
      const TrainState& claimed = manager_response.output_states[s];
      if (!digest_equal(hash_state(claimed),
                        manager_commitment
                            .state_hashes[static_cast<std::size_t>(j + 1)])) {
        all_passed = false;
        break;
      }
      all_passed =
          trainable_distance(replay.model, claimed.model, mask) <= config.beta;
    } else {
      const lsh::LshDigest replay_digest =
          manager_hasher->hash(extract_trainable(replay.model, mask));
      if (!lsh::lsh_match(replay_digest,
                          manager_commitment
                              .lsh_digests[static_cast<std::size_t>(j + 1)])) {
        // Double-check round trip: one more request/response pair.
        ++outcome.double_checks;
        ProofRequest dc_request;
        dc_request.transitions = {j};  // re-request: raw output this time
        channel.send_to_worker(encode_proof_request(dc_request));
        ProofResponse dc_response;
        dc_response.output_states.push_back(
            trace.checkpoints[static_cast<std::size_t>(j + 1)]);
        const Bytes dc_wire =
            channel.send_to_manager(encode_proof_response(dc_response));
        const ProofResponse dc_decoded = decode_proof_response(dc_wire);
        const TrainState& claimed = dc_decoded.output_states.front();
        if (!digest_equal(hash_state(claimed),
                          manager_commitment
                              .state_hashes[static_cast<std::size_t>(j + 1)])) {
          all_passed = false;
          break;
        }
        all_passed = trainable_distance(replay.model, claimed.model, mask) <=
                     config.beta;
      }
    }
  }

  outcome.accepted = all_passed;
  outcome.final_model = trace.checkpoints.back().model;
  outcome.bytes_to_worker = channel.bytes_to_worker();
  outcome.bytes_to_manager = channel.bytes_to_manager();
  return outcome;
}

}  // namespace rpol::core
