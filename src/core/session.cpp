#include "core/session.h"

#include <stdexcept>

#include "obs/obs.h"

namespace rpol::core {

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kAnnouncement: return "announcement";
    case MessageType::kGlobalState: return "state";
    case MessageType::kCommitment: return "commitment";
    case MessageType::kUpdate: return "update";
    case MessageType::kProofRequest: return "proof_request";
    case MessageType::kProofResponse: return "proof_response";
  }
  return "unknown";
}

namespace {

void mirror_to_registry(MessageType type, std::uint64_t bytes) {
  if (!obs::enabled()) return;
  obs::counter(std::string("bytes.") + message_type_name(type)).add(bytes);
}

}  // namespace

Bytes CountingChannel::send_to_worker(MessageType type, Bytes message) {
  to_worker_ += message.size();
  by_type_[static_cast<std::size_t>(type)] += message.size();
  mirror_to_registry(type, message.size());
  return message;
}

Bytes CountingChannel::send_to_manager(MessageType type, Bytes message) {
  to_manager_ += message.size();
  by_type_[static_cast<std::size_t>(type)] += message.size();
  mirror_to_registry(type, message.size());
  return message;
}

SessionOutcome run_protocol_session(
    const nn::ModelFactory& factory, const Hyperparams& hp,
    const SessionConfig& config, const TrainState& global_state,
    std::uint64_t nonce, const data::DatasetView& worker_data,
    WorkerPolicy& policy, const sim::DeviceProfile& worker_device,
    std::uint64_t worker_run_seed, const sim::DeviceProfile& manager_device,
    std::uint64_t manager_run_seed) {
  if (config.scheme == Scheme::kBaseline) {
    throw std::invalid_argument("protocol session requires an RPoL scheme");
  }
  if (config.scheme == Scheme::kRPoLv2 && !config.lsh.has_value()) {
    throw std::invalid_argument("RPoLv2 session needs an LSH config");
  }

  obs::Span session_span("session");
  CountingChannel channel;
  SessionOutcome outcome;

  // --- Manager -> worker: task announcement + global state. ---------------
  TaskAnnouncement announcement;
  announcement.nonce = nonce;
  announcement.hp = hp;
  announcement.initial_state_hash = hash_state(global_state);
  announcement.lsh = config.lsh;
  Bytes announce_wire, state_wire;
  {
    obs::Span s("announce", session_span.id());
    announce_wire = channel.send_to_worker(MessageType::kAnnouncement,
                                           encode_task_announcement(announcement));
    state_wire = channel.send_to_worker(MessageType::kGlobalState,
                                        encode_train_state(global_state));
  }

  // --- Worker side: decode, train, commit. --------------------------------
  const TaskAnnouncement worker_view = decode_task_announcement(announce_wire);
  std::size_t state_offset = 0;
  TrainState worker_initial = decode_train_state(state_wire, state_offset);
  if (!digest_equal(hash_state(worker_initial),
                    worker_view.initial_state_hash)) {
    throw std::runtime_error("state transfer corrupted");
  }

  StepExecutor worker_executor(factory, worker_view.hp);
  EpochContext ctx;
  ctx.nonce = worker_view.nonce;
  ctx.initial = std::move(worker_initial);
  ctx.dataset = &worker_data;
  sim::DeviceExecution worker_gpu(worker_device, worker_run_seed);
  EpochTrace trace;
  {
    obs::Span s("train", session_span.id(), /*worker=*/0);
    trace = policy.produce_trace(worker_executor, ctx, worker_gpu);
    s.attr("storage_bytes", trace.storage_bytes());
  }

  Commitment commitment;
  Bytes commit_wire;
  {
    obs::Span s("commit", session_span.id(), /*worker=*/0);
    if (config.scheme == Scheme::kRPoLv2) {
      const lsh::PStableLsh hasher(*worker_view.lsh);
      commitment = commit_v2(trace, hasher, &worker_executor.trainable_mask());
    } else {
      commitment = commit_v1(trace);
    }
    commit_wire = channel.send_to_manager(MessageType::kCommitment,
                                          encode_commitment(commitment));
    // The model update itself (final weights) travels with the commitment.
    TrainState update;
    update.model = trace.checkpoints.back().model;
    channel.send_to_manager(MessageType::kUpdate, encode_train_state(update));
  }

  // --- Manager: sample post-commitment, request proofs. -------------------
  const Commitment manager_commitment = decode_commitment(commit_wire);
  ProofRequest request;
  request.transitions =
      sample_transitions(config.sampling_seed, manager_commitment.root,
                         trace.num_transitions(), config.samples_q);
  Bytes request_wire, response_wire;
  {
    obs::Span s("proof_exchange", session_span.id());
    request_wire = channel.send_to_worker(MessageType::kProofRequest,
                                          encode_proof_request(request));

    // --- Worker: answer the proof request. --------------------------------
    const ProofRequest worker_request = decode_proof_request(request_wire);
    ProofResponse response;
    for (const auto j : worker_request.transitions) {
      if (j < 0 || j >= trace.num_transitions()) {
        throw std::runtime_error("proof request out of range");
      }
      response.input_states.push_back(
          trace.checkpoints[static_cast<std::size_t>(j)]);
      if (config.scheme == Scheme::kRPoLv1) {
        response.output_states.push_back(
            trace.checkpoints[static_cast<std::size_t>(j + 1)]);
      }
    }
    response_wire = channel.send_to_manager(MessageType::kProofResponse,
                                            encode_proof_response(response));
  }

  // --- Manager: re-execute and decide. -------------------------------------
  obs::Span verify_span("verify", session_span.id(), /*worker=*/0);
  StepExecutor manager_executor(factory, hp);
  const std::vector<bool>& mask = manager_executor.trainable_mask();
  std::optional<lsh::PStableLsh> manager_hasher;
  if (config.scheme == Scheme::kRPoLv2) manager_hasher.emplace(*config.lsh);
  const ProofResponse manager_response = decode_proof_response(response_wire);
  const DeterministicSelector selector(nonce);
  sim::DeviceExecution manager_gpu(manager_device, manager_run_seed);

  bool all_passed =
      digest_equal(manager_commitment.state_hashes.front(),
                   announcement.initial_state_hash) &&
      manager_response.input_states.size() == request.transitions.size() &&
      (config.scheme != Scheme::kRPoLv1 ||
       manager_response.output_states.size() == request.transitions.size());
  for (std::size_t s = 0; all_passed && s < request.transitions.size(); ++s) {
    const std::int64_t j = request.transitions[s];
    const TrainState& proof_in = manager_response.input_states[s];
    if (!digest_equal(
            hash_state(proof_in),
            manager_commitment.state_hashes[static_cast<std::size_t>(j)])) {
      all_passed = false;
      break;
    }
    // Re-execute. The checkpoint boundaries are reconstructable from hp.
    const std::int64_t first = j * hp.checkpoint_interval;
    const std::int64_t count =
        std::min(hp.checkpoint_interval, hp.steps_per_epoch - first);
    {
      obs::Span reexec("reexecute", verify_span.id(), /*worker=*/0);
      reexec.attr("transition", j);
      reexec.attr("steps", count);
      manager_executor.load_state(proof_in);
      manager_executor.run_steps(first, count, worker_data, selector,
                                 &manager_gpu);
    }
    const TrainState replay = manager_executor.save_state();

    if (config.scheme == Scheme::kRPoLv1) {
      const TrainState& claimed = manager_response.output_states[s];
      if (!digest_equal(hash_state(claimed),
                        manager_commitment
                            .state_hashes[static_cast<std::size_t>(j + 1)])) {
        all_passed = false;
        break;
      }
      all_passed =
          trainable_distance(replay.model, claimed.model, mask) <= config.beta;
    } else {
      const lsh::LshDigest replay_digest =
          manager_hasher->hash(extract_trainable(replay.model, mask));
      if (!lsh::lsh_match(replay_digest,
                          manager_commitment
                              .lsh_digests[static_cast<std::size_t>(j + 1)])) {
        // Double-check round trip: one more request/response pair.
        ++outcome.double_checks;
        obs::count("verify.lsh_mismatch", 1);
        obs::count("verify.double_check", 1);
        ProofRequest dc_request;
        dc_request.transitions = {j};  // re-request: raw output this time
        channel.send_to_worker(MessageType::kProofRequest,
                               encode_proof_request(dc_request));
        ProofResponse dc_response;
        dc_response.output_states.push_back(
            trace.checkpoints[static_cast<std::size_t>(j + 1)]);
        const Bytes dc_wire = channel.send_to_manager(
            MessageType::kProofResponse, encode_proof_response(dc_response));
        const ProofResponse dc_decoded = decode_proof_response(dc_wire);
        const TrainState& claimed = dc_decoded.output_states.front();
        if (!digest_equal(hash_state(claimed),
                          manager_commitment
                              .state_hashes[static_cast<std::size_t>(j + 1)])) {
          all_passed = false;
          break;
        }
        all_passed = trainable_distance(replay.model, claimed.model, mask) <=
                     config.beta;
      }
    }
  }

  outcome.accepted = all_passed;
  outcome.final_model = trace.checkpoints.back().model;
  outcome.bytes_to_worker = channel.bytes_to_worker();
  outcome.bytes_to_manager = channel.bytes_to_manager();
  outcome.bytes_by_type = channel.bytes_by_type();
  verify_span.attr("accepted", outcome.accepted);
  verify_span.attr("double_checks", outcome.double_checks);
  obs::count(all_passed ? "verify.accept" : "verify.reject", 1);
  return outcome;
}

}  // namespace rpol::core
