// Training proofs and commitments (Sec. V-B, V-C).
//
// During an epoch a worker snapshots its TrainState every
// `checkpoint_interval` steps, producing the checkpoint sequence
//   C_0 (initial), C_1, ..., C_T (final);
// transition j is the claim "running steps [s_j, s_{j+1}) from C_j yields
// C_{j+1}".
//
// Before learning which transitions the manager will sample, the worker
// publishes a commitment binding the entire sequence:
//   * v1 (RPoLv1): SHA-256 of each checkpoint's canonical serialization;
//   * v2 (RPoLv2): the same hashes PLUS the p-stable LSH digest of each
//     checkpoint's model weights, enabling fuzzy verification without
//     transferring output weights.
// The commitment root is either the ordered hash list's digest or a Merkle
// root over it (both constructions from the paper are provided).

#pragma once

#include <optional>

#include "core/executor.h"
#include "crypto/merkle.h"
#include "lsh/pstable.h"
#include "obs/mem.h"

namespace rpol::core {

// The checkpoint sequence a worker produced in one epoch.
struct EpochTrace {
  std::vector<TrainState> checkpoints;   // size = num_transitions + 1
  std::vector<std::int64_t> step_of;     // global step index of each checkpoint
  float mean_loss = 0.0F;

  std::int64_t num_transitions() const {
    return static_cast<std::int64_t>(checkpoints.size()) - 1;
  }
  std::uint64_t storage_bytes() const;
};

// Canonical serialization of a TrainState (model + optimizer vectors).
Bytes serialize_state(const TrainState& state);
// SHA-256 over the canonical serialization. Streams the length prefix and
// float payload straight into the hasher (no intermediate Bytes buffer);
// byte-identical to sha256(serialize_state(state)).
Digest hash_state(const TrainState& state);

// Streams serialize_floats(v) — u64 count then little-endian fp32 payload —
// into `h` without materializing the byte vector. On little-endian hosts the
// payload is the vector's raw memory, so this is a zero-copy update.
void update_with_floats(Sha256& h, const std::vector<float>& v);

enum class CommitmentVersion { kV1, kV2 };

struct Commitment {
  CommitmentVersion version = CommitmentVersion::kV1;
  std::vector<Digest> state_hashes;            // one per checkpoint
  std::vector<lsh::LshDigest> lsh_digests;     // v2 only, one per checkpoint
  Digest root{};                               // binds the ordered lists

  std::uint64_t byte_size() const;
};

// Builds a v1 commitment over the trace.
Commitment commit_v1(const EpochTrace& trace);

// Builds a v2 commitment; `hasher` must be the epoch's manager-distributed
// LSH family and hashes each checkpoint's trainable WEIGHT vector —
// `mask` selects the trainable subset of the model state (pass the model's
// trainable_mask(); nullptr means every element is a weight). Optimizer
// slots and buffers are covered by the SHA hashes only.
Commitment commit_v2(const EpochTrace& trace, const lsh::PStableLsh& hasher,
                     const std::vector<bool>* mask = nullptr);

// Root over the ordered hash list (+ LSH digests for v2).
Digest commitment_root(const Commitment& commitment);

// Alternative Merkle-tree root over the state hashes (Sec. V-B's second
// construction); verifiable per-leaf with MerkleTree::prove/verify.
Digest commitment_merkle_root(const Commitment& commitment);

// Integrity check: recomputes the root from the lists.
bool commitment_consistent(const Commitment& commitment);

// ---------------------------------------------------------------------------
// Compact (Merkle) commitment — Sec. V-B's second construction, worth its
// salt when epochs have many checkpoints: the worker uploads O(1) roots
// instead of O(#checkpoints) hashes, and each sampled transition travels
// with logarithmic membership proofs.

struct CompactCommitment {
  CommitmentVersion version = CommitmentVersion::kV1;
  std::int64_t num_checkpoints = 0;
  Digest state_root{};  // Merkle root over the ordered state hashes
  Digest lsh_root{};    // v2: Merkle root over hashed LSH digests, else zero

  std::uint64_t byte_size() const { return 8 + 32 + 32 + 1; }
};

// Collapses a full commitment into its compact form.
CompactCommitment compact_commitment(const Commitment& full);

// Everything the manager needs to check one sampled transition under the
// compact scheme without having seen the per-checkpoint lists.
struct TransitionProof {
  std::int64_t transition = 0;
  Digest in_hash{};             // SHA of C_j (state fetched separately)
  MerkleProof in_membership;    // proves in_hash at leaf j under state_root
  Digest out_hash{};            // SHA of C_{j+1}
  MerkleProof out_membership;   // leaf j+1 under state_root
  lsh::LshDigest out_lsh;       // v2: committed LSH digest of C_{j+1}
  MerkleProof out_lsh_membership;  // leaf j+1 under lsh_root

  std::uint64_t byte_size() const;
};

// Builds the membership proofs from the worker-side full commitment.
// Convenience wrapper: builds a throwaway CommitmentIndex, so each call pays
// O(n) hashing. Callers proving more than one transition (the verifier's
// sampled loop, batch provers) should build a CommitmentIndex once instead.
TransitionProof make_transition_proof(const Commitment& full,
                                      std::int64_t transition);

// Memoized Merkle trees over a full commitment. Builds the state tree (and,
// for v2, the LSH-leaf tree) exactly once — with parallel leaf hashing and
// level construction — then answers compact roots and transition proofs in
// O(log n) without re-hashing anything. Borrows `full`, which must outlive
// the index and must not be mutated while the index is alive.
class CommitmentIndex {
 public:
  // Throws std::invalid_argument on an empty commitment.
  explicit CommitmentIndex(const Commitment& full);

  const Commitment& full() const { return *full_; }
  const MerkleTree& state_tree() const { return state_tree_; }
  // Present iff the commitment is v2.
  const std::optional<MerkleTree>& lsh_tree() const { return lsh_tree_; }

  // Equivalent to compact_commitment(full()), from the memoized trees.
  CompactCommitment compact() const;

  // Equivalent to make_transition_proof(full(), transition); throws
  // std::out_of_range on a bad index.
  TransitionProof prove_transition(std::int64_t transition) const;

 private:
  const Commitment* full_;
  MerkleTree state_tree_;
  std::optional<MerkleTree> lsh_tree_;
  // Charges the trees' resident bytes to the "merkle" tag for as long as
  // the index is alive (obs/mem.h); makes the class move-only.
  obs::MemScope mem_{obs::MemTag::kMerkle};
};

// ---------------------------------------------------------------------------
// Streaming commitment construction (ROADMAP item 5): checkpoints are hashed
// and folded AS THEY ARE PRODUCED, so only the 32-byte digests (plus two
// O(log n) Merkle frontiers) stay resident — never the checkpoint states.
// The worker trains a transition, feeds the fresh state here, and can drop
// (or spill, core/ckptstore.h) the state immediately.
//
// Equivalence contract (§6, pinned by tests/core_commitment_golden_test):
// for any checkpoint sequence, finish() is bitwise identical to
// commit_v1/commit_v2 over the materialized trace, and compact() matches
// CommitmentIndex::compact() roots.
class CommitmentBuilder {
 public:
  // v1: hasher == nullptr. v2: `hasher` is the epoch's manager-distributed
  // LSH family (must outlive the builder) and `mask` selects the trainable
  // weights — the same contract as commit_v2. Throws std::invalid_argument
  // on a v2 builder without a hasher.
  explicit CommitmentBuilder(CommitmentVersion version,
                             const lsh::PStableLsh* hasher = nullptr,
                             const std::vector<bool>* mask = nullptr);

  // Hashes the checkpoint (SHA + LSH for v2) and folds the leaves into the
  // running accumulators. The state is not retained.
  void add_checkpoint(const TrainState& state);

  std::int64_t count() const {
    return static_cast<std::int64_t>(acc_.state_hashes.size());
  }

  // Seals the sequence so far into a full Commitment (ordered lists + root,
  // exactly as commitment_root computes it). Non-destructive: more
  // checkpoints may be added and finish() called again. Throws
  // std::invalid_argument when no checkpoint was added.
  Commitment finish() const;

  // The streamed compact roots — identical to compact_commitment(finish())
  // but O(log n) from the frontiers, with no tree ever materialized.
  CompactCommitment compact() const;

 private:
  CommitmentVersion version_;
  const lsh::PStableLsh* hasher_;
  const std::vector<bool>* mask_;
  Commitment acc_;                // digest lists only; root filled by finish()
  MerkleAccumulator state_acc_;   // over the state hashes
  MerkleAccumulator lsh_acc_;     // v2: over the domain-separated LSH leaves
  // Resident digest bytes charged to the merkle tag while the builder lives.
  obs::MemScope mem_{obs::MemTag::kMerkle};
};

// Manager-side check: both state hashes (and, for v2, the LSH digest) are
// bound to the committed roots at the right positions.
bool verify_transition_proof(const CompactCommitment& compact,
                             const TransitionProof& proof);

// Leaf hashing for the LSH tree (domain-separated digest of the serialized
// LSH digest), shared by prover and verifier.
Digest lsh_leaf_digest(const lsh::LshDigest& digest);

}  // namespace rpol::core
