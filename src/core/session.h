// Message-passing protocol session: one worker epoch executed purely over
// canonical wire messages (core/wire.h) through a byte-counting channel.
//
// MiningPool orchestrates many workers with in-process structures and
// models traffic analytically; ProtocolSession is the ground-truth
// realization of ONE manager<->worker exchange where every protocol
// artifact crosses the channel as encoded bytes and is decoded (and
// validated) on the other side:
//
//   M -> W : TaskAnnouncement            (epoch, nonce, hp, state hash, LSH)
//   M -> W : global TrainState           (the model to train from)
//   W -> M : CommitmentMessage           (after local training)
//   M -> W : ProofRequest                (post-commitment samples)
//   W -> M : ProofResponse               (requested checkpoint states)
//   M      : re-execution & decision
//
// Tests use it to assert that the analytic cost model's message structure
// matches what the protocol actually sends, and that a malicious worker
// cannot gain anything by sending malformed bytes (decode rejects them).
//
// Robustness: every exchange runs through a bounded timeout/retry/backoff
// state machine (SessionConfig::retry). An optional fault::FaultPlan drops,
// corrupts, truncates, duplicates, or delays messages deterministically, and
// scripts byzantine worker behaviors; the session must then either succeed
// (honest worker, transport faults within budget) or fail with a typed
// SessionStatus — never crash, never accept a byzantine peer.
// tests/fault_conformance_test.cpp sweeps this contract.

#pragma once

#include <array>

#include "core/pool.h"
#include "core/wire.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace rpol::core {

// The protocol's message taxonomy: everything that crosses the channel is
// one of these. The same names form the `bytes.<type>` counter namespace in
// the metrics registry (docs/observability.md), so traffic accounting in
// traces, sessions, and the analytic cost model line up by construction.
enum class MessageType : int {
  kAnnouncement = 0,  // TaskAnnouncement (manager -> worker)
  kGlobalState,       // global TrainState download
  kCommitment,        // checkpoint commitment upload
  kUpdate,            // final model update upload
  kProofRequest,      // sampled transition indices
  kProofResponse,     // requested checkpoint states (incl. double-checks)
};
inline constexpr int kNumMessageTypes = 6;

const char* message_type_name(MessageType type);

// Byte-counting in-process transport with per-message-type accounting.
class CountingChannel {
 public:
  // Delivers a message and returns it to the receiving side; counts bytes
  // under both the direction total and the message type (and mirrors the
  // type counts into the metrics registry when tracing is enabled).
  Bytes send_to_worker(MessageType type, Bytes message);
  Bytes send_to_manager(MessageType type, Bytes message);

  std::uint64_t bytes_to_worker() const { return to_worker_; }
  std::uint64_t bytes_to_manager() const { return to_manager_; }
  std::uint64_t total_bytes() const { return to_worker_ + to_manager_; }

  std::uint64_t bytes_for(MessageType type) const {
    return by_type_[static_cast<std::size_t>(type)];
  }
  const std::array<std::uint64_t, kNumMessageTypes>& bytes_by_type() const {
    return by_type_;
  }

 private:
  std::uint64_t to_worker_ = 0;
  std::uint64_t to_manager_ = 0;
  std::array<std::uint64_t, kNumMessageTypes> by_type_{};
};

struct SessionConfig {
  Scheme scheme = Scheme::kRPoLv2;
  std::int64_t samples_q = 3;
  double beta = 1e-3;
  std::uint64_t sampling_seed = 77;
  std::optional<lsh::LshConfig> lsh;  // required for kRPoLv2
  // Fault environment: nullptr means perfect lossless transport and an
  // honest-transport worker — the exact pre-fault-layer behavior, with no
  // RNG constructed (fault injection is zero-cost when not installed).
  const fault::FaultPlan* fault_plan = nullptr;
  // Timeout/retry/backoff budget the session grants each message exchange.
  fault::RetryPolicy retry;
  // Chunked TrainState transfer (bounded-memory sessions): when > 0, the
  // global-state download and the update upload travel as kTagStateChunk
  // frames carrying at most this many payload bytes each. Every chunk is
  // its own retried exchange under the SAME MessageType (so per-type fault
  // profiles and byte accounting apply per chunk) with its own integrity
  // digest, and neither endpoint ever materializes the full encoding —
  // the sender slices on demand, the receiver decodes incrementally.
  // 0 keeps the legacy single-frame path. ProofResponse stays unchunked:
  // proof states are already fetched one sampled transition at a time.
  std::size_t chunk_bytes = 0;
  // Receiver-side cap on the announced total of a chunked state stream; a
  // stream claiming more is rejected before any buffering (the chunked
  // counterpart of RetryPolicy::max_message_bytes).
  std::uint64_t max_state_bytes = 256ULL * 1024 * 1024;
  // Causal parent the session's root span adopts (e.g. a pool epoch span),
  // so many sessions stitch into one epoch tree. Default: the session roots
  // its own trace. Observability only — never read by protocol logic.
  obs::TraceContext trace_parent{};
};

// SessionStatus — the typed outcome taxonomy sessions share with the pool
// admission layer — lives in core/pool.h (this header includes it).

struct SessionOutcome {
  bool accepted = false;
  SessionStatus status = SessionStatus::kVerdictRejected;
  std::vector<float> final_model;      // the worker's submitted update
  std::uint64_t bytes_to_worker = 0;   // announcement + global state + request
  std::uint64_t bytes_to_manager = 0;  // commitment + update + proofs
  // Per-message-type breakdown, indexed by MessageType; sums to
  // bytes_to_worker + bytes_to_manager (retransmissions and duplicates
  // included, counted under their type).
  std::array<std::uint64_t, kNumMessageTypes> bytes_by_type{};
  std::int64_t double_checks = 0;
  // Retry/backoff accounting (all zero on a lossless run).
  std::array<std::uint64_t, kNumMessageTypes> retries_by_type{};
  std::int64_t total_retries = 0;
  std::int64_t backoff_ticks = 0;      // simulated waiting, never wall clock
  fault::FaultStats faults;            // what the injector actually did
};

// Runs the complete epoch exchange. The worker side is driven by `policy`
// on `worker_device`; the manager re-executes on `manager_device`.
SessionOutcome run_protocol_session(
    const nn::ModelFactory& factory, const Hyperparams& hp,
    const SessionConfig& config, const TrainState& global_state,
    std::uint64_t nonce, const data::DatasetView& worker_data,
    WorkerPolicy& policy, const sim::DeviceProfile& worker_device,
    std::uint64_t worker_run_seed, const sim::DeviceProfile& manager_device,
    std::uint64_t manager_run_seed);

}  // namespace rpol::core
