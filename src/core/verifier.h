// Commitment-based sampling verification (Sec. V-B) with the LSH
// optimization and double-check strategy (Sec. V-C).
//
// Verification of one worker epoch:
//   1. The worker's commitment arrives BEFORE sampling decisions exist
//      (commit-and-prove), so it cannot bias which transitions are checked.
//   2. The manager derives q sample indices from a PRF keyed by its secret
//      seed and the commitment root.
//   3. For each sampled transition j:
//        a. fetch proof_in = C_j; check SHA(C_j) against the commitment;
//        b. re-execute steps [s_j, s_{j+1}) from C_j on the manager's
//           device with the worker's deterministic batch selection;
//        c. RPoLv1: fetch C_{j+1} too (hash-checked) and accept iff
//           ||theta' - theta_{j+1}|| <= beta;
//           RPoLv2: accept iff LSH(theta') matches the committed LSH digest
//           of C_{j+1}; on mismatch run the DOUBLE-CHECK — fetch the raw
//           C_{j+1} (hash-checked) and fall back to the distance test.
//   4. Additionally C_0 must hash-match the state the manager distributed,
//      so a worker cannot train from a foreign starting point.
//
// The verifier also meters proof traffic and re-executed steps, feeding the
// cost accounting of Tables II/III.

#pragma once

#include <functional>
#include <optional>

#include "core/commitment.h"
#include "core/policy.h"
#include "obs/obs.h"

namespace rpol::core {

struct VerifierConfig {
  std::int64_t samples_q = 3;         // Sec. VII-A default
  double beta = 0.1;                  // distance threshold for dissimilarity
  bool use_lsh = false;               // false => RPoLv1, true => RPoLv2
  std::optional<lsh::LshConfig> lsh_config;  // required when use_lsh
  std::uint64_t sampling_seed = 42;   // manager secret entropy
};

struct TransitionCheck {
  std::int64_t transition = 0;
  bool hash_ok = false;
  bool lsh_matched = false;      // v2 only
  bool double_checked = false;   // v2 only
  double distance = 0.0;         // filled when a distance test ran
  bool passed = false;
};

// Why a verification rejected (kNone when accepted). The first failing
// condition wins; each rejection also bumps a `verify.reject.<reason>`
// counter so traces can break verdicts down by cause.
enum class VerifyFailure : int {
  kNone = 0,        // accepted
  kMalformed,       // wrong shapes/boundaries/version — rejected unsampled
  kInitialBinding,  // C_0 does not hash-match the distributed state
  kHashMismatch,    // a fetched proof state failed its commitment hash check
  kDistance,        // re-execution distance above beta (v1 or double-check)
  kLshMismatch,     // LSH miss whose double-check also failed
};

const char* verify_failure_name(VerifyFailure failure);

struct VerifyResult {
  bool accepted = false;
  VerifyFailure failure = VerifyFailure::kNone;
  std::vector<TransitionCheck> checks;
  std::uint64_t proof_bytes = 0;        // states fetched from the worker
  std::int64_t reexecuted_steps = 0;    // manager compute
  std::int64_t lsh_mismatches = 0;
  std::int64_t double_checks = 0;
};

// Deterministic post-commitment sampling: q indices in [0, transitions),
// drawn without replacement when q <= transitions (q > transitions clamps).
std::vector<std::int64_t> sample_transitions(std::uint64_t seed,
                                             const Digest& commitment_root,
                                             std::int64_t transitions,
                                             std::int64_t q);

// Digest binding a compact commitment for post-commitment sampling.
Digest compact_commitment_binding(const CompactCommitment& compact);

class Verifier {
 public:
  // `factory`/`hp` must match the task distributed to workers; `device` is
  // the manager's verification hardware.
  Verifier(const nn::ModelFactory& factory, const Hyperparams& hp,
           VerifierConfig config);

  const VerifierConfig& config() const { return config_; }
  void set_beta(double beta) { config_.beta = beta; }
  void set_lsh_config(const lsh::LshConfig& cfg) { config_.lsh_config = cfg; }

  // Verifies one worker epoch. `trace` plays the role of the worker-side
  // proof store the manager requests samples from; only the fetched
  // checkpoints count toward proof_bytes. `expected_initial_hash` is the
  // hash of the state the manager handed out at epoch start.
  // `trace_parent` (observability only) parents the verifier's re-execution
  // spans under the caller's verify span so they join the epoch's causal
  // tree; the default roots them standalone (legacy behavior, still
  // orphan-free).
  VerifyResult verify(const Commitment& commitment, const EpochTrace& trace,
                      const EpochContext& context,
                      const Digest& expected_initial_hash,
                      sim::DeviceExecution& device,
                      const obs::TraceContext& trace_parent = {});

  // Streaming variant: checkpoints are fetched one at a time through
  // `source` (e.g. a spill-backed core::CheckpointStore), so the manager
  // never holds the full chain — only the sampled states it is actively
  // re-executing. `step_of` plays EpochTrace::step_of. Decisions are
  // bitwise identical to the in-memory overload over the same sequence
  // (the trace overload delegates here; §6).
  VerifyResult verify(const Commitment& commitment,
                      const CheckpointSource& source,
                      const std::vector<std::int64_t>& step_of,
                      const EpochContext& context,
                      const Digest& expected_initial_hash,
                      sim::DeviceExecution& device,
                      const obs::TraceContext& trace_parent = {});

  // Compact-commitment variant (Sec. V-B's Merkle construction): the worker
  // uploaded only the O(1) CompactCommitment; sampled transitions arrive
  // with logarithmic membership proofs generated on demand from the
  // worker-side full commitment (`full` plays that role here, as `trace`
  // plays the proof store). `initial_membership` proves that leaf 0 of the
  // committed tree is the state the manager distributed.
  VerifyResult verify_compact(const CompactCommitment& compact,
                              const Commitment& full, const EpochTrace& trace,
                              const EpochContext& context,
                              const Digest& expected_initial_hash,
                              sim::DeviceExecution& device,
                              const obs::TraceContext& trace_parent = {});

  // Streaming variant of the compact path (same delegation contract as the
  // streaming verify overload above).
  VerifyResult verify_compact(const CompactCommitment& compact,
                              const Commitment& full,
                              const CheckpointSource& source,
                              const std::vector<std::int64_t>& step_of,
                              const EpochContext& context,
                              const Digest& expected_initial_hash,
                              sim::DeviceExecution& device,
                              const obs::TraceContext& trace_parent = {});

 private:
  Hyperparams hp_;
  VerifierConfig config_;
  StepExecutor executor_;
  std::optional<lsh::PStableLsh> hasher_;  // rebuilt when lsh_config changes
  std::uint64_t hasher_seed_ = 0;

  const lsh::PStableLsh& hasher();
};

}  // namespace rpol::core
