#include "core/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.h"

namespace rpol::core {

std::vector<float> extract_trainable(const std::vector<float>& model_state,
                                     const std::vector<bool>& mask) {
  if (model_state.size() != mask.size()) {
    throw std::invalid_argument("trainable mask size mismatch");
  }
  std::vector<float> out;
  out.reserve(model_state.size());
  for (std::size_t i = 0; i < model_state.size(); ++i) {
    if (mask[i]) out.push_back(model_state[i]);
  }
  return out;
}

double trainable_distance(const std::vector<float>& a,
                          const std::vector<float>& b,
                          const std::vector<bool>& mask) {
  if (a.size() != b.size() || a.size() != mask.size()) {
    throw std::invalid_argument("trainable_distance size mismatch");
  }
  // Verifier hot path (checkpoint distance): blocked parallel reduction.
  // Block boundaries are FIXED (independent of thread count); each block's
  // partial sum is accumulated serially and the partials are combined in
  // block order, so the result is bit-identical for any RPOL_THREADS.
  constexpr std::int64_t kBlock = 4096;
  const std::int64_t total = static_cast<std::int64_t>(a.size());
  const std::int64_t blocks = (total + kBlock - 1) / kBlock;
  if (blocks <= 0) return 0.0;
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  runtime::parallel_for(0, blocks, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t blk = b0; blk < b1; ++blk) {
      const std::int64_t lo = blk * kBlock;
      const std::int64_t hi = std::min(total, lo + kBlock);
      double acc = 0.0;
      for (std::int64_t i = lo; i < hi; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i);
        if (!mask[idx]) continue;
        const double d = static_cast<double>(a[idx]) - b[idx];
        acc += d * d;
      }
      partial[static_cast<std::size_t>(blk)] = acc;
    }
  });
  double acc = 0.0;
  for (const double p : partial) acc += p;
  return std::sqrt(acc);
}

namespace {
std::unique_ptr<nn::Optimizer> build_optimizer(nn::Model& model,
                                               const Hyperparams& hp) {
  switch (hp.optimizer) {
    case nn::OptimizerKind::kSgdMomentum:
      return std::make_unique<nn::SgdMomentum>(model.params(), hp.learning_rate,
                                               hp.momentum);
    default:
      return nn::make_optimizer(hp.optimizer, model.params(), hp.learning_rate);
  }
}
}  // namespace

StepExecutor::StepExecutor(const nn::ModelFactory& factory, const Hyperparams& hp)
    : hp_(hp), model_(factory()) {
  optimizer_ = build_optimizer(model_, hp_);
}

TrainState StepExecutor::save_state() {
  return {model_.state_vector(), optimizer_->state_vector()};
}

void StepExecutor::load_state(const TrainState& state) {
  model_.load_state_vector(state.model);
  optimizer_->load_state_vector(state.optimizer);
}

float StepExecutor::run_steps(std::int64_t first_step, std::int64_t count,
                              const data::DatasetView& dataset,
                              const DeterministicSelector& selector,
                              sim::DeviceExecution* device) {
  if (count <= 0) throw std::invalid_argument("step count must be positive");
  double loss_acc = 0.0;
  nn::SoftmaxCrossEntropy loss;
  std::vector<std::int64_t> labels;
  for (std::int64_t m = first_step; m < first_step + count; ++m) {
    const auto indices =
        selector.batch_indices(m, hp_.batch_size, dataset.size());
    Tensor batch = dataset.make_batch(indices, labels);
    if (hp_.augment_hflip && batch.rank() == 4) {
      // Deterministic horizontal flips, one PRF coin per batch element.
      const std::int64_t h = batch.dim(2), w = batch.dim(3);
      for (std::int64_t n = 0; n < batch.dim(0); ++n) {
        if (!selector.augment_flip(m, n)) continue;
        for (std::int64_t c = 0; c < batch.dim(1); ++c) {
          for (std::int64_t y = 0; y < h; ++y) {
            for (std::int64_t x = 0; x < w / 2; ++x) {
              std::swap(batch.at4(n, c, y, x), batch.at4(n, c, y, w - 1 - x));
            }
          }
        }
      }
    }
    model_.zero_grads();
    const Tensor logits = model_.forward(batch, /*training=*/true);
    loss_acc += loss.forward(logits, labels);
    model_.backward(loss.backward());
    if (device != nullptr) device->perturb_gradients(model_.params());
    optimizer_->apply_weight_decay(hp_.weight_decay);
    optimizer_->set_learning_rate(hp_.lr_at_step(m));
    optimizer_->step();
  }
  return static_cast<float>(loss_acc / static_cast<double>(count));
}

double StepExecutor::evaluate(const data::DatasetView& dataset,
                              std::int64_t batch_size) {
  std::int64_t correct_weighted = 0;
  std::int64_t total = 0;
  std::vector<std::int64_t> labels;
  for (std::int64_t start = 0; start < dataset.size(); start += batch_size) {
    const std::int64_t take = std::min(batch_size, dataset.size() - start);
    std::vector<std::int64_t> indices(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) indices[static_cast<std::size_t>(i)] = start + i;
    const Tensor batch = dataset.make_batch(indices, labels);
    const Tensor logits = model_.forward(batch, /*training=*/false);
    correct_weighted += static_cast<std::int64_t>(
        nn::accuracy(logits, labels) * static_cast<double>(take) + 0.5);
    total += take;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct_weighted) /
                          static_cast<double>(total);
}

}  // namespace rpol::core
