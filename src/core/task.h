// Training-task configuration shared by workers and the manager.

#pragma once

#include <cstdint>

#include "nn/models.h"
#include "nn/optim.h"

namespace rpol::core {

// Hyper-parameters zeta of Sec. V-B. Defaults mirror the paper's setup:
// SGDM, lr 0.1, momentum 0.9, batch 128, checkpoint interval 5.
//
// Every field is part of the manager-distributed task description, so both
// sides compute identical training steps — including the learning-rate
// schedule and weight decay, which are deterministic functions of the
// global step index.
struct Hyperparams {
  nn::OptimizerKind optimizer = nn::OptimizerKind::kSgdMomentum;
  float learning_rate = 0.1F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;  // L2 coefficient added to gradients
  // Deterministic horizontal-flip augmentation for NCHW image batches;
  // flip coins come from the epoch nonce's PRF so verification re-executes
  // the identical augmented batches.
  bool augment_hflip = false;
  std::int64_t batch_size = 128;
  std::int64_t steps_per_epoch = 16;
  std::int64_t checkpoint_interval = 5;  // the paper's `i`

  // Step-decay schedule: lr *= lr_decay_factor every lr_decay_every_steps
  // global steps. 0 disables the schedule.
  float lr_decay_factor = 1.0F;
  std::int64_t lr_decay_every_steps = 0;

  // Effective learning rate at a global step index.
  float lr_at_step(std::int64_t step) const {
    if (lr_decay_every_steps <= 0 || lr_decay_factor == 1.0F) {
      return learning_rate;
    }
    float lr = learning_rate;
    for (std::int64_t s = lr_decay_every_steps; s <= step;
         s += lr_decay_every_steps) {
      lr *= lr_decay_factor;
    }
    return lr;
  }

  // Number of checkpoint transitions an epoch produces (ceil division:
  // a final partial interval still ends in a checkpoint).
  std::int64_t num_transitions() const {
    return (steps_per_epoch + checkpoint_interval - 1) / checkpoint_interval;
  }

  // Canonical checkpoint step boundaries: 0, i, 2i, ..., steps_per_epoch.
  // Both sides derive these from the agreed hyper-parameters — the verifier
  // must never trust boundaries supplied by the prover.
  std::vector<std::int64_t> checkpoint_boundaries() const {
    std::vector<std::int64_t> steps{0};
    for (std::int64_t s = checkpoint_interval; s < steps_per_epoch;
         s += checkpoint_interval) {
      steps.push_back(s);
    }
    steps.push_back(steps_per_epoch);
    return steps;
  }
};

}  // namespace rpol::core
