#include "core/calibrate.h"

#include <stdexcept>

#include "sim/stats.h"

namespace rpol::core {

std::vector<double> measure_reproduction_errors(
    const nn::ModelFactory& factory, const Hyperparams& hp,
    const EpochContext& context, const sim::DeviceProfile& device_a,
    std::uint64_t run_seed_a, const sim::DeviceProfile& device_b,
    std::uint64_t run_seed_b) {
  // Reference trace on device A.
  StepExecutor trainer(factory, hp);
  sim::DeviceExecution exec_a(device_a, run_seed_a);
  HonestPolicy honest;
  const EpochTrace trace = honest.produce_trace(trainer, context, exec_a);

  // Re-execute every transition from A's checkpoints on device B.
  StepExecutor replayer(factory, hp);
  sim::DeviceExecution exec_b(device_b, run_seed_b);
  const DeterministicSelector selector(context.nonce);
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(trace.num_transitions()));
  const std::vector<bool>& mask = replayer.trainable_mask();
  for (std::int64_t j = 0; j < trace.num_transitions(); ++j) {
    const std::int64_t first = trace.step_of[static_cast<std::size_t>(j)];
    const std::int64_t count = trace.step_of[static_cast<std::size_t>(j + 1)] - first;
    replayer.load_state(trace.checkpoints[static_cast<std::size_t>(j)]);
    replayer.run_steps(first, count, *context.dataset, selector, &exec_b);
    errors.push_back(trainable_distance(
        replayer.save_state().model,
        trace.checkpoints[static_cast<std::size_t>(j + 1)].model, mask));
  }
  return errors;
}

CalibrationResult derive_thresholds(std::vector<double> errors,
                                    const CalibrationConfig& config) {
  CalibrationResult result;
  result.errors = std::move(errors);
  if (result.errors.empty()) throw std::logic_error("calibration yielded no errors");

  result.max_error = sim::max_value(result.errors);
  const double base = config.alpha_mode == AlphaMode::kMaxPlusSd
                          ? result.max_error
                          : sim::mean(result.errors);
  result.alpha = base + sim::stddev(result.errors);
  // Degenerate guard: a zero-noise configuration still needs a positive
  // threshold scale for LSH optimization to be well-posed.
  if (result.alpha <= 0.0) result.alpha = 1e-9;
  result.beta = config.beta_x * result.alpha + config.beta_y;
  result.lsh = lsh::optimize_lsh(result.alpha, result.beta, config.k_lsh);
  return result;
}

CalibrationResult calibrate_epoch(const nn::ModelFactory& factory,
                                  const Hyperparams& hp,
                                  const EpochContext& manager_context,
                                  const sim::DeviceProfile& top_device,
                                  const sim::DeviceProfile& second_device,
                                  std::uint64_t epoch_seed,
                                  const CalibrationConfig& config) {
  return derive_thresholds(
      measure_reproduction_errors(factory, hp, manager_context, top_device,
                                  derive_seed(epoch_seed, 0xCA11A),
                                  second_device,
                                  derive_seed(epoch_seed, 0xCA11B)),
      config);
}

}  // namespace rpol::core
