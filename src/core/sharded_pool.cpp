#include "core/sharded_pool.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace rpol::core {

int resolve_shards(int configured, std::size_t workers) {
  int s = configured;
  if (s <= 0) {
    s = 1;
    if (const char* env = std::getenv("RPOL_SHARDS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) s = parsed;
    }
  }
  const int max_shards =
      static_cast<int>(std::max<std::size_t>(workers, 1));
  return std::clamp(s, 1, max_shards);
}

ShardedPool::ShardedPool(ShardedPoolConfig config, nn::ModelFactory factory,
                         const data::Dataset& train, data::DatasetView test,
                         std::vector<WorkerSpec> workers)
    : cfg_(std::move(config)),
      pool_(cfg_.base, std::move(factory), train, std::move(test),
            std::move(workers)) {
  if (cfg_.base.decentralized_verification) {
    throw std::invalid_argument(
        "sharded pools cannot use decentralized verification");
  }
  const int shards = resolve_shards(cfg_.shards, pool_.num_workers());
  verifiers_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) verifiers_.push_back(pool_.make_verifier());
  tallies_.resize(static_cast<std::size_t>(shards));
}

ShardRange ShardedPool::shard_range(int shard) const {
  const std::size_t n = pool_.num_workers();
  const std::size_t s = static_cast<std::size_t>(shards());
  const std::size_t i = static_cast<std::size_t>(shard);
  const std::size_t base = n / s;
  const std::size_t rem = n % s;
  ShardRange r;
  r.begin = i * base + std::min(i, rem);
  r.end = r.begin + base + (i < rem ? 1 : 0);
  return r;
}

void ShardedPool::train_shard(EpochWorkspace& ws, int shard) {
  const ShardRange r = shard_range(shard);
  for (std::size_t w = r.begin; w < r.end; ++w) {
    pool_.train_commit_worker(ws, w);
  }
}

void ShardedPool::admit_and_verify_shard(EpochWorkspace& ws, int shard) {
  ShardTally& tally = tallies_[static_cast<std::size_t>(shard)];
  tally = ShardTally{};
  if (!ws.needs_rpol) return;  // kBaseline: no verification, no queue
  const ShardRange r = shard_range(shard);
  Verifier& verifier = *verifiers_[static_cast<std::size_t>(shard)];

  // Arrival burst: every surviving submission of the shard, in worker
  // order (the lockstep protocol delivers them all at the end of the
  // training phase). Worker order in, worker order out — so under
  // kRequeue the verification ORDER is independent of queue_capacity and
  // the verdict stream matches the unbounded run bitwise.
  const std::size_t cap = cfg_.queue_capacity == 0
                              ? std::numeric_limits<std::size_t>::max()
                              : cfg_.queue_capacity;
  std::deque<std::size_t> queue;
  std::deque<std::size_t> backlog;
  for (std::size_t w = r.begin; w < r.end; ++w) {
    EpochWorkspace::WorkerSlot& slot = ws.slots[w];
    if (!slot.participated) continue;  // lost sessions never reach the queue
    if (queue.size() < cap) {
      queue.push_back(w);
      ++tally.enqueued;
      tally.max_depth = std::max(tally.max_depth,
                                 static_cast<std::int64_t>(queue.size()));
    } else if (cfg_.overflow == AdmissionPolicy::kRequeue) {
      slot.status = SessionStatus::kRequeued;
      backlog.push_back(w);
      ++tally.requeued;
    } else {
      // Load shedding: delivered but never judged. finish_epoch excludes
      // the submission from aggregation AND from health strikes.
      slot.status = SessionStatus::kAdmissionRejected;
      slot.accepted = false;
      ++tally.rejected;
    }
  }

  // Drain in waves of verify_batch, readmitting from the backlog as
  // capacity frees (kRequeue keeps submissions alive; kReject already shed
  // its overflow at arrival, so its backlog is empty).
  const std::size_t wave = cfg_.verify_batch == 0
                               ? std::numeric_limits<std::size_t>::max()
                               : cfg_.verify_batch;
  while (!queue.empty()) {
    std::size_t in_wave = 0;
    while (!queue.empty() && in_wave < wave) {
      const std::size_t w = queue.front();
      queue.pop_front();
      pool_.verify_worker(ws, w, verifier);
      ++in_wave;
      while (!backlog.empty() && queue.size() < cap) {
        queue.push_back(backlog.front());
        backlog.pop_front();
        ++tally.enqueued;  // a requeued submission enqueues twice by design
        tally.max_depth = std::max(tally.max_depth,
                                   static_cast<std::int64_t>(queue.size()));
      }
    }
  }
}

void ShardedPool::configure_verifiers(EpochWorkspace& ws) {
  for (auto& v : verifiers_) pool_.configure_epoch_verifier(ws, *v);
}

void ShardedPool::merge_tallies(EpochWorkspace& ws) {
  for (const ShardTally& t : tallies_) {
    ws.admission_enqueued += t.enqueued;
    ws.admission_requeued += t.requeued;
    ws.admission_rejected += t.rejected;
    ws.max_queue_depth = std::max(ws.max_queue_depth, t.max_depth);
  }
}

void ShardedPool::publish_admission_metrics(const EpochWorkspace& ws) const {
  // Decision-blind telemetry (§6): counters mirror what the report already
  // states; nothing downstream reads them back.
  if (ws.admission_enqueued > 0) {
    obs::count("pool.admission.enqueued",
               static_cast<std::uint64_t>(ws.admission_enqueued));
  }
  if (ws.admission_requeued > 0) {
    obs::count("pool.admission.requeued",
               static_cast<std::uint64_t>(ws.admission_requeued));
  }
  if (ws.admission_rejected > 0) {
    obs::count("pool.admission.rejected",
               static_cast<std::uint64_t>(ws.admission_rejected));
  }
  if (obs::telemetry_enabled()) {
    obs::gauge("pool.admission.max_queue_depth")
        .set(static_cast<double>(ws.max_queue_depth));
  }
}

EpochReport ShardedPool::run_epoch(std::int64_t epoch) {
  const int s = shards();
  std::unique_ptr<EpochWorkspace> ws = pool_.prepare_epoch(epoch);

  // Steps 1-2, sharded: slots of distinct workers are disjoint (pool.h),
  // so shard threads never contend.
  runtime::parallel_for(0, s, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      train_shard(*ws, static_cast<int>(i));
    }
  });

  // Step 3, sharded: per-shard verifier + bounded admission queue.
  configure_verifiers(*ws);
  runtime::parallel_for(0, s, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      admit_and_verify_shard(*ws, static_cast<int>(i));
    }
  });

  merge_tallies(*ws);
  publish_admission_metrics(*ws);
  return pool_.finish_epoch(*ws);
}

PoolRunReport ShardedPool::run() {
  PoolRunReport report;
  const std::int64_t epochs = pool_.config().epochs;
  if (!cfg_.pipeline) {
    for (std::int64_t t = 0; t < epochs; ++t) {
      report.epochs.push_back(run_epoch(t));
      report.total_bytes += report.epochs.back().bytes_this_epoch;
      report.total_session_failures += report.epochs.back().session_failures;
      report.total_retransmissions += report.epochs.back().retransmissions;
    }
    report.final_accuracy =
        report.epochs.empty() ? 0.0 : report.epochs.back().test_accuracy;
    return report;
  }

  // Pipelined schedule: while epoch t trains, epoch t-1 verifies. The
  // phases touch disjoint workspaces (cur vs prev) and all shared-state
  // mutation (prepare, finish) stays sequential between parallel regions,
  // so two same-seed runs are bitwise identical at any thread count.
  const int s = shards();
  std::unique_ptr<EpochWorkspace> prev;
  auto finish_prev = [&](std::unique_ptr<EpochWorkspace> done) {
    merge_tallies(*done);
    publish_admission_metrics(*done);
    report.epochs.push_back(pool_.finish_epoch(*done));
    report.total_bytes += report.epochs.back().bytes_this_epoch;
    report.total_session_failures += report.epochs.back().session_failures;
    report.total_retransmissions += report.epochs.back().retransmissions;
  };
  for (std::int64_t t = 0; t < epochs; ++t) {
    // Snapshots the PRE-aggregation global model when prev is still in
    // flight: the pipeline's deterministic one-epoch staleness.
    std::unique_ptr<EpochWorkspace> cur = pool_.prepare_epoch(t);
    if (prev) configure_verifiers(*prev);
    const std::int64_t lanes = prev ? 2 * s : s;
    runtime::parallel_for(0, lanes, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        if (i < s) {
          train_shard(*cur, static_cast<int>(i));
        } else {
          admit_and_verify_shard(*prev, static_cast<int>(i - s));
        }
      }
    });
    if (prev) finish_prev(std::move(prev));
    prev = std::move(cur);
  }
  if (prev) {
    configure_verifiers(*prev);
    runtime::parallel_for(0, s, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        admit_and_verify_shard(*prev, static_cast<int>(i));
      }
    });
    finish_prev(std::move(prev));
  }
  report.final_accuracy =
      report.epochs.empty() ? 0.0 : report.epochs.back().test_accuracy;
  return report;
}

}  // namespace rpol::core
