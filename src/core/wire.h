// Canonical wire encoding of RPoL protocol messages.
//
// The pool protocol exchanges four message kinds per epoch (Fig. 2):
//   manager -> worker : TaskAnnouncement (epoch, nonce, hyper-parameters,
//                       global-state hash, LSH configuration for RPoLv2)
//   worker  -> manager: CommitmentMessage (the checkpoint commitment)
//   manager -> worker : ProofRequest (sampled transition indices)
//   worker  -> manager: ProofResponse (the requested TrainStates)
//
// Encodings are canonical (little-endian, fixed field order, length-
// prefixed lists) so both sides hash identical bytes; every decode
// validates lengths and rejects malformed input. The byte sizes of these
// encodings are what the traffic accounting measures.

#pragma once

#include <optional>

#include "core/commitment.h"

namespace rpol::core {

// Leading tag byte of each framed message kind. Exposed so structure-aware
// fuzzers (tests/core_wire_fuzz_test.cpp) can build seeds and lie about
// framing without re-deriving magic numbers.
inline constexpr std::uint8_t kTagTask = 0x01;
inline constexpr std::uint8_t kTagCommitment = 0x02;
inline constexpr std::uint8_t kTagProofRequest = 0x03;
inline constexpr std::uint8_t kTagProofResponse = 0x04;
inline constexpr std::uint8_t kTagStateChunk = 0x05;

// Optional trace-context envelope (observability propagation, PR 4): a
// 17-byte prefix [tag][trace_id u64 le][span_id u64 le] wrapped AROUND a
// canonical message so causal links can cross the wire without ever
// entering the message bytes that decoders parse and hashes commit to.
// The tag is deliberately outside the message-tag range so an enveloped
// frame can never be confused with (or decode as) a bare message, and a
// legacy receiver that strips nothing simply rejects the unknown tag —
// the envelope is ignorable metadata, not protocol surface.
inline constexpr std::uint8_t kTagTraceEnvelope = 0x7C;
inline constexpr std::size_t kTraceEnvelopeBytes = 17;

struct TaskAnnouncement {
  std::int64_t epoch = 0;
  std::uint64_t nonce = 0;
  Hyperparams hp;
  Digest initial_state_hash{};
  std::optional<lsh::LshConfig> lsh;  // present for RPoLv2 epochs

  bool operator==(const TaskAnnouncement& other) const;
};

struct ProofRequest {
  std::vector<std::int64_t> transitions;  // sampled indices, ascending

  bool operator==(const ProofRequest& other) const {
    return transitions == other.transitions;
  }
};

struct ProofResponse {
  // For each requested transition: the input state, and (RPoLv1 or
  // double-check) optionally the output state.
  std::vector<TrainState> input_states;
  std::vector<TrainState> output_states;  // may be empty (RPoLv2 fast path)
};

Bytes encode_task_announcement(const TaskAnnouncement& msg);
TaskAnnouncement decode_task_announcement(const Bytes& in);

Bytes encode_commitment(const Commitment& commitment);
Commitment decode_commitment(const Bytes& in);

Bytes encode_proof_request(const ProofRequest& msg);
ProofRequest decode_proof_request(const Bytes& in);

Bytes encode_proof_response(const ProofResponse& msg);
ProofResponse decode_proof_response(const Bytes& in);

Bytes encode_train_state(const TrainState& state);
TrainState decode_train_state(const Bytes& in, std::size_t& offset);

// ---------------------------------------------------------------------------
// Chunked TrainState transfer (bounded-memory sessions, ROADMAP item 5).
//
// A full model state can dwarf every other message in the protocol; sending
// it as one frame forces both endpoints to materialize the whole encoding.
// StateChunk splits the CANONICAL encoding — the exact bytes of
// encode_train_state, so hashes and golden digests are untouched — into
// windows of a negotiated size:
//
//   [kTagStateChunk][total u64][offset u64][payload_len u64]
//   [payload bytes][sha256(payload) 32B]
//
// `total` is the full encoding's byte count (identical in every chunk of a
// transfer); `offset` is the window position. The trailing digest makes
// each chunk independently integrity-checked: a transport bit-flip is
// caught at decode (throw -> NACK) and heals via the per-chunk retry
// budget, instead of poisoning a multi-megabyte transfer.
struct StateChunk {
  std::uint64_t total_bytes = 0;
  std::uint64_t offset = 0;
  Bytes payload;
  Digest payload_hash{};

  bool operator==(const StateChunk& other) const {
    return total_bytes == other.total_bytes && offset == other.offset &&
           payload == other.payload && payload_hash == other.payload_hash;
  }
};

Bytes encode_state_chunk(const StateChunk& chunk);
// Validates framing (tag, lengths, offset+len <= total, len >= 1) and the
// payload digest; throws std::invalid_argument / std::out_of_range on any
// violation. decode(encode(x)) == x and the encoding is canonical.
StateChunk decode_state_chunk(const Bytes& in);

// Produces the chunks of one state's canonical encoding ON DEMAND: chunk(i)
// materializes only that window (plus its digest), so the sender's resident
// wire footprint is one chunk, never the full encoding.
class ChunkedStateEncoder {
 public:
  // `state` must outlive the encoder. chunk_payload_bytes >= 1 or throws.
  ChunkedStateEncoder(const TrainState& state, std::size_t chunk_payload_bytes);

  std::uint64_t total_bytes() const { return total_; }
  std::int64_t num_chunks() const;
  // Chunk `index` in [0, num_chunks()); throws std::out_of_range outside.
  StateChunk chunk(std::int64_t index) const;

 private:
  void copy_window(std::uint64_t pos, std::size_t n, std::uint8_t* out) const;

  const TrainState* state_;
  std::size_t chunk_bytes_;
  std::uint64_t total_ = 0;
};

// Receiver side: consumes chunks strictly in offset order, decoding the
// float stream incrementally (phase machine with an <= 8-byte carry) so the
// full encoding is never buffered. accept() leaves the assembler UNCHANGED
// when it throws, so a NACKed chunk can simply be retried. Rejected input:
// out-of-order/duplicate/overlapping offsets, total_bytes disagreement
// between chunks, totals above `max_total_bytes` (resource cap), and
// streams whose float counts contradict the announced total.
class ChunkedStateAssembler {
 public:
  explicit ChunkedStateAssembler(std::uint64_t max_total_bytes);

  void accept(const StateChunk& chunk);
  bool complete() const;
  std::uint64_t bytes_received() const { return received_; }
  // Read-only view of the assembled state, for end-of-stream validation
  // (hash checks) before committing to take(); throws std::logic_error
  // before complete().
  const TrainState& peek() const;
  // Moves out the assembled state; throws std::logic_error before
  // complete() or after a previous take().
  TrainState take();

 private:
  enum class Phase { kModelCount, kModelData, kOptCount, kOptData, kDone };

  void feed(const std::uint8_t* data, std::size_t n);
  void feed_byte(std::uint8_t b);

  std::uint64_t max_total_;
  std::uint64_t total_ = 0;       // 0 until the first chunk announces it
  std::uint64_t received_ = 0;
  bool taken_ = false;
  Phase phase_ = Phase::kModelCount;
  std::uint64_t scalar_ = 0;      // u64 count / f32 bits under assembly
  int scalar_fill_ = 0;           // bytes of `scalar_` filled so far
  std::uint64_t floats_left_ = 0; // remaining floats of the current vector
  TrainState state_;
};

// Prefixes `payload` with a canonical trace envelope. The payload bytes are
// copied verbatim — wrap(strip(x)) == x for any enveloped frame.
Bytes wrap_trace_envelope(std::uint64_t trace_id, std::uint64_t span_id,
                          const Bytes& payload);

// Removes a leading trace envelope if present, returning the inner message
// and (optionally) the carried ids. Frames that do not start with
// kTagTraceEnvelope pass through unchanged with ids reported as 0 — this is
// what makes the envelope ignorable by construction: receivers always strip
// before decoding, and un-enveloped legacy traffic is a no-op strip. An
// envelope tag with fewer than kTraceEnvelopeBytes bytes behind it throws
// std::invalid_argument like every other truncated frame.
Bytes strip_trace_envelope(const Bytes& in, std::uint64_t* trace_id = nullptr,
                           std::uint64_t* span_id = nullptr);

}  // namespace rpol::core
