// Canonical wire encoding of RPoL protocol messages.
//
// The pool protocol exchanges four message kinds per epoch (Fig. 2):
//   manager -> worker : TaskAnnouncement (epoch, nonce, hyper-parameters,
//                       global-state hash, LSH configuration for RPoLv2)
//   worker  -> manager: CommitmentMessage (the checkpoint commitment)
//   manager -> worker : ProofRequest (sampled transition indices)
//   worker  -> manager: ProofResponse (the requested TrainStates)
//
// Encodings are canonical (little-endian, fixed field order, length-
// prefixed lists) so both sides hash identical bytes; every decode
// validates lengths and rejects malformed input. The byte sizes of these
// encodings are what the traffic accounting measures.

#pragma once

#include <optional>

#include "core/commitment.h"

namespace rpol::core {

// Leading tag byte of each framed message kind. Exposed so structure-aware
// fuzzers (tests/core_wire_fuzz_test.cpp) can build seeds and lie about
// framing without re-deriving magic numbers.
inline constexpr std::uint8_t kTagTask = 0x01;
inline constexpr std::uint8_t kTagCommitment = 0x02;
inline constexpr std::uint8_t kTagProofRequest = 0x03;
inline constexpr std::uint8_t kTagProofResponse = 0x04;

struct TaskAnnouncement {
  std::int64_t epoch = 0;
  std::uint64_t nonce = 0;
  Hyperparams hp;
  Digest initial_state_hash{};
  std::optional<lsh::LshConfig> lsh;  // present for RPoLv2 epochs

  bool operator==(const TaskAnnouncement& other) const;
};

struct ProofRequest {
  std::vector<std::int64_t> transitions;  // sampled indices, ascending

  bool operator==(const ProofRequest& other) const {
    return transitions == other.transitions;
  }
};

struct ProofResponse {
  // For each requested transition: the input state, and (RPoLv1 or
  // double-check) optionally the output state.
  std::vector<TrainState> input_states;
  std::vector<TrainState> output_states;  // may be empty (RPoLv2 fast path)
};

Bytes encode_task_announcement(const TaskAnnouncement& msg);
TaskAnnouncement decode_task_announcement(const Bytes& in);

Bytes encode_commitment(const Commitment& commitment);
Commitment decode_commitment(const Bytes& in);

Bytes encode_proof_request(const ProofRequest& msg);
ProofRequest decode_proof_request(const Bytes& in);

Bytes encode_proof_response(const ProofResponse& msg);
ProofResponse decode_proof_response(const Bytes& in);

Bytes encode_train_state(const TrainState& state);
TrainState decode_train_state(const Bytes& in, std::size_t& offset);

}  // namespace rpol::core
