// Canonical wire encoding of RPoL protocol messages.
//
// The pool protocol exchanges four message kinds per epoch (Fig. 2):
//   manager -> worker : TaskAnnouncement (epoch, nonce, hyper-parameters,
//                       global-state hash, LSH configuration for RPoLv2)
//   worker  -> manager: CommitmentMessage (the checkpoint commitment)
//   manager -> worker : ProofRequest (sampled transition indices)
//   worker  -> manager: ProofResponse (the requested TrainStates)
//
// Encodings are canonical (little-endian, fixed field order, length-
// prefixed lists) so both sides hash identical bytes; every decode
// validates lengths and rejects malformed input. The byte sizes of these
// encodings are what the traffic accounting measures.

#pragma once

#include <optional>

#include "core/commitment.h"

namespace rpol::core {

// Leading tag byte of each framed message kind. Exposed so structure-aware
// fuzzers (tests/core_wire_fuzz_test.cpp) can build seeds and lie about
// framing without re-deriving magic numbers.
inline constexpr std::uint8_t kTagTask = 0x01;
inline constexpr std::uint8_t kTagCommitment = 0x02;
inline constexpr std::uint8_t kTagProofRequest = 0x03;
inline constexpr std::uint8_t kTagProofResponse = 0x04;

// Optional trace-context envelope (observability propagation, PR 4): a
// 17-byte prefix [tag][trace_id u64 le][span_id u64 le] wrapped AROUND a
// canonical message so causal links can cross the wire without ever
// entering the message bytes that decoders parse and hashes commit to.
// The tag is deliberately outside the message-tag range so an enveloped
// frame can never be confused with (or decode as) a bare message, and a
// legacy receiver that strips nothing simply rejects the unknown tag —
// the envelope is ignorable metadata, not protocol surface.
inline constexpr std::uint8_t kTagTraceEnvelope = 0x7C;
inline constexpr std::size_t kTraceEnvelopeBytes = 17;

struct TaskAnnouncement {
  std::int64_t epoch = 0;
  std::uint64_t nonce = 0;
  Hyperparams hp;
  Digest initial_state_hash{};
  std::optional<lsh::LshConfig> lsh;  // present for RPoLv2 epochs

  bool operator==(const TaskAnnouncement& other) const;
};

struct ProofRequest {
  std::vector<std::int64_t> transitions;  // sampled indices, ascending

  bool operator==(const ProofRequest& other) const {
    return transitions == other.transitions;
  }
};

struct ProofResponse {
  // For each requested transition: the input state, and (RPoLv1 or
  // double-check) optionally the output state.
  std::vector<TrainState> input_states;
  std::vector<TrainState> output_states;  // may be empty (RPoLv2 fast path)
};

Bytes encode_task_announcement(const TaskAnnouncement& msg);
TaskAnnouncement decode_task_announcement(const Bytes& in);

Bytes encode_commitment(const Commitment& commitment);
Commitment decode_commitment(const Bytes& in);

Bytes encode_proof_request(const ProofRequest& msg);
ProofRequest decode_proof_request(const Bytes& in);

Bytes encode_proof_response(const ProofResponse& msg);
ProofResponse decode_proof_response(const Bytes& in);

Bytes encode_train_state(const TrainState& state);
TrainState decode_train_state(const Bytes& in, std::size_t& offset);

// Prefixes `payload` with a canonical trace envelope. The payload bytes are
// copied verbatim — wrap(strip(x)) == x for any enveloped frame.
Bytes wrap_trace_envelope(std::uint64_t trace_id, std::uint64_t span_id,
                          const Bytes& payload);

// Removes a leading trace envelope if present, returning the inner message
// and (optionally) the carried ids. Frames that do not start with
// kTagTraceEnvelope pass through unchanged with ids reported as 0 — this is
// what makes the envelope ignorable by construction: receivers always strip
// before decoding, and un-enveloped legacy traffic is a no-op strip. An
// envelope tag with fewer than kTraceEnvelopeBytes bytes behind it throws
// std::invalid_argument like every other truncated frame.
Bytes strip_trace_envelope(const Bytes& in, std::uint64_t* trace_id = nullptr,
                           std::uint64_t* span_id = nullptr);

}  // namespace rpol::core
