#include "core/economics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace rpol::core {

namespace {
void check_ratio(double h, const char* what) {
  if (h < 0.0 || h > 1.0) throw std::invalid_argument(std::string(what) + " must be in [0,1]");
}
}  // namespace

double per_sample_evasion(double honesty_ratio, double pr_lsh_beta) {
  check_ratio(honesty_ratio, "honesty ratio");
  check_ratio(pr_lsh_beta, "Pr_lsh(beta)");
  return honesty_ratio + (1.0 - honesty_ratio) * pr_lsh_beta;
}

double soundness_error(double honesty_ratio, double pr_lsh_beta, std::int64_t q) {
  if (q < 1) throw std::invalid_argument("q must be >= 1");
  return std::pow(per_sample_evasion(honesty_ratio, pr_lsh_beta),
                  static_cast<double>(q));
}

std::int64_t required_samples(double target_pr_err, double honesty_ratio,
                              double pr_lsh_beta) {
  if (target_pr_err <= 0.0 || target_pr_err >= 1.0) {
    throw std::invalid_argument("target soundness error must be in (0,1)");
  }
  const double p = per_sample_evasion(honesty_ratio, pr_lsh_beta);
  if (p >= 1.0) throw std::invalid_argument("fully honest worker cannot be bounded");
  const double q = std::log(target_pr_err) / std::log(p);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q)));
}

double expected_net_gain(double honesty_ratio, std::int64_t q,
                         const EconomicParams& params) {
  if (q < 1) throw std::invalid_argument("q must be >= 1");
  const double evade =
      soundness_error(honesty_ratio, params.pr_lsh_beta, q);
  // Eq. (9): reward on evasion minus training, spoofing, proof transfer and
  // the expected double-check transfer costs.
  const double double_check_rate =
      honesty_ratio * (1.0 - params.pr_lsh_alpha) +
      (1.0 - honesty_ratio) * (1.0 - params.pr_lsh_beta);
  const double costs = honesty_ratio * params.c_train + params.c_spoof +
                       static_cast<double>(q) * params.c_transfer +
                       static_cast<double>(q) * params.c_transfer * double_check_rate;
  return params.reward * evade - costs;
}

std::int64_t economic_samples(double honesty_ratio, const EconomicParams& params) {
  check_ratio(honesty_ratio, "honesty ratio");
  const double p = per_sample_evasion(honesty_ratio, params.pr_lsh_beta);
  if (p >= 1.0) return 1;  // honest workers: any q works, gains are legitimate
  // Eq. (10)-(11): max(G_A) occurs at C_t = 0; require
  //   p^q <= h*C_train + C_spoof  =>  q >= log(h*C_train + C_spoof) / log(p).
  const double threshold =
      honesty_ratio * params.c_train + params.c_spoof;
  if (threshold <= 0.0) {
    // Costless attacker (h=0, free spoof): no finite q makes the bound
    // non-positive through costs alone; fall back to a soundness target.
    return required_samples(0.01, honesty_ratio, params.pr_lsh_beta);
  }
  if (threshold >= 1.0) return 1;  // costs already exceed the reward
  const double q = std::log(threshold) / std::log(p);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q)));
}

}  // namespace rpol::core
