#include "core/ckptstore.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#ifdef __unix__
#include <unistd.h>
#endif

namespace rpol::core {

namespace {

constexpr std::uint64_t kDefaultBudgetBytes = 256ULL * 1024 * 1024;

std::string next_spill_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  namespace fs = std::filesystem;
  fs::path base = dir.empty() ? fs::temp_directory_path() : fs::path(dir);
  if (!dir.empty()) fs::create_directories(base);
#ifdef __unix__
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return (base / ("rpol-ckpt-" + std::to_string(pid) + "-" +
                  std::to_string(n) + ".bin"))
      .string();
}

}  // namespace

std::uint64_t resolve_ckpt_budget(std::uint64_t configured) {
  if (configured != 0) return configured;
  if (const char* env = std::getenv("RPOL_CKPT_BUDGET")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::uint64_t>(v);
  }
  return kDefaultBudgetBytes;
}

CheckpointStore::CheckpointStore(CkptStoreConfig config)
    : budget_(resolve_ckpt_budget(config.budget_bytes)),
      path_(next_spill_path(config.spill_dir)) {
  // trunc creates the file; reopen in/out so reads and appends share it.
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::trunc);
  if (!file_.is_open()) {
    throw std::runtime_error("cannot open checkpoint spill file: " + path_);
  }
}

CheckpointStore::~CheckpointStore() {
  file_.close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best-effort cleanup
}

void CheckpointStore::evict_for(std::uint64_t incoming_bytes) const {
  while (!lru_.empty() && hot_bytes_ + incoming_bytes > budget_) {
    const std::int64_t victim = lru_.back();
    auto it = hot_.find(victim);
    hot_bytes_ -= it->second.state.byte_size();
    hot_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
  mem_.set(hot_bytes_);
}

void CheckpointStore::cache_locked(std::int64_t index, TrainState state) const {
  const std::uint64_t bytes = state.byte_size();
  evict_for(bytes);  // evict BEFORE insert: hot_bytes_ peaks at
                     // max(budget, one checkpoint), never budget + one
  lru_.push_front(index);
  hot_.emplace(index, HotEntry{std::move(state), lru_.begin()});
  hot_bytes_ += bytes;
  mem_.set(hot_bytes_);
}

void CheckpointStore::append(const TrainState& state) {
  const Bytes encoded = serialize_state(state);
  std::lock_guard<std::mutex> lock(mu_);
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(spill_bytes_), std::ios::beg);
  file_.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
  file_.flush();
  if (!file_) {
    throw std::runtime_error("checkpoint spill write failed: " + path_);
  }
  Record rec;
  rec.offset = spill_bytes_;
  rec.length = encoded.size();
  rec.state_bytes = state.byte_size();
  records_.push_back(rec);
  spill_bytes_ += rec.length;
  logical_bytes_ += rec.state_bytes;
  cache_locked(static_cast<std::int64_t>(records_.size()) - 1, state);
}

std::int64_t CheckpointStore::num_checkpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(records_.size());
}

TrainState CheckpointStore::read_record(const Record& rec) const {
  Bytes buf(static_cast<std::size_t>(rec.length));
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(rec.offset), std::ios::beg);
  file_.read(reinterpret_cast<char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
  if (file_.gcount() != static_cast<std::streamsize>(buf.size())) {
    throw std::runtime_error("checkpoint spill read failed: " + path_);
  }
  std::size_t offset = 0;
  TrainState state;
  state.model = deserialize_floats(buf, offset);
  state.optimizer = deserialize_floats(buf, offset);
  if (offset != buf.size()) {
    throw std::runtime_error("checkpoint spill record corrupt: " + path_);
  }
  return state;
}

TrainState CheckpointStore::fetch(std::int64_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || index >= static_cast<std::int64_t>(records_.size())) {
    throw std::out_of_range("checkpoint index out of range");
  }
  auto it = hot_.find(index);
  if (it != hot_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // refresh recency
    return it->second.state;
  }
  TrainState state = read_record(records_[static_cast<std::size_t>(index)]);
  ++reloads_;
  cache_locked(index, state);
  return state;
}

bool CheckpointStore::is_hot(std::int64_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_.find(index) != hot_.end();
}

std::uint64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logical_bytes_;
}

CkptStoreStats CheckpointStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CkptStoreStats s;
  s.checkpoints = static_cast<std::int64_t>(records_.size());
  s.hot_count = static_cast<std::int64_t>(hot_.size());
  s.hot_bytes = hot_bytes_;
  s.spill_bytes = spill_bytes_;
  s.evictions = evictions_;
  s.reloads = reloads_;
  s.budget_bytes = budget_;
  return s;
}

namespace {

// Tees each streamed checkpoint into the commitment builder and the store.
class CommitAndSpillSink final : public CheckpointSink {
 public:
  CommitAndSpillSink(CommitmentBuilder& builder, CheckpointStore& store)
      : builder_(builder), store_(store) {}
  void append(const TrainState& state) override {
    builder_.add_checkpoint(state);
    store_.append(state);
  }

 private:
  CommitmentBuilder& builder_;
  CheckpointStore& store_;
};

}  // namespace

StreamedEpoch run_streamed_epoch(WorkerPolicy& policy, StepExecutor& executor,
                                 const EpochContext& context,
                                 sim::DeviceExecution& device,
                                 CommitmentVersion version,
                                 const lsh::PStableLsh* hasher,
                                 const std::vector<bool>* mask,
                                 CkptStoreConfig store_config) {
  StreamedEpoch out;
  out.store = std::make_unique<CheckpointStore>(store_config);
  CommitmentBuilder builder(version, hasher, mask);
  CommitAndSpillSink sink(builder, *out.store);
  StreamedTraceInfo info = policy.stream_trace(executor, context, device, sink);
  out.step_of = std::move(info.step_of);
  out.mean_loss = info.mean_loss;
  out.commitment = builder.finish();
  out.compact = builder.compact();
  return out;
}

}  // namespace rpol::core
